/root/repo/target/release/examples/quickstart-3e5ff9dce5a6ee49.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-3e5ff9dce5a6ee49: examples/quickstart.rs

examples/quickstart.rs:
