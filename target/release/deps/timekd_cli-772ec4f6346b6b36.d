/root/repo/target/release/deps/timekd_cli-772ec4f6346b6b36.d: src/bin/timekd-cli.rs

/root/repo/target/release/deps/timekd_cli-772ec4f6346b6b36: src/bin/timekd-cli.rs

src/bin/timekd-cli.rs:
