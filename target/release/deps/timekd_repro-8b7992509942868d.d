/root/repo/target/release/deps/timekd_repro-8b7992509942868d.d: src/lib.rs

/root/repo/target/release/deps/libtimekd_repro-8b7992509942868d.rlib: src/lib.rs

/root/repo/target/release/deps/libtimekd_repro-8b7992509942868d.rmeta: src/lib.rs

src/lib.rs:
