/root/repo/target/release/deps/timekd_check-0a099e718b6520fa.d: crates/check/src/main.rs

/root/repo/target/release/deps/timekd_check-0a099e718b6520fa: crates/check/src/main.rs

crates/check/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/check
