/root/repo/target/release/deps/timekd_bench-03d0a9cc7140bee3.d: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/profile.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libtimekd_bench-03d0a9cc7140bee3.rlib: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/profile.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libtimekd_bench-03d0a9cc7140bee3.rmeta: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/profile.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/alloc.rs:
crates/bench/src/profile.rs:
crates/bench/src/runner.rs:
crates/bench/src/tables.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
