/root/repo/target/release/deps/timekd-6ca4d6e7333f5523.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/distill.rs crates/core/src/forecaster.rs crates/core/src/model_io.rs crates/core/src/norm_helpers.rs crates/core/src/sca.rs crates/core/src/student.rs crates/core/src/teacher.rs crates/core/src/trainer.rs

/root/repo/target/release/deps/libtimekd-6ca4d6e7333f5523.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/distill.rs crates/core/src/forecaster.rs crates/core/src/model_io.rs crates/core/src/norm_helpers.rs crates/core/src/sca.rs crates/core/src/student.rs crates/core/src/teacher.rs crates/core/src/trainer.rs

/root/repo/target/release/deps/libtimekd-6ca4d6e7333f5523.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/distill.rs crates/core/src/forecaster.rs crates/core/src/model_io.rs crates/core/src/norm_helpers.rs crates/core/src/sca.rs crates/core/src/student.rs crates/core/src/teacher.rs crates/core/src/trainer.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/distill.rs:
crates/core/src/forecaster.rs:
crates/core/src/model_io.rs:
crates/core/src/norm_helpers.rs:
crates/core/src/sca.rs:
crates/core/src/student.rs:
crates/core/src/teacher.rs:
crates/core/src/trainer.rs:
