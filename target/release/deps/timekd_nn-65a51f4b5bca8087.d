/root/repo/target/release/deps/timekd_nn-65a51f4b5bca8087.d: crates/nn/src/lib.rs crates/nn/src/attention.rs crates/nn/src/dropout.rs crates/nn/src/encoder.rs crates/nn/src/linear.rs crates/nn/src/losses.rs crates/nn/src/module.rs crates/nn/src/norm.rs crates/nn/src/optim.rs

/root/repo/target/release/deps/libtimekd_nn-65a51f4b5bca8087.rlib: crates/nn/src/lib.rs crates/nn/src/attention.rs crates/nn/src/dropout.rs crates/nn/src/encoder.rs crates/nn/src/linear.rs crates/nn/src/losses.rs crates/nn/src/module.rs crates/nn/src/norm.rs crates/nn/src/optim.rs

/root/repo/target/release/deps/libtimekd_nn-65a51f4b5bca8087.rmeta: crates/nn/src/lib.rs crates/nn/src/attention.rs crates/nn/src/dropout.rs crates/nn/src/encoder.rs crates/nn/src/linear.rs crates/nn/src/losses.rs crates/nn/src/module.rs crates/nn/src/norm.rs crates/nn/src/optim.rs

crates/nn/src/lib.rs:
crates/nn/src/attention.rs:
crates/nn/src/dropout.rs:
crates/nn/src/encoder.rs:
crates/nn/src/linear.rs:
crates/nn/src/losses.rs:
crates/nn/src/module.rs:
crates/nn/src/norm.rs:
crates/nn/src/optim.rs:
