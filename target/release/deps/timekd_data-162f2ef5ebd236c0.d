/root/repo/target/release/deps/timekd_data-162f2ef5ebd236c0.d: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/generators.rs crates/data/src/loader.rs crates/data/src/metrics.rs crates/data/src/prompts.rs crates/data/src/scaler.rs

/root/repo/target/release/deps/libtimekd_data-162f2ef5ebd236c0.rlib: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/generators.rs crates/data/src/loader.rs crates/data/src/metrics.rs crates/data/src/prompts.rs crates/data/src/scaler.rs

/root/repo/target/release/deps/libtimekd_data-162f2ef5ebd236c0.rmeta: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/generators.rs crates/data/src/loader.rs crates/data/src/metrics.rs crates/data/src/prompts.rs crates/data/src/scaler.rs

crates/data/src/lib.rs:
crates/data/src/csv.rs:
crates/data/src/dataset.rs:
crates/data/src/generators.rs:
crates/data/src/loader.rs:
crates/data/src/metrics.rs:
crates/data/src/prompts.rs:
crates/data/src/scaler.rs:
