/root/repo/target/release/deps/timekd_baselines-f2d1d21caa0f15bd.d: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/dlinear.rs crates/baselines/src/itransformer.rs crates/baselines/src/ofa.rs crates/baselines/src/patchtst.rs crates/baselines/src/timecma.rs crates/baselines/src/timellm.rs crates/baselines/src/unitime.rs

/root/repo/target/release/deps/libtimekd_baselines-f2d1d21caa0f15bd.rlib: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/dlinear.rs crates/baselines/src/itransformer.rs crates/baselines/src/ofa.rs crates/baselines/src/patchtst.rs crates/baselines/src/timecma.rs crates/baselines/src/timellm.rs crates/baselines/src/unitime.rs

/root/repo/target/release/deps/libtimekd_baselines-f2d1d21caa0f15bd.rmeta: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/dlinear.rs crates/baselines/src/itransformer.rs crates/baselines/src/ofa.rs crates/baselines/src/patchtst.rs crates/baselines/src/timecma.rs crates/baselines/src/timellm.rs crates/baselines/src/unitime.rs

crates/baselines/src/lib.rs:
crates/baselines/src/common.rs:
crates/baselines/src/dlinear.rs:
crates/baselines/src/itransformer.rs:
crates/baselines/src/ofa.rs:
crates/baselines/src/patchtst.rs:
crates/baselines/src/timecma.rs:
crates/baselines/src/timellm.rs:
crates/baselines/src/unitime.rs:
