/root/repo/target/release/deps/timekd_repro-48a9408cf9ab02a9.d: src/lib.rs

/root/repo/target/release/deps/libtimekd_repro-48a9408cf9ab02a9.rlib: src/lib.rs

/root/repo/target/release/deps/libtimekd_repro-48a9408cf9ab02a9.rmeta: src/lib.rs

src/lib.rs:
