/root/repo/target/release/deps/timekd_nn-683a7cc60805d5b2.d: crates/nn/src/lib.rs crates/nn/src/attention.rs crates/nn/src/dropout.rs crates/nn/src/encoder.rs crates/nn/src/linear.rs crates/nn/src/losses.rs crates/nn/src/module.rs crates/nn/src/norm.rs crates/nn/src/optim.rs

/root/repo/target/release/deps/libtimekd_nn-683a7cc60805d5b2.rlib: crates/nn/src/lib.rs crates/nn/src/attention.rs crates/nn/src/dropout.rs crates/nn/src/encoder.rs crates/nn/src/linear.rs crates/nn/src/losses.rs crates/nn/src/module.rs crates/nn/src/norm.rs crates/nn/src/optim.rs

/root/repo/target/release/deps/libtimekd_nn-683a7cc60805d5b2.rmeta: crates/nn/src/lib.rs crates/nn/src/attention.rs crates/nn/src/dropout.rs crates/nn/src/encoder.rs crates/nn/src/linear.rs crates/nn/src/losses.rs crates/nn/src/module.rs crates/nn/src/norm.rs crates/nn/src/optim.rs

crates/nn/src/lib.rs:
crates/nn/src/attention.rs:
crates/nn/src/dropout.rs:
crates/nn/src/encoder.rs:
crates/nn/src/linear.rs:
crates/nn/src/losses.rs:
crates/nn/src/module.rs:
crates/nn/src/norm.rs:
crates/nn/src/optim.rs:
