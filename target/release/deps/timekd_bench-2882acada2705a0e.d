/root/repo/target/release/deps/timekd_bench-2882acada2705a0e.d: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/profile.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libtimekd_bench-2882acada2705a0e.rlib: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/profile.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libtimekd_bench-2882acada2705a0e.rmeta: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/profile.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/alloc.rs:
crates/bench/src/profile.rs:
crates/bench/src/runner.rs:
crates/bench/src/tables.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
