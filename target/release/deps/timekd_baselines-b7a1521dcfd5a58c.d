/root/repo/target/release/deps/timekd_baselines-b7a1521dcfd5a58c.d: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/dlinear.rs crates/baselines/src/itransformer.rs crates/baselines/src/ofa.rs crates/baselines/src/patchtst.rs crates/baselines/src/timecma.rs crates/baselines/src/timellm.rs crates/baselines/src/unitime.rs

/root/repo/target/release/deps/libtimekd_baselines-b7a1521dcfd5a58c.rlib: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/dlinear.rs crates/baselines/src/itransformer.rs crates/baselines/src/ofa.rs crates/baselines/src/patchtst.rs crates/baselines/src/timecma.rs crates/baselines/src/timellm.rs crates/baselines/src/unitime.rs

/root/repo/target/release/deps/libtimekd_baselines-b7a1521dcfd5a58c.rmeta: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/dlinear.rs crates/baselines/src/itransformer.rs crates/baselines/src/ofa.rs crates/baselines/src/patchtst.rs crates/baselines/src/timecma.rs crates/baselines/src/timellm.rs crates/baselines/src/unitime.rs

crates/baselines/src/lib.rs:
crates/baselines/src/common.rs:
crates/baselines/src/dlinear.rs:
crates/baselines/src/itransformer.rs:
crates/baselines/src/ofa.rs:
crates/baselines/src/patchtst.rs:
crates/baselines/src/timecma.rs:
crates/baselines/src/timellm.rs:
crates/baselines/src/unitime.rs:
