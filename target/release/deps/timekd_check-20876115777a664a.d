/root/repo/target/release/deps/timekd_check-20876115777a664a.d: crates/check/src/lib.rs

/root/repo/target/release/deps/libtimekd_check-20876115777a664a.rlib: crates/check/src/lib.rs

/root/repo/target/release/deps/libtimekd_check-20876115777a664a.rmeta: crates/check/src/lib.rs

crates/check/src/lib.rs:
