/root/repo/target/release/deps/timekd_lm-ace1b7a549c0196c.d: crates/lm/src/lib.rs crates/lm/src/calibration.rs crates/lm/src/config.rs crates/lm/src/frozen.rs crates/lm/src/model.rs crates/lm/src/pretrain.rs crates/lm/src/tokenizer.rs

/root/repo/target/release/deps/libtimekd_lm-ace1b7a549c0196c.rlib: crates/lm/src/lib.rs crates/lm/src/calibration.rs crates/lm/src/config.rs crates/lm/src/frozen.rs crates/lm/src/model.rs crates/lm/src/pretrain.rs crates/lm/src/tokenizer.rs

/root/repo/target/release/deps/libtimekd_lm-ace1b7a549c0196c.rmeta: crates/lm/src/lib.rs crates/lm/src/calibration.rs crates/lm/src/config.rs crates/lm/src/frozen.rs crates/lm/src/model.rs crates/lm/src/pretrain.rs crates/lm/src/tokenizer.rs

crates/lm/src/lib.rs:
crates/lm/src/calibration.rs:
crates/lm/src/config.rs:
crates/lm/src/frozen.rs:
crates/lm/src/model.rs:
crates/lm/src/pretrain.rs:
crates/lm/src/tokenizer.rs:
