/root/repo/target/debug/deps/proptest_ops-c790a7c0a26bd178.d: crates/tensor/tests/proptest_ops.rs

/root/repo/target/debug/deps/proptest_ops-c790a7c0a26bd178: crates/tensor/tests/proptest_ops.rs

crates/tensor/tests/proptest_ops.rs:
