/root/repo/target/debug/deps/timekd_baselines-d603f2c96c1b8896.d: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/dlinear.rs crates/baselines/src/itransformer.rs crates/baselines/src/ofa.rs crates/baselines/src/patchtst.rs crates/baselines/src/timecma.rs crates/baselines/src/timellm.rs crates/baselines/src/unitime.rs

/root/repo/target/debug/deps/timekd_baselines-d603f2c96c1b8896: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/dlinear.rs crates/baselines/src/itransformer.rs crates/baselines/src/ofa.rs crates/baselines/src/patchtst.rs crates/baselines/src/timecma.rs crates/baselines/src/timellm.rs crates/baselines/src/unitime.rs

crates/baselines/src/lib.rs:
crates/baselines/src/common.rs:
crates/baselines/src/dlinear.rs:
crates/baselines/src/itransformer.rs:
crates/baselines/src/ofa.rs:
crates/baselines/src/patchtst.rs:
crates/baselines/src/timecma.rs:
crates/baselines/src/timellm.rs:
crates/baselines/src/unitime.rs:
