/root/repo/target/debug/deps/timekd_repro-e330e236ddf198bf.d: src/lib.rs

/root/repo/target/debug/deps/libtimekd_repro-e330e236ddf198bf.rlib: src/lib.rs

/root/repo/target/debug/deps/libtimekd_repro-e330e236ddf198bf.rmeta: src/lib.rs

src/lib.rs:
