/root/repo/target/debug/deps/proptest_data-04115d5fb74fc6d7.d: crates/data/tests/proptest_data.rs

/root/repo/target/debug/deps/proptest_data-04115d5fb74fc6d7: crates/data/tests/proptest_data.rs

crates/data/tests/proptest_data.rs:
