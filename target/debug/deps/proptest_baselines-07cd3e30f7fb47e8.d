/root/repo/target/debug/deps/proptest_baselines-07cd3e30f7fb47e8.d: crates/baselines/tests/proptest_baselines.rs

/root/repo/target/debug/deps/proptest_baselines-07cd3e30f7fb47e8: crates/baselines/tests/proptest_baselines.rs

crates/baselines/tests/proptest_baselines.rs:
