/root/repo/target/debug/deps/timekd_tensor-070772ee11f29ff0.d: crates/tensor/src/lib.rs crates/tensor/src/audit.rs crates/tensor/src/bytes.rs crates/tensor/src/grad_check.rs crates/tensor/src/init.rs crates/tensor/src/io.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/ops/shape_ops.rs crates/tensor/src/ops/softmax.rs crates/tensor/src/rng.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/timekd_tensor-070772ee11f29ff0: crates/tensor/src/lib.rs crates/tensor/src/audit.rs crates/tensor/src/bytes.rs crates/tensor/src/grad_check.rs crates/tensor/src/init.rs crates/tensor/src/io.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/ops/shape_ops.rs crates/tensor/src/ops/softmax.rs crates/tensor/src/rng.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/audit.rs:
crates/tensor/src/bytes.rs:
crates/tensor/src/grad_check.rs:
crates/tensor/src/init.rs:
crates/tensor/src/io.rs:
crates/tensor/src/ops/mod.rs:
crates/tensor/src/ops/elementwise.rs:
crates/tensor/src/ops/matmul.rs:
crates/tensor/src/ops/reduce.rs:
crates/tensor/src/ops/shape_ops.rs:
crates/tensor/src/ops/softmax.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
