/root/repo/target/debug/deps/timekd_check-8106beb48a9c8c58.d: crates/check/src/lib.rs

/root/repo/target/debug/deps/timekd_check-8106beb48a9c8c58: crates/check/src/lib.rs

crates/check/src/lib.rs:
