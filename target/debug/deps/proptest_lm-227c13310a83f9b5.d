/root/repo/target/debug/deps/proptest_lm-227c13310a83f9b5.d: crates/lm/tests/proptest_lm.rs

/root/repo/target/debug/deps/proptest_lm-227c13310a83f9b5: crates/lm/tests/proptest_lm.rs

crates/lm/tests/proptest_lm.rs:
