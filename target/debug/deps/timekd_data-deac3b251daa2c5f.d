/root/repo/target/debug/deps/timekd_data-deac3b251daa2c5f.d: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/generators.rs crates/data/src/loader.rs crates/data/src/metrics.rs crates/data/src/prompts.rs crates/data/src/scaler.rs

/root/repo/target/debug/deps/timekd_data-deac3b251daa2c5f: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/generators.rs crates/data/src/loader.rs crates/data/src/metrics.rs crates/data/src/prompts.rs crates/data/src/scaler.rs

crates/data/src/lib.rs:
crates/data/src/csv.rs:
crates/data/src/dataset.rs:
crates/data/src/generators.rs:
crates/data/src/loader.rs:
crates/data/src/metrics.rs:
crates/data/src/prompts.rs:
crates/data/src/scaler.rs:
