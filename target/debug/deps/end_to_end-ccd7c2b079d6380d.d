/root/repo/target/debug/deps/end_to_end-ccd7c2b079d6380d.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ccd7c2b079d6380d: tests/end_to_end.rs

tests/end_to_end.rs:
