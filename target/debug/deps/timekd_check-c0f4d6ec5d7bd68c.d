/root/repo/target/debug/deps/timekd_check-c0f4d6ec5d7bd68c.d: crates/check/src/main.rs

/root/repo/target/debug/deps/timekd_check-c0f4d6ec5d7bd68c: crates/check/src/main.rs

crates/check/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/check
