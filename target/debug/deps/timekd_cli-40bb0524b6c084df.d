/root/repo/target/debug/deps/timekd_cli-40bb0524b6c084df.d: src/bin/timekd-cli.rs

/root/repo/target/debug/deps/timekd_cli-40bb0524b6c084df: src/bin/timekd-cli.rs

src/bin/timekd-cli.rs:
