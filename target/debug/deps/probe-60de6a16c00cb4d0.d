/root/repo/target/debug/deps/probe-60de6a16c00cb4d0.d: crates/bench/tests/probe.rs

/root/repo/target/debug/deps/probe-60de6a16c00cb4d0: crates/bench/tests/probe.rs

crates/bench/tests/probe.rs:
