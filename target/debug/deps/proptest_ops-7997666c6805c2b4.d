/root/repo/target/debug/deps/proptest_ops-7997666c6805c2b4.d: crates/tensor/tests/proptest_ops.rs

/root/repo/target/debug/deps/proptest_ops-7997666c6805c2b4: crates/tensor/tests/proptest_ops.rs

crates/tensor/tests/proptest_ops.rs:
