/root/repo/target/debug/deps/timekd_cli-c975c7211105acff.d: src/bin/timekd-cli.rs

/root/repo/target/debug/deps/timekd_cli-c975c7211105acff: src/bin/timekd-cli.rs

src/bin/timekd-cli.rs:
