/root/repo/target/debug/deps/timekd_bench-3f98ca4edfa73847.d: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/profile.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/timekd_bench-3f98ca4edfa73847: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/profile.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/alloc.rs:
crates/bench/src/profile.rs:
crates/bench/src/runner.rs:
crates/bench/src/tables.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
