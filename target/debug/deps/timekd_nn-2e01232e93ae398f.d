/root/repo/target/debug/deps/timekd_nn-2e01232e93ae398f.d: crates/nn/src/lib.rs crates/nn/src/attention.rs crates/nn/src/dropout.rs crates/nn/src/encoder.rs crates/nn/src/linear.rs crates/nn/src/losses.rs crates/nn/src/module.rs crates/nn/src/norm.rs crates/nn/src/optim.rs

/root/repo/target/debug/deps/libtimekd_nn-2e01232e93ae398f.rlib: crates/nn/src/lib.rs crates/nn/src/attention.rs crates/nn/src/dropout.rs crates/nn/src/encoder.rs crates/nn/src/linear.rs crates/nn/src/losses.rs crates/nn/src/module.rs crates/nn/src/norm.rs crates/nn/src/optim.rs

/root/repo/target/debug/deps/libtimekd_nn-2e01232e93ae398f.rmeta: crates/nn/src/lib.rs crates/nn/src/attention.rs crates/nn/src/dropout.rs crates/nn/src/encoder.rs crates/nn/src/linear.rs crates/nn/src/losses.rs crates/nn/src/module.rs crates/nn/src/norm.rs crates/nn/src/optim.rs

crates/nn/src/lib.rs:
crates/nn/src/attention.rs:
crates/nn/src/dropout.rs:
crates/nn/src/encoder.rs:
crates/nn/src/linear.rs:
crates/nn/src/losses.rs:
crates/nn/src/module.rs:
crates/nn/src/norm.rs:
crates/nn/src/optim.rs:
