/root/repo/target/debug/deps/timekd_lm-8db430613e1b2156.d: crates/lm/src/lib.rs crates/lm/src/calibration.rs crates/lm/src/config.rs crates/lm/src/frozen.rs crates/lm/src/model.rs crates/lm/src/pretrain.rs crates/lm/src/tokenizer.rs

/root/repo/target/debug/deps/libtimekd_lm-8db430613e1b2156.rlib: crates/lm/src/lib.rs crates/lm/src/calibration.rs crates/lm/src/config.rs crates/lm/src/frozen.rs crates/lm/src/model.rs crates/lm/src/pretrain.rs crates/lm/src/tokenizer.rs

/root/repo/target/debug/deps/libtimekd_lm-8db430613e1b2156.rmeta: crates/lm/src/lib.rs crates/lm/src/calibration.rs crates/lm/src/config.rs crates/lm/src/frozen.rs crates/lm/src/model.rs crates/lm/src/pretrain.rs crates/lm/src/tokenizer.rs

crates/lm/src/lib.rs:
crates/lm/src/calibration.rs:
crates/lm/src/config.rs:
crates/lm/src/frozen.rs:
crates/lm/src/model.rs:
crates/lm/src/pretrain.rs:
crates/lm/src/tokenizer.rs:
