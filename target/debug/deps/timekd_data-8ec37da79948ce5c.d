/root/repo/target/debug/deps/timekd_data-8ec37da79948ce5c.d: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/generators.rs crates/data/src/loader.rs crates/data/src/metrics.rs crates/data/src/prompts.rs crates/data/src/scaler.rs

/root/repo/target/debug/deps/libtimekd_data-8ec37da79948ce5c.rlib: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/generators.rs crates/data/src/loader.rs crates/data/src/metrics.rs crates/data/src/prompts.rs crates/data/src/scaler.rs

/root/repo/target/debug/deps/libtimekd_data-8ec37da79948ce5c.rmeta: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/generators.rs crates/data/src/loader.rs crates/data/src/metrics.rs crates/data/src/prompts.rs crates/data/src/scaler.rs

crates/data/src/lib.rs:
crates/data/src/csv.rs:
crates/data/src/dataset.rs:
crates/data/src/generators.rs:
crates/data/src/loader.rs:
crates/data/src/metrics.rs:
crates/data/src/prompts.rs:
crates/data/src/scaler.rs:
