/root/repo/target/debug/deps/trip-8ad46fa9c2c62aaf.d: crates/check/tests/trip.rs

/root/repo/target/debug/deps/trip-8ad46fa9c2c62aaf: crates/check/tests/trip.rs

crates/check/tests/trip.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/check
