/root/repo/target/debug/deps/proptest_nn-b5061c1030e068f1.d: crates/nn/tests/proptest_nn.rs

/root/repo/target/debug/deps/proptest_nn-b5061c1030e068f1: crates/nn/tests/proptest_nn.rs

crates/nn/tests/proptest_nn.rs:
