/root/repo/target/debug/deps/timekd_repro-454d35ca146922bb.d: src/lib.rs

/root/repo/target/debug/deps/timekd_repro-454d35ca146922bb: src/lib.rs

src/lib.rs:
