/root/repo/target/debug/deps/forecaster_contract-bf1aefb2f99be2ac.d: tests/forecaster_contract.rs

/root/repo/target/debug/deps/forecaster_contract-bf1aefb2f99be2ac: tests/forecaster_contract.rs

tests/forecaster_contract.rs:
