/root/repo/target/debug/deps/timekd_check-3ca6fe9bf43bf435.d: crates/check/src/main.rs

/root/repo/target/debug/deps/timekd_check-3ca6fe9bf43bf435: crates/check/src/main.rs

crates/check/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/check
