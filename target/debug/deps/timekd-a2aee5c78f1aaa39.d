/root/repo/target/debug/deps/timekd-a2aee5c78f1aaa39.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/distill.rs crates/core/src/forecaster.rs crates/core/src/model_io.rs crates/core/src/norm_helpers.rs crates/core/src/sca.rs crates/core/src/student.rs crates/core/src/teacher.rs crates/core/src/trainer.rs

/root/repo/target/debug/deps/libtimekd-a2aee5c78f1aaa39.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/distill.rs crates/core/src/forecaster.rs crates/core/src/model_io.rs crates/core/src/norm_helpers.rs crates/core/src/sca.rs crates/core/src/student.rs crates/core/src/teacher.rs crates/core/src/trainer.rs

/root/repo/target/debug/deps/libtimekd-a2aee5c78f1aaa39.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/distill.rs crates/core/src/forecaster.rs crates/core/src/model_io.rs crates/core/src/norm_helpers.rs crates/core/src/sca.rs crates/core/src/student.rs crates/core/src/teacher.rs crates/core/src/trainer.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/distill.rs:
crates/core/src/forecaster.rs:
crates/core/src/model_io.rs:
crates/core/src/norm_helpers.rs:
crates/core/src/sca.rs:
crates/core/src/student.rs:
crates/core/src/teacher.rs:
crates/core/src/trainer.rs:
