/root/repo/target/debug/deps/proptest_pipeline-042b592460a194a3.d: tests/proptest_pipeline.rs

/root/repo/target/debug/deps/proptest_pipeline-042b592460a194a3: tests/proptest_pipeline.rs

tests/proptest_pipeline.rs:
