/root/repo/target/debug/deps/timekd_check-5c5c3630f120d3e4.d: crates/check/src/lib.rs

/root/repo/target/debug/deps/libtimekd_check-5c5c3630f120d3e4.rlib: crates/check/src/lib.rs

/root/repo/target/debug/deps/libtimekd_check-5c5c3630f120d3e4.rmeta: crates/check/src/lib.rs

crates/check/src/lib.rs:
