/root/repo/target/debug/deps/timekd_lm-36d309caaee7549d.d: crates/lm/src/lib.rs crates/lm/src/calibration.rs crates/lm/src/config.rs crates/lm/src/frozen.rs crates/lm/src/model.rs crates/lm/src/pretrain.rs crates/lm/src/tokenizer.rs

/root/repo/target/debug/deps/timekd_lm-36d309caaee7549d: crates/lm/src/lib.rs crates/lm/src/calibration.rs crates/lm/src/config.rs crates/lm/src/frozen.rs crates/lm/src/model.rs crates/lm/src/pretrain.rs crates/lm/src/tokenizer.rs

crates/lm/src/lib.rs:
crates/lm/src/calibration.rs:
crates/lm/src/config.rs:
crates/lm/src/frozen.rs:
crates/lm/src/model.rs:
crates/lm/src/pretrain.rs:
crates/lm/src/tokenizer.rs:
