/root/repo/target/debug/deps/timekd_nn-f693858467aeb518.d: crates/nn/src/lib.rs crates/nn/src/attention.rs crates/nn/src/dropout.rs crates/nn/src/encoder.rs crates/nn/src/linear.rs crates/nn/src/losses.rs crates/nn/src/module.rs crates/nn/src/norm.rs crates/nn/src/optim.rs

/root/repo/target/debug/deps/timekd_nn-f693858467aeb518: crates/nn/src/lib.rs crates/nn/src/attention.rs crates/nn/src/dropout.rs crates/nn/src/encoder.rs crates/nn/src/linear.rs crates/nn/src/losses.rs crates/nn/src/module.rs crates/nn/src/norm.rs crates/nn/src/optim.rs

crates/nn/src/lib.rs:
crates/nn/src/attention.rs:
crates/nn/src/dropout.rs:
crates/nn/src/encoder.rs:
crates/nn/src/linear.rs:
crates/nn/src/losses.rs:
crates/nn/src/module.rs:
crates/nn/src/norm.rs:
crates/nn/src/optim.rs:
