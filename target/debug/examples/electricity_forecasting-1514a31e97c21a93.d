/root/repo/target/debug/examples/electricity_forecasting-1514a31e97c21a93.d: examples/electricity_forecasting.rs

/root/repo/target/debug/examples/electricity_forecasting-1514a31e97c21a93: examples/electricity_forecasting.rs

examples/electricity_forecasting.rs:
