/root/repo/target/debug/examples/quickstart-ae8bbc826f368388.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ae8bbc826f368388: examples/quickstart.rs

examples/quickstart.rs:
