/root/repo/target/debug/examples/traffic_monitoring-2786e54dd9820660.d: examples/traffic_monitoring.rs

/root/repo/target/debug/examples/traffic_monitoring-2786e54dd9820660: examples/traffic_monitoring.rs

examples/traffic_monitoring.rs:
