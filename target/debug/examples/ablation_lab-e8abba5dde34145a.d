/root/repo/target/debug/examples/ablation_lab-e8abba5dde34145a.d: examples/ablation_lab.rs

/root/repo/target/debug/examples/ablation_lab-e8abba5dde34145a: examples/ablation_lab.rs

examples/ablation_lab.rs:
