/root/repo/target/debug/examples/zero_shot_lab-1a19f38d016c824f.d: examples/zero_shot_lab.rs

/root/repo/target/debug/examples/zero_shot_lab-1a19f38d016c824f: examples/zero_shot_lab.rs

examples/zero_shot_lab.rs:
