//! Umbrella crate for the TimeKD reproduction workspace.
//!
//! Re-exports the member crates so that examples and integration tests can
//! depend on a single package. See the individual crates for the actual
//! implementation:
//! - [`timekd_tensor`]: tensor + autograd substrate
//! - [`timekd_nn`]: layers, optimizers, losses
//! - [`timekd_lm`]: calibrated causal language model
//! - [`timekd_data`]: datasets, prompts, metrics
//! - [`timekd`]: the TimeKD teacher/student/PKD pipeline
//! - [`timekd_baselines`]: comparison forecasters
//! - [`timekd_bench`]: experiment harness

pub use timekd;
pub use timekd_baselines;
pub use timekd_bench;
pub use timekd_data;
pub use timekd_lm;
pub use timekd_nn;
pub use timekd_tensor;
