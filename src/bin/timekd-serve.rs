//! `timekd-serve` — launch the forecast-serving layer against an on-disk
//! model registry.
//!
//! ```bash
//! timekd-serve --registry ./registry                  # serve the latest version
//! timekd-serve --registry ./registry --addr 0.0.0.0:7878 --micro-batch 8
//! timekd-serve --registry ./registry --bootstrap      # publish a demo v1 first
//! ```
//!
//! The registry is a plain directory of `v<N>/` version dirs (manifest +
//! param blobs, see `timekd_serve::registry`). On start the server loads
//! the highest version; `POST /admin/activate {"version": N}` hot-swaps
//! at runtime. `--bootstrap` publishes a small seeded F32 student as the
//! next version before serving — handy for demos and smoke tests against
//! an empty registry.

use std::process::ExitCode;

use timekd::{Student, TimeKdConfig};
use timekd_serve::{latest_version, publish, ServeConfig, Server};
use timekd_tensor::{seeded_rng, Precision};

/// Demo-student geometry used by `--bootstrap`.
const BOOT_INPUT_LEN: usize = 32;
const BOOT_HORIZON: usize = 8;
const BOOT_NUM_VARS: usize = 7;

struct Args {
    registry: String,
    addr: String,
    micro_batch: usize,
    max_connections: usize,
    bootstrap: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        registry: String::new(),
        addr: "127.0.0.1:7878".to_string(),
        micro_batch: 4,
        max_connections: 256,
        bootstrap: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--registry" => {
                args.registry = it.next().ok_or("--registry needs a directory")?.clone();
            }
            "--addr" => {
                args.addr = it.next().ok_or("--addr needs host:port")?.clone();
            }
            "--micro-batch" => {
                let v = it.next().ok_or("--micro-batch needs a width")?;
                args.micro_batch = v.parse().map_err(|_| format!("bad --micro-batch `{v}`"))?;
            }
            "--max-connections" => {
                let v = it.next().ok_or("--max-connections needs a count")?;
                args.max_connections = v
                    .parse()
                    .map_err(|_| format!("bad --max-connections `{v}`"))?;
            }
            "--bootstrap" => args.bootstrap = true,
            "--help" | "help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if args.registry.is_empty() {
        return Err(format!("--registry is required\n{USAGE}"));
    }
    if args.micro_batch == 0 {
        return Err("--micro-batch must be at least 1".to_string());
    }
    if args.max_connections == 0 {
        return Err("--max-connections must be at least 1".to_string());
    }
    Ok(args)
}

const USAGE: &str = "usage: timekd-serve --registry <dir> \
[--addr host:port] [--micro-batch N] [--max-connections N] [--bootstrap]";

/// Publishes a seeded demo student as the registry's next version.
fn bootstrap_demo(registry: &str) -> Result<u64, String> {
    let config = TimeKdConfig::default();
    let mut rng = seeded_rng(config.seed);
    let student = Student::new(
        &config,
        BOOT_INPUT_LEN,
        BOOT_HORIZON,
        BOOT_NUM_VARS,
        &mut rng,
    );
    std::fs::create_dir_all(registry).map_err(|e| format!("create {registry}: {e}"))?;
    let version = latest_version(registry.as_ref())
        .map(|v| v + 1)
        .unwrap_or(1);
    publish(
        registry.as_ref(),
        version,
        &student,
        &config,
        Precision::F32,
    )
    .map_err(|e| format!("bootstrap publish failed: {e}"))?;
    Ok(version)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if args.bootstrap {
        match bootstrap_demo(&args.registry) {
            Ok(version) => println!(
                "bootstrapped demo student as {}/v{version} \
                 ({BOOT_INPUT_LEN}x{BOOT_NUM_VARS} -> {BOOT_HORIZON}x{BOOT_NUM_VARS}, f32)",
                args.registry
            ),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut cfg = ServeConfig::new(&args.registry);
    cfg.addr = args.addr;
    cfg.micro_batch = args.micro_batch;
    cfg.max_connections = args.max_connections;
    let server = match Server::start(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("timekd-serve: {e}");
            if !args.bootstrap {
                eprintln!("hint: --bootstrap publishes a demo student into an empty registry");
            }
            return ExitCode::FAILURE;
        }
    };
    println!(
        "timekd-serve: listening on http://{} (registry {}, v{} active, micro-batch {})",
        server.addr(),
        args.registry,
        server.active_version(),
        args.micro_batch
    );
    println!(
        "endpoints: POST /forecast, POST /observe, POST /admin/activate, GET /metrics, GET /healthz"
    );
    // Serve until killed; the accept/dispatch/batcher threads do the work.
    loop {
        std::thread::park();
    }
}
