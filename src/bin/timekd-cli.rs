//! `timekd-cli` — train, evaluate and compare forecasters from the command
//! line.
//!
//! ```bash
//! timekd-cli train   --dataset etth1 --horizon 24 --epochs 3
//! timekd-cli compare --dataset pems04 --horizon 12 --models timekd,itransformer,patchtst
//! timekd-cli generate --dataset weather --steps 2000 --out weather.csv
//! timekd-cli forecast --dataset etth1 --horizon 24 --roll 72
//! ```
//!
//! Flags use `--key value` pairs; run with `help` for the full list.

use std::process::ExitCode;

use timekd::{Forecaster, TimeKd, TimeKdConfig};
use timekd_bench::{ModelKind, Profile, SharedLm};
use timekd_data::{DatasetKind, Split, SplitDataset};
use timekd_lm::LmSize;

/// Parsed `--key value` arguments.
#[derive(Debug, Default)]
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                out.flags.push((key.to_string(), value.clone()));
            } else {
                out.positional.push(a.clone());
            }
        }
        Ok(out)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} wants an integer, got '{v}'")),
        }
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} wants an integer, got '{v}'")),
        }
    }
}

fn parse_dataset(name: &str) -> Result<DatasetKind, String> {
    timekd_data::all_kinds()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let names: Vec<&str> = timekd_data::all_kinds().iter().map(|k| k.name()).collect();
            format!("unknown dataset '{name}' (expected one of {names:?})")
        })
}

fn parse_model(name: &str) -> Result<ModelKind, String> {
    let mut all = ModelKind::paper_models().to_vec();
    all.push(ModelKind::Dlinear);
    all.into_iter()
        .find(|m| {
            m.name().eq_ignore_ascii_case(name)
                || m.name().replace('-', "").eq_ignore_ascii_case(name)
        })
        .ok_or_else(|| format!("unknown model '{name}'"))
}

fn usage() -> &'static str {
    "timekd-cli — TimeKD forecasting from the command line

USAGE:
  timekd-cli train    [--dataset etth1] [--horizon 24] [--input 96]
                      [--steps 1500] [--epochs 3] [--seed 42]
  timekd-cli compare  [--dataset etth1] [--horizon 24] [--models timekd,itransformer]
                      [--steps 1500] [--seed 42]
  timekd-cli generate [--dataset weather] [--steps 2000] [--seed 42] --out file.csv
  timekd-cli forecast [--dataset etth1] [--horizon 24] [--roll 0] [--epochs 2]
  timekd-cli help

Datasets: ETTm1 ETTm2 ETTh1 ETTh2 Weather Exchange PEMS04 PEMS08
Models:   TimeKD TimeCMA Time-LLM UniTime OFA iTransformer PatchTST DLinear"
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let kind = parse_dataset(args.get("dataset").unwrap_or("etth1"))?;
    let horizon = args.get_usize("horizon", 24)?;
    let input_len = args.get_usize("input", 96)?;
    let steps = args.get_usize("steps", 1500)?;
    let epochs = args.get_usize("epochs", 3)?;
    let seed = args.get_u64("seed", 42)?;
    let ds = SplitDataset::new(kind, steps, seed, input_len, horizon);
    println!(
        "training TimeKD on {} ({} vars, input {input_len}, horizon {horizon})",
        kind.name(),
        ds.num_vars()
    );
    if ds.num_windows(Split::Val) == 0 || ds.num_windows(Split::Test) == 0 {
        return Err(format!(
            "--steps {steps} leaves the validation/test splits shorter than one              window ({} steps); raise --steps to at least {}",
            input_len + horizon,
            (input_len + horizon) * 10
        ));
    }
    let mut cfg = TimeKdConfig {
        seed,
        ..Default::default()
    };
    cfg.prompt.freq_minutes = kind.freq_minutes();
    let mut model = TimeKd::new(cfg, input_len, horizon, ds.num_vars());
    let train = ds.windows(Split::Train, 8);
    let val = ds.windows(Split::Val, 4);
    for epoch in 1..=epochs {
        let stats = model.train_epoch_detailed(&train);
        let (vm, va) = model.evaluate(&val);
        println!(
            "epoch {epoch}/{epochs}: loss {:.4} | val MSE {vm:.4} MAE {va:.4}",
            stats.total
        );
    }
    let (mse, mae) = model.evaluate(&ds.windows(Split::Test, 4));
    println!("test: MSE {mse:.4} MAE {mae:.4}");
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let kind = parse_dataset(args.get("dataset").unwrap_or("etth1"))?;
    let horizon = args.get_usize("horizon", 24)?;
    let steps = args.get_usize("steps", 1500)?;
    let seed = args.get_u64("seed", 42)?;
    let models: Vec<ModelKind> = match args.get("models") {
        None => vec![
            ModelKind::TimeKd,
            ModelKind::ITransformer,
            ModelKind::PatchTst,
        ],
        Some(list) => list.split(',').map(parse_model).collect::<Result<_, _>>()?,
    };
    let profile = Profile::quick();
    let ds = SplitDataset::new(kind, steps, seed, profile.input_len, horizon);
    let needs_lm = models.iter().any(|m| m.is_llm_based());
    println!(
        "comparing {} model(s) on {} (horizon {horizon}){}",
        models.len(),
        kind.name(),
        if needs_lm {
            ", pretraining shared LM…"
        } else {
            ""
        }
    );
    let shared = SharedLm::pretrain(LmSize::Base, &profile);
    println!("{:<14} {:>8} {:>8} {:>12}", "model", "MSE", "MAE", "params");
    for m in models {
        let r = timekd_bench::run_experiment(m, &ds, &shared, &profile, 1.0);
        println!(
            "{:<14} {:>8.4} {:>8.4} {:>12}",
            r.model, r.mse, r.mae, r.params
        );
    }
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let kind = parse_dataset(args.get("dataset").unwrap_or("weather"))?;
    let steps = args.get_usize("steps", 2000)?;
    let seed = args.get_u64("seed", 42)?;
    let out = args.get("out").ok_or("generate needs --out <file.csv>")?;
    let raw = timekd_data::generate(kind, steps, seed);
    let names = kind.variable_names();
    let headers: Vec<&str> = names.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = (0..raw.num_steps)
        .map(|t| {
            (0..raw.num_vars)
                .map(|j| format!("{:.6}", raw.at(t, j)))
                .collect()
        })
        .collect();
    timekd_data::write_csv(out, &headers, &rows).map_err(|e| e.to_string())?;
    println!(
        "wrote {} steps x {} vars of {} to {out}",
        raw.num_steps,
        raw.num_vars,
        kind.name()
    );
    Ok(())
}

fn cmd_forecast(args: &Args) -> Result<(), String> {
    let kind = parse_dataset(args.get("dataset").unwrap_or("etth1"))?;
    let horizon = args.get_usize("horizon", 24)?;
    let roll = args.get_usize("roll", 0)?;
    let epochs = args.get_usize("epochs", 2)?;
    let seed = args.get_u64("seed", 42)?;
    let ds = SplitDataset::new(kind, 1500, seed, 96, horizon);
    let mut cfg = TimeKdConfig {
        seed,
        ..Default::default()
    };
    cfg.prompt.freq_minutes = kind.freq_minutes();
    let mut model = TimeKd::new(cfg, 96, horizon, ds.num_vars());
    let train = ds.windows(Split::Train, 8);
    for _ in 0..epochs {
        model.train_epoch(&train);
    }
    let w = ds
        .windows(Split::Test, 4)
        .pop()
        .ok_or("test split has no full window; raise --steps")?;
    let total = if roll > horizon { roll } else { horizon };
    let pred = model.predict_rolling(&w.x, total);
    println!(
        "forecast for the next {total} steps ({} vars):",
        ds.num_vars()
    );
    let names = kind.variable_names();
    println!("step,{}", names.join(","));
    let data = pred.to_vec();
    let n = ds.num_vars();
    for t in 0..total {
        let row: Vec<String> = (0..n).map(|j| format!("{:.4}", data[t * n + j])).collect();
        println!("{t},{}", row.join(","));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&argv)?;
    match args.positional.first().map(String::as_str) {
        Some("train") => cmd_train(&args),
        Some("compare") => cmd_compare(&args),
        Some("generate") => cmd_generate(&args),
        Some("forecast") => cmd_forecast(&args),
        Some("help") | None => {
            println!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_flags_and_positionals() {
        let a = Args::parse(&argv("train --dataset etth1 --horizon 24")).unwrap();
        assert_eq!(a.positional, vec!["train"]);
        assert_eq!(a.get("dataset"), Some("etth1"));
        assert_eq!(a.get_usize("horizon", 0).unwrap(), 24);
        assert_eq!(a.get_usize("missing", 7).unwrap(), 7);
    }

    #[test]
    fn later_flags_win() {
        let a = Args::parse(&argv("x --seed 1 --seed 2")).unwrap();
        assert_eq!(a.get_u64("seed", 0).unwrap(), 2);
    }

    #[test]
    fn missing_value_is_error() {
        assert!(Args::parse(&argv("train --dataset")).is_err());
    }

    #[test]
    fn dataset_names_parse_case_insensitively() {
        assert_eq!(parse_dataset("etth1").unwrap(), DatasetKind::EttH1);
        assert_eq!(parse_dataset("PEMS04").unwrap(), DatasetKind::Pems04);
        assert!(parse_dataset("nope").is_err());
    }

    #[test]
    fn model_names_parse() {
        assert_eq!(parse_model("timekd").unwrap(), ModelKind::TimeKd);
        assert_eq!(parse_model("time-llm").unwrap(), ModelKind::TimeLlm);
        assert_eq!(parse_model("timellm").unwrap(), ModelKind::TimeLlm);
        assert!(parse_model("gpt5").is_err());
    }

    #[test]
    fn bad_integer_is_error() {
        let a = Args::parse(&argv("x --horizon abc")).unwrap();
        assert!(a.get_usize("horizon", 0).is_err());
    }
}
