//! Cross-crate randomised property tests: pipeline invariants that must
//! hold for any seed, dataset family and window geometry.

use timekd::{layer_norm_const, pkd_losses, TimeKdConfig};
use timekd_data::{DatasetKind, Split, SplitDataset};
use timekd_tensor::{seeded_rng, Tensor};

const CASES: u64 = 24;

#[test]
fn splits_are_disjoint_and_ordered() {
    // The last training value precedes the first test value in time by
    // construction; verify the split sizes account for every step.
    for seed in 0..CASES {
        let ds = SplitDataset::new(DatasetKind::EttH1, 500, seed, 16, 8);
        let total =
            ds.split_len(Split::Train) + ds.split_len(Split::Val) + ds.split_len(Split::Test);
        assert_eq!(total, 500, "seed {seed}");
    }
}

#[test]
fn pkd_loss_zero_iff_student_matches_teacher() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let attn = Tensor::randn([4, 4], 0.3, &mut rng).softmax_last();
        let emb = Tensor::randn([4, 8], 1.0, &mut rng);
        let cfg = TimeKdConfig::default();
        let zero = pkd_losses(&attn, &emb, &attn, &emb, &cfg);
        assert_eq!(zero.combined.item(), 0.0, "seed {seed}");
        let perturbed = emb.add_scalar(0.1);
        let nonzero = pkd_losses(&attn, &emb, &attn, &perturbed, &cfg);
        assert!(nonzero.combined.item() > 0.0, "seed {seed}");
    }
}

#[test]
fn pkd_loss_monotone_in_discrepancy() {
    // Larger embedding discrepancy → larger feature loss (Smooth-L1 is
    // monotone in |d| per element).
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let eps = rng.gen_range(0.01f32..0.5);
        let attn = Tensor::randn([3, 3], 0.3, &mut rng).softmax_last();
        let emb = Tensor::randn([3, 4], 1.0, &mut rng);
        let cfg = TimeKdConfig::default();
        let near = pkd_losses(&attn, &emb, &attn, &emb.add_scalar(eps), &cfg);
        let far = pkd_losses(&attn, &emb, &attn, &emb.add_scalar(2.0 * eps), &cfg);
        assert!(far.feature.item() > near.feature.item(), "seed {seed}");
    }
}

#[test]
fn layer_norm_const_scale_invariant() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let scale = rng.gen_range(0.5f32..20.0);
        let x = Tensor::randn([3, 8], 1.0, &mut rng);
        let a = layer_norm_const(&x).to_vec();
        let b = layer_norm_const(&x.mul_scalar(scale)).to_vec();
        for (p, q) in a.iter().zip(&b) {
            assert!((p - q).abs() < 1e-3, "seed {seed}: {p} vs {q}");
        }
    }
}

#[test]
fn window_xy_are_contiguous_in_source() {
    // For every window, the first row of y equals the row of the split
    // that immediately follows x — verified via overlapping windows.
    for seed in 0..CASES {
        let ds = SplitDataset::new(DatasetKind::Pems08, 500, seed, 16, 8);
        let windows = ds.windows(Split::Val, 1);
        if windows.len() < 17 {
            continue;
        }
        let (a, b) = (&windows[0], &windows[16]);
        // b starts 16 steps later, so b.x rows [16,32) == a.y rows [0,8) ++
        // beyond.
        let bx = b.x.to_vec();
        let ay = a.y.to_vec();
        assert_eq!(&bx[..ay.len()], &ay[..], "seed {seed}");
    }
}
