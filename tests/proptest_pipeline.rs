//! Cross-crate property tests: pipeline invariants that must hold for any
//! seed, dataset family and window geometry.

use proptest::prelude::*;
use timekd::{layer_norm_const, pkd_losses, TimeKdConfig};
use timekd_data::{DatasetKind, Split, SplitDataset};
use timekd_tensor::{seeded_rng, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn splits_are_disjoint_and_ordered(seed in 0u64..200) {
        // The last training value precedes the first test value in time by
        // construction; verify the split sizes account for every step.
        let ds = SplitDataset::new(DatasetKind::EttH1, 500, seed, 16, 8);
        let total = ds.split_len(Split::Train) + ds.split_len(Split::Val) + ds.split_len(Split::Test);
        prop_assert_eq!(total, 500);
    }

    #[test]
    fn pkd_loss_zero_iff_student_matches_teacher(seed in 0u64..200) {
        let mut rng = seeded_rng(seed);
        let attn = Tensor::randn([4, 4], 0.3, &mut rng).softmax_last();
        let emb = Tensor::randn([4, 8], 1.0, &mut rng);
        let cfg = TimeKdConfig::default();
        let zero = pkd_losses(&attn, &emb, &attn, &emb, &cfg);
        prop_assert_eq!(zero.combined.item(), 0.0);
        let perturbed = emb.add_scalar(0.1);
        let nonzero = pkd_losses(&attn, &emb, &attn, &perturbed, &cfg);
        prop_assert!(nonzero.combined.item() > 0.0);
    }

    #[test]
    fn pkd_loss_monotone_in_discrepancy(seed in 0u64..200, eps in 0.01f32..0.5) {
        // Larger embedding discrepancy → larger feature loss (Smooth-L1 is
        // monotone in |d| per element).
        let mut rng = seeded_rng(seed);
        let attn = Tensor::randn([3, 3], 0.3, &mut rng).softmax_last();
        let emb = Tensor::randn([3, 4], 1.0, &mut rng);
        let cfg = TimeKdConfig::default();
        let near = pkd_losses(&attn, &emb, &attn, &emb.add_scalar(eps), &cfg);
        let far = pkd_losses(&attn, &emb, &attn, &emb.add_scalar(2.0 * eps), &cfg);
        prop_assert!(far.feature.item() > near.feature.item());
    }

    #[test]
    fn layer_norm_const_scale_invariant(seed in 0u64..200, scale in 0.5f32..20.0) {
        let mut rng = seeded_rng(seed);
        let x = Tensor::randn([3, 8], 1.0, &mut rng);
        let a = layer_norm_const(&x).to_vec();
        let b = layer_norm_const(&x.mul_scalar(scale)).to_vec();
        for (p, q) in a.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-3, "{p} vs {q}");
        }
    }

    #[test]
    fn window_xy_are_contiguous_in_source(seed in 0u64..100) {
        // For every window, the first row of y equals the row of the split
        // that immediately follows x — verified via overlapping windows.
        let ds = SplitDataset::new(DatasetKind::Pems08, 500, seed, 16, 8);
        let windows = ds.windows(Split::Val, 1);
        prop_assume!(windows.len() >= 17);
        let (a, b) = (&windows[0], &windows[16]);
        // b starts 16 steps later, so b.x row 0 == a.x row 16? No: a.x has
        // rows [0,16); b.x rows [16,32) == a.y rows [0,8) ++ beyond.
        let bx = b.x.to_vec();
        let ay = a.y.to_vec();
        prop_assert_eq!(&bx[..ay.len()], &ay[..]);
    }
}
