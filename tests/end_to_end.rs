//! Integration tests spanning every crate: dataset generation → prompt
//! rendering → teacher/student training → forecasting → metrics.

use std::rc::Rc;

use timekd::{Forecaster, TimeKd, TimeKdConfig};
use timekd_data::{DatasetKind, Split, SplitDataset};
use timekd_lm::{pretrain_lm, FrozenLm, LmConfig, LmSize, PretrainConfig, PromptTokenizer};
use timekd_nn::Module;
use timekd_tensor::Tensor;

#[allow(clippy::field_reassign_with_default)]
fn tiny_config() -> TimeKdConfig {
    let mut cfg = TimeKdConfig::default();
    cfg.dim = 16;
    cfg.ffn_hidden = 32;
    cfg.num_heads = 2;
    cfg.lm = LmConfig::for_size(LmSize::Small);
    cfg.prompt.max_history = 4;
    cfg.prompt.max_future = 4;
    cfg.lr = 3e-3;
    cfg
}

fn tiny_timekd(ds: &SplitDataset) -> TimeKd {
    let tokenizer = Rc::new(PromptTokenizer::new());
    let cfg = tiny_config();
    let (lm, _) = pretrain_lm(
        &tokenizer,
        cfg.lm,
        PretrainConfig {
            steps: 5,
            ..Default::default()
        },
    );
    TimeKd::with_frozen_lm(
        Rc::new(FrozenLm::new(lm)),
        tokenizer,
        cfg,
        ds.input_len(),
        ds.horizon(),
        ds.num_vars(),
    )
}

/// Naive last-value forecast MSE as an absolute quality bar.
fn naive_mse(ds: &SplitDataset, windows: &[timekd_data::ForecastWindow]) -> f32 {
    let n = ds.num_vars();
    let mut acc = timekd_data::MetricAccumulator::new();
    for w in windows {
        let h = w.x.dims()[0];
        let last = w.x.slice(0, h - 1, 1);
        let pred = last.broadcast_to([ds.horizon(), n]);
        acc.update(&pred, &w.y);
    }
    acc.mse()
}

#[test]
fn timekd_beats_naive_forecast_after_training() {
    let ds = SplitDataset::new(DatasetKind::EttM1, 900, 29, 48, 12);
    let mut model = tiny_timekd(&ds);
    let train = ds.windows(Split::Train, 6);
    let test = ds.windows(Split::Test, 8);
    for _ in 0..8 {
        model.train_epoch(&train);
    }
    let (mse, _) = model.evaluate(&test);
    let naive = naive_mse(&ds, &test);
    assert!(
        mse < naive,
        "trained TimeKD ({mse:.4}) must beat naive last-value ({naive:.4}) on periodic data"
    );
}

#[test]
fn student_checkpoint_round_trip_preserves_predictions() {
    let ds = SplitDataset::new(DatasetKind::EttH1, 700, 3, 48, 12);
    let mut model = tiny_timekd(&ds);
    let train = ds.windows(Split::Train, 10);
    model.train_epoch(&train);
    let w = &ds.windows(Split::Test, 8)[0];
    let pred_before = model.predict(&w.x);

    // Save the student, scramble it, restore, and compare predictions.
    let mut blob = model.student().save_params();
    for p in model.student().params() {
        p.update_data(|d| d.iter_mut().for_each(|v| *v = 0.0));
    }
    let scrambled = model.predict(&w.x);
    assert_ne!(pred_before.to_vec(), scrambled.to_vec());
    model.student().load_params(&mut blob).unwrap();
    let pred_after = model.predict(&w.x);
    assert_eq!(pred_before.to_vec(), pred_after.to_vec());
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let ds = SplitDataset::new(DatasetKind::EttH2, 700, 5, 48, 12);
        let mut model = tiny_timekd(&ds);
        let train = ds.windows(Split::Train, 10);
        model.train_epoch(&train);
        let (mse, mae) = model.evaluate(&ds.windows(Split::Test, 10));
        (mse, mae)
    };
    assert_eq!(run(), run());
}

#[test]
fn distillation_narrows_teacher_student_gap() {
    let ds = SplitDataset::new(DatasetKind::EttM2, 800, 9, 48, 12);
    let mut model = tiny_timekd(&ds);
    let train = ds.windows(Split::Train, 8);
    let probe = &ds.windows(Split::Test, 16)[0];

    let gap = |model: &TimeKd| {
        let (t, s) = model.feature_maps(probe);
        t.sub(&s).square().mean().item()
    };
    let before = gap(&model);
    for _ in 0..4 {
        model.train_epoch(&train);
    }
    let after = gap(&model);
    assert!(
        after < before,
        "feature distillation must shrink the embedding gap: {before:.4} -> {after:.4}"
    );
}

#[test]
fn forecasts_are_finite_on_every_dataset_family() {
    for kind in timekd_data::all_kinds() {
        let ds = SplitDataset::new(kind, 700, 17, 48, 12);
        let mut model = tiny_timekd(&ds);
        let train = ds.windows(Split::Train, 24);
        model.train_epoch(&train[..4.min(train.len())]);
        let w = &ds.windows(Split::Test, 24)[0];
        let pred = model.predict(&w.x);
        assert_eq!(pred.dims(), &[12, ds.num_vars()], "{kind:?}");
        assert!(
            pred.to_vec().iter().all(|v| v.is_finite()),
            "non-finite forecast on {kind:?}"
        );
    }
}

#[test]
fn scaled_forecasts_invert_to_physical_units() {
    let ds = SplitDataset::new(DatasetKind::Weather, 700, 5, 48, 12);
    let model = tiny_timekd(&ds);
    let w = &ds.windows(Split::Test, 16)[0];
    let pred = model.predict(&w.x);
    let mut phys = pred.to_vec();
    ds.scaler().inverse_transform(&mut phys);
    let mut back = phys.clone();
    ds.scaler().transform(&mut back);
    for (a, b) in back.iter().zip(pred.to_vec()) {
        assert!((a - b).abs() < 1e-3);
    }
}

#[test]
fn tensor_graph_survives_cross_crate_composition() {
    // A loss composed of data-crate metrics inputs, core-model outputs and
    // nn-crate losses must backprop into every student parameter group.
    let ds = SplitDataset::new(DatasetKind::EttH1, 700, 3, 48, 12);
    let model = tiny_timekd(&ds);
    let w = &ds.windows(Split::Train, 16)[0];
    let out = model.student().forward(&w.x);
    let loss = timekd_nn::smooth_l1_loss(&out.forecast, &w.y).add(&out.attention.square().mean());
    loss.backward();
    let with_grad = model
        .student()
        .params()
        .iter()
        .filter(|p| p.grad().is_some())
        .count();
    let total = model.student().params().len();
    assert!(
        with_grad >= total - 2,
        "only {with_grad}/{total} student params received gradients"
    );
    let _ = Tensor::zeros([1]);
}
