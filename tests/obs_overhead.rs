//! Overhead guard for the observability layer.
//!
//! Three independent guarantees, each of which ISSUE'd the obs design:
//!
//! 1. **<1% wall time when disabled.** The disabled path of every hook is
//!    a single relaxed atomic load. Rather than diffing two noisy epoch
//!    timings (flaky under CI jitter), the test measures the *per-event*
//!    cost of the disabled hooks over millions of calls, multiplies by
//!    the number of hook events one epoch actually fires (taken from an
//!    enabled run's own snapshot), and requires that derived total to be
//!    under 1% of the measured epoch wall time. The margin in practice is
//!    several orders of magnitude, so the 1% threshold is generous and
//!    the test is non-flaky by construction.
//! 2. **Zero extra graph nodes.** Spans and counters must never touch the
//!    autograd graph: `GraphAudit` stats of the same loss are identical
//!    with tracing on and off.
//! 3. **Bitwise-identical outputs.** Tracing must be purely passive:
//!    `predict` with tracing on equals `predict` with tracing off bit for
//!    bit.
//!
//! This file is its own test binary (own process) because the obs gate
//! and counters are process-global.

use std::rc::Rc;
use std::time::Instant;

use timekd::{Forecaster, TimeKd, TimeKdConfig};
use timekd_data::{DatasetKind, ForecastWindow, Split, SplitDataset};
use timekd_lm::{pretrain_lm, FrozenLm, LmConfig, LmSize, PretrainConfig, PromptTokenizer};
use timekd_nn::smooth_l1_loss;
use timekd_obs::SpanNode;
use timekd_tensor::{parallel::with_threads, GraphAudit};

#[allow(clippy::field_reassign_with_default)]
fn tiny_config() -> TimeKdConfig {
    let mut cfg = TimeKdConfig::default();
    cfg.dim = 16;
    cfg.ffn_hidden = 32;
    cfg.num_heads = 2;
    cfg.lm = LmConfig::for_size(LmSize::Small);
    cfg.prompt.max_history = 4;
    cfg.prompt.max_future = 4;
    cfg
}

fn tiny_model() -> (TimeKd, SplitDataset) {
    let ds = SplitDataset::new(DatasetKind::EttH1, 600, 7, 24, 8);
    let tokenizer = Rc::new(PromptTokenizer::new());
    let cfg = tiny_config();
    let (lm, _) = pretrain_lm(
        &tokenizer,
        cfg.lm,
        PretrainConfig {
            steps: 3,
            ..Default::default()
        },
    );
    let model = TimeKd::with_frozen_lm(
        Rc::new(FrozenLm::new(lm)),
        tokenizer,
        cfg,
        24,
        8,
        ds.num_vars(),
    );
    (model, ds)
}

fn run_epoch(model: &mut TimeKd, windows: &[ForecastWindow]) {
    with_threads(1, || {
        let _ = model.train_teacher_epoch(windows);
        let _ = model.train_student_epoch(windows);
    });
}

fn span_events(nodes: &[SpanNode]) -> u64 {
    nodes
        .iter()
        .map(|n| n.count + span_events(&n.children))
        .sum()
}

#[test]
fn disabled_tracing_costs_under_one_percent_of_epoch_time() {
    timekd_obs::set_enabled(false);
    timekd_obs::reset();

    // Per-event cost of the disabled hooks, amortized over enough calls
    // that timer resolution is irrelevant. `span` returns a #[must_use]
    // guard whose Drop also takes the disabled branch, so one iteration
    // covers both edges of a real span.
    const PROBES: u64 = 2_000_000;
    let t0 = Instant::now();
    for _ in 0..PROBES {
        let _g = timekd_obs::span("overhead.probe");
        timekd_obs::count_op("overhead.probe_op");
        timekd_obs::POOL_JOBS.add(1);
    }
    let per_event_ns = t0.elapsed().as_nanos() as f64 / (PROBES * 3) as f64;

    // Time one real (tracing-off) teacher+student epoch...
    let (mut model, ds) = tiny_model();
    let train: Vec<_> = ds.windows(Split::Train, 16);
    let windows = &train[..2];
    let t1 = Instant::now();
    run_epoch(&mut model, windows);
    let epoch_ns = t1.elapsed().as_nanos() as f64;

    // ...then count how many hook events that same workload fires, from
    // an enabled run's own snapshot: spans fire twice (enter + exit), ops
    // and counter increments once each.
    timekd_obs::set_enabled(true);
    timekd_obs::reset();
    run_epoch(&mut model, windows);
    let snap = timekd_obs::snapshot();
    timekd_obs::set_enabled(false);
    timekd_obs::reset();

    let counter_events: u64 = snap.counters.iter().map(|c| c.value).sum();
    let events = 2 * span_events(&snap.spans) + snap.total_ops() + counter_events;
    assert!(
        events > 1_000,
        "epoch fired suspiciously few hook events ({events})"
    );

    let disabled_cost_ns = per_event_ns * events as f64;
    let ratio = disabled_cost_ns / epoch_ns;
    assert!(
        ratio < 0.01,
        "disabled-path hooks cost {disabled_cost_ns:.0}ns over {events} events \
         ({per_event_ns:.2}ns/event) = {:.4}% of the {:.0}ms epoch — over the 1% budget",
        ratio * 100.0,
        epoch_ns / 1e6
    );
}

#[test]
fn tracing_adds_zero_graph_nodes_and_leaves_outputs_bitwise_identical() {
    let (model, ds) = tiny_model();
    let windows: Vec<_> = ds.windows(Split::Train, 16);
    let w = &windows[0];
    let probe = ds.windows(Split::Test, 16)[0].x.clone();

    let audit_and_predict = || {
        with_threads(1, || {
            let out = model.student().forward(&w.x);
            let loss = smooth_l1_loss(&out.forecast, &w.y);
            let stats = GraphAudit::run(&loss).stats;
            (stats, model.predict(&probe).to_vec())
        })
    };

    timekd_obs::set_enabled(false);
    timekd_obs::reset();
    let (stats_off, pred_off) = audit_and_predict();

    timekd_obs::set_enabled(true);
    timekd_obs::reset();
    let (stats_on, pred_on) = audit_and_predict();
    timekd_obs::set_enabled(false);
    timekd_obs::reset();

    assert_eq!(
        (
            stats_off.nodes,
            stats_off.edges,
            stats_off.leaves,
            stats_off.params
        ),
        (
            stats_on.nodes,
            stats_on.edges,
            stats_on.leaves,
            stats_on.params
        ),
        "tracing changed the autograd graph"
    );
    assert_eq!(
        stats_off.max_depth, stats_on.max_depth,
        "tracing changed graph depth"
    );
    assert!(
        pred_off
            .iter()
            .zip(&pred_on)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "tracing changed predict output bits"
    );
}
