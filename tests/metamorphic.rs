//! Metamorphic test pack: properties that must hold between *pairs* of
//! runs, rather than against fixed expected values.
//!
//! - RevIN shift/scale invariance: the student normalizes per-channel
//!   statistics away on entry and restores them on exit, so an affine
//!   change of the input must produce the same affine change of the
//!   forecast (§IV-C, Eq. 17/28).
//! - Permutation equivariance: the inverted channel embedding treats each
//!   variable as one token with shared weights, and the encoder has no
//!   positional encoding, so permuting input channels must permute the
//!   embedding rows, the attention map, and the forecast columns.
//! - Row-stochasticity: the fused attention kernel's exported map is a
//!   head-average of per-row softmaxes, so every row must sum to one.
//!
//! All loops are seeded (`seeded_rng`), no external property-test crates.

use timekd::{Student, TimeKdConfig};
use timekd_nn::{causal_mask, Module, MultiHeadAttention};
use timekd_tensor::{no_grad, seeded_rng, SeededRng, Tensor};

#[allow(clippy::field_reassign_with_default)]
fn student(seed: u64, input_len: usize, horizon: usize, num_vars: usize) -> Student {
    let mut cfg = TimeKdConfig::default();
    cfg.dim = 16;
    cfg.ffn_hidden = 32;
    cfg.num_heads = 2;
    let mut rng = seeded_rng(seed);
    Student::new(&cfg, input_len, horizon, num_vars, &mut rng)
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[test]
fn revin_makes_student_shift_and_scale_invariant() {
    // predict(a·x + b) ≈ a·predict(x) + b for a > 0: RevIN removes the
    // input's per-channel mean/std before the network sees it and
    // reapplies them to the forecast, so the network body observes the
    // identical normalized sequence in both runs (up to the eps in the
    // std estimate).
    let (h, m, n) = (24, 8, 5);
    let s = student(7, h, m, n);
    let mut rng = seeded_rng(11);
    for case in 0..6 {
        let x = Tensor::randn([h, n], 1.0, &mut rng);
        let a = rng.gen_range(0.5f32..3.0);
        let b = rng.gen_range(-5.0f32..5.0);
        let base = s.predict(&x).to_vec();
        let shifted_in = x.mul_scalar(a).add_scalar(b);
        let shifted_out = s.predict(&shifted_in).to_vec();
        let expected: Vec<f32> = base.iter().map(|v| a * v + b).collect();
        let err = max_abs_diff(&shifted_out, &expected);
        // Scale of the outputs is O(a·|pred| + b) ≲ 15 here; 1e-2 leaves
        // room for the eps-perturbed std while catching any real leak of
        // un-normalized scale into the network.
        assert!(
            err < 1e-2,
            "case {case}: a={a} b={b}: max deviation {err} from affine equivariance"
        );
    }
}

/// Applies `perm` to the columns (variables) of a `[T, N]` matrix.
fn permute_cols(x: &Tensor, perm: &[usize]) -> Tensor {
    let dims = x.dims().to_vec();
    let (t, n) = (dims[0], dims[1]);
    assert_eq!(perm.len(), n);
    let src = x.to_vec();
    let mut out = vec![0.0f32; t * n];
    for r in 0..t {
        for (j, &p) in perm.iter().enumerate() {
            out[r * n + j] = src[r * n + p];
        }
    }
    Tensor::from_vec(out, [t, n])
}

/// Applies `perm` to the rows of a `[N, D]` matrix.
fn permute_rows(x: &Tensor, perm: &[usize]) -> Tensor {
    let dims = x.dims().to_vec();
    let (n, d) = (dims[0], dims[1]);
    let src = x.to_vec();
    let mut out = vec![0.0f32; n * d];
    for (i, &p) in perm.iter().enumerate() {
        out[i * d..(i + 1) * d].copy_from_slice(&src[p * d..(p + 1) * d]);
    }
    Tensor::from_vec(out, [n, d])
}

/// Applies `perm` to both rows and columns of a `[N, N]` matrix.
fn permute_square(x: &Tensor, perm: &[usize]) -> Tensor {
    permute_cols(&permute_rows(x, perm), perm)
}

fn shuffled_perm(n: usize, rng: &mut SeededRng) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0.0f32..(i + 1) as f32) as usize;
        perm.swap(i, j.min(i));
    }
    perm
}

#[test]
fn inverted_channel_embedding_is_permutation_equivariant() {
    // Permuting the input variables must permute the student's per-variable
    // embedding rows, its [N, N] attention map, and its forecast columns —
    // nothing in the inverted-embedding pipeline may depend on channel
    // order. Tolerance is loose-ish (1e-3) because softmax/mean reductions
    // inside attention run in a different summation order after the
    // permutation.
    let (h, m, n) = (24, 8, 6);
    let s = student(13, h, m, n);
    let mut rng = seeded_rng(17);
    for case in 0..6 {
        let x = Tensor::randn([h, n], 1.0, &mut rng);
        let perm = shuffled_perm(n, &mut rng);
        let (base_emb, base_attn, base_fcst) = no_grad(|| {
            let o = s.forward(&x);
            (o.embedding, o.attention, o.forecast)
        });
        let (perm_emb, perm_attn, perm_fcst) = no_grad(|| {
            let o = s.forward(&permute_cols(&x, &perm));
            (o.embedding, o.attention, o.forecast)
        });
        let e_err = max_abs_diff(&perm_emb.to_vec(), &permute_rows(&base_emb, &perm).to_vec());
        let a_err = max_abs_diff(
            &perm_attn.to_vec(),
            &permute_square(&base_attn, &perm).to_vec(),
        );
        let f_err = max_abs_diff(
            &perm_fcst.to_vec(),
            &permute_cols(&base_fcst, &perm).to_vec(),
        );
        assert!(
            e_err < 1e-3 && a_err < 1e-3 && f_err < 1e-3,
            "case {case} perm {perm:?}: emb {e_err}, attn {a_err}, fcst {f_err}"
        );
    }
}

#[test]
fn fused_attention_map_rows_are_stochastic() {
    // The exported head-averaged attention map is an average of per-row
    // softmax distributions, so every row must sum to 1 — for self- and
    // cross-attention, with and without a causal mask.
    let mut rng = seeded_rng(23);
    for case in 0..8 {
        let dim = 16;
        let heads = if case % 2 == 0 { 2 } else { 4 };
        let tq = 3 + case % 5;
        let tk = if case % 3 == 0 { tq } else { 4 + case % 4 };
        let causal = case % 3 == 0 && tq == tk;
        let mha = MultiHeadAttention::new(dim, heads, &mut rng);
        let q_in = Tensor::randn([tq, dim], 1.0, &mut rng);
        let kv_in = Tensor::randn([tk, dim], 1.0, &mut rng);
        let mask = causal.then(|| causal_mask(tq));
        let map = no_grad(|| mha.attend(&q_in, &kv_in, mask.as_ref()).attention);
        assert_eq!(map.dims(), &[tq, tk]);
        let data = map.to_vec();
        for r in 0..tq {
            let row = &data[r * tk..(r + 1) * tk];
            let sum: f32 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-4,
                "case {case} row {r}: sums to {sum}, not 1"
            );
            assert!(
                row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)),
                "case {case} row {r}: entries outside [0, 1]: {row:?}"
            );
            if causal {
                for (c, &p) in row.iter().enumerate().skip(r + 1) {
                    assert!(
                        p < 1e-6,
                        "case {case}: causal mask leaked attention to future position {c}: {p}"
                    );
                }
            }
        }
        let _ = mha.params(); // keep Module import exercised
    }
}
