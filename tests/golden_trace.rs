//! Golden-trace regression suite.
//!
//! Replays one deterministic teacher+student training epoch plus one
//! student predict with `timekd-obs` recording on, reduces the trace to
//! its *structure* (the span tree with call counts, and per-op dispatch
//! totals — timings excluded), and diffs it exactly against the committed
//! fixture `tests/fixtures/golden_trace.json`.
//!
//! Any silent change to the pipeline's op sequence — an extra forward, a
//! dropped distillation term, a new op in a layer — changes the counts
//! and fails this test. Deliberate pipeline changes must regenerate the
//! fixture:
//!
//! ```text
//! TIMEKD_UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! This file is its own test binary (and so its own process): the obs
//! gate is global, and nothing else may record while the golden run is
//! traced. The run itself is forced onto the serial path
//! (`with_threads(1)`) so pool scheduling cannot shift counter values;
//! global pool/cache counters are still excluded from the fixture because
//! the span/op structure is what the suite guards.

use std::rc::Rc;

use timekd::{Forecaster, TimeKd, TimeKdConfig};
use timekd_bench::Json;
use timekd_data::{DatasetKind, Split, SplitDataset};
use timekd_lm::{pretrain_lm, FrozenLm, LmConfig, LmSize, PretrainConfig, PromptTokenizer};
use timekd_obs::SpanNode;
use timekd_tensor::parallel::with_threads;

const FIXTURE_SCHEMA: &str = "timekd-golden-trace/v1";

#[allow(clippy::field_reassign_with_default)]
fn tiny_config() -> TimeKdConfig {
    let mut cfg = TimeKdConfig::default();
    cfg.dim = 16;
    cfg.ffn_hidden = 32;
    cfg.num_heads = 2;
    cfg.lm = LmConfig::for_size(LmSize::Small);
    cfg.prompt.max_history = 4;
    cfg.prompt.max_future = 4;
    cfg
}

fn tiny_model() -> (TimeKd, SplitDataset) {
    let ds = SplitDataset::new(DatasetKind::EttH1, 600, 7, 24, 8);
    let tokenizer = Rc::new(PromptTokenizer::new());
    let cfg = tiny_config();
    let (lm, _) = pretrain_lm(
        &tokenizer,
        cfg.lm,
        PretrainConfig {
            steps: 3,
            ..Default::default()
        },
    );
    let model = TimeKd::with_frozen_lm(
        Rc::new(FrozenLm::new(lm)),
        tokenizer,
        cfg,
        24,
        8,
        ds.num_vars(),
    );
    (model, ds)
}

fn span_fixture(node: &SpanNode) -> Json {
    Json::obj(vec![
        ("name", Json::str(node.name.clone())),
        ("count", Json::num(node.count as f64)),
        (
            "children",
            Json::Arr(node.children.iter().map(span_fixture).collect()),
        ),
    ])
}

/// Runs the deterministic golden workload and reduces the recorded trace
/// to its structural fixture form.
fn golden_run() -> Json {
    let (mut model, ds) = tiny_model();
    let train: Vec<_> = ds.windows(Split::Train, 16);
    let windows = &train[..2];
    let probe = ds.windows(Split::Test, 16)[0].x.clone();

    // Everything up to here (LM pretraining, model init) is construction
    // noise; the fixture captures exactly one teacher epoch, one student
    // epoch and one predict.
    timekd_obs::set_enabled(true);
    timekd_obs::reset();
    with_threads(1, || {
        let _ = model.train_teacher_epoch(windows);
        let _ = model.train_student_epoch(windows);
        let _ = model.predict(&probe);
    });
    let snap = timekd_obs::snapshot();
    timekd_obs::set_enabled(false);
    timekd_obs::reset();

    Json::obj(vec![
        ("schema", Json::str(FIXTURE_SCHEMA)),
        (
            "spans",
            Json::Arr(snap.spans.iter().map(span_fixture).collect()),
        ),
        (
            "ops",
            Json::Arr(
                snap.ops
                    .iter()
                    .map(|o| {
                        Json::obj(vec![
                            ("name", Json::str(o.name.clone())),
                            ("count", Json::num(o.count as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden_trace.json")
}

#[test]
fn golden_trace_matches_fixture() {
    let got = golden_run();
    let path = fixture_path();

    if std::env::var("TIMEKD_UPDATE_GOLDEN").is_ok_and(|v| v != "0") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, got.render()).expect("write fixture");
        println!("golden trace fixture regenerated at {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with TIMEKD_UPDATE_GOLDEN=1 cargo test --test golden_trace",
            path.display()
        )
    });
    let want = Json::parse(&text).expect("fixture parses");
    assert_eq!(
        want.get("schema").and_then(Json::as_str),
        Some(FIXTURE_SCHEMA),
        "fixture has wrong schema"
    );
    assert!(
        got == want,
        "recorded trace structure diverged from the golden fixture.\n\
         If the pipeline change is intentional, regenerate with:\n\
         TIMEKD_UPDATE_GOLDEN=1 cargo test --test golden_trace\n\
         \n--- expected (fixture) ---\n{}\n--- got (this run) ---\n{}",
        want.render(),
        got.render()
    );
}

#[test]
fn golden_run_covers_pipeline_and_is_repeatable() {
    // The structural trace is a pure function of the (seeded) pipeline:
    // two fresh model builds must produce identical fixtures, and the
    // trace must satisfy the bench-side coverage validator (modulo the
    // counters this fixture deliberately omits).
    let a = golden_run();
    let b = golden_run();
    assert!(
        a == b,
        "golden run is nondeterministic:\n--- first ---\n{}\n--- second ---\n{}",
        a.render(),
        b.render()
    );
    for name in timekd_bench::trace::REQUIRED_PIPELINE_SPANS {
        fn present(spans: &[Json], name: &str) -> bool {
            spans.iter().any(|s| {
                s.get("name").and_then(Json::as_str) == Some(name)
                    || s.get("children")
                        .and_then(Json::as_arr)
                        .is_some_and(|c| present(c, name))
            })
        }
        assert!(
            present(a.get("spans").and_then(Json::as_arr).unwrap_or(&[]), name),
            "golden trace is missing required pipeline span `{name}`"
        );
    }
}
