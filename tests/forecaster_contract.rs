//! Contract tests: every model in the zoo — TimeKD and all baselines —
//! honours the `Forecaster` interface on multiple dataset geometries.

use timekd_bench::{build_model, ModelKind, Profile, SharedLm};
use timekd_data::{DatasetKind, Split, SplitDataset};
use timekd_lm::LmSize;
use timekd_tensor::Tensor;

fn tiny_profile() -> Profile {
    Profile {
        base_steps: 500,
        epochs: 1,
        max_train_windows: 4,
        max_eval_windows: 4,
        input_len: 32,
        long_horizons: &[8],
        quick: true,
    }
}

fn all_kinds() -> Vec<ModelKind> {
    let mut v = ModelKind::paper_models().to_vec();
    v.push(ModelKind::Dlinear);
    v
}

#[test]
fn every_model_produces_correct_shapes() {
    let profile = tiny_profile();
    let shared = SharedLm::pretrain_with_steps(LmSize::Small, 5);
    for (dataset, horizon) in [(DatasetKind::EttH1, 8), (DatasetKind::Exchange, 16)] {
        let ds = SplitDataset::new(dataset, 600, 1, 32, horizon);
        for kind in all_kinds() {
            let model = build_model(
                kind,
                &shared,
                &profile,
                32,
                horizon,
                ds.num_vars(),
                ds.kind().freq_minutes(),
            );
            let w = &ds.windows(Split::Test, 16)[0];
            let pred = model.predict(&w.x);
            assert_eq!(
                pred.dims(),
                &[horizon, ds.num_vars()],
                "{kind:?} on {dataset:?}"
            );
            assert!(pred.to_vec().iter().all(|v| v.is_finite()), "{kind:?}");
        }
    }
}

#[test]
fn predict_is_pure_no_graph_no_state_change() {
    let profile = tiny_profile();
    let shared = SharedLm::pretrain_with_steps(LmSize::Small, 5);
    let ds = SplitDataset::new(DatasetKind::EttH2, 600, 2, 32, 8);
    let w = &ds.windows(Split::Test, 16)[0];
    for kind in all_kinds() {
        let model = build_model(kind, &shared, &profile, 32, 8, ds.num_vars(), 60);
        let a = model.predict(&w.x);
        let b = model.predict(&w.x);
        assert!(!a.requires_grad(), "{kind:?} predict built a graph");
        assert_eq!(a.to_vec(), b.to_vec(), "{kind:?} predict not idempotent");
    }
}

#[test]
fn train_epoch_returns_finite_loss_and_changes_params() {
    let profile = tiny_profile();
    let shared = SharedLm::pretrain_with_steps(LmSize::Small, 5);
    let ds = SplitDataset::new(DatasetKind::Pems08, 600, 3, 32, 8);
    let windows = ds.windows(Split::Train, 32);
    let subset = &windows[..2.min(windows.len())];
    for kind in all_kinds() {
        let mut model = build_model(kind, &shared, &profile, 32, 8, ds.num_vars(), 5);
        let w = &ds.windows(Split::Test, 32)[0];
        let before = model.predict(&w.x).to_vec();
        let loss = model.train_epoch(subset);
        assert!(loss.is_finite() && loss > 0.0, "{kind:?} loss {loss}");
        let after = model.predict(&w.x).to_vec();
        assert_ne!(before, after, "{kind:?} did not learn anything");
    }
}

#[test]
fn evaluate_agrees_with_manual_accumulation() {
    let profile = tiny_profile();
    let shared = SharedLm::pretrain_with_steps(LmSize::Small, 5);
    let ds = SplitDataset::new(DatasetKind::EttM1, 600, 4, 32, 8);
    let model = build_model(
        ModelKind::ITransformer,
        &shared,
        &profile,
        32,
        8,
        ds.num_vars(),
        15,
    );
    let windows = ds.windows(Split::Test, 16);
    let (mse, mae) = model.evaluate(&windows);
    let mut acc = timekd_data::MetricAccumulator::new();
    for w in &windows {
        acc.update(&model.predict(&w.x), &w.y);
    }
    assert!((mse - acc.mse()).abs() < 1e-6);
    assert!((mae - acc.mae()).abs() < 1e-6);
}

#[test]
fn param_counts_are_stable_across_calls() {
    let profile = tiny_profile();
    let shared = SharedLm::pretrain_with_steps(LmSize::Small, 5);
    for kind in all_kinds() {
        let model = build_model(kind, &shared, &profile, 32, 8, 7, 60);
        assert_eq!(
            model.num_trainable_params(),
            model.num_trainable_params(),
            "{kind:?}"
        );
        assert!(model.num_trainable_params() > 0, "{kind:?}");
    }
}

#[test]
fn llm_models_share_one_frozen_backbone() {
    // Building several LLM-based models must not duplicate the LM: the
    // cache of the shared FrozenLm is visible across models.
    let profile = tiny_profile();
    let shared = SharedLm::pretrain_with_steps(LmSize::Small, 5);
    let ds = SplitDataset::new(DatasetKind::EttH1, 600, 5, 32, 8);
    let w = &ds.windows(Split::Test, 16)[0];
    let kd = build_model(
        ModelKind::TimeKd,
        &shared,
        &profile,
        32,
        8,
        ds.num_vars(),
        60,
    );
    let cma = build_model(
        ModelKind::TimeCma,
        &shared,
        &profile,
        32,
        8,
        ds.num_vars(),
        60,
    );
    let _ = cma.predict(&w.x);
    let misses_after_cma = shared.frozen.cache_stats().1;
    assert!(misses_after_cma > 0, "TimeCMA must hit the shared LM");
    let _ = kd.predict(&w.x); // TimeKD inference must NOT touch the LM
    assert_eq!(
        shared.frozen.cache_stats().1,
        misses_after_cma,
        "TimeKD student inference went through the LM"
    );
    let _ = Tensor::zeros([1]);
}
