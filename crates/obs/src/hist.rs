//! Fixed-bucket latency histograms for the serving layer.
//!
//! A [`Histogram`] is a bank of 32 lock-free buckets with log-spaced
//! (power-of-two) boundaries: bucket 0 covers `0..=1024` ns and each
//! following bucket doubles the upper bound, so the bank spans ~1 µs to
//! ~35 min with a guaranteed factor-2 relative error on any quantile
//! estimate. Recording is one gated relaxed load plus two relaxed atomic
//! adds — cheap enough for per-request paths and safe from any thread.
//!
//! Like the global counters, histograms are process-global statics that
//! snapshot into plain-data [`HistogramSnapshot`]s and zero on
//! [`crate::reset`].

use std::sync::atomic::{AtomicU64, Ordering};

use crate::enabled;

/// Number of buckets in every histogram.
pub const HIST_BUCKETS: usize = 32;

/// Smallest upper bound (ns): bucket 0 is `0..=FIRST_BOUND`.
const FIRST_BOUND: u64 = 1024;

/// Upper bound of bucket `i` (the last bucket is open-ended; its nominal
/// bound is only used for quantile interpolation).
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    FIRST_BOUND << i.min(HIST_BUCKETS - 1)
}

/// The bucket index covering value `v`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v <= FIRST_BOUND {
        0
    } else {
        // Position of the highest set bit of v-1, shifted so that
        // 1025..=2048 lands in bucket 1.
        ((64 - (v - 1).leading_zeros()) as usize - 10).min(HIST_BUCKETS - 1)
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_U64: AtomicU64 = AtomicU64::new(0);

/// A named, global, lock-free log-bucket histogram.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    counts: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    pub(crate) const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            counts: [ZERO_U64; HIST_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// The histogram's stable name as it appears in snapshots and `/metrics`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one observation if recording is enabled; otherwise a single
    /// relaxed load + branch (the same disabled-path contract as
    /// [`crate::Counter::add`]).
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Copies the current state into a plain-data snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; HIST_BUCKETS];
        for (out, c) in counts.iter_mut().zip(self.counts.iter()) {
            *out = c.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            name: self.name.to_string(),
            counts,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Latency of `/forecast` requests, accept to last response byte queued.
pub static SERVE_FORECAST_LATENCY: Histogram = Histogram::new("serve.forecast.latency_ns");
/// Latency of `/observe` requests.
pub static SERVE_OBSERVE_LATENCY: Histogram = Histogram::new("serve.observe.latency_ns");
/// Latency of `/metrics` and `/healthz` requests.
pub static SERVE_METRICS_LATENCY: Histogram = Histogram::new("serve.metrics.latency_ns");
/// Latency of `/admin/*` requests (model activation).
pub static SERVE_ADMIN_LATENCY: Histogram = Histogram::new("serve.admin.latency_ns");
/// Requests fused into each executed micro-batch (occupancy, not ns).
pub static SERVE_BATCH_OCCUPANCY: Histogram = Histogram::new("serve.batch.occupancy");

pub(crate) fn all_histograms() -> [&'static Histogram; 5] {
    [
        &SERVE_FORECAST_LATENCY,
        &SERVE_OBSERVE_LATENCY,
        &SERVE_METRICS_LATENCY,
        &SERVE_ADMIN_LATENCY,
        &SERVE_BATCH_OCCUPANCY,
    ]
}

/// A point-in-time copy of one histogram: plain data, mergeable, and the
/// source of the quantile estimates rendered by `/metrics` and the bench
/// harness.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Histogram name, e.g. `"serve.forecast.latency_ns"`.
    pub name: String,
    /// Observations per bucket (see [`bucket_bound`] for the boundaries).
    pub counts: [u64; HIST_BUCKETS],
    /// Sum of all recorded values (exact, not bucketed).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot with the given name (the merge identity).
    pub fn empty(name: impl Into<String>) -> Self {
        HistogramSnapshot {
            name: name.into(),
            counts: [0; HIST_BUCKETS],
            sum: 0,
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Exact mean of the recorded values (`sum / count`), 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Element-wise merge with another snapshot (bucket counts and sums
    /// add), keeping `self`'s name. Merging is associative and commutative
    /// on the data, with [`HistogramSnapshot::empty`] as identity.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut counts = self.counts;
        for (c, o) in counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        HistogramSnapshot {
            name: self.name.clone(),
            counts,
            sum: self.sum + other.sum,
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the bucket holding the target rank. The estimate is bounded
    /// by the bucket's `[lower, upper]` range, so it is within a factor of
    /// 2 of the true value (exact for values ≤ 1024 up to bucket width).
    /// Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * n as f64).max(1.0);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c;
            if (next as f64) >= target {
                let lower = if i == 0 { 0 } else { bucket_bound(i - 1) };
                let upper = bucket_bound(i);
                let into = (target - seen as f64) / c as f64;
                return lower as f64 + into * (upper - lower) as f64;
            }
            seen = next;
        }
        bucket_bound(HIST_BUCKETS - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_at_the_edges() {
        // Bucket 0 is 0..=1024; every later bucket is (bound/2, bound].
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(1024), 0);
        assert_eq!(bucket_of(1025), 1);
        assert_eq!(bucket_of(2048), 1);
        assert_eq!(bucket_of(2049), 2);
        assert_eq!(bucket_of(4096), 2);
        for i in 1..HIST_BUCKETS - 1 {
            let bound = bucket_bound(i);
            assert_eq!(bucket_of(bound), i, "upper edge of bucket {i}");
            assert_eq!(
                bucket_of(bound + 1),
                i + 1,
                "lower edge of bucket {}",
                i + 1
            );
        }
        // Everything past the last boundary saturates into the open bucket.
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_of(bucket_bound(HIST_BUCKETS - 1)), HIST_BUCKETS - 1);
    }

    fn snap_of(values: &[u64]) -> HistogramSnapshot {
        let mut s = HistogramSnapshot::empty("test");
        for &v in values {
            s.counts[bucket_of(v)] += 1;
            s.sum += v;
        }
        s
    }

    #[test]
    fn merge_is_associative_and_has_identity() {
        let a = snap_of(&[10, 2_000, 5_000]);
        let b = snap_of(&[1_500, 1_500, 9_000_000]);
        let c = snap_of(&[u64::MAX / 2, 7]);
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_eq!(left.counts, right.counts);
        assert_eq!(left.sum, right.sum);
        assert_eq!(left.count(), 8);

        let id = HistogramSnapshot::empty("test");
        assert_eq!(a.merge(&id).counts, a.counts);
        assert_eq!(a.merge(&id).sum, a.sum);
        // Commutative on the data (names differ by construction order).
        assert_eq!(a.merge(&b).counts, b.merge(&a).counts);
    }

    #[test]
    fn quantiles_are_within_a_factor_of_two() {
        // 1000 log-spread samples: every quantile estimate must land
        // within the true value's bucket, i.e. within [v/2, 2v].
        let values: Vec<u64> = (0..1000u64).map(|i| 1_000 + i * 997).collect();
        let s = snap_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.95, 0.99] {
            let est = s.quantile(q);
            let rank =
                ((q * sorted.len() as f64).max(1.0).ceil() as usize - 1).min(sorted.len() - 1);
            let truth = sorted[rank] as f64;
            assert!(
                est >= truth / 2.0 && est <= truth * 2.0,
                "q={q}: estimate {est} vs true {truth}"
            );
        }
        // Degenerate cases: empty histogram and single sample.
        assert_eq!(HistogramSnapshot::empty("e").quantile(0.5), 0.0);
        let one = snap_of(&[3_000]);
        let est = one.quantile(0.99);
        assert!((2048.0..=4096.0).contains(&est), "single sample: {est}");
    }

    #[test]
    fn quantile_interpolates_within_one_bucket() {
        // All mass in bucket 1 (1025..=2048): p0+ pins near the lower
        // bound, p100 reaches the upper bound, p50 sits in between.
        let s = snap_of(&[1_500; 100]);
        assert!((s.quantile(0.0) - 1024.0).abs() <= 1024.0 / 100.0 + 1.0);
        assert_eq!(s.quantile(1.0), 2048.0);
        let mid = s.quantile(0.5);
        assert!(mid > 1024.0 && mid < 2048.0, "{mid}");
        assert_eq!(s.mean(), 1_500.0);
    }

    #[test]
    fn record_respects_the_global_gate() {
        let _g = crate::test_lock();
        static LOCAL: Histogram = Histogram::new("test.local");
        crate::set_enabled(false);
        LOCAL.record(500);
        assert_eq!(LOCAL.snapshot().count(), 0, "disabled record must drop");
        crate::set_enabled(true);
        LOCAL.record(500);
        LOCAL.record(3_000);
        crate::set_enabled(false);
        let s = LOCAL.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.sum, 3_500);
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.counts[bucket_of(3_000)], 1);
        LOCAL.reset();
        assert_eq!(LOCAL.snapshot().count(), 0);
    }
}
