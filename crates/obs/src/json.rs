//! Minimal dependency-free JSON: an emitter plus a small recursive-descent
//! parser. Shared by the bench harness (`BENCH_*.json` perf baselines and
//! their `--validate` checks), the trace reports, and the serving layer's
//! `/metrics` endpoint — all of which need stable, diffable output without
//! pulling in an external crate.
//!
//! This is deliberately not a general JSON library: it supports exactly
//! the subset those files use (objects, arrays, strings without exotic
//! escapes, finite numbers, booleans, null) and keeps object keys in
//! insertion order so emitted files are stable and diffable.

use std::fmt;

/// Maximum nesting depth accepted by the parser. The parser is
/// recursive-descent, and `/metrics`-adjacent callers feed it untrusted
/// HTTP bodies — without a cap, a few hundred KiB of `[` overflows the
/// handler thread's stack and aborts the process.
const MAX_PARSE_DEPTH: usize = 128;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (the emitter rejects NaN/infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: a finite number. Panics on NaN/infinite input — a
    /// perf baseline with unrepresentable numbers is a bug upstream.
    pub fn num(v: f64) -> Json {
        assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
        Json::Num(v)
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a `.`-separated path of object keys.
    pub fn get_path(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for key in path.split('.') {
            cur = cur.get(key)?;
        }
        Some(cur)
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                // Integers print without a fractional part; everything else
                // with enough digits to round-trip comparisons in tests.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad_in);
                    out.push_str(&format!("\"{k}\": "));
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses JSON text. Errors carry a byte offset and message.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {}, found {:?}",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_PARSE_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_PARSE_DEPTH} levels at byte {}",
            *pos
        ));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {}",
            other.map(|&c| c as char),
            *pos
        )),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => {
                        return Err(format!("bad escape {:?} at byte {}", other, *pos));
                    }
                }
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8 passes through unchanged.
                let s = &bytes[*pos..];
                let ch_len = match s[0] {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = std::str::from_utf8(&s[..ch_len.min(s.len())])
                    .map_err(|e| format!("bad UTF-8 at byte {}: {e}", *pos))?;
                out.push_str(chunk);
                *pos += chunk.len();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => {
                return Err(format!(
                    "expected `,` or `]` at byte {}, found {:?}",
                    *pos,
                    other.map(|&c| c as char)
                ));
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            other => {
                return Err(format!(
                    "expected `,` or `}}` at byte {}, found {:?}",
                    *pos,
                    other.map(|&c| c as char)
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_shape() {
        let doc = Json::obj(vec![
            ("schema", Json::str("timekd-kernel-bench/v7")),
            ("created_unix_s", Json::num(1_722_000_000.0)),
            ("quick", Json::Bool(true)),
            (
                "kernels",
                Json::Arr(vec![Json::obj(vec![
                    ("name", Json::str("mm_256x256x256")),
                    ("serial_ms", Json::num(12.5)),
                    ("speedup_parallel", Json::num(3.02)),
                ])]),
            ),
        ]);
        let text = doc.render();
        let parsed = Json::parse(&text).expect("parse");
        assert_eq!(parsed, doc);
        assert_eq!(
            parsed
                .get_path("kernels")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(
            parsed.get_path("schema").and_then(Json::as_str),
            Some("timekd-kernel-bench/v7")
        );
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::num(4.0).render(), "4\n");
        assert_eq!(Json::num(0.25).render(), "0.25\n");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // 100k nested arrays fits well under the 1 MiB serve body cap but
        // would blow the stack without the depth limit.
        let deep = "[".repeat(100_000);
        let err = Json::parse(&deep).expect_err("must be rejected");
        assert!(err.contains("nesting deeper"), "got {err}");

        // Object nesting is bounded by the same cap.
        let nested_obj = "{\"k\":".repeat(1_000) + "1" + &"}".repeat(1_000);
        let err = Json::parse(&nested_obj).expect_err("must be rejected");
        assert!(err.contains("nesting deeper"), "got {err}");

        // Depth at or below the cap still parses.
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let doc = Json::str("line\nquote\" back\\slash\ttab");
        let parsed = Json::parse(&doc.render()).expect("parse");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        // The serving layer relies on f32 → JSON → f32 round-trips being
        // exact: Rust's shortest-repr float printing plus an f64 parse
        // recovers the original f32 bit pattern.
        for bits in [0x3f80_0001u32, 0xbf7f_fffe, 0x0000_0001, 0x7f7f_ffff] {
            let v = f32::from_bits(bits);
            let doc = Json::num(v as f64);
            let parsed = Json::parse(&doc.render()).expect("parse");
            let back = parsed.as_num().expect("num") as f32;
            assert_eq!(back.to_bits(), bits, "f32 {v} must survive the trip");
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_is_rejected_at_build_time() {
        let _ = Json::num(f64::NAN);
    }
}
