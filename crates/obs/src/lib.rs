//! Dependency-free observability layer for the TimeKD reproduction.
//!
//! Three kinds of instrumentation, all gated behind a single global switch:
//!
//! * **Spans** ([`span`]) — nestable, monotonic-clock timers that aggregate
//!   into a per-thread trie keyed by span name. Entering the same span name
//!   under the same parent accumulates into one node (count + total time)
//!   instead of growing an unbounded event log, so a full training run stays
//!   O(distinct call paths) in memory.
//! * **Op counters** ([`count_op`]) — per-thread dispatch counts keyed by the
//!   `&'static str` op name that `Tensor::from_op` already records.
//! * **Global counters** ([`Counter`] statics) — lock-free atomics for
//!   cross-thread facts: worker-pool jobs/tasks/serial fallbacks/slot waits,
//!   per-worker busy time, FrozenLm cache hits/misses/collisions, and the
//!   serving layer's request/batch/swap totals.
//! * **Histograms** ([`Histogram`] statics, in [`hist`]) — lock-free
//!   fixed log-bucket distributions for the serving layer's per-endpoint
//!   latencies and micro-batch occupancy.
//!
//! Recording is enabled by the `TIMEKD_TRACE` environment variable (any value
//! other than `0`, `false`, `off` or empty) or programmatically via
//! [`set_enabled`]. When disabled, every hook is a single relaxed atomic load
//! plus one predictable branch: no clock reads, no thread-local access, no
//! allocation. This is the contract the overhead-guard test enforces.
//!
//! Spans and op counts are thread-local by design: the autograd graph (and so
//! every instrumented phase) runs on one thread, while worker threads only
//! touch the atomic counters. Worker-loop code must never call [`span`] or
//! [`count_op`] — those can allocate — and `timekd-check` lints for this
//! (`no-span-in-worker`).

#![deny(
    unused_must_use,
    unused_imports,
    unused_variables,
    dead_code,
    unreachable_patterns,
    missing_debug_implementations
)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub mod hist;
pub mod json;

pub use hist::{
    bucket_bound, bucket_of, Histogram, HistogramSnapshot, HIST_BUCKETS, SERVE_ADMIN_LATENCY,
    SERVE_BATCH_OCCUPANCY, SERVE_FORECAST_LATENCY, SERVE_METRICS_LATENCY, SERVE_OBSERVE_LATENCY,
};

// ---------------------------------------------------------------------------
// Global enable gate
// ---------------------------------------------------------------------------

const GATE_UNINIT: u8 = 0;
const GATE_OFF: u8 = 1;
const GATE_ON: u8 = 2;

static GATE: AtomicU8 = AtomicU8::new(GATE_UNINIT);

/// Returns whether recording is enabled.
///
/// The first call reads `TIMEKD_TRACE` from the environment; after that (or
/// after [`set_enabled`]) this is a single relaxed atomic load and a branch —
/// cheap enough for per-op hot paths.
#[inline]
pub fn enabled() -> bool {
    match GATE.load(Ordering::Relaxed) {
        GATE_ON => true,
        GATE_OFF => false,
        _ => init_gate_from_env(),
    }
}

#[cold]
fn init_gate_from_env() -> bool {
    let on = match std::env::var("TIMEKD_TRACE") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v.is_empty() || v == "0" || v == "false" || v == "off")
        }
        Err(_) => false,
    };
    GATE.store(if on { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
    on
}

/// Programmatically enables or disables recording, overriding `TIMEKD_TRACE`.
///
/// Affects all threads. Typically paired with [`reset`] so a measured region
/// starts from a clean slate.
pub fn set_enabled(on: bool) {
    GATE.store(if on { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Monotonic clock
// ---------------------------------------------------------------------------

fn clock_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since an arbitrary process-local monotonic epoch.
///
/// This is the only clock the observability layer uses. It also lets
/// instrumented kernel files (e.g. the worker pool) measure busy time without
/// naming `Instant` directly, which the `no-instant-in-kernels` lint forbids.
pub fn now_ns() -> u64 {
    clock_epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Global counters (cross-thread, lock-free)
// ---------------------------------------------------------------------------

/// A named, global, lock-free event counter.
///
/// `add` is gated on [`enabled`] internally, so call sites stay branch-free.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The counter's stable name as it appears in snapshots and reports.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` events if recording is enabled; otherwise a relaxed load + branch.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Jobs submitted to the worker pool (`parallel_for` / `par_row_blocks` parallel path).
pub static POOL_JOBS: Counter = Counter::new("pool.jobs");
/// Individual tasks (block ranges) executed across all pool jobs.
pub static POOL_TASKS: Counter = Counter::new("pool.tasks");
/// Pool entry points that degraded to the serial path (small size, one thread,
/// or a nested parallel region).
pub static POOL_SERIAL_FALLBACK: Counter = Counter::new("pool.serial_fallback");
/// Spin iterations the submitter spent waiting for a free job slot — a proxy
/// for queue depth / contention.
pub static POOL_SLOT_WAITS: Counter = Counter::new("pool.slot_waits");
/// FrozenLm embedding-cache hits (digest + full token-sequence match).
pub static LM_CACHE_HITS: Counter = Counter::new("lm_cache.hits");
/// FrozenLm embedding-cache misses (recomputed through the LM).
pub static LM_CACHE_MISSES: Counter = Counter::new("lm_cache.misses");
/// FrozenLm digest collisions (digest matched but token sequence differed).
pub static LM_CACHE_COLLISIONS: Counter = Counter::new("lm_cache.collisions");
/// Execution-plan compilations (cache misses in the core plan cache).
/// Epoch loops must reuse compiled plans, so this stays flat across epochs
/// of a fixed geometry — the plan-cache tests assert exactly that.
pub static PLAN_COMPILES: Counter = Counter::new("plan.compiles");
/// HTTP requests accepted by the serving layer (all endpoints).
pub static SERVE_REQUESTS: Counter = Counter::new("serve.requests");
/// Serving-layer requests answered with an error status (4xx/5xx).
pub static SERVE_ERRORS: Counter = Counter::new("serve.errors");
/// Micro-batches executed by the serving batcher.
pub static SERVE_BATCHES: Counter = Counter::new("serve.batches");
/// Forecast requests fused into micro-batches (occupancy numerator).
pub static SERVE_BATCHED_REQUESTS: Counter = Counter::new("serve.batched_requests");
/// Successful model hot-swaps (`/admin/activate` accepted).
pub static SERVE_SWAPS: Counter = Counter::new("serve.swaps");
/// Rejected hot-swap attempts (registry fault; old version kept serving).
pub static SERVE_SWAP_REJECTS: Counter = Counter::new("serve.swap_rejects");

fn all_counters() -> [&'static Counter; 14] {
    [
        &POOL_JOBS,
        &POOL_TASKS,
        &POOL_SERIAL_FALLBACK,
        &POOL_SLOT_WAITS,
        &LM_CACHE_HITS,
        &LM_CACHE_MISSES,
        &LM_CACHE_COLLISIONS,
        &PLAN_COMPILES,
        &SERVE_REQUESTS,
        &SERVE_ERRORS,
        &SERVE_BATCHES,
        &SERVE_BATCHED_REQUESTS,
        &SERVE_SWAPS,
        &SERVE_SWAP_REJECTS,
    ]
}

/// Upper bound on tracked pool workers; busy time for workers past this is dropped.
pub const MAX_TRACKED_WORKERS: usize = 128;

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_U64: AtomicU64 = AtomicU64::new(0);
static WORKER_BUSY_NS: [AtomicU64; MAX_TRACKED_WORKERS] = [ZERO_U64; MAX_TRACKED_WORKERS];

/// Records `ns` nanoseconds of busy time for pool worker `worker`.
///
/// The caller is expected to have gated the surrounding clock reads on
/// [`enabled`]; this only performs the atomic add.
#[inline]
pub fn worker_busy_add(worker: usize, ns: u64) {
    if worker < MAX_TRACKED_WORKERS {
        WORKER_BUSY_NS[worker].fetch_add(ns, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Span recorder (thread-local aggregated trie)
// ---------------------------------------------------------------------------

struct TrieNode {
    name: &'static str,
    count: u64,
    total_ns: u64,
    children: Vec<usize>,
}

struct Recorder {
    nodes: Vec<TrieNode>,
    roots: Vec<usize>,
    stack: Vec<usize>,
    /// Bumped by [`reset`]; guards open [`SpanGuard`]s across a reset so a
    /// stale guard can never write into the rebuilt trie.
    generation: u64,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            nodes: Vec::new(),
            roots: Vec::new(),
            stack: Vec::new(),
            generation: 0,
        }
    }

    fn enter(&mut self, name: &'static str) -> usize {
        let parent = self.stack.last().copied();
        let siblings: &[usize] = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        let existing = siblings
            .iter()
            .copied()
            .find(|&i| self.nodes[i].name == name);
        let idx = match existing {
            Some(i) => i,
            None => {
                let i = self.nodes.len();
                self.nodes.push(TrieNode {
                    name,
                    count: 0,
                    total_ns: 0,
                    children: Vec::new(),
                });
                match parent {
                    Some(p) => self.nodes[p].children.push(i),
                    None => self.roots.push(i),
                }
                i
            }
        };
        self.stack.push(idx);
        idx
    }

    fn exit(&mut self, node: usize, elapsed_ns: u64) {
        // Pop back to (and including) our frame. Tolerates out-of-order guard
        // drops rather than corrupting the stack.
        if let Some(pos) = self.stack.iter().rposition(|&i| i == node) {
            self.stack.truncate(pos);
        }
        let n = &mut self.nodes[node];
        n.count += 1;
        n.total_ns += elapsed_ns;
    }
}

thread_local! {
    static RECORDER: RefCell<Recorder> = RefCell::new(Recorder::new());
    static OP_COUNTS: RefCell<BTreeMap<&'static str, u64>> = const { RefCell::new(BTreeMap::new()) };
}

/// RAII handle returned by [`span`]; records count + elapsed time on drop.
///
/// Deliberately `!Send`: spans aggregate into the creating thread's trie.
#[derive(Debug)]
pub struct SpanGuard {
    /// `(node index, recorder generation, start ns)`; `None` when recording
    /// was disabled at creation — drop is then a no-op.
    active: Option<(usize, u64, u64)>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((node, generation, started_ns)) = self.active.take() {
            let elapsed = now_ns().saturating_sub(started_ns);
            RECORDER.with(|r| {
                let mut r = r.borrow_mut();
                if r.generation == generation {
                    r.exit(node, elapsed);
                }
            });
        }
    }
}

/// Opens a named span. Time between this call and the guard's drop is
/// accumulated under the current thread's span path.
///
/// `name` must be a stable `'static` label (e.g. `"teacher.forward"`). When
/// recording is disabled this returns an inert guard after one relaxed load.
#[must_use = "the span ends when the returned guard is dropped"]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            active: None,
            _not_send: PhantomData,
        };
    }
    let (node, generation) = RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        (r.enter(name), r.generation)
    });
    SpanGuard {
        active: Some((node, generation, now_ns())),
        _not_send: PhantomData,
    }
}

/// Counts one dispatch of tensor op `op` on the current thread.
#[inline]
pub fn count_op(op: &'static str) {
    if enabled() {
        OP_COUNTS.with(|c| {
            *c.borrow_mut().entry(op).or_insert(0) += 1;
        });
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// One aggregated span in a [`Snapshot`]: a name, how many times it completed,
/// total wall time, and its child spans.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name as passed to [`span`].
    pub name: String,
    /// Completed invocations at this path.
    pub count: u64,
    /// Total nanoseconds across all invocations.
    pub total_ns: u64,
    /// Child spans, in first-entered order.
    pub children: Vec<SpanNode>,
}

/// One tensor-op dispatch total.
#[derive(Debug, Clone, PartialEq)]
pub struct OpCount {
    /// Op name as recorded by `Tensor::from_op`.
    pub name: String,
    /// Dispatches on the snapshotting thread since the last [`reset`].
    pub count: u64,
}

/// One global counter value.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterValue {
    /// Counter name, e.g. `"pool.jobs"`.
    pub name: String,
    /// Value since the last [`reset`].
    pub value: u64,
}

/// Busy time of one pool worker.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerBusy {
    /// Worker index (spawn order).
    pub worker: usize,
    /// Nanoseconds spent executing tasks since the last [`reset`].
    pub busy_ns: u64,
}

/// A point-in-time copy of everything recorded: the calling thread's span trie
/// and op counts, plus the global counters and worker busy times.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Root spans of the calling thread, in first-entered order.
    pub spans: Vec<SpanNode>,
    /// Op dispatch totals, sorted by op name.
    pub ops: Vec<OpCount>,
    /// All global counters (including zero-valued ones), in registry order.
    pub counters: Vec<CounterValue>,
    /// Workers with nonzero busy time, by index.
    pub workers: Vec<WorkerBusy>,
    /// Histograms with at least one observation, in registry order.
    pub histograms: Vec<HistogramSnapshot>,
}

fn build_span_node(rec: &Recorder, idx: usize) -> SpanNode {
    let n = &rec.nodes[idx];
    SpanNode {
        name: n.name.to_string(),
        count: n.count,
        total_ns: n.total_ns,
        children: n
            .children
            .iter()
            .map(|&c| build_span_node(rec, c))
            .collect(),
    }
}

/// Captures a [`Snapshot`] of the current recording state.
///
/// Open spans are not included until their guards drop.
pub fn snapshot() -> Snapshot {
    let spans = RECORDER.with(|r| {
        let r = r.borrow();
        r.roots.iter().map(|&i| build_span_node(&r, i)).collect()
    });
    let ops = OP_COUNTS.with(|c| {
        c.borrow()
            .iter()
            .map(|(&name, &count)| OpCount {
                name: name.to_string(),
                count,
            })
            .collect()
    });
    let counters = all_counters()
        .iter()
        .map(|c| CounterValue {
            name: c.name().to_string(),
            value: c.get(),
        })
        .collect();
    let workers = WORKER_BUSY_NS
        .iter()
        .enumerate()
        .filter_map(|(i, ns)| {
            let busy_ns = ns.load(Ordering::Relaxed);
            (busy_ns > 0).then_some(WorkerBusy { worker: i, busy_ns })
        })
        .collect();
    let histograms = hist::all_histograms()
        .iter()
        .map(|h| h.snapshot())
        .filter(|s| s.count() > 0)
        .collect();
    Snapshot {
        spans,
        ops,
        counters,
        workers,
        histograms,
    }
}

/// Clears the calling thread's span trie and op counts, and zeroes all global
/// counters and worker busy times. Spans still open when this runs are
/// invalidated (their guards become no-ops) rather than corrupting the trie.
pub fn reset() {
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        r.nodes.clear();
        r.roots.clear();
        r.stack.clear();
        r.generation += 1;
    });
    OP_COUNTS.with(|c| c.borrow_mut().clear());
    for c in all_counters() {
        c.reset();
    }
    for w in WORKER_BUSY_NS.iter() {
        w.store(0, Ordering::Relaxed);
    }
    for h in hist::all_histograms() {
        h.reset();
    }
}

impl Snapshot {
    /// Depth-first search for the first span named `name`.
    pub fn find_span(&self, name: &str) -> Option<&SpanNode> {
        fn walk<'a>(nodes: &'a [SpanNode], name: &str) -> Option<&'a SpanNode> {
            for n in nodes {
                if n.name == name {
                    return Some(n);
                }
                if let Some(hit) = walk(&n.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        walk(&self.spans, name)
    }

    /// Value of the global counter `name`, or 0 if unknown.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// Total op dispatches across all ops.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().map(|o| o.count).sum()
    }

    /// Renders a human-readable summary table: the span tree with counts and
    /// times, op-dispatch totals, global counters, and worker busy times.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>8} {:>12} {:>12}\n",
            "span", "count", "total ms", "mean us"
        ));
        fn push_span(out: &mut String, n: &SpanNode, depth: usize) {
            let label = format!("{}{}", "  ".repeat(depth), n.name);
            let total_ms = n.total_ns as f64 / 1e6;
            let mean_us = if n.count > 0 {
                n.total_ns as f64 / n.count as f64 / 1e3
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<44} {:>8} {:>12.3} {:>12.1}\n",
                label, n.count, total_ms, mean_us
            ));
            for c in &n.children {
                push_span(out, c, depth + 1);
            }
        }
        if self.spans.is_empty() {
            out.push_str("(no spans recorded)\n");
        }
        for s in &self.spans {
            push_span(&mut out, s, 0);
        }
        let mut top: Vec<&OpCount> = self.ops.iter().collect();
        top.sort_by(|a, b| b.count.cmp(&a.count).then(a.name.cmp(&b.name)));
        let head: Vec<String> = top
            .iter()
            .take(8)
            .map(|o| format!("{}={}", o.name, o.count))
            .collect();
        out.push_str(&format!(
            "ops: {} dispatches across {} ops",
            self.total_ops(),
            self.ops.len()
        ));
        if !head.is_empty() {
            out.push_str(&format!(" (top: {})", head.join(" ")));
        }
        out.push('\n');
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|c| format!("{}={}", c.name, c.value))
            .collect();
        out.push_str(&format!("counters: {}\n", counters.join(" ")));
        if self.workers.is_empty() {
            out.push_str("workers: (no pool activity recorded)\n");
        } else {
            let cols: Vec<String> = self
                .workers
                .iter()
                .map(|w| format!("{}={:.1}ms", w.worker, w.busy_ns as f64 / 1e6))
                .collect();
            out.push_str(&format!("workers: {}\n", cols.join(" ")));
        }
        if !self.histograms.is_empty() {
            let cols: Vec<String> = self
                .histograms
                .iter()
                .map(|h| {
                    format!(
                        "{}: n={} p50={:.0} p99={:.0}",
                        h.name,
                        h.count(),
                        h.quantile(0.5),
                        h.quantile(0.99)
                    )
                })
                .collect();
            out.push_str(&format!("histograms: {}\n", cols.join(" | ")));
        }
        out
    }
}

/// Serializes tests that toggle the global gate or touch the global
/// counter/histogram state; shared by this crate's test modules.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        crate::test_lock()
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _g = locked();
        set_enabled(false);
        reset();
        {
            let _s = span("off.root");
            count_op("off_op");
            POOL_JOBS.add(3);
        }
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.ops.is_empty());
        assert_eq!(snap.counter("pool.jobs"), 0);
    }

    #[test]
    fn nested_spans_aggregate_by_path() {
        let _g = locked();
        set_enabled(true);
        reset();
        for _ in 0..3 {
            let _outer = span("outer");
            for _ in 0..2 {
                let _inner = span("inner");
            }
        }
        {
            // Same name at root level aggregates with prior roots.
            let _outer = span("outer");
        }
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.spans.len(), 1);
        let outer = &snap.spans[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.count, 4);
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].name, "inner");
        assert_eq!(outer.children[0].count, 6);
        assert!(outer.total_ns >= outer.children[0].total_ns);
    }

    #[test]
    fn same_name_under_different_parents_is_distinct() {
        let _g = locked();
        set_enabled(true);
        reset();
        {
            let _a = span("a");
            let _s = span("shared");
        }
        {
            let _b = span("b");
            let _s = span("shared");
        }
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].children[0].name, "shared");
        assert_eq!(snap.spans[1].children[0].name, "shared");
        assert_eq!(snap.find_span("shared").unwrap().count, 1);
    }

    #[test]
    fn op_counts_are_sorted_and_aggregated() {
        let _g = locked();
        set_enabled(true);
        reset();
        count_op("zmul");
        count_op("add");
        count_op("zmul");
        let snap = snapshot();
        set_enabled(false);
        let names: Vec<&str> = snap.ops.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["add", "zmul"]);
        assert_eq!(snap.ops[1].count, 2);
        assert_eq!(snap.total_ops(), 3);
    }

    #[test]
    fn counters_and_workers_roundtrip_through_reset() {
        let _g = locked();
        set_enabled(true);
        reset();
        POOL_JOBS.add(2);
        LM_CACHE_HITS.add(5);
        worker_busy_add(1, 1_000);
        worker_busy_add(MAX_TRACKED_WORKERS + 7, 99); // silently dropped
        let snap = snapshot();
        assert_eq!(snap.counter("pool.jobs"), 2);
        assert_eq!(snap.counter("lm_cache.hits"), 5);
        assert_eq!(
            snap.workers,
            vec![WorkerBusy {
                worker: 1,
                busy_ns: 1_000
            }]
        );
        reset();
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.counter("pool.jobs"), 0);
        assert!(snap.workers.is_empty());
    }

    #[test]
    fn guard_open_across_reset_is_inert() {
        let _g = locked();
        set_enabled(true);
        reset();
        let stale = span("stale");
        reset();
        {
            let _fresh = span("fresh");
        }
        drop(stale); // generation mismatch: must not touch the new trie
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "fresh");
        assert_eq!(snap.spans[0].count, 1);
    }

    #[test]
    fn render_table_mentions_spans_ops_and_counters() {
        let _g = locked();
        set_enabled(true);
        reset();
        {
            let _s = span("table.root");
            let _c = span("table.child");
        }
        count_op("matmul");
        POOL_TASKS.add(4);
        let snap = snapshot();
        set_enabled(false);
        let table = snap.render_table();
        assert!(table.contains("table.root"));
        assert!(table.contains("  table.child"));
        assert!(table.contains("matmul=1"));
        assert!(table.contains("pool.tasks=4"));
        reset();
    }

    #[test]
    fn histograms_snapshot_and_reset_with_the_counters() {
        let _g = locked();
        set_enabled(true);
        reset();
        // Zero-observation histograms stay out of the snapshot; recorded
        // ones appear with their counts, and reset() clears them alongside
        // the serve counters.
        assert!(snapshot().histograms.is_empty());
        SERVE_FORECAST_LATENCY.record(1_500);
        SERVE_FORECAST_LATENCY.record(900);
        SERVE_BATCH_OCCUPANCY.record(3);
        SERVE_REQUESTS.add(2);
        SERVE_BATCHES.add(1);
        let snap = snapshot();
        assert_eq!(snap.histograms.len(), 2);
        let fc = snap
            .histograms
            .iter()
            .find(|h| h.name == "serve.forecast.latency_ns")
            .expect("forecast histogram present");
        assert_eq!(fc.count(), 2);
        assert_eq!(fc.sum, 2_400);
        assert_eq!(snap.counter("serve.requests"), 2);
        assert_eq!(snap.counter("serve.batches"), 1);
        let table = snap.render_table();
        assert!(table.contains("serve.forecast.latency_ns"));
        reset();
        set_enabled(false);
        let snap = snapshot();
        assert!(snap.histograms.is_empty());
        assert_eq!(snap.counter("serve.requests"), 0);
    }

    #[test]
    fn set_enabled_overrides_env_gate() {
        let _g = locked();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
