//! Disabled-path overhead guard for the serving histograms, mirroring the
//! top-level `tests/obs_overhead.rs` pattern: rather than diffing two
//! noisy end-to-end timings (flaky under CI jitter), measure the
//! *per-event* cost of a disabled `Histogram::record` over millions of
//! calls, multiply by the hook events one served request fires, and
//! require that derived total to stay under 1% of a measured synthetic
//! request workload. The margin in practice is orders of magnitude, so
//! the test is non-flaky by construction.
//!
//! This file is its own test binary (own process) because the obs gate
//! and histogram banks are process-global.

use std::hint::black_box;
use std::time::Instant;

use timekd_obs::{SERVE_BATCH_OCCUPANCY, SERVE_FORECAST_LATENCY};

/// Hook events one `/forecast` request fires at most: request counter,
/// endpoint latency histogram, batch counters amortized over occupancy,
/// occupancy histogram, plus slack for error/metrics paths.
const EVENTS_PER_REQUEST: f64 = 8.0;

#[test]
fn disabled_histograms_cost_under_one_percent_of_a_request() {
    timekd_obs::set_enabled(false);
    timekd_obs::reset();

    const PROBES: u64 = 4_000_000;
    let t0 = Instant::now();
    for i in 0..PROBES {
        SERVE_FORECAST_LATENCY.record(black_box(i));
        SERVE_BATCH_OCCUPANCY.record(black_box(i & 7));
    }
    let per_event_ns = t0.elapsed().as_nanos() as f64 / (PROBES * 2) as f64;
    assert_eq!(
        SERVE_FORECAST_LATENCY.snapshot().count(),
        0,
        "disabled record must not touch the buckets"
    );

    // A stand-in for the per-request planned forward pass: ~200k fused
    // multiply-adds, far below what even the smallest registry model runs.
    let t1 = Instant::now();
    let mut acc = 0.0f32;
    for i in 0..200_000u32 {
        acc = black_box(acc).mul_add(1.000_001, (i & 0xff) as f32 * 1e-6);
    }
    black_box(acc);
    let request_ns = t1.elapsed().as_nanos() as f64;

    let disabled_cost_ns = per_event_ns * EVENTS_PER_REQUEST;
    let ratio = disabled_cost_ns / request_ns;
    assert!(
        ratio < 0.01,
        "disabled histogram hooks cost {disabled_cost_ns:.1}ns per request \
         ({per_event_ns:.2}ns/event) = {:.4}% of a {:.0}us synthetic forward — over the 1% budget",
        ratio * 100.0,
        request_ns / 1e3
    );
}
