//! Randomised property tests for the language-model crate: tokenizer
//! totality, calibrated-mask structure, and causal-LM invariants.

use timekd_lm::{
    calibrated_mask, causal_only_mask, CausalLm, LmConfig, LmSize, Modality, PromptPiece,
    PromptTokenizer, NEG_INF,
};
use timekd_tensor::seeded_rng;

const CASES: u64 = 48;

#[test]
fn any_finite_number_tokenises() {
    let tok = PromptTokenizer::new();
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let v = rng.gen_range(-1e9f32..1e9);
        let toks = tok.number(v);
        assert_eq!(toks.len(), 1, "seed {seed}");
        assert!(toks.iter().all(|t| t.id < tok.vocab_size()), "seed {seed}");
        assert!(
            toks.iter().all(|t| t.modality == Modality::Numeric),
            "seed {seed}"
        );
    }
}

#[test]
fn tokenisation_deterministic() {
    let tok = PromptTokenizer::new();
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let v = rng.gen_range(-1e5f32..1e5);
        assert_eq!(tok.number(v), tok.number(v), "seed {seed}");
    }
}

#[test]
fn quantization_error_bounded() {
    let tok = PromptTokenizer::new();
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let v = rng.gen_range(-6.3f32..6.3);
        let t = tok.number(v)[0];
        let back = tok.token_value(t).expect("numeric token has a value");
        assert!(
            (back - v).abs() <= 0.05 + 1e-5,
            "seed {seed}: {v} -> {back}"
        );
    }
}

#[test]
fn bin_symmetric_under_negation() {
    let tok = PromptTokenizer::new();
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let v = rng.gen_range(0.0f32..6.3);
        let pos = tok.token_value(tok.number(v)[0]).expect("value");
        let neg = tok.token_value(tok.number(-v)[0]).expect("value");
        assert!((pos + neg).abs() < 1e-5, "seed {seed}");
    }
}

#[test]
fn calibrated_mask_structure() {
    let tok = PromptTokenizer::new();
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let delta = rng.gen_range(0.0f32..10.0);
        let len = rng.gen_range(2usize..12);
        // First `split` tokens Text, rest Numeric.
        let split = rng.gen_range(1usize..11).min(len - 1);
        let mut tokens = Vec::new();
        for i in 0..len {
            if i < split {
                tokens.push(tok.word("values"));
            } else {
                tokens.push(tok.number(1.0)[0]);
            }
        }
        let m = calibrated_mask(&tokens, delta, true);
        for i in 0..len {
            for j in 0..len {
                let v = m.at(&[i, j]);
                if j > i {
                    assert_eq!(v, NEG_INF, "seed {seed}");
                } else if (i < split) == (j < split) {
                    assert_eq!(v, 0.0, "seed {seed} intra pair ({i}, {j})");
                } else {
                    assert_eq!(v, -delta, "seed {seed} cross pair ({i}, {j})");
                }
            }
        }
    }
}

#[test]
fn zero_delta_equals_plain_causal() {
    let tok = PromptTokenizer::new();
    for len in 1usize..10 {
        let tokens: Vec<_> = (0..len)
            .map(|i| {
                if i % 2 == 0 {
                    tok.word("next")
                } else {
                    tok.number(2.0)[0]
                }
            })
            .collect();
        assert_eq!(
            calibrated_mask(&tokens, 0.0, true).to_vec(),
            causal_only_mask(len).to_vec(),
            "len {len}"
        );
    }
}

#[test]
fn lm_hidden_states_finite() {
    let tok = PromptTokenizer::new();
    for seed in 0..8 {
        let mut rng = seeded_rng(seed);
        let n_vals = rng.gen_range(1usize..6);
        let lm = CausalLm::new(
            tok.vocab_size(),
            LmConfig::for_size(LmSize::Small),
            &mut rng,
        );
        let mut pieces = vec![PromptPiece::Word("values"), PromptPiece::Word("were")];
        for i in 0..n_vals {
            pieces.push(PromptPiece::Number(i as f32 * 1.5 - 2.0));
        }
        let toks = tok.encode(&pieces);
        let h = lm.hidden_states(&toks, true);
        assert!(h.to_vec().iter().all(|v| v.is_finite()), "seed {seed}");
    }
}

#[test]
fn lm_prefix_embeddings_stable_under_suffix_edits() {
    // Causality: appending tokens never changes earlier hidden states.
    let tok = PromptTokenizer::new();
    for seed in 0..4 {
        let mut rng = seeded_rng(seed);
        let lm = CausalLm::new(
            tok.vocab_size(),
            LmConfig::for_size(LmSize::Small),
            &mut rng,
        );
        let base = tok.encode(&[PromptPiece::Word("forecast"), PromptPiece::Number(1.0)]);
        let mut extended = base.clone();
        extended.extend(tok.number(42.0));
        let hb = lm.hidden_states(&base, true);
        let he = lm.hidden_states(&extended, true);
        let d = lm.config().dim;
        let prefix_b = &hb.to_vec()[..base.len() * d];
        let prefix_e = &he.to_vec()[..base.len() * d];
        for (a, b) in prefix_b.iter().zip(prefix_e) {
            assert!((a - b).abs() < 1e-5, "seed {seed}");
        }
    }
}
