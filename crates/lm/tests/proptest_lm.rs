//! Property-based tests for the language-model crate: tokenizer totality,
//! calibrated-mask structure, and causal-LM invariants.

use proptest::prelude::*;
use timekd_lm::{
    calibrated_mask, causal_only_mask, CausalLm, LmConfig, LmSize, Modality, PromptPiece,
    PromptTokenizer, NEG_INF,
};
use timekd_tensor::seeded_rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_finite_number_tokenises(v in -1e9f32..1e9) {
        let tok = PromptTokenizer::new();
        let toks = tok.number(v);
        prop_assert_eq!(toks.len(), 1);
        prop_assert!(toks.iter().all(|t| t.id < tok.vocab_size()));
        prop_assert!(toks.iter().all(|t| t.modality == Modality::Numeric));
    }

    #[test]
    fn tokenisation_deterministic(v in -1e5f32..1e5) {
        let tok = PromptTokenizer::new();
        prop_assert_eq!(tok.number(v), tok.number(v));
    }

    #[test]
    fn quantization_error_bounded(v in -6.3f32..6.3) {
        let tok = PromptTokenizer::new();
        let t = tok.number(v)[0];
        let back = tok.token_value(t).unwrap();
        prop_assert!((back - v).abs() <= 0.05 + 1e-5, "{v} -> {back}");
    }

    #[test]
    fn bin_symmetric_under_negation(v in 0.0f32..6.3) {
        let tok = PromptTokenizer::new();
        let pos = tok.token_value(tok.number(v)[0]).unwrap();
        let neg = tok.token_value(tok.number(-v)[0]).unwrap();
        prop_assert!((pos + neg).abs() < 1e-5);
    }

    #[test]
    fn calibrated_mask_structure(delta in 0.0f32..10.0, len in 2usize..12, split in 1usize..11) {
        // First `split` tokens Text, rest Numeric.
        let split = split.min(len - 1);
        let tok = PromptTokenizer::new();
        let mut tokens = Vec::new();
        for i in 0..len {
            if i < split {
                tokens.push(tok.word("values"));
            } else {
                tokens.push(tok.number(1.0)[0]);
            }
        }
        let m = calibrated_mask(&tokens, delta, true);
        for i in 0..len {
            for j in 0..len {
                let v = m.at(&[i, j]);
                if j > i {
                    prop_assert_eq!(v, NEG_INF);
                } else if (i < split) == (j < split) {
                    prop_assert_eq!(v, 0.0, "intra pair ({}, {})", i, j);
                } else {
                    prop_assert_eq!(v, -delta, "cross pair ({}, {})", i, j);
                }
            }
        }
    }

    #[test]
    fn zero_delta_equals_plain_causal(len in 1usize..10) {
        let tok = PromptTokenizer::new();
        let tokens: Vec<_> = (0..len)
            .map(|i| if i % 2 == 0 { tok.word("next") } else { tok.number(2.0)[0] })
            .collect();
        prop_assert_eq!(
            calibrated_mask(&tokens, 0.0, true).to_vec(),
            causal_only_mask(len).to_vec()
        );
    }

    #[test]
    fn lm_hidden_states_finite(seed in 0u64..100, n_vals in 1usize..6) {
        let tok = PromptTokenizer::new();
        let mut rng = seeded_rng(seed);
        let lm = CausalLm::new(tok.vocab_size(), LmConfig::for_size(LmSize::Small), &mut rng);
        let mut pieces = vec![PromptPiece::Word("values"), PromptPiece::Word("were")];
        for i in 0..n_vals {
            pieces.push(PromptPiece::Number(i as f32 * 1.5 - 2.0));
        }
        let toks = tok.encode(&pieces);
        let h = lm.hidden_states(&toks, true);
        prop_assert!(h.to_vec().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn lm_prefix_embeddings_stable_under_suffix_edits(seed in 0u64..50) {
        // Causality: appending tokens never changes earlier hidden states.
        let tok = PromptTokenizer::new();
        let mut rng = seeded_rng(seed);
        let lm = CausalLm::new(tok.vocab_size(), LmConfig::for_size(LmSize::Small), &mut rng);
        let base = tok.encode(&[PromptPiece::Word("forecast"), PromptPiece::Number(1.0)]);
        let mut extended = base.clone();
        extended.extend(tok.number(42.0));
        let hb = lm.hidden_states(&base, true);
        let he = lm.hidden_states(&extended, true);
        let d = lm.config().dim;
        let prefix_b = &hb.to_vec()[..base.len() * d];
        let prefix_e = &he.to_vec()[..base.len() * d];
        for (a, b) in prefix_b.iter().zip(prefix_e) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }
}
