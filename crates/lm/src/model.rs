//! The causal language model with calibrated attention — the CLM of the
//! paper's cross-modality teacher (Fig. 4, Eq. 1–7).

use timekd_nn::{Activation, Embedding, Module, TransformerEncoder};
use timekd_tensor::SeededRng;
use timekd_tensor::Tensor;

use crate::calibration::{calibrated_mask, causal_only_mask};
use crate::config::LmConfig;
use crate::tokenizer::Token;

/// Decoder-only LM: token + learnable positional embeddings (the `PE` of
/// Eq. 1), a stack of Pre-LN blocks whose self-attention is calibrated
/// (Eq. 3–5), and a tied output head for pretraining.
pub struct CausalLm {
    config: LmConfig,
    tok_embedding: Embedding,
    pos_embedding: Tensor,
    encoder: TransformerEncoder,
}

impl CausalLm {
    /// Creates a randomly initialised LM over `vocab_size` tokens.
    pub fn new(vocab_size: usize, config: LmConfig, rng: &mut SeededRng) -> CausalLm {
        CausalLm {
            config,
            tok_embedding: Embedding::new(vocab_size, config.dim, rng),
            pos_embedding: Tensor::randn_param([config.max_seq_len, config.dim], 0.02, rng),
            encoder: TransformerEncoder::new(
                config.dim,
                config.num_layers,
                config.num_heads,
                config.ffn_hidden,
                Activation::Gelu,
                rng,
            ),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &LmConfig {
        &self.config
    }

    /// Contextual hidden states `[S, D]` for a prompt.
    ///
    /// With `calibrated` the attention bias of Eq. 5 is applied with the
    /// configured Δ; otherwise a plain causal mask is used (the `w/o_CA`
    /// ablation).
    pub fn hidden_states(&self, tokens: &[Token], calibrated: bool) -> Tensor {
        let s = tokens.len();
        assert!(s > 0, "empty prompt");
        assert!(
            s <= self.config.max_seq_len,
            "prompt length {s} exceeds max_seq_len {}",
            self.config.max_seq_len
        );
        let ids: Vec<usize> = tokens.iter().map(|t| t.id).collect();
        let tok = self.tok_embedding.forward(&ids); // [S, D]
        let pos = self.pos_embedding.slice(0, 0, s); // [S, D]
        let x = tok.add(&pos); // I⁰ = I + PE (Eq. 1)
        let mask = if calibrated {
            calibrated_mask(tokens, self.config.calibration_delta, true)
        } else {
            causal_only_mask(s)
        };
        self.encoder.forward(&x, Some(&mask)).output
    }

    /// The last-token embedding `[D]` — the paper's last token extractor:
    /// under causal masking the final position has attended to the entire
    /// prompt and summarises it.
    pub fn last_token_embedding(&self, tokens: &[Token], calibrated: bool) -> Tensor {
        let h = self.hidden_states(tokens, calibrated);
        let s = tokens.len();
        h.slice(0, s - 1, 1).reshape([self.config.dim])
    }

    /// Runs the LM body over pre-computed *continuous* embeddings `[S, D]`
    /// (adding positional embeddings and a causal mask), returning hidden
    /// states `[S, D]`.
    ///
    /// This is the white-box pathway used by OFA/Time-LLM/UniTime-style
    /// baselines, which feed time-series patch embeddings through the
    /// frozen LM blocks: gradients flow *through* the blocks into the input
    /// embedding while the block parameters themselves are excluded from
    /// the optimizer.
    pub fn encode_embeddings(&self, x: &Tensor) -> Tensor {
        let s = x.dims()[0];
        assert!(
            s > 0 && s <= self.config.max_seq_len,
            "bad sequence length {s}"
        );
        assert_eq!(x.dims()[1], self.config.dim, "embedding width mismatch");
        let pos = self.pos_embedding.slice(0, 0, s);
        let h = x.add(&pos);
        let mask = causal_only_mask(s);
        self.encoder.forward(&h, Some(&mask)).output
    }

    /// The token-embedding table `[V, D]` (Time-LLM initialises its
    /// reprogramming prototypes from it).
    pub fn token_embedding_table(&self) -> &Tensor {
        self.tok_embedding.weight()
    }

    /// Next-token logits `[S, V]` with the output head tied to the token
    /// embedding.
    pub fn logits(&self, tokens: &[Token], calibrated: bool) -> Tensor {
        let h = self.hidden_states(tokens, calibrated);
        h.matmul(&self.tok_embedding.weight().transpose_last())
    }

    /// Autoregressively samples `max_new_tokens` continuation tokens.
    ///
    /// `temperature = 0` is greedy decoding; higher values sample from the
    /// scaled softmax. New tokens are tagged with the modality recorded in
    /// `vocab_modalities` (index = token id). Used by diagnostics and the
    /// LM tests; TimeKD itself never generates.
    pub fn generate(
        &self,
        prompt: &[Token],
        max_new_tokens: usize,
        temperature: f32,
        vocab_modalities: &[crate::tokenizer::Modality],
        rng: &mut SeededRng,
    ) -> Vec<Token> {
        assert!(temperature >= 0.0, "temperature must be non-negative");
        let mut tokens = prompt.to_vec();
        for _ in 0..max_new_tokens {
            if tokens.len() >= self.config.max_seq_len {
                break;
            }
            let next_id = timekd_tensor::no_grad(|| {
                let logits = self.logits(&tokens, true);
                let s = tokens.len();
                let v = logits.dims()[1];
                let last: Vec<f32> = logits.to_vec()[(s - 1) * v..s * v].to_vec();
                if temperature == 0.0 {
                    last.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                        .map(|(i, _)| i)
                        .expect("non-empty vocab")
                } else {
                    // Stable softmax sampling at the given temperature.
                    let m = last.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let probs: Vec<f32> = last
                        .iter()
                        .map(|&x| ((x - m) / temperature).exp())
                        .collect();
                    let total: f32 = probs.iter().sum();
                    let mut draw = rng.gen::<f32>() * total;
                    let mut pick = probs.len() - 1;
                    for (i, &p) in probs.iter().enumerate() {
                        if draw <= p {
                            pick = i;
                            break;
                        }
                        draw -= p;
                    }
                    pick
                }
            });
            tokens.push(Token {
                id: next_id,
                modality: vocab_modalities[next_id],
            });
        }
        tokens
    }

    /// Mean next-token cross-entropy over the prompt (pretraining loss).
    pub fn next_token_loss(&self, tokens: &[Token], calibrated: bool) -> Tensor {
        assert!(tokens.len() >= 2, "need at least two tokens for LM loss");
        let s = tokens.len();
        let logits = self.logits(tokens, calibrated); // [S, V]
        let inputs = logits.slice(0, 0, s - 1); // predict positions 1..S
        let targets: Vec<usize> = tokens[1..].iter().map(|t| t.id).collect();
        inputs.cross_entropy(&targets)
    }
}

impl Module for CausalLm {
    fn params(&self) -> Vec<Tensor> {
        let mut v = self.tok_embedding.params();
        v.push(self.pos_embedding.clone());
        v.extend(self.encoder.params());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::{PromptPiece, PromptTokenizer};
    use timekd_tensor::seeded_rng;

    fn sample_tokens(tok: &PromptTokenizer) -> Vec<Token> {
        tok.encode(&[
            PromptPiece::Word("the"),
            PromptPiece::Word("values"),
            PromptPiece::Word("were"),
            PromptPiece::Number(1.5),
            PromptPiece::Number(-2.0),
            PromptPiece::Word("forecast"),
        ])
    }

    #[test]
    fn hidden_state_shapes() {
        let mut rng = seeded_rng(0);
        let tok = PromptTokenizer::new();
        let lm = CausalLm::new(tok.vocab_size(), LmConfig::base(), &mut rng);
        let toks = sample_tokens(&tok);
        let h = lm.hidden_states(&toks, true);
        assert_eq!(h.dims(), &[toks.len(), 32]);
        let last = lm.last_token_embedding(&toks, true);
        assert_eq!(last.dims(), &[32]);
    }

    #[test]
    fn logits_cover_vocab() {
        let mut rng = seeded_rng(1);
        let tok = PromptTokenizer::new();
        let lm = CausalLm::new(
            tok.vocab_size(),
            LmConfig::for_size(crate::LmSize::Small),
            &mut rng,
        );
        let toks = sample_tokens(&tok);
        let logits = lm.logits(&toks, false);
        assert_eq!(logits.dims(), &[toks.len(), tok.vocab_size()]);
    }

    #[test]
    fn calibration_changes_representation() {
        let mut rng = seeded_rng(2);
        let tok = PromptTokenizer::new();
        let lm = CausalLm::new(tok.vocab_size(), LmConfig::base(), &mut rng);
        let toks = sample_tokens(&tok);
        let with = lm.last_token_embedding(&toks, true).to_vec();
        let without = lm.last_token_embedding(&toks, false).to_vec();
        assert_ne!(with, without, "Δ-bias must change the embedding");
    }

    #[test]
    fn causality_last_token_ignores_nothing_before_it() {
        // Changing an early token must change the last-token embedding
        // (it attends to everything), but changing the last token must not
        // change the embeddings of earlier positions.
        let mut rng = seeded_rng(3);
        let tok = PromptTokenizer::new();
        let lm = CausalLm::new(tok.vocab_size(), LmConfig::base(), &mut rng);
        let toks_a = sample_tokens(&tok);
        let mut toks_b = toks_a.clone();
        toks_b[1] = tok.word("value"); // perturb early token
        let ha = lm.hidden_states(&toks_a, true);
        let hb = lm.hidden_states(&toks_b, true);
        let s = toks_a.len();
        assert_ne!(
            ha.slice(0, s - 1, 1).to_vec(),
            hb.slice(0, s - 1, 1).to_vec(),
            "last token must see early edits"
        );
        assert_eq!(
            ha.slice(0, 0, 1).to_vec(),
            hb.slice(0, 0, 1).to_vec(),
            "position 0 must not see later edits"
        );
    }

    #[test]
    fn lm_loss_decreases_with_training() {
        let mut rng = seeded_rng(4);
        let tok = PromptTokenizer::new();
        let lm = CausalLm::new(
            tok.vocab_size(),
            LmConfig::for_size(crate::LmSize::Small),
            &mut rng,
        );
        let toks = sample_tokens(&tok);
        let params = lm.params();
        let mut opt = timekd_nn::AdamW::new(
            0.01,
            timekd_nn::AdamWConfig {
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        let before = lm.next_token_loss(&toks, true).item();
        for _ in 0..30 {
            lm.zero_grad();
            lm.next_token_loss(&toks, true).backward();
            opt.step(&params);
        }
        let after = lm.next_token_loss(&toks, true).item();
        assert!(after < before * 0.8, "loss {before} -> {after}");
    }

    #[test]
    fn greedy_generation_deterministic() {
        let mut rng = seeded_rng(5);
        let tok = PromptTokenizer::new();
        let lm = CausalLm::new(
            tok.vocab_size(),
            LmConfig::for_size(crate::LmSize::Small),
            &mut rng,
        );
        let prompt = sample_tokens(&tok);
        let mods = tok.modalities();
        let mut r1 = seeded_rng(0);
        let mut r2 = seeded_rng(99);
        let a = lm.generate(&prompt, 5, 0.0, &mods, &mut r1);
        let b = lm.generate(&prompt, 5, 0.0, &mods, &mut r2);
        assert_eq!(a, b, "greedy decoding must ignore the RNG");
        assert_eq!(a.len(), prompt.len() + 5);
        assert!(a.iter().all(|t| t.id < tok.vocab_size()));
    }

    #[test]
    fn sampled_generation_seed_dependent() {
        let mut rng = seeded_rng(6);
        let tok = PromptTokenizer::new();
        let lm = CausalLm::new(
            tok.vocab_size(),
            LmConfig::for_size(crate::LmSize::Small),
            &mut rng,
        );
        let prompt = sample_tokens(&tok);
        let mods = tok.modalities();
        let mut r1 = seeded_rng(1);
        let mut r2 = seeded_rng(1);
        let a = lm.generate(&prompt, 8, 1.0, &mods, &mut r1);
        let b = lm.generate(&prompt, 8, 1.0, &mods, &mut r2);
        assert_eq!(a, b, "same seed, same sample");
    }

    #[test]
    fn generation_respects_max_seq_len() {
        let mut rng = seeded_rng(7);
        let tok = PromptTokenizer::new();
        let mut cfg = LmConfig::for_size(crate::LmSize::Small);
        cfg.max_seq_len = 12;
        let lm = CausalLm::new(tok.vocab_size(), cfg, &mut rng);
        let prompt = sample_tokens(&tok);
        let out = lm.generate(&prompt, 100, 0.5, &tok.modalities(), &mut rng);
        assert!(out.len() <= 12);
    }

    #[test]
    #[should_panic(expected = "empty prompt")]
    fn empty_prompt_panics() {
        let mut rng = seeded_rng(0);
        let tok = PromptTokenizer::new();
        let lm = CausalLm::new(tok.vocab_size(), LmConfig::base(), &mut rng);
        let _ = lm.hidden_states(&[], true);
    }
}
