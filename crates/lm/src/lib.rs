//! # timekd-lm
//!
//! The calibrated language model (CLM) of the TimeKD teacher:
//! - a closed-vocabulary [`PromptTokenizer`] that tags every token with its
//!   [`Modality`] (template text vs numeric content);
//! - [`calibrated_mask`]: the additive attention bias of paper Eq. 3–5 that
//!   penalises cross-modality attention by −Δ under a causal mask;
//! - [`CausalLm`]: a GPT-style decoder-only model with last-token
//!   extraction;
//! - [`pretrain_lm`]: in-process pretraining on a synthetic prompt corpus
//!   (the offline substitute for a pretrained GPT-2 checkpoint — see
//!   DESIGN.md);
//! - [`FrozenLm`]: frozen feature extraction with the embedding cache the
//!   paper uses to avoid re-running the CLM (§IV-B2).

mod calibration;
mod config;
mod frozen;
mod model;
mod pretrain;
pub mod symbolic;
mod tokenizer;

pub use calibration::{calibrated_mask, causal_only_mask, NEG_INF};
pub use config::{LmConfig, LmSize};
pub use frozen::FrozenLm;
pub use model::CausalLm;
pub use pretrain::{
    install_numeracy_prior, pretrain_lm, sample_corpus_example, sample_corpus_prompt,
    CorpusExample, PretrainConfig, PretrainReport,
};
pub use symbolic::{trace_frozen_lm, SymCausalLm};
pub use tokenizer::{Modality, PromptPiece, PromptTokenizer, Token, BIN_MAX, BIN_RESOLUTION};
