//! Frozen-LM feature extraction with an embedding cache.
//!
//! TimeKD keeps the CLM frozen and, to avoid "repetitive processing with
//! the frozen CLMs", stores the extracted embeddings for reuse (§IV-B2).
//! [`FrozenLm`] wraps a pretrained [`CausalLm`], runs it under `no_grad`,
//! and memoises last-token embeddings keyed by the exact token sequence and
//! calibration flag.
//!
//! The map is indexed by a 64-bit digest for O(1) lookup, but a digest
//! alone is not a correctness guarantee: two distinct prompts can collide,
//! and a collision would silently return the *wrong* prompt's embedding.
//! Every hit therefore verifies the stored `(tokens, calibrated)` key
//! against the query; a mismatch is treated as a miss, counted in
//! [`FrozenLm::collision_count`], and the entry is overwritten with the
//! recomputed embedding.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use timekd_tensor::{no_grad, Tensor};

use crate::model::CausalLm;
use crate::tokenizer::Token;

/// One memoised embedding plus the full key that produced it, so digest
/// collisions are detectable.
struct CacheEntry {
    tokens: Vec<Token>,
    calibrated: bool,
    data: Vec<f32>,
}

impl CacheEntry {
    fn matches(&self, tokens: &[Token], calibrated: bool) -> bool {
        self.calibrated == calibrated && self.tokens == tokens
    }
}

/// A frozen language model with embedding memoisation.
///
/// The model is shared via `Rc` and the tensor engine is single-threaded,
/// so plain interior mutability suffices for the cache and its counters.
pub struct FrozenLm {
    lm: CausalLm,
    cache: RefCell<HashMap<u64, CacheEntry>>,
    caching_enabled: Cell<bool>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    collisions: Cell<u64>,
}

fn cache_key(tokens: &[Token], calibrated: bool) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for t in tokens {
        t.id.hash(&mut h);
        t.modality.hash(&mut h);
    }
    calibrated.hash(&mut h);
    h.finish()
}

impl FrozenLm {
    /// Freezes `lm`.
    pub fn new(lm: CausalLm) -> FrozenLm {
        FrozenLm {
            lm,
            cache: RefCell::new(HashMap::new()),
            caching_enabled: Cell::new(true),
            hits: Cell::new(0),
            misses: Cell::new(0),
            collisions: Cell::new(0),
        }
    }

    /// The wrapped model (read-only use).
    pub fn model(&self) -> &CausalLm {
        &self.lm
    }

    /// Last-token embedding `[D]` as a constant tensor, served from the
    /// cache when this exact prompt has been embedded before.
    ///
    /// A digest hit only counts as a cache hit after the stored full key
    /// matches the query; colliding entries are recomputed and replaced.
    pub fn embed(&self, tokens: &[Token], calibrated: bool) -> Tensor {
        let _span = timekd_obs::span("lm.embed");
        let caching = self.caching_enabled.get();
        let key = cache_key(tokens, calibrated);
        if caching {
            if let Some(entry) = self.cache.borrow().get(&key) {
                if entry.matches(tokens, calibrated) {
                    self.hits.set(self.hits.get() + 1);
                    timekd_obs::LM_CACHE_HITS.add(1);
                    return Tensor::from_vec(entry.data.clone(), [self.lm.config().dim]);
                }
                self.collisions.set(self.collisions.get() + 1);
                timekd_obs::LM_CACHE_COLLISIONS.add(1);
            }
        }
        self.misses.set(self.misses.get() + 1);
        timekd_obs::LM_CACHE_MISSES.add(1);
        let emb = {
            let _span = timekd_obs::span("lm.forward");
            no_grad(|| self.lm.last_token_embedding(tokens, calibrated))
        };
        let data = emb.to_vec();
        if caching {
            self.cache.borrow_mut().insert(
                key,
                CacheEntry {
                    tokens: tokens.to_vec(),
                    calibrated,
                    data: data.clone(),
                },
            );
        }
        Tensor::from_vec(data, [self.lm.config().dim])
    }

    /// Enables or disables the embedding cache (the design-choice ablation
    /// measured by the `ablation_cache` bench — §IV-B2's "we store the
    /// subtracted embeddings").
    pub fn set_caching(&self, enabled: bool) {
        self.caching_enabled.set(enabled);
    }

    /// (cache hits, cache misses) so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Number of digest collisions detected (a digest matched an entry
    /// whose full key differed). Each one was recomputed, never served.
    pub fn collision_count(&self) -> u64 {
        self.collisions.get()
    }

    /// Number of distinct prompts embedded.
    pub fn cache_len(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Drops all cached embeddings.
    pub fn clear_cache(&self) {
        self.cache.borrow_mut().clear();
    }

    /// Test hook: plants `data` in the cache under the digest of
    /// `(stored_tokens, calibrated)` as if `stored_tokens` had been
    /// embedded. Forced-collision regression tests use this to simulate two
    /// prompts hashing to the same digest (infeasible to construct for the
    /// real 64-bit hasher).
    #[doc(hidden)]
    pub fn inject_cache_entry_for_test(
        &self,
        digest_of: &[Token],
        stored_tokens: &[Token],
        calibrated: bool,
        data: Vec<f32>,
    ) {
        let key = cache_key(digest_of, calibrated);
        self.cache.borrow_mut().insert(
            key,
            CacheEntry {
                tokens: stored_tokens.to_vec(),
                calibrated,
                data,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LmConfig;
    use crate::tokenizer::{PromptPiece, PromptTokenizer};
    use timekd_tensor::seeded_rng;

    fn setup() -> (PromptTokenizer, FrozenLm) {
        let tok = PromptTokenizer::new();
        let mut rng = seeded_rng(0);
        let lm = CausalLm::new(
            tok.vocab_size(),
            LmConfig::for_size(crate::LmSize::Small),
            &mut rng,
        );
        (tok, FrozenLm::new(lm))
    }

    #[test]
    fn embeddings_are_constant_tensors() {
        let (tok, frozen) = setup();
        let toks = tok.encode(&[PromptPiece::Word("forecast"), PromptPiece::Number(3.0)]);
        let e = frozen.embed(&toks, true);
        assert!(
            !e.requires_grad(),
            "frozen LM output must not join the graph"
        );
        assert_eq!(e.dims(), &[frozen.model().config().dim]);
    }

    #[test]
    fn cache_hit_on_repeat() {
        let (tok, frozen) = setup();
        let toks = tok.encode(&[PromptPiece::Word("forecast")]);
        let a = frozen.embed(&toks, true);
        let b = frozen.embed(&toks, true);
        assert_eq!(a.to_vec(), b.to_vec());
        let (hits, misses) = frozen.cache_stats();
        assert_eq!((hits, misses), (1, 1));
        assert_eq!(frozen.collision_count(), 0);
    }

    #[test]
    fn calibration_flag_is_part_of_key() {
        let (tok, frozen) = setup();
        let toks = tok.encode(&[PromptPiece::Word("forecast"), PromptPiece::Number(1.0)]);
        let a = frozen.embed(&toks, true);
        let b = frozen.embed(&toks, false);
        assert_ne!(a.to_vec(), b.to_vec());
        assert_eq!(frozen.cache_len(), 2);
    }

    #[test]
    fn different_prompts_different_entries() {
        let (tok, frozen) = setup();
        let a = tok.encode(&[PromptPiece::Number(1.0)]);
        let b = tok.encode(&[PromptPiece::Number(2.0)]);
        let _ = frozen.embed(&a, true);
        let _ = frozen.embed(&b, true);
        assert_eq!(frozen.cache_len(), 2);
    }

    #[test]
    fn caching_can_be_disabled() {
        let (tok, frozen) = setup();
        frozen.set_caching(false);
        let toks = tok.encode(&[PromptPiece::Word("forecast")]);
        let a = frozen.embed(&toks, true);
        let b = frozen.embed(&toks, true);
        assert_eq!(a.to_vec(), b.to_vec(), "results identical either way");
        let (hits, misses) = frozen.cache_stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, 2, "every call recomputes with caching off");
        assert_eq!(frozen.cache_len(), 0);
    }

    #[test]
    fn clear_cache_resets() {
        let (tok, frozen) = setup();
        let toks = tok.encode(&[PromptPiece::Word("forecast")]);
        let _ = frozen.embed(&toks, true);
        frozen.clear_cache();
        assert_eq!(frozen.cache_len(), 0);
    }

    #[test]
    fn digest_collision_is_not_served() {
        // Simulate prompts A and B hashing to the same 64-bit digest: plant
        // poison data under A's digest, key-stamped as belonging to B. The
        // pre-fix cache would return the poison for A; the verified cache
        // must detect the key mismatch, recompute A, and never serve B's
        // data.
        let (tok, frozen) = setup();
        let a = tok.encode(&[PromptPiece::Number(1.0)]);
        let b = tok.encode(&[PromptPiece::Number(2.0)]);
        let dim = frozen.model().config().dim;
        let poison = vec![f32::MAX; dim];
        frozen.inject_cache_entry_for_test(&a, &b, true, poison.clone());

        let got = frozen.embed(&a, true);
        assert_ne!(got.to_vec(), poison, "collision served the wrong prompt");
        assert_eq!(frozen.collision_count(), 1);
        let (hits, misses) = frozen.cache_stats();
        assert_eq!((hits, misses), (0, 1), "a collision is a miss, not a hit");

        // The colliding entry was overwritten with A's true embedding, so a
        // repeat is a genuine verified hit.
        let again = frozen.embed(&a, true);
        assert_eq!(got.to_vec(), again.to_vec());
        assert_eq!(frozen.cache_stats(), (1, 1));
        assert_eq!(frozen.collision_count(), 1);
    }

    #[test]
    fn colliding_keys_differing_only_in_modality_are_distinguished() {
        // Same ids, different modalities — the digest input differs here,
        // but force them onto one digest anyway to prove the full-key
        // comparison (not the hash) is what decides a hit.
        use crate::tokenizer::Modality;
        let (_, frozen) = setup();
        let a = [Token {
            id: 5,
            modality: Modality::Text,
        }];
        let b = [Token {
            id: 5,
            modality: Modality::Numeric,
        }];
        let dim = frozen.model().config().dim;
        frozen.inject_cache_entry_for_test(&a, &b, true, vec![-1.0; dim]);
        let got = frozen.embed(&a, true);
        assert_ne!(got.to_vec(), vec![-1.0; dim]);
        assert_eq!(frozen.collision_count(), 1);
    }
}
