//! In-process pretraining of the causal LM on a synthetic prompt corpus.
//!
//! The paper plugs in GPT-2 pretrained on WebText, and relies on one
//! property of that model: *the last-token embedding of a prompt encodes
//! the numeric values written in the prompt* (that is what the teacher's
//! reconstruction head decodes). Offline, a tiny LM pretrained for a few
//! dozen steps with the plain next-token objective does not acquire that
//! property, so pretraining here is multi-task:
//!
//! 1. **next-token cross-entropy** over ground-truth-style prompts drawn
//!    from the Fig. 2 grammar (teaches the prompt syntax and digit
//!    statistics), and
//! 2. **value regression**: a throw-away linear head must recover the
//!    prompt's future values from the last-token embedding (instils the
//!    value-encoding property the teacher depends on).
//!
//! The regression head is discarded after pretraining; the frozen LM keeps
//! only what GPT-2 would have had anyway. See DESIGN.md ("Substitutions").

use timekd_nn::{AdamW, AdamWConfig, Linear, Module};
use timekd_tensor::SeededRng;
use timekd_tensor::{sample_standard_normal, seeded_rng, Tensor};

use crate::config::LmConfig;
use crate::model::CausalLm;
use crate::tokenizer::{PromptPiece, PromptTokenizer, Token};

/// Pretraining hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct PretrainConfig {
    /// Number of optimisation steps.
    pub steps: usize,
    /// Series length embedded in each sampled prompt (history and future
    /// halves).
    pub series_len: usize,
    /// Learning rate.
    pub lr: f32,
    /// Weight of the auxiliary value-regression loss.
    pub value_regression_weight: f32,
    /// RNG seed for the corpus and init.
    pub seed: u64,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig {
            steps: 400,
            series_len: 12,
            lr: 3e-3,
            value_regression_weight: 3.0,
            seed: 1234,
        }
    }
}

/// One corpus example: a ground-truth-style prompt (history + future
/// values, Fig. 2a) plus the future values as regression targets.
pub struct CorpusExample {
    /// Tokenised prompt.
    pub tokens: Vec<Token>,
    /// The future values written in the prompt (regression targets).
    pub future_values: Vec<f32>,
}

/// Samples one corpus example: a standardised AR(1) series rendered through
/// the ground-truth prompt template.
pub fn sample_corpus_example(
    tokenizer: &PromptTokenizer,
    series_len: usize,
    rng: &mut SeededRng,
) -> CorpusExample {
    let mut pieces = vec![
        PromptPiece::Word("from"),
        PromptPiece::Number(1.0),
        PromptPiece::Word("to"),
        PromptPiece::Number(series_len as f32),
        PromptPiece::Word(","),
        PromptPiece::Word("values"),
        PromptPiece::Word("were"),
    ];
    // Standardised AR(1): matches the distribution of scaled dataset
    // windows the teacher will feed through the frozen model.
    let mut v = sample_standard_normal(rng);
    let mut sample_next = |rng: &mut SeededRng| {
        v = 0.85 * v + 0.5 * sample_standard_normal(rng);
        v
    };
    for _ in 0..series_len {
        let val = sample_next(rng);
        pieces.push(PromptPiece::Number(val));
        pieces.push(PromptPiece::Word(","));
    }
    pieces.push(PromptPiece::Word("every"));
    pieces.push(PromptPiece::Number(rng.gen_range(1..=60) as f32));
    pieces.push(PromptPiece::Word("minutes"));
    pieces.push(PromptPiece::Word("."));
    pieces.push(PromptPiece::Word("next"));
    pieces.push(PromptPiece::Number(series_len as f32));
    pieces.push(PromptPiece::Word("steps"));
    pieces.push(PromptPiece::Word(":"));
    let mut future_values = Vec::with_capacity(series_len);
    for i in 0..series_len {
        let val = sample_next(rng);
        // Regress what is actually written in the prompt (the bin center),
        // not the unquantized sample.
        let written = tokenizer.quantize(val);
        future_values.push(written);
        pieces.push(PromptPiece::Number(val));
        if i + 1 < series_len {
            pieces.push(PromptPiece::Word(","));
        }
    }
    // End on the final value token, matching the Fig. 2a template: the
    // extracted last token must be numeric so calibrated attention does not
    // penalise its view of the other value tokens.
    CorpusExample {
        tokens: tokenizer.encode(&pieces),
        future_values,
    }
}

/// Backwards-compatible helper returning only the tokens (used by the
/// kernel microbenchmarks).
pub fn sample_corpus_prompt(
    tokenizer: &PromptTokenizer,
    series_len: usize,
    rng: &mut SeededRng,
) -> Vec<Token> {
    sample_corpus_example(tokenizer, series_len, rng).tokens
}

/// Initialises the numeric-bin token embeddings with a smooth value
/// encoding: each bin's row is `v·u₁ + |v|·u₂ + ε`, with fixed random unit
/// directions `u₁, u₂` and small noise `ε`.
///
/// Large pretrained LMs demonstrably embed numerals so that magnitude is
/// (approximately) linearly decodable; a from-scratch tiny LM starts with
/// i.i.d. rows and has to *discover* that structure, which dominates the
/// pretraining budget. Installing the prior reproduces the property the
/// teacher actually relies on (see DESIGN.md "Substitutions"); the rows
/// remain trainable.
pub fn install_numeracy_prior(lm: &CausalLm, vocab: &PromptTokenizer, rng: &mut SeededRng) {
    let dim = lm.config().dim;
    let unit = |rng: &mut SeededRng| {
        let mut u: Vec<f32> = (0..dim).map(|_| sample_standard_normal(rng)).collect();
        let norm = u.iter().map(|x| x * x).sum::<f32>().sqrt();
        for x in &mut u {
            *x /= norm;
        }
        u
    };
    let u1 = unit(rng);
    let u2 = unit(rng);
    let table = lm.token_embedding_table();
    let vocab_size = table.dims()[0];
    let mut data = table.to_vec();
    for id in 0..vocab_size {
        let token = Token {
            id,
            modality: crate::tokenizer::Modality::Numeric,
        };
        if let Some(v) = vocab.token_value(token) {
            let v_scaled = v / crate::tokenizer::BIN_MAX; // in [-1, 1]
            for d in 0..dim {
                data[id * dim + d] = 0.5 * v_scaled * u1[d]
                    + 0.25 * v_scaled.abs() * u2[d]
                    + 0.02 * sample_standard_normal(rng);
            }
        }
    }
    table.copy_from_slice(&data);
}

/// Report of a pretraining run.
#[derive(Debug, Clone, Copy)]
pub struct PretrainReport {
    /// LM loss on a held-out prompt before training.
    pub initial_loss: f32,
    /// Held-out LM loss after training.
    pub final_loss: f32,
    /// Value-regression MSE on the held-out prompt before training.
    pub initial_value_mse: f32,
    /// Held-out value-regression MSE after training.
    pub final_value_mse: f32,
    /// Steps actually taken.
    pub steps: usize,
}

/// Pretrains a fresh LM on the synthetic prompt corpus and returns it
/// together with a loss report. The returned model should be treated as
/// frozen by callers (see [`crate::FrozenLm`]).
pub fn pretrain_lm(
    vocab: &PromptTokenizer,
    lm_config: LmConfig,
    config: PretrainConfig,
) -> (CausalLm, PretrainReport) {
    let mut rng = seeded_rng(config.seed);
    let lm = CausalLm::new(vocab.vocab_size(), lm_config, &mut rng);
    install_numeracy_prior(&lm, vocab, &mut rng);
    let value_head = Linear::new(lm_config.dim, config.series_len, &mut rng);
    let mut params = lm.params();
    params.extend(value_head.params());
    let mut opt = AdamW::new(
        config.lr,
        AdamWConfig {
            weight_decay: 0.0,
            ..Default::default()
        },
    );
    let mut holdout_rng = seeded_rng(config.seed ^ 0xdead_beef);
    let holdouts: Vec<CorpusExample> = (0..8)
        .map(|_| sample_corpus_example(vocab, config.series_len, &mut holdout_rng))
        .collect();
    let eval = |lm: &CausalLm, head: &Linear| {
        timekd_tensor::no_grad(|| {
            let mut lm_loss = 0.0f32;
            let mut value_mse = 0.0f32;
            for h in &holdouts {
                lm_loss += lm.next_token_loss(&h.tokens, true).item();
                let emb = lm
                    .last_token_embedding(&h.tokens, true)
                    .reshape([1, lm_config.dim]);
                let target = Tensor::from_vec(h.future_values.clone(), [1, config.series_len]);
                value_mse += head.forward(&emb).sub(&target).square().mean().item();
            }
            (
                lm_loss / holdouts.len() as f32,
                value_mse / holdouts.len() as f32,
            )
        })
    };
    let (initial_loss, initial_value_mse) = eval(&lm, &value_head);
    for _ in 0..config.steps {
        let example = sample_corpus_example(vocab, config.series_len, &mut rng);
        for p in &params {
            p.zero_grad();
        }
        let lm_loss = lm.next_token_loss(&example.tokens, true);
        let emb = lm
            .last_token_embedding(&example.tokens, true)
            .reshape([1, lm_config.dim]);
        let target = Tensor::from_vec(example.future_values.clone(), [1, config.series_len]);
        let value_loss = value_head.forward(&emb).sub(&target).square().mean();
        let loss = lm_loss.add(&value_loss.mul_scalar(config.value_regression_weight));
        loss.backward();
        timekd_nn::clip_grad_norm(&params, 1.0);
        opt.step(&params);
    }
    let (final_loss, final_value_mse) = eval(&lm, &value_head);
    // The model is handed out as frozen: leave no stale gradients behind.
    lm.zero_grad();
    (
        lm,
        PretrainReport {
            initial_loss,
            final_loss,
            initial_value_mse,
            final_value_mse,
            steps: config.steps,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_example_well_formed() {
        let tok = PromptTokenizer::new();
        let mut rng = seeded_rng(0);
        let e = sample_corpus_example(&tok, 8, &mut rng);
        assert!(e.tokens.len() > 30);
        assert_eq!(e.tokens[0], tok.bos());
        assert_eq!(e.future_values.len(), 8);
        assert!(e.tokens.iter().all(|t| t.id < tok.vocab_size()));
    }

    #[test]
    fn regression_targets_match_rendered_precision() {
        let tok = PromptTokenizer::new();
        let mut rng = seeded_rng(1);
        let e = sample_corpus_example(&tok, 6, &mut rng);
        for v in &e.future_values {
            // One decimal place exactly.
            assert!((v * 10.0 - (v * 10.0).round()).abs() < 1e-4);
        }
    }

    #[test]
    fn corpus_examples_vary() {
        let tok = PromptTokenizer::new();
        let mut rng = seeded_rng(0);
        let a = sample_corpus_example(&tok, 8, &mut rng);
        let b = sample_corpus_example(&tok, 8, &mut rng);
        assert_ne!(a.tokens, b.tokens);
    }

    #[test]
    fn pretraining_reduces_holdout_losses() {
        let tok = PromptTokenizer::new();
        let cfg = PretrainConfig {
            steps: 60,
            series_len: 8,
            ..Default::default()
        };
        let (_lm, report) = pretrain_lm(&tok, LmConfig::for_size(crate::LmSize::Small), cfg);
        assert!(
            report.final_loss < report.initial_loss,
            "LM loss must fall on held-out prompt: {} -> {}",
            report.initial_loss,
            report.final_loss
        );
        assert!(
            report.final_value_mse < report.initial_value_mse,
            "value regression must improve: {} -> {}",
            report.initial_value_mse,
            report.final_value_mse
        );
    }

    #[test]
    fn numeracy_prior_makes_value_linearly_decodable() {
        // After installing the prior (before any training), a least-squares
        // readout along u1 recovers bin values: check that embedding dot
        // products correlate with value differences.
        let tok = PromptTokenizer::new();
        let mut rng = seeded_rng(3);
        let lm = CausalLm::new(
            tok.vocab_size(),
            LmConfig::for_size(crate::LmSize::Small),
            &mut rng,
        );
        install_numeracy_prior(&lm, &tok, &mut rng);
        let emb = |v: f32| {
            let t = tok.number(v)[0];
            let table = lm.token_embedding_table();
            let d = table.dims()[1];
            table.to_vec()[t.id * d..(t.id + 1) * d].to_vec()
        };
        let a = emb(-3.0);
        let b = emb(0.0);
        let c = emb(3.0);
        // -3 and +3 should be near-opposite along the value direction,
        // both far from 0's embedding.
        let dot = |x: &[f32], y: &[f32]| x.iter().zip(y).map(|(p, q)| p * q).sum::<f32>();
        assert!(dot(&a, &c) < dot(&a, &b), "value direction not monotone");
        let dist = |x: &[f32], y: &[f32]| {
            x.iter()
                .zip(y)
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f32>()
                .sqrt()
        };
        assert!(
            dist(&a, &c) > dist(&a, &b),
            "distance not monotone in value gap"
        );
    }

    #[test]
    fn pretraining_deterministic_per_seed() {
        let tok = PromptTokenizer::new();
        let cfg = PretrainConfig {
            steps: 5,
            series_len: 6,
            ..Default::default()
        };
        let (_lm1, r1) = pretrain_lm(&tok, LmConfig::for_size(crate::LmSize::Small), cfg);
        let (_lm2, r2) = pretrain_lm(&tok, LmConfig::for_size(crate::LmSize::Small), cfg);
        assert_eq!(r1.final_loss, r2.final_loss);
        assert_eq!(r1.final_value_mse, r2.final_value_mse);
    }
}
