//! Calibrated attention masks (paper Eq. 3–5).
//!
//! The calibrated language model replaces the vanilla masked self-attention
//! of a decoder-only LM with an attention whose pre-softmax scores are
//! biased by `−Δ` on **cross-modality** token pairs (text↔number) and left
//! unchanged on intra-modality pairs, all under the usual causal mask. This
//! suppresses inter-modality fusion and strengthens intra-modality
//! correlations, which the paper credits with resolving the data
//! entanglement of prompt-based time-series encoders.

use timekd_tensor::Tensor;

use crate::tokenizer::Token;

/// Additive bias used to forbid attention to future positions.
pub const NEG_INF: f32 = -1e9;

/// Builds the calibrated additive attention mask for a token sequence.
///
/// Entry `[i, j]` is:
/// - `NEG_INF` for `j > i` when `causal` (future positions);
/// - `−delta` when tokens `i` and `j` differ in modality (Eq. 5);
/// - `0` otherwise.
pub fn calibrated_mask(tokens: &[Token], delta: f32, causal: bool) -> Tensor {
    let s = tokens.len();
    let mut data = vec![0.0f32; s * s];
    for i in 0..s {
        for j in 0..s {
            if causal && j > i {
                data[i * s + j] = NEG_INF;
            } else if tokens[i].modality != tokens[j].modality {
                data[i * s + j] = -delta;
            }
        }
    }
    Tensor::from_vec(data, [s, s])
}

/// Plain causal mask for the same token count (the `w/o_CA` ablation:
/// calibration disabled, ordinary masked self-attention kept).
pub fn causal_only_mask(len: usize) -> Tensor {
    let mut data = vec![0.0f32; len * len];
    for i in 0..len {
        for j in (i + 1)..len {
            data[i * len + j] = NEG_INF;
        }
    }
    Tensor::from_vec(data, [len, len])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::Modality;

    fn tok(id: usize, m: Modality) -> Token {
        Token { id, modality: m }
    }

    #[test]
    fn intra_modality_unbiased() {
        let toks = vec![tok(0, Modality::Text), tok(1, Modality::Text)];
        let m = calibrated_mask(&toks, 2.0, true);
        assert_eq!(m.at(&[1, 0]), 0.0);
        assert_eq!(m.at(&[0, 0]), 0.0);
    }

    #[test]
    fn cross_modality_penalised() {
        let toks = vec![tok(0, Modality::Text), tok(1, Modality::Numeric)];
        let m = calibrated_mask(&toks, 2.0, true);
        assert_eq!(m.at(&[1, 0]), -2.0);
    }

    #[test]
    fn causal_blocks_future() {
        let toks = vec![tok(0, Modality::Text), tok(1, Modality::Text)];
        let m = calibrated_mask(&toks, 2.0, true);
        assert_eq!(m.at(&[0, 1]), NEG_INF);
    }

    #[test]
    fn non_causal_keeps_future_penalty_only() {
        let toks = vec![tok(0, Modality::Text), tok(1, Modality::Numeric)];
        let m = calibrated_mask(&toks, 1.5, false);
        assert_eq!(m.at(&[0, 1]), -1.5);
        assert_eq!(m.at(&[1, 0]), -1.5);
    }

    #[test]
    fn zero_delta_reduces_to_causal() {
        let toks = vec![
            tok(0, Modality::Text),
            tok(1, Modality::Numeric),
            tok(2, Modality::Text),
        ];
        let a = calibrated_mask(&toks, 0.0, true);
        let b = causal_only_mask(3);
        assert_eq!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn calibration_shifts_softmax_mass_to_intra_modality() {
        // A row with one intra- and one cross-modality key: after softmax,
        // the intra-modality key must receive more mass under calibration.
        let toks = vec![
            tok(0, Modality::Text),
            tok(1, Modality::Numeric),
            tok(2, Modality::Text),
        ];
        let mask = calibrated_mask(&toks, 3.0, true);
        let scores = Tensor::zeros([3, 3]).add(&mask);
        let probs = scores.softmax_last().to_vec();
        // Row 2 (a Text token) attends over {Text, Numeric, Text}.
        let row = &probs[6..9];
        assert!(row[0] > row[1], "intra should beat cross: {row:?}");
        assert!(row[2] > row[1]);
    }
}
