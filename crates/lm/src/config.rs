//! Language-model configurations.
//!
//! The paper ablates three open-source backbones (Table III): BERT (110M),
//! GPT-2 (117M) and LLaMA-3.2. Pretrained checkpoints are unavailable in
//! this environment, so each backbone is substituted by a causal LM of the
//! same *relative* capacity tier, pretrained in-process on the prompt
//! grammar (see `pretrain`). GPT-2's tier is the default backbone, matching
//! the paper's final choice.

/// Capacity tier mirroring the paper's backbone ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LmSize {
    /// BERT-tier stand-in: smallest.
    Small,
    /// GPT-2-tier stand-in: the TimeKD default.
    Base,
    /// LLaMA-3.2-tier stand-in: largest.
    Large,
}

impl LmSize {
    /// Human-readable backbone name used in experiment tables.
    pub fn backbone_name(self) -> &'static str {
        match self {
            LmSize::Small => "BERT (small-tier substitute)",
            LmSize::Base => "GPT-2 (base-tier substitute)",
            LmSize::Large => "LLaMA-3.2 (large-tier substitute)",
        }
    }
}

/// Hyper-parameters of the causal language model.
#[derive(Clone, Copy, Debug)]
pub struct LmConfig {
    /// Hidden width.
    pub dim: usize,
    /// Number of decoder layers.
    pub num_layers: usize,
    /// Attention heads.
    pub num_heads: usize,
    /// FFN expansion width.
    pub ffn_hidden: usize,
    /// Maximum prompt length in tokens.
    pub max_seq_len: usize,
    /// Calibration penalty Δ of Eq. 5 (0 disables calibration).
    pub calibration_delta: f32,
}

impl LmConfig {
    /// Configuration for a capacity tier.
    pub fn for_size(size: LmSize) -> LmConfig {
        match size {
            LmSize::Small => LmConfig {
                dim: 24,
                num_layers: 2,
                num_heads: 2,
                ffn_hidden: 48,
                max_seq_len: 1024,
                calibration_delta: 2.0,
            },
            LmSize::Base => LmConfig {
                dim: 32,
                num_layers: 3,
                num_heads: 4,
                ffn_hidden: 64,
                max_seq_len: 1024,
                calibration_delta: 2.0,
            },
            LmSize::Large => LmConfig {
                dim: 48,
                num_layers: 4,
                num_heads: 4,
                ffn_hidden: 96,
                max_seq_len: 1024,
                calibration_delta: 2.0,
            },
        }
    }

    /// The default (GPT-2-tier) configuration used by TimeKD.
    pub fn base() -> LmConfig {
        Self::for_size(LmSize::Base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_strictly_ordered() {
        let s = LmConfig::for_size(LmSize::Small);
        let b = LmConfig::for_size(LmSize::Base);
        let l = LmConfig::for_size(LmSize::Large);
        assert!(s.dim < b.dim && b.dim < l.dim);
        assert!(s.num_layers <= b.num_layers && b.num_layers <= l.num_layers);
    }

    #[test]
    fn heads_divide_dim() {
        for size in [LmSize::Small, LmSize::Base, LmSize::Large] {
            let c = LmConfig::for_size(size);
            assert_eq!(c.dim % c.num_heads, 0, "{size:?}");
        }
    }

    #[test]
    fn default_is_base() {
        assert_eq!(LmConfig::base().dim, LmConfig::for_size(LmSize::Base).dim);
    }
}
