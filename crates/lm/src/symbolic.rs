//! Symbolic trace of the calibrated language model.
//!
//! [`SymCausalLm`] mirrors [`CausalLm`](crate::CausalLm) op-for-op on the
//! symbolic IR so the verifier can type-check the CLM interior for every
//! [`LmSize`](crate::LmSize) preset and prompt length without running a
//! forward pass. A prompt longer than `max_seq_len` surfaces as a shape
//! error on the positional-embedding slice — the same place the real model
//! asserts.
//!
//! [`trace_frozen_lm`] is the [`FrozenLm`](crate::FrozenLm)-shaped entry
//! point: it builds the LM inside [`SymCtx::frozen`] (so its parameters are
//! provably frozen) and traces the embedding under
//! [`SymCtx::no_grad`], mirroring how `FrozenLm::embed` executes — the
//! returned node is a gradient frontier exactly like the constant leaf the
//! real cache hands out.

use timekd_nn::symbolic::SymTransformerEncoder;
use timekd_nn::Activation;
use timekd_tensor::{ShapeError, SymCtx, SymDim, SymbolicTensor};

use crate::config::LmConfig;

/// Symbolic mirror of [`CausalLm`](crate::CausalLm).
#[derive(Debug)]
pub struct SymCausalLm {
    ctx: SymCtx,
    label: String,
    config: LmConfig,
    tok_table: SymbolicTensor,
    pos_embedding: SymbolicTensor,
    encoder: SymTransformerEncoder,
}

impl SymCausalLm {
    /// Registers the LM's parameters under `name` and returns the mirror.
    pub fn new(ctx: &SymCtx, name: &str, vocab_size: usize, config: LmConfig) -> SymCausalLm {
        let label = ctx.label_for(name);
        ctx.scoped(name, || SymCausalLm {
            ctx: ctx.clone(),
            label: label.clone(),
            config,
            tok_table: ctx.param(
                "tok_embedding.weight",
                vec![
                    SymDim::new("V", vocab_size),
                    SymDim::new("lm_dim", config.dim),
                ],
            ),
            pos_embedding: ctx.param(
                "pos_embedding",
                vec![
                    SymDim::new("max_seq_len", config.max_seq_len),
                    SymDim::new("lm_dim", config.dim),
                ],
            ),
            encoder: SymTransformerEncoder::new(
                ctx,
                "encoder",
                config.dim,
                config.num_layers,
                config.num_heads,
                config.ffn_hidden,
                Activation::Gelu,
            ),
        })
    }

    /// Mirrors `CausalLm::hidden_states` for a prompt of `seq_len` tokens.
    /// The calibrated/causal mask is a constant `[S, S]` leaf either way.
    pub fn hidden_states(&self, seq_len: usize) -> Result<SymbolicTensor, ShapeError> {
        self.ctx.with_label(&self.label, || {
            let tok = self.tok_table.index_select_rows(seq_len, "S")?;
            let pos = self.pos_embedding.slice(0, 0, seq_len, "S")?;
            let x = tok.add(&pos)?;
            let mask = self.ctx.constant(
                "mask",
                vec![SymDim::new("S", seq_len), SymDim::new("S", seq_len)],
            );
            Ok(self.encoder.forward(&x, Some(&mask))?.output)
        })
    }

    /// Mirrors `CausalLm::last_token_embedding`: hidden states, last-row
    /// slice, reshape to `[lm_dim]`.
    pub fn last_token_embedding(&self, seq_len: usize) -> Result<SymbolicTensor, ShapeError> {
        let h = self.hidden_states(seq_len)?;
        self.ctx.with_label(&self.label, || {
            h.slice(0, seq_len - 1, 1, "last")?
                .reshape(vec![SymDim::new("lm_dim", self.config.dim)])
        })
    }
}

/// Traces one frozen-LM embedding call as the teacher sees it: parameters
/// registered inside a frozen scope, the forward run under `no_grad`.
///
/// The returned tensor requires no grad and exposes no gradient edges —
/// the symbolic analogue of the constant leaf `FrozenLm::embed` returns —
/// while shape inference still covers the whole LM interior.
pub fn trace_frozen_lm(
    ctx: &SymCtx,
    name: &str,
    vocab_size: usize,
    config: LmConfig,
    seq_len: usize,
) -> Result<SymbolicTensor, ShapeError> {
    let lm = ctx.frozen(|| SymCausalLm::new(ctx, name, vocab_size, config));
    ctx.no_grad(|| lm.last_token_embedding(seq_len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CausalLm, LmSize, PromptTokenizer};
    use timekd_nn::Module;
    use timekd_tensor::{graph_stats, reachable_params, seeded_rng, GraphAudit};

    #[test]
    fn lm_graph_matches_dynamic() {
        let tok = PromptTokenizer::new();
        let cfg = LmConfig::for_size(LmSize::Small);
        let mut rng = seeded_rng(0);
        let real = CausalLm::new(tok.vocab_size(), cfg, &mut rng);
        let toks = tok.encode(&[
            crate::PromptPiece::Word("the"),
            crate::PromptPiece::Word("values"),
            crate::PromptPiece::Word("were"),
            crate::PromptPiece::Number(1.5),
            crate::PromptPiece::Number(-2.0),
            crate::PromptPiece::Word("forecast"),
        ]);
        let real_out = real.last_token_embedding(&toks, true).sum();

        let ctx = SymCtx::new();
        let lm = SymCausalLm::new(&ctx, "clm", tok.vocab_size(), cfg);
        let out = lm.last_token_embedding(toks.len()).unwrap().sum();

        let sym = graph_stats(&out);
        let dynamic = GraphAudit::run(&real_out).stats;
        assert_eq!(sym.nodes, dynamic.nodes);
        assert_eq!(sym.edges, dynamic.edges);
        assert_eq!(sym.leaves, dynamic.leaves);
        assert_eq!(sym.params, dynamic.params);
        assert_eq!(sym.max_depth, dynamic.max_depth);
        assert_eq!(ctx.params().len(), real.params().len());
    }

    #[test]
    fn overlong_prompt_is_shape_error() {
        let ctx = SymCtx::new();
        let mut cfg = LmConfig::for_size(LmSize::Small);
        cfg.max_seq_len = 8;
        let lm = SymCausalLm::new(&ctx, "clm", 50, cfg);
        let err = lm.last_token_embedding(9).unwrap_err();
        assert_eq!(err.op, "slice");
        assert!(err.message.contains("out of bounds"), "{}", err.message);
    }

    #[test]
    fn frozen_trace_is_gradient_frontier() {
        let ctx = SymCtx::new();
        let cfg = LmConfig::for_size(LmSize::Small);
        let emb = trace_frozen_lm(&ctx, "clm", 50, cfg, 5).unwrap();
        assert!(!emb.requires_grad());
        assert!(emb.is_leaf());
        assert!(reachable_params(&emb.sum()).is_empty());
        // Every LM parameter is marked frozen.
        assert!(ctx.params().iter().all(|p| p.is_frozen()));
        assert!(!ctx.params().is_empty());
    }
}
