//! Word/value tokenizer for time-series prompts with per-token modality
//! tags.
//!
//! The calibrated attention of the paper (Eq. 5) needs to know, for every
//! pair of tokens, whether they belong to the same modality (text–text or
//! number–number) or cross modalities (text–number). The tokenizer
//! therefore labels each produced token with a [`Modality`].
//!
//! The vocabulary is closed: the template words of Fig. 2 plus a bank of
//! **quantized value tokens** — one token per 0.1-wide bin over
//! `[-BIN_MAX, +BIN_MAX]`. Each numeric value becomes a *single* token,
//! mirroring how large-scale LLM tokenizers compress common numerals and
//! keeping prompt lengths (and therefore CLM attention cost) independent
//! of numeric precision. The series fed through prompts are standardised,
//! so the bin range covers them with headroom; out-of-range values clamp
//! to the boundary bins.

use std::collections::HashMap;

/// Token modality per the paper's cross- vs intra-modality distinction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Modality {
    /// Template/instruction words.
    Text,
    /// Quantized value tokens that encode time-series values.
    Numeric,
}

/// A token id paired with its modality.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// Index into the tokenizer vocabulary.
    pub id: usize,
    /// Whether the token carries text or numeric content.
    pub modality: Modality,
}

/// The closed template vocabulary.
const WORDS: &[&str] = &[
    "<pad>", "<bos>", "<eos>", "from", "to", "the", "values", "were", "every", "minutes", "hours",
    "forecast", "next", "steps", "step", "and", "value", "was", "then", ",", ".", ":", "at",
    "time", "series", "variable", "of",
];

/// Quantization resolution of the value bins.
pub const BIN_RESOLUTION: f32 = 0.1;
/// Largest representable magnitude; values beyond clamp to the edge bins.
pub const BIN_MAX: f32 = 6.3;

const NUM_BINS: usize = (2.0 * BIN_MAX / BIN_RESOLUTION) as usize + 1; // 127

/// Deterministic tokenizer over the prompt grammar.
pub struct PromptTokenizer {
    vocab: Vec<String>,
    lookup: HashMap<String, usize>,
    bin_base: usize,
}

impl Default for PromptTokenizer {
    fn default() -> Self {
        Self::new()
    }
}

impl PromptTokenizer {
    /// Builds the fixed vocabulary (template words + value bins).
    pub fn new() -> PromptTokenizer {
        let mut vocab: Vec<String> = Vec::with_capacity(WORDS.len() + NUM_BINS);
        let mut lookup = HashMap::new();
        for w in WORDS {
            lookup.insert((*w).to_string(), vocab.len());
            vocab.push((*w).to_string());
        }
        let bin_base = vocab.len();
        for i in 0..NUM_BINS {
            let half = (NUM_BINS / 2) as i64;
            let center = (i as i64 - half) as f32 * BIN_RESOLUTION;
            vocab.push(format!("{center:.1}"));
        }
        PromptTokenizer {
            vocab,
            lookup,
            bin_base,
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Number of numeric value bins.
    pub fn num_bins(&self) -> usize {
        NUM_BINS
    }

    /// The id of the beginning-of-sequence token.
    pub fn bos(&self) -> Token {
        Token {
            id: self.lookup["<bos>"],
            modality: Modality::Text,
        }
    }

    /// Token for a known template word. Panics on out-of-vocabulary words —
    /// prompts in this system are always generated from the Fig. 2
    /// templates, so an unknown word is a programming error.
    pub fn word(&self, w: &str) -> Token {
        let id = *self
            .lookup
            .get(&w.to_lowercase())
            .unwrap_or_else(|| panic!("word '{w}' not in the template vocabulary"));
        Token {
            id,
            modality: Modality::Text,
        }
    }

    /// Quantizes `value` to its bin center.
    pub fn quantize(&self, value: f32) -> f32 {
        let v = if value.is_nan() { 0.0 } else { value };
        let v = v.clamp(-BIN_MAX, BIN_MAX);
        ((v / BIN_RESOLUTION).round()) * BIN_RESOLUTION
    }

    /// Encodes a numeric value as one [`Modality::Numeric`] token.
    ///
    /// Returned as a `Vec` for API symmetry with multi-token encodings.
    pub fn number(&self, value: f32) -> Vec<Token> {
        // Quantize first so the bin index agrees exactly with `quantize`
        // (rounding half away from zero on the raw value, not the shifted
        // one).
        let q = self.quantize(value);
        let idx = ((q + BIN_MAX) / BIN_RESOLUTION).round() as usize;
        vec![Token {
            id: self.bin_base + idx.min(NUM_BINS - 1),
            modality: Modality::Numeric,
        }]
    }

    /// The bin center a numeric token represents, or `None` for text
    /// tokens.
    pub fn token_value(&self, token: Token) -> Option<f32> {
        if token.modality != Modality::Numeric {
            return None;
        }
        let idx = token.id.checked_sub(self.bin_base)?;
        if idx >= NUM_BINS {
            return None;
        }
        // Compute from the signed bin offset so centers are exact 0.1
        // multiples (avoids -6.3 + k*0.1 accumulation error).
        let half = (NUM_BINS / 2) as i64;
        Some((idx as i64 - half) as f32 * BIN_RESOLUTION)
    }

    /// Per-id modality table (index = token id), for decoding sampled ids.
    pub fn modalities(&self) -> Vec<Modality> {
        (0..self.vocab_size())
            .map(|id| {
                if id >= self.bin_base {
                    Modality::Numeric
                } else {
                    Modality::Text
                }
            })
            .collect()
    }

    /// Tokenizes a whole prompt: a sequence of [`PromptPiece`]s.
    pub fn encode(&self, pieces: &[PromptPiece]) -> Vec<Token> {
        let mut out = vec![self.bos()];
        for piece in pieces {
            match piece {
                PromptPiece::Word(w) => out.push(self.word(w)),
                PromptPiece::Number(v) => out.extend(self.number(*v)),
            }
        }
        out
    }

    /// Decodes token ids back to a readable string (diagnostics only).
    pub fn decode(&self, tokens: &[Token]) -> String {
        tokens
            .iter()
            .map(|t| self.vocab[t.id].as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// One element of a prompt prior to tokenisation.
#[derive(Clone, Debug, PartialEq)]
pub enum PromptPiece {
    /// A template word (must be in the closed vocabulary).
    Word(&'static str),
    /// A numeric value quantized to its bin token.
    Number(f32),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_closed_and_stable() {
        let t = PromptTokenizer::new();
        assert_eq!(t.vocab_size(), WORDS.len() + NUM_BINS);
        assert_eq!(t.word("forecast").id, t.word("forecast").id);
        assert_eq!(t.num_bins(), 127);
    }

    #[test]
    fn words_are_text_modality() {
        let t = PromptTokenizer::new();
        assert_eq!(t.word("values").modality, Modality::Text);
        assert_eq!(
            t.word("FORECAST").modality,
            Modality::Text,
            "case-insensitive"
        );
    }

    #[test]
    fn numbers_are_single_numeric_tokens() {
        let t = PromptTokenizer::new();
        let toks = t.number(1.25);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].modality, Modality::Numeric);
    }

    #[test]
    fn quantization_round_trip() {
        let t = PromptTokenizer::new();
        for v in [-6.3f32, -1.25, 0.0, 0.04, 0.06, 3.33, 6.3] {
            let tok = t.number(v)[0];
            let back = t.token_value(tok).unwrap();
            assert!((back - t.quantize(v)).abs() < 1e-4, "{v}: {back}");
            assert!(
                (back - v).abs() <= BIN_RESOLUTION / 2.0 + 1e-5,
                "{v} -> {back}"
            );
        }
    }

    #[test]
    fn out_of_range_clamps() {
        let t = PromptTokenizer::new();
        assert_eq!(t.token_value(t.number(100.0)[0]).unwrap(), BIN_MAX);
        assert_eq!(t.token_value(t.number(-100.0)[0]).unwrap(), -BIN_MAX);
    }

    #[test]
    fn nan_becomes_zero_bin() {
        let t = PromptTokenizer::new();
        assert_eq!(t.token_value(t.number(f32::NAN)[0]).unwrap(), 0.0);
    }

    #[test]
    fn adjacent_values_get_adjacent_bins() {
        let t = PromptTokenizer::new();
        let a = t.number(1.0)[0].id;
        let b = t.number(1.1)[0].id;
        assert_eq!(b, a + 1);
    }

    #[test]
    fn decode_shows_bin_centers() {
        let t = PromptTokenizer::new();
        let toks = t.number(-2.5);
        assert_eq!(t.decode(&toks), "-2.5");
    }

    #[test]
    fn encode_starts_with_bos() {
        let t = PromptTokenizer::new();
        let toks = t.encode(&[PromptPiece::Word("forecast"), PromptPiece::Number(1.0)]);
        assert_eq!(toks[0], t.bos());
        assert_eq!(toks[1], t.word("forecast"));
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn token_value_none_for_text() {
        let t = PromptTokenizer::new();
        assert_eq!(t.token_value(t.word("next")), None);
    }

    #[test]
    #[should_panic(expected = "not in the template vocabulary")]
    fn oov_word_panics() {
        let t = PromptTokenizer::new();
        let _ = t.word("quantum");
    }

    #[test]
    fn all_ids_below_vocab_size() {
        let t = PromptTokenizer::new();
        let toks = t.encode(&[
            PromptPiece::Word("from"),
            PromptPiece::Number(-123.4),
            PromptPiece::Word("to"),
            PromptPiece::Number(99999.9),
        ]);
        assert!(toks.iter().all(|tok| tok.id < t.vocab_size()));
    }
}
