//! # timekd
//!
//! The primary contribution of the paper *"Efficient Multivariate Time
//! Series Forecasting via Calibrated Language Models with Privileged
//! Knowledge Distillation"* (ICDE 2025), reproduced in Rust:
//!
//! - [`CrossModalityTeacher`]: a frozen calibrated language model over
//!   ground-truth prompts (privileged information, LUPI), refined by
//!   [`SubtractiveCrossAttention`] and encoded by a privileged Pre-LN
//!   Transformer that reconstructs the future series (Alg. 1);
//! - [`Student`]: RevIN → inverted embedding → time-series Transformer →
//!   projection, the only model that runs at inference time;
//! - [`pkd_losses`]: privileged knowledge distillation — correlation
//!   (attention-map) and feature (embedding) distillation (Alg. 2);
//! - [`TimeKd`]: the joint trainer optimising Eq. 30, with per-component
//!   [`AblationConfig`] switches reproducing every Fig. 6 variant;
//! - [`Forecaster`]: the uniform train/predict/evaluate interface shared
//!   with every baseline.
//!
//! ## Example
//!
//! ```no_run
//! use timekd::{Forecaster, TimeKd, TimeKdConfig};
//! use timekd_data::{DatasetKind, Split, SplitDataset};
//!
//! let ds = SplitDataset::new(DatasetKind::EttH1, 2000, 42, 96, 24);
//! let mut model = TimeKd::new(TimeKdConfig::default(), 96, 24, ds.num_vars());
//! let train = ds.windows(Split::Train, 8);
//! model.train_epoch(&train);
//! let (mse, mae) = model.evaluate(&ds.windows(Split::Test, 8));
//! println!("MSE {mse:.3} MAE {mae:.3}");
//! ```

mod config;
mod distill;
mod forecaster;
mod model_io;
mod norm_helpers;
pub mod plan;
mod sca;
mod student;
pub mod symbolic;
mod teacher;
mod trainer;

pub use config::{AblationConfig, TimeKdConfig};
pub use distill::{pkd_losses, PkdLosses};
pub use forecaster::Forecaster;
pub use model_io::{load_checkpoint, save_checkpoint};
pub use norm_helpers::layer_norm_const;
pub use plan::{
    compile_student_plan, compile_student_training_plan, compile_student_training_plan_batched,
    plan_cache_stats, reset_plan_cache, student_objective_spec, student_plan_spec,
    student_plan_spec_with_precision, student_train_spec, PlannedBatchTrainer, PlannedStudent,
    PlannedTrainer, QuantizedStudent, AUX_TEACHER_ATT, AUX_TEACHER_EMB,
};
pub use sca::SubtractiveCrossAttention;
pub use student::{Student, StudentOutput};
pub use symbolic::{
    prompt_token_counts, sym_layer_norm_const, sym_pkd_losses, trace_pipeline,
    trace_student_forecast, trace_student_loss, trace_student_objective, Fault,
    StudentObjectiveTrace, SymPkdLosses, SymSca, SymStudent, SymStudentOutput, SymTeacher,
    SymTeacherOutput, SymbolicPipeline, TEACHER_ATT_LABEL, TEACHER_EMB_LABEL,
};
pub use teacher::{render_prompts, CrossModalityTeacher, TeacherOutput};
pub use trainer::{EpochStats, TimeKd};
