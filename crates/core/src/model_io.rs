//! Whole-model checkpointing for [`TimeKd`].
//!
//! Layout: magic `TKD1`, format version, then the teacher's trainable
//! parameters followed by the student's, each as a [`timekd_tensor::io`]
//! blob. The frozen CLM is *not* part of the checkpoint — it is
//! reconstructed deterministically from its pretraining seed, exactly like
//! the paper reloads the public GPT-2 weights rather than shipping them.

use timekd_nn::Module;
use timekd_tensor::bytes::{Bytes, BytesMut};
use timekd_tensor::io::DecodeError;

use crate::trainer::TimeKd;

const MAGIC: &[u8; 4] = b"TKD1";
const VERSION: u32 = 1;

/// Serialises the trainable state (teacher heads + student).
pub fn save_checkpoint(model: &TimeKd) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.extend_from_slice(&model.teacher().save_params());
    buf.extend_from_slice(&model.student().save_params());
    buf.freeze()
}

/// Restores trainable state saved by [`save_checkpoint`] into an
/// identically configured model.
pub fn load_checkpoint(model: &TimeKd, blob: &mut Bytes) -> Result<(), DecodeError> {
    if blob.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    blob.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = blob.get_u32_le();
    if version != VERSION {
        return Err(DecodeError::BadShape);
    }
    model.teacher().load_params(blob)?;
    model.student().load_params(blob)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TimeKdConfig;
    use crate::Forecaster;
    use std::rc::Rc;
    use timekd_data::{DatasetKind, Split, SplitDataset};
    use timekd_lm::{pretrain_lm, FrozenLm, LmConfig, LmSize, PretrainConfig, PromptTokenizer};

    #[allow(clippy::field_reassign_with_default)]
    fn setup() -> (TimeKd, SplitDataset) {
        let ds = SplitDataset::new(DatasetKind::EttH1, 600, 3, 24, 8);
        let tokenizer = Rc::new(PromptTokenizer::new());
        let mut cfg = TimeKdConfig::default();
        cfg.dim = 16;
        cfg.ffn_hidden = 32;
        cfg.num_heads = 2;
        cfg.lm = LmConfig::for_size(LmSize::Small);
        cfg.teacher_warmup_epochs = 1;
        let (lm, _) = pretrain_lm(
            &tokenizer,
            cfg.lm,
            PretrainConfig {
                steps: 3,
                ..Default::default()
            },
        );
        let model = TimeKd::with_frozen_lm(
            Rc::new(FrozenLm::new(lm)),
            tokenizer,
            cfg,
            24,
            8,
            ds.num_vars(),
        );
        (model, ds)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (mut model, ds) = setup();
        let train = ds.windows(Split::Train, 16);
        model.train_epoch(&train[..3.min(train.len())]);
        let w = &ds.windows(Split::Test, 16)[0];
        let before = model.predict(&w.x);
        let mut blob = save_checkpoint(&model);

        let (model2, _) = setup();
        load_checkpoint(&model2, &mut blob).unwrap();
        let after = model2.predict(&w.x);
        assert_eq!(before.to_vec(), after.to_vec());
    }

    #[test]
    fn bad_magic_rejected() {
        let (model, _) = setup();
        let mut blob = Bytes::from_static(b"XXXX\x01\x00\x00\x00rest");
        assert!(matches!(
            load_checkpoint(&model, &mut blob),
            Err(DecodeError::BadMagic)
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let (model, _) = setup();
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(999);
        let mut blob = buf.freeze();
        assert!(matches!(
            load_checkpoint(&model, &mut blob),
            Err(DecodeError::BadShape)
        ));
    }

    #[test]
    fn truncated_rejected() {
        let (model, _) = setup();
        let full = save_checkpoint(&model);
        let mut cut = full.slice(0..full.len() / 2);
        assert!(load_checkpoint(&model, &mut cut).is_err());
    }
}
