//! Subtractive cross attention (paper §IV-B2, Eq. 8–9, Fig. 5).
//!
//! The last-token embeddings of the ground-truth prompt `L_GT` still carry
//! template-text information that is shared with the historical prompt
//! `L_HD`. SCA estimates that shared (textual) component by channel-wise
//! cross attention from `L_GT` onto `L_HD` and subtracts it, leaving a
//! representation dominated by the *future time-series* content.

use timekd_nn::{Linear, Module};
use timekd_tensor::SeededRng;
use timekd_tensor::Tensor;

use crate::norm_helpers::layer_norm_const;

/// Subtractive cross attention over `[N, D]` last-token embeddings.
pub struct SubtractiveCrossAttention {
    phi_q: Linear,
    phi_k: Linear,
    phi_v: Linear,
    theta_c: Linear,
    ln_out: timekd_nn::LayerNorm,
    ffn: timekd_nn::FeedForward,
    dim: usize,
}

impl SubtractiveCrossAttention {
    /// Creates SCA over width `dim`.
    pub fn new(dim: usize, ffn_hidden: usize, rng: &mut SeededRng) -> SubtractiveCrossAttention {
        SubtractiveCrossAttention {
            phi_q: Linear::new_no_bias(dim, dim, rng),
            phi_k: Linear::new_no_bias(dim, dim, rng),
            phi_v: Linear::new_no_bias(dim, dim, rng),
            theta_c: Linear::new(dim, dim, rng),
            ln_out: timekd_nn::LayerNorm::new(dim),
            ffn: timekd_nn::FeedForward::new(dim, ffn_hidden, timekd_nn::Activation::Relu, rng),
            dim,
        }
    }

    /// Eq. 8–9: refines `l_gt` `[N, D]` by subtracting the channel-wise
    /// intersection with `l_hd` `[N, D]`.
    pub fn forward(&self, l_gt: &Tensor, l_hd: &Tensor) -> Tensor {
        assert_eq!(l_gt.dims(), l_hd.dims(), "SCA inputs must match");
        assert_eq!(l_gt.dims()[1], self.dim, "SCA width mismatch");
        // Channel-wise similarity M_C ∈ R^{D×D} (Eq. 8): queries from the
        // GT embedding, keys from the HD embedding, contracted over the
        // variable axis.
        let q = layer_norm_const(&self.phi_q.forward(l_gt)); // [N, D]
        let k = layer_norm_const(&self.phi_k.forward(l_hd)); // [N, D]
        let m_c = q.transpose_last().matmul(&k).softmax_last(); // [D, D]
                                                                // Channel-wise aggregation of the HD values (the shared textual
                                                                // component), then subtraction (Eq. 9).
        let v = self.phi_v.forward(l_hd); // [N, D]
        let intersection = self.theta_c.forward(&v.matmul(&m_c)); // [N, D]
        let refined = l_gt.sub(&intersection);
        self.ffn.forward(&self.ln_out.forward(&refined))
    }

    /// The `w/o_SCA` ablation: plain element-wise subtraction followed by
    /// the same LN + FFN head.
    pub fn forward_direct(&self, l_gt: &Tensor, l_hd: &Tensor) -> Tensor {
        assert_eq!(l_gt.dims(), l_hd.dims(), "SCA inputs must match");
        let refined = l_gt.sub(l_hd);
        self.ffn.forward(&self.ln_out.forward(&refined))
    }
}

impl Module for SubtractiveCrossAttention {
    fn params(&self) -> Vec<Tensor> {
        let mut v = self.phi_q.params();
        v.extend(self.phi_k.params());
        v.extend(self.phi_v.params());
        v.extend(self.theta_c.params());
        v.extend(self.ln_out.params());
        v.extend(self.ffn.params());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_tensor::seeded_rng;

    #[test]
    fn output_shape_preserved() {
        let mut rng = seeded_rng(0);
        let sca = SubtractiveCrossAttention::new(8, 16, &mut rng);
        let gt = Tensor::randn([5, 8], 1.0, &mut rng);
        let hd = Tensor::randn([5, 8], 1.0, &mut rng);
        assert_eq!(sca.forward(&gt, &hd).dims(), &[5, 8]);
        assert_eq!(sca.forward_direct(&gt, &hd).dims(), &[5, 8]);
    }

    #[test]
    fn differs_from_direct_subtraction() {
        let mut rng = seeded_rng(1);
        let sca = SubtractiveCrossAttention::new(8, 16, &mut rng);
        let gt = Tensor::randn([4, 8], 1.0, &mut rng);
        let hd = Tensor::randn([4, 8], 1.0, &mut rng);
        assert_ne!(
            sca.forward(&gt, &hd).to_vec(),
            sca.forward_direct(&gt, &hd).to_vec()
        );
    }

    #[test]
    fn sensitive_to_historical_embedding() {
        // The subtracted component comes from L_HD: changing it must change
        // the refined output.
        let mut rng = seeded_rng(2);
        let sca = SubtractiveCrossAttention::new(8, 16, &mut rng);
        let gt = Tensor::randn([4, 8], 1.0, &mut rng);
        let hd1 = Tensor::randn([4, 8], 1.0, &mut rng);
        let hd2 = Tensor::randn([4, 8], 1.0, &mut rng);
        assert_ne!(
            sca.forward(&gt, &hd1).to_vec(),
            sca.forward(&gt, &hd2).to_vec()
        );
    }

    #[test]
    fn gradients_reach_all_projections() {
        let mut rng = seeded_rng(3);
        let sca = SubtractiveCrossAttention::new(8, 16, &mut rng);
        let gt = Tensor::randn([4, 8], 1.0, &mut rng);
        let hd = Tensor::randn([4, 8], 1.0, &mut rng);
        sca.forward(&gt, &hd).square().mean().backward();
        for (i, p) in sca.params().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} got no gradient");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Central-difference check of the full SCA backward (two matmuls
        // through a softmax over the channel axis, plus the LN + FFN head)
        // against every trainable parameter.
        let mut rng = seeded_rng(5);
        let sca = SubtractiveCrossAttention::new(4, 6, &mut rng);
        let gt = Tensor::randn([3, 4], 0.5, &mut rng);
        let hd = Tensor::randn([3, 4], 0.5, &mut rng);
        for p in &sca.params() {
            timekd_tensor::assert_gradients_close(
                p,
                || sca.forward(&gt, &hd).square().mean(),
                3e-2,
            );
        }
    }

    #[test]
    fn removes_common_component_better_than_identity() {
        // Construct L_GT = signal + common, L_HD = common. After training
        // SCA briefly to reconstruct `signal`, the loss should fall well
        // below the initial value — i.e. the architecture can express the
        // removal.
        let mut rng = seeded_rng(4);
        let sca = SubtractiveCrossAttention::new(8, 16, &mut rng);
        let signal = Tensor::randn([6, 8], 1.0, &mut rng);
        let common = Tensor::randn([6, 8], 1.0, &mut rng);
        let gt = signal.add(&common);
        let params = sca.params();
        let mut opt = timekd_nn::AdamW::new(
            0.01,
            timekd_nn::AdamWConfig {
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        let initial = sca
            .forward(&gt, &common)
            .sub(&signal)
            .square()
            .mean()
            .item();
        for _ in 0..80 {
            sca.zero_grad();
            let loss = sca.forward(&gt, &common).sub(&signal).square().mean();
            loss.backward();
            opt.step(&params);
        }
        let trained = sca
            .forward(&gt, &common)
            .sub(&signal)
            .square()
            .mean()
            .item();
        assert!(trained < initial * 0.5, "{initial} -> {trained}");
    }
}
