//! The lightweight student model (paper §IV-C, Fig. 3 right).
//!
//! RevIN → inverted embedding (each variable's whole history embedded as
//! one token, Eq. 18) → `TSTEncoder` (Eq. 19–23) → projection back to the
//! horizon (Eq. 27–28) → RevIN denormalisation. Only this model runs at
//! inference time, which is where TimeKD's efficiency comes from.

use timekd_nn::{Activation, Linear, Module, RevIn, TransformerEncoder};
use timekd_tensor::SeededRng;
use timekd_tensor::Tensor;

use crate::config::TimeKdConfig;

/// Student forward products.
pub struct StudentOutput {
    /// Encoder output `T̄_H` `[N, D]` (feature-distillation target side).
    pub embedding: Tensor,
    /// Head-averaged attention `A_TSE` `[N, N]` of the last encoder layer.
    pub attention: Tensor,
    /// Forecast `X̂_M` `[M, N]`, denormalised back to input scale.
    pub forecast: Tensor,
}

/// The distilled student forecaster.
pub struct Student {
    revin: RevIn,
    inverted_embedding: Linear,
    encoder: TransformerEncoder,
    projection: Linear,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
}

impl Student {
    /// Builds a student for `[input_len, num_vars]` histories and
    /// `[horizon, num_vars]` forecasts.
    pub fn new(
        config: &TimeKdConfig,
        input_len: usize,
        horizon: usize,
        num_vars: usize,
        rng: &mut SeededRng,
    ) -> Student {
        Student {
            revin: RevIn::new(num_vars),
            inverted_embedding: Linear::new(input_len, config.dim, rng),
            encoder: TransformerEncoder::new(
                config.dim,
                config.num_layers,
                config.num_heads,
                config.ffn_hidden,
                Activation::Relu,
                rng,
            ),
            projection: Linear::new(config.dim, horizon, rng),
            input_len,
            horizon,
            num_vars,
        }
    }

    /// Full forward pass on one history window `[H, N]`.
    pub fn forward(&self, x: &Tensor) -> StudentOutput {
        let _span = timekd_obs::span("student.forward");
        assert_eq!(
            x.dims(),
            &[self.input_len, self.num_vars],
            "student input shape mismatch: got {}",
            x.shape()
        );
        let (normed, stats) = self.revin.normalize(x);
        // Inverted embedding: each variable becomes one token carrying its
        // whole history (iTransformer-style, Eq. 18).
        let tokens = self.inverted_embedding.forward(&normed.transpose_last()); // [N, D]
        let enc = self.encoder.forward(&tokens, None);
        let projected = self.projection.forward(&enc.output).transpose_last(); // [M, N]
        let forecast = self.revin.denormalize(&projected, &stats);
        StudentOutput {
            embedding: enc.output,
            attention: enc.last_attention,
            forecast,
        }
    }

    /// Inference-only prediction (no attention/embedding export, no graph).
    pub fn predict(&self, x: &Tensor) -> Tensor {
        let _span = timekd_obs::span("student.predict");
        timekd_tensor::no_grad(|| self.forward(x).forecast)
    }

    /// History length.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Forecast horizon.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Variable count.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }
}

impl Module for Student {
    fn params(&self) -> Vec<Tensor> {
        let mut v = self.revin.params();
        v.extend(self.inverted_embedding.params());
        v.extend(self.encoder.params());
        v.extend(self.projection.params());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_tensor::seeded_rng;

    #[allow(clippy::field_reassign_with_default)]
    fn student() -> Student {
        let mut cfg = TimeKdConfig::default();
        cfg.dim = 16;
        cfg.ffn_hidden = 32;
        cfg.num_heads = 2;
        let mut rng = seeded_rng(0);
        Student::new(&cfg, 24, 12, 5, &mut rng)
    }

    #[test]
    fn forward_shapes() {
        let s = student();
        let mut rng = seeded_rng(1);
        let x = Tensor::randn([24, 5], 1.0, &mut rng);
        let out = s.forward(&x);
        assert_eq!(out.embedding.dims(), &[5, 16]);
        assert_eq!(out.attention.dims(), &[5, 5]);
        assert_eq!(out.forecast.dims(), &[12, 5]);
    }

    #[test]
    fn predict_builds_no_graph() {
        let s = student();
        let mut rng = seeded_rng(2);
        let x = Tensor::randn([24, 5], 1.0, &mut rng);
        let y = s.predict(&x);
        assert!(!y.requires_grad());
        assert!(y.is_leaf());
    }

    #[test]
    fn forecast_scale_follows_input_scale() {
        // RevIN denormalisation must put forecasts back on the input's
        // scale: shifting the input by +100 shifts the forecast by ~+100.
        let s = student();
        let mut rng = seeded_rng(3);
        let x = Tensor::randn([24, 5], 1.0, &mut rng);
        let y1 = s.predict(&x);
        let y2 = s.predict(&x.add_scalar(100.0));
        let mean1: f32 = y1.to_vec().iter().sum::<f32>() / 60.0;
        let mean2: f32 = y2.to_vec().iter().sum::<f32>() / 60.0;
        assert!((mean2 - mean1 - 100.0).abs() < 1.0, "Δ={}", mean2 - mean1);
    }

    #[test]
    fn learns_identity_continuation() {
        // Constant-per-channel input: a trainable student should quickly
        // learn to forecast the constant.
        let s = student();
        let params = s.params();
        let mut opt = timekd_nn::AdamW::new(
            0.01,
            timekd_nn::AdamWConfig {
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        let mut rng = seeded_rng(4);
        // Linear ramps per channel continue linearly.
        let make = |offset: f32| {
            let mut x = vec![0.0; 24 * 5];
            let mut y = vec![0.0; 12 * 5];
            for j in 0..5 {
                for t in 0..24 {
                    x[t * 5 + j] = offset + (t as f32) * (j as f32 + 1.0) * 0.1;
                }
                for t in 0..12 {
                    y[t * 5 + j] = offset + ((t + 24) as f32) * (j as f32 + 1.0) * 0.1;
                }
            }
            (Tensor::from_vec(x, [24, 5]), Tensor::from_vec(y, [12, 5]))
        };
        let eval = {
            let (x, y) = make(3.3);
            move |s: &Student| timekd_data::mse(&s.predict(&x), &y)
        };
        let before = eval(&s);
        for _ in 0..60 {
            let (x, y) = make(rng.gen_range(-5.0f32..5.0));
            s.zero_grad();
            let out = s.forward(&x);
            timekd_nn::smooth_l1_loss(&out.forecast, &y).backward();
            opt.step(&params);
        }
        let after = eval(&s);
        assert!(
            after < before * 0.5,
            "student did not learn: {before} -> {after}"
        );
    }

    #[test]
    fn attention_and_embedding_in_graph_during_training() {
        let s = student();
        let mut rng = seeded_rng(5);
        let x = Tensor::randn([24, 5], 1.0, &mut rng);
        let out = s.forward(&x);
        assert!(out.embedding.requires_grad());
        assert!(out.attention.requires_grad());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_input_shape_panics() {
        let s = student();
        let x = Tensor::zeros([10, 5]);
        let _ = s.forward(&x);
    }
}
