//! TimeKD configuration and ablation switches.

use timekd_data::PromptConfig;
use timekd_lm::{LmConfig, LmSize};
use timekd_nn::LrSchedule;

/// Ablation switches matching the paper's Fig. 6 variants. All `true` is
/// full TimeKD; each `false` reproduces one `w/o_*` arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AblationConfig {
    /// `w/o_PI` when false: the teacher sees only historical prompts (the
    /// "traditional teacher" of Fig. 1).
    pub privileged_info: bool,
    /// `w/o_CA` when false: plain causal attention instead of the
    /// calibrated −Δ bias.
    pub calibrated_attention: bool,
    /// `w/o_CLM` when false: prompts bypass the language model entirely;
    /// value sequences are linearly embedded instead.
    pub use_clm: bool,
    /// `w/o_SCA` when false: direct embedding subtraction replaces
    /// subtractive cross attention.
    pub use_sca: bool,
    /// `w/o_CD` when false: no correlation (attention-map) distillation.
    pub correlation_distillation: bool,
    /// `w/o_FD` when false: no feature distillation.
    pub feature_distillation: bool,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            privileged_info: true,
            calibrated_attention: true,
            use_clm: true,
            use_sca: true,
            correlation_distillation: true,
            feature_distillation: true,
        }
    }
}

impl AblationConfig {
    /// The full model.
    pub fn full() -> Self {
        Self::default()
    }

    /// `w/o_PI`.
    pub fn without_privileged_info() -> Self {
        Self {
            privileged_info: false,
            ..Self::default()
        }
    }

    /// `w/o_CA`.
    pub fn without_calibrated_attention() -> Self {
        Self {
            calibrated_attention: false,
            ..Self::default()
        }
    }

    /// `w/o_CLM`.
    pub fn without_clm() -> Self {
        Self {
            use_clm: false,
            ..Self::default()
        }
    }

    /// `w/o_SCA`.
    pub fn without_sca() -> Self {
        Self {
            use_sca: false,
            ..Self::default()
        }
    }

    /// `w/o_CD`.
    pub fn without_correlation_distillation() -> Self {
        Self {
            correlation_distillation: false,
            ..Self::default()
        }
    }

    /// `w/o_FD`.
    pub fn without_feature_distillation() -> Self {
        Self {
            feature_distillation: false,
            ..Self::default()
        }
    }

    /// The variant label used in Fig. 6.
    pub fn label(&self) -> &'static str {
        let full = Self::default();
        if *self == full {
            "TimeKD"
        } else if !self.privileged_info {
            "w/o_PI"
        } else if !self.calibrated_attention {
            "w/o_CA"
        } else if !self.use_clm {
            "w/o_CLM"
        } else if !self.use_sca {
            "w/o_SCA"
        } else if !self.correlation_distillation {
            "w/o_CD"
        } else {
            "w/o_FD"
        }
    }
}

/// Full TimeKD hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TimeKdConfig {
    /// Transformer hidden width `D` of both `PTEncoder` and `TSTEncoder`
    /// (the paper uses 64).
    pub dim: usize,
    /// Encoder depth (paper: 2).
    pub num_layers: usize,
    /// Attention heads.
    pub num_heads: usize,
    /// FFN expansion width.
    pub ffn_hidden: usize,
    /// Backbone tier of the calibrated language model.
    pub lm_size: LmSize,
    /// Language-model hyper-parameters (derived from `lm_size` by
    /// default).
    pub lm: LmConfig,
    /// Prompt rendering configuration.
    pub prompt: PromptConfig,
    /// λ_r: reconstruction loss weight (Eq. 30).
    pub lambda_recon: f32,
    /// λ_c: correlation distillation weight (Eq. 26).
    pub lambda_cd: f32,
    /// λ_e: feature distillation weight (Eq. 26).
    pub lambda_fd: f32,
    /// λ_p: PKD weight in the joint objective (Eq. 30).
    pub lambda_pkd: f32,
    /// λ_f: forecasting loss weight (Eq. 30).
    pub lambda_fcst: f32,
    /// Teacher-only reconstruction epochs run before the first student
    /// epoch (Algorithm 1 trains the teacher to convergence before
    /// distillation starts).
    pub teacher_warmup_epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Learning-rate schedule applied on top of `lr` (per optimizer step).
    pub lr_schedule: LrSchedule,
    /// Gradient-clipping norm.
    pub grad_clip: f32,
    /// Student training micro-batch `B`: how many windows the batched
    /// planned trainer replays before one optimizer step folds their
    /// accumulated gradients. `1` reproduces the per-window loop bitwise.
    pub micro_batch: usize,
    /// Parameter init / shuffling seed.
    pub seed: u64,
    /// Ablation switches.
    pub ablation: AblationConfig,
}

impl Default for TimeKdConfig {
    fn default() -> Self {
        let lm_size = LmSize::Base;
        TimeKdConfig {
            dim: 32,
            num_layers: 2,
            num_heads: 4,
            ffn_hidden: 64,
            lm_size,
            lm: LmConfig::for_size(lm_size),
            prompt: PromptConfig::default(),
            lambda_recon: 1.0,
            lambda_cd: 1.0,
            lambda_fd: 1.0,
            lambda_pkd: 0.1,
            lambda_fcst: 1.0,
            teacher_warmup_epochs: 6,
            lr: 1e-3,
            lr_schedule: LrSchedule::Constant,
            grad_clip: 1.0,
            micro_batch: 1,
            seed: 2025,
            ablation: AblationConfig::default(),
        }
    }
}

impl TimeKdConfig {
    /// Default config with an explicit LM tier (Table III ablation).
    pub fn with_lm_size(size: LmSize) -> Self {
        TimeKdConfig {
            lm_size: size,
            lm: LmConfig::for_size(size),
            ..Default::default()
        }
    }

    /// Default config with explicit ablation switches (Fig. 6).
    pub fn with_ablation(ablation: AblationConfig) -> Self {
        let mut cfg = TimeKdConfig {
            ablation,
            ..Default::default()
        };
        if !ablation.calibrated_attention {
            cfg.lm.calibration_delta = 0.0;
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_model() {
        assert_eq!(AblationConfig::default().label(), "TimeKD");
    }

    #[test]
    fn ablation_labels() {
        assert_eq!(AblationConfig::without_privileged_info().label(), "w/o_PI");
        assert_eq!(
            AblationConfig::without_calibrated_attention().label(),
            "w/o_CA"
        );
        assert_eq!(AblationConfig::without_clm().label(), "w/o_CLM");
        assert_eq!(AblationConfig::without_sca().label(), "w/o_SCA");
        assert_eq!(
            AblationConfig::without_correlation_distillation().label(),
            "w/o_CD"
        );
        assert_eq!(
            AblationConfig::without_feature_distillation().label(),
            "w/o_FD"
        );
    }

    #[test]
    fn dim_divisible_by_heads() {
        let c = TimeKdConfig::default();
        assert_eq!(c.dim % c.num_heads, 0);
    }

    #[test]
    fn with_lm_size_propagates() {
        let c = TimeKdConfig::with_lm_size(LmSize::Large);
        assert_eq!(c.lm.dim, LmConfig::for_size(LmSize::Large).dim);
    }

    #[test]
    fn without_ca_zeroes_delta() {
        let c = TimeKdConfig::with_ablation(AblationConfig::without_calibrated_attention());
        assert_eq!(c.lm.calibration_delta, 0.0);
    }
}
