//! Privileged knowledge distillation (paper §IV-D, Alg. 2).
//!
//! Two complementary losses transfer the teacher's privileged knowledge:
//! - **correlation distillation** (Eq. 24) aligns the student's attention
//!   map `A_TSE` with the teacher's `A_PE`, making the student imitate the
//!   teacher's *behaviour* (which variables attend to which);
//! - **feature distillation** (Eq. 25) aligns the student's encoder output
//!   `T̄_H` with the teacher's privileged embedding `E_GT`, minimising the
//!   output discrepancy.
//!
//! Teacher tensors are detached: gradients flow into the student only, so
//! the student cannot drag the teacher toward itself.

use timekd_nn::smooth_l1_loss;
use timekd_tensor::Tensor;

use crate::config::TimeKdConfig;

/// The PKD loss terms for one window.
pub struct PkdLosses {
    /// `L_cd` (zero tensor when disabled by ablation).
    pub correlation: Tensor,
    /// `L_fd` (zero tensor when disabled by ablation).
    pub feature: Tensor,
    /// `λ_c · L_cd + λ_e · L_fd` (Eq. 26).
    pub combined: Tensor,
}

/// Computes the PKD losses from teacher and student products.
///
/// `teacher_attention`/`teacher_embedding` are detached internally.
pub fn pkd_losses(
    teacher_attention: &Tensor,
    teacher_embedding: &Tensor,
    student_attention: &Tensor,
    student_embedding: &Tensor,
    config: &TimeKdConfig,
) -> PkdLosses {
    let ab = config.ablation;
    let correlation = if ab.correlation_distillation {
        let _span = timekd_obs::span("pkd.correlation");
        smooth_l1_loss(student_attention, &teacher_attention.detach())
    } else {
        Tensor::scalar(0.0)
    };
    let feature = if ab.feature_distillation {
        let _span = timekd_obs::span("pkd.feature");
        smooth_l1_loss(student_embedding, &teacher_embedding.detach())
    } else {
        Tensor::scalar(0.0)
    };
    let combined = correlation
        .mul_scalar(config.lambda_cd)
        .add(&feature.mul_scalar(config.lambda_fd));
    PkdLosses {
        correlation,
        feature,
        combined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AblationConfig;
    use timekd_tensor::seeded_rng;

    fn setup() -> (Tensor, Tensor, Tensor, Tensor) {
        let mut rng = seeded_rng(0);
        let ta = Tensor::randn([4, 4], 0.2, &mut rng).softmax_last();
        let te = Tensor::randn([4, 8], 1.0, &mut rng);
        let sa = Tensor::randn_param([4, 4], 0.2, &mut rng).softmax_last();
        let se = Tensor::randn_param([4, 8], 1.0, &mut rng);
        (ta, te, sa, se)
    }

    #[test]
    fn perfect_student_zero_loss() {
        let (ta, te, _, _) = setup();
        let cfg = TimeKdConfig::default();
        let l = pkd_losses(&ta, &te, &ta, &te, &cfg);
        assert_eq!(l.correlation.item(), 0.0);
        assert_eq!(l.feature.item(), 0.0);
        assert_eq!(l.combined.item(), 0.0);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn combined_respects_lambdas() {
        let (ta, te, sa, se) = setup();
        let mut cfg = TimeKdConfig::default();
        cfg.lambda_cd = 2.0;
        cfg.lambda_fd = 0.5;
        let l = pkd_losses(&ta, &te, &sa, &se, &cfg);
        let expected = 2.0 * l.correlation.item() + 0.5 * l.feature.item();
        assert!((l.combined.item() - expected).abs() < 1e-6);
    }

    #[test]
    fn gradient_flows_to_student_not_teacher() {
        let mut rng = seeded_rng(1);
        let ta = Tensor::randn_param([3, 3], 0.2, &mut rng); // trainable teacher (should be detached)
        let te = Tensor::randn_param([3, 8], 1.0, &mut rng);
        let sa = Tensor::randn_param([3, 3], 0.2, &mut rng);
        let se = Tensor::randn_param([3, 8], 1.0, &mut rng);
        let cfg = TimeKdConfig::default();
        let l = pkd_losses(&ta, &te, &sa, &se, &cfg);
        l.combined.backward();
        assert!(sa.grad().is_some() && se.grad().is_some());
        assert!(ta.grad().is_none(), "teacher attention must be detached");
        assert!(te.grad().is_none(), "teacher embedding must be detached");
    }

    #[test]
    fn ablation_disables_terms() {
        let (ta, te, sa, se) = setup();
        let cd_off =
            TimeKdConfig::with_ablation(AblationConfig::without_correlation_distillation());
        let l = pkd_losses(&ta, &te, &sa, &se, &cd_off);
        assert_eq!(l.correlation.item(), 0.0);
        assert!(l.feature.item() > 0.0);

        let fd_off = TimeKdConfig::with_ablation(AblationConfig::without_feature_distillation());
        let l = pkd_losses(&ta, &te, &sa, &se, &fd_off);
        assert!(l.correlation.item() > 0.0);
        assert_eq!(l.feature.item(), 0.0);
    }

    #[test]
    fn distillation_gradients_match_finite_differences() {
        // Central-difference check of both PKD terms. The correlation loss
        // only touches the student attention and the feature loss only the
        // student embedding, so each is checked against its own parameter;
        // the combined loss is checked against both.
        let mut rng = seeded_rng(3);
        let ta = Tensor::randn([3, 3], 0.2, &mut rng).softmax_last();
        let te = Tensor::randn([3, 4], 0.4, &mut rng);
        let sa_logits = Tensor::randn_param([3, 3], 0.2, &mut rng);
        let se = Tensor::randn_param([3, 4], 0.4, &mut rng);
        let cfg = TimeKdConfig::default();
        timekd_tensor::assert_gradients_close(
            &sa_logits,
            || pkd_losses(&ta, &te, &sa_logits.softmax_last(), &se, &cfg).correlation,
            3e-2,
        );
        timekd_tensor::assert_gradients_close(
            &se,
            || pkd_losses(&ta, &te, &sa_logits.softmax_last(), &se, &cfg).feature,
            3e-2,
        );
        for p in [&sa_logits, &se] {
            timekd_tensor::assert_gradients_close(
                p,
                || pkd_losses(&ta, &te, &sa_logits.softmax_last(), &se, &cfg).combined,
                3e-2,
            );
        }
    }

    #[test]
    fn minimising_pkd_aligns_student_with_teacher() {
        let mut rng = seeded_rng(2);
        let ta = Tensor::randn([3, 3], 0.2, &mut rng).softmax_last();
        let te = Tensor::randn([3, 4], 1.0, &mut rng);
        let sa_logits = Tensor::randn_param([3, 3], 0.2, &mut rng);
        let se = Tensor::randn_param([3, 4], 1.0, &mut rng);
        let cfg = TimeKdConfig::default();
        let mut opt = timekd_nn::AdamW::new(
            0.05,
            timekd_nn::AdamWConfig {
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        let params = vec![sa_logits.clone(), se.clone()];
        let loss_val = |sa_logits: &Tensor, se: &Tensor| {
            pkd_losses(&ta, &te, &sa_logits.softmax_last(), se, &cfg)
                .combined
                .item()
        };
        let before = loss_val(&sa_logits, &se);
        for _ in 0..150 {
            for p in &params {
                p.zero_grad();
            }
            let l = pkd_losses(&ta, &te, &sa_logits.softmax_last(), &se, &cfg);
            l.combined.backward();
            opt.step(&params);
        }
        let after = loss_val(&sa_logits, &se);
        assert!(after < before * 0.1, "{before} -> {after}");
    }
}
