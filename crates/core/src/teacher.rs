//! The cross-modality teacher model (paper §IV-B, Fig. 3 left, Alg. 1).
//!
//! Pipeline: ground-truth and historical prompts → frozen calibrated LM
//! (last-token embeddings, cached) → projection into teacher width →
//! subtractive cross attention → privileged Transformer encoder
//! (`PTEncoder`) → reconstruction head. The encoder output `E_GT` and its
//! attention map `A_PE` are the privileged knowledge handed to the student.

use std::rc::Rc;

use timekd_data::WindowPrompts;
use timekd_lm::FrozenLm;
use timekd_nn::{Activation, Linear, Module, TransformerEncoder};
use timekd_tensor::SeededRng;
use timekd_tensor::Tensor;

use crate::config::TimeKdConfig;
use crate::sca::SubtractiveCrossAttention;

/// Everything the teacher produces for one window.
pub struct TeacherOutput {
    /// Privileged embeddings `E_GT` `[N, D]` (Eq. 14).
    pub embedding: Tensor,
    /// Head-averaged attention `A_PE` `[N, N]` of the last `PTEncoder`
    /// layer (consumed by correlation distillation).
    pub attention: Tensor,
    /// Reconstructed ground truth `X̂_G` `[M, N]` (Eq. 15).
    pub reconstruction: Tensor,
}

/// The LUPI teacher. Trainable parts: the LM projection, SCA, `PTEncoder`
/// and the reconstruction head; the CLM itself stays frozen.
pub struct CrossModalityTeacher {
    frozen_lm: Rc<FrozenLm>,
    lm_proj: Linear,
    // `w/o_CLM` path: value sequences embedded directly, no language model.
    hist_value_proj: Linear,
    gt_value_proj: Linear,
    sca: SubtractiveCrossAttention,
    pt_encoder: TransformerEncoder,
    recon_head: Linear,
    config: TimeKdConfig,
    input_len: usize,
    horizon: usize,
}

impl CrossModalityTeacher {
    /// Builds the teacher for windows of `input_len` history steps and
    /// `horizon` future steps.
    pub fn new(
        frozen_lm: Rc<FrozenLm>,
        config: TimeKdConfig,
        input_len: usize,
        horizon: usize,
        rng: &mut SeededRng,
    ) -> CrossModalityTeacher {
        let lm_dim = frozen_lm.model().config().dim;
        CrossModalityTeacher {
            frozen_lm,
            lm_proj: Linear::new(lm_dim, config.dim, rng),
            hist_value_proj: Linear::new(input_len, config.dim, rng),
            gt_value_proj: Linear::new(input_len + horizon, config.dim, rng),
            sca: SubtractiveCrossAttention::new(config.dim, config.ffn_hidden, rng),
            pt_encoder: TransformerEncoder::new(
                config.dim,
                config.num_layers,
                config.num_heads,
                config.ffn_hidden,
                Activation::Relu,
                rng,
            ),
            recon_head: Linear::new(config.dim, horizon, rng),
            config,
            input_len,
            horizon,
        }
    }

    /// Last-token prompt embeddings `[N, D]` via the frozen CLM + trainable
    /// projection.
    fn clm_embeddings(&self, prompts: &[Vec<timekd_lm::Token>]) -> Tensor {
        let _span = timekd_obs::span("teacher.clm_embed");
        let calibrated = self.config.ablation.calibrated_attention;
        let lm_dim = self.frozen_lm.model().config().dim;
        let n = prompts.len();
        let rows: Vec<Tensor> = prompts
            .iter()
            .map(|p| self.frozen_lm.embed(p, calibrated).reshape([1, lm_dim]))
            .collect();
        let stacked = Tensor::concat(&rows, 0);
        debug_assert_eq!(stacked.dims(), &[n, lm_dim]);
        self.lm_proj.forward(&stacked)
    }

    /// Teacher forward for one window.
    ///
    /// `x` is the history `[H, N]`, `y` the ground truth `[M, N]`
    /// (privileged, training only), and `prompts` their textual renderings.
    pub fn forward(&self, x: &Tensor, y: &Tensor, prompts: &WindowPrompts) -> TeacherOutput {
        let _span = timekd_obs::span("teacher.forward");
        let ab = self.config.ablation;
        let n = x.dims()[1];
        assert_eq!(x.dims()[0], self.input_len, "history length mismatch");
        assert_eq!(y.dims()[0], self.horizon, "horizon mismatch");
        let (l_gt, l_hd) = if ab.use_clm {
            let gt_prompts = if ab.privileged_info {
                &prompts.ground_truth
            } else {
                // w/o_PI: the "traditional teacher" only ever sees history.
                &prompts.historical
            };
            (
                self.clm_embeddings(gt_prompts),
                self.clm_embeddings(&prompts.historical),
            )
        } else {
            // w/o_CLM: embed raw value sequences per variable.
            let xt = x.transpose_last(); // [N, H]
            let l_hd = self.hist_value_proj.forward(&xt);
            let l_gt = if ab.privileged_info {
                let yt = y.transpose_last(); // [N, M]
                let joint = Tensor::concat(&[xt, yt], 1); // [N, H+M]
                self.gt_value_proj.forward(&joint)
            } else {
                self.hist_value_proj.forward(&x.transpose_last())
            };
            (l_gt, l_hd)
        };
        debug_assert_eq!(l_gt.dims(), &[n, self.config.dim]);
        let refined = {
            let _span = timekd_obs::span("teacher.sca");
            if ab.use_sca {
                self.sca.forward(&l_gt, &l_hd)
            } else {
                self.sca.forward_direct(&l_gt, &l_hd)
            }
        };
        let enc = self.pt_encoder.forward(&refined, None);
        let recon = self.recon_head.forward(&enc.output).transpose_last(); // [M, N]
        TeacherOutput {
            embedding: enc.output,
            attention: enc.last_attention,
            reconstruction: recon,
        }
    }

    /// The frozen language model (for cache statistics).
    pub fn frozen_lm(&self) -> &FrozenLm {
        &self.frozen_lm
    }

    /// Forecast horizon.
    pub fn horizon(&self) -> usize {
        self.horizon
    }
}

impl Module for CrossModalityTeacher {
    /// Trainable parameters only — the frozen CLM is deliberately absent.
    fn params(&self) -> Vec<Tensor> {
        let ab = self.config.ablation;
        let mut v = Vec::new();
        if ab.use_clm {
            v.extend(self.lm_proj.params());
        } else {
            v.extend(self.hist_value_proj.params());
            if ab.privileged_info {
                v.extend(self.gt_value_proj.params());
            }
        }
        v.extend(self.sca.params());
        v.extend(self.pt_encoder.params());
        v.extend(self.recon_head.params());
        v
    }
}

/// Renders the window prompts the teacher consumes (standalone helper so
/// callers can cache them per window).
pub fn render_prompts(
    tokenizer: &timekd_lm::PromptTokenizer,
    x: &Tensor,
    y: &Tensor,
    config: &TimeKdConfig,
) -> WindowPrompts {
    timekd_data::window_prompts(tokenizer, x, y, &config.prompt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AblationConfig;
    use timekd_lm::{pretrain_lm, LmConfig, LmSize, PretrainConfig, PromptTokenizer};
    use timekd_tensor::seeded_rng;

    fn tiny_teacher(
        ablation: AblationConfig,
    ) -> (CrossModalityTeacher, PromptTokenizer, TimeKdConfig) {
        let tok = PromptTokenizer::new();
        let mut cfg = TimeKdConfig::with_ablation(ablation);
        cfg.dim = 16;
        cfg.ffn_hidden = 32;
        cfg.num_heads = 2;
        cfg.lm = LmConfig::for_size(LmSize::Small);
        cfg.prompt.max_history = 4;
        cfg.prompt.max_future = 4;
        let (lm, _) = pretrain_lm(
            &tok,
            cfg.lm,
            PretrainConfig {
                steps: 2,
                ..Default::default()
            },
        );
        let mut rng = seeded_rng(0);
        let teacher = CrossModalityTeacher::new(Rc::new(FrozenLm::new(lm)), cfg, 8, 4, &mut rng);
        (teacher, tok, cfg)
    }

    fn window(rng: &mut timekd_tensor::SeededRng) -> (Tensor, Tensor) {
        (
            Tensor::randn([8, 3], 1.0, rng),
            Tensor::randn([4, 3], 1.0, rng),
        )
    }

    #[test]
    fn forward_shapes() {
        let (teacher, tok, cfg) = tiny_teacher(AblationConfig::full());
        let mut rng = seeded_rng(1);
        let (x, y) = window(&mut rng);
        let prompts = render_prompts(&tok, &x, &y, &cfg);
        let out = teacher.forward(&x, &y, &prompts);
        assert_eq!(out.embedding.dims(), &[3, 16]);
        assert_eq!(out.attention.dims(), &[3, 3]);
        assert_eq!(out.reconstruction.dims(), &[4, 3]);
    }

    #[test]
    fn clm_stays_frozen() {
        let (teacher, tok, cfg) = tiny_teacher(AblationConfig::full());
        let mut rng = seeded_rng(2);
        let (x, y) = window(&mut rng);
        let prompts = render_prompts(&tok, &x, &y, &cfg);
        let out = teacher.forward(&x, &y, &prompts);
        timekd_nn::smooth_l1_loss(&out.reconstruction, &y).backward();
        // Teacher's trainable params get gradients …
        assert!(teacher.params().iter().any(|p| p.grad().is_some()));
        // … but the frozen LM does not.
        for p in teacher.frozen_lm().model().params() {
            assert!(p.grad().is_none(), "frozen LM received a gradient");
        }
    }

    #[test]
    fn prompt_cache_reused_across_steps() {
        let (teacher, tok, cfg) = tiny_teacher(AblationConfig::full());
        let mut rng = seeded_rng(3);
        let (x, y) = window(&mut rng);
        let prompts = render_prompts(&tok, &x, &y, &cfg);
        let _ = teacher.forward(&x, &y, &prompts);
        let (h1, m1) = teacher.frozen_lm().cache_stats();
        let _ = teacher.forward(&x, &y, &prompts);
        let (h2, m2) = teacher.frozen_lm().cache_stats();
        assert_eq!(m1, m2, "second pass must not re-run the CLM");
        assert!(h2 > h1);
    }

    #[test]
    fn privileged_info_changes_output() {
        let (full, tok, cfg) = tiny_teacher(AblationConfig::full());
        let mut rng = seeded_rng(4);
        let (x, y) = window(&mut rng);
        let prompts = render_prompts(&tok, &x, &y, &cfg);
        let with_pi = full.forward(&x, &y, &prompts);
        // Same teacher, but pretend it never saw ground truth: use the
        // w/o_PI variant built with the same seed.
        let (wo, tok2, cfg2) = tiny_teacher(AblationConfig::without_privileged_info());
        let prompts2 = render_prompts(&tok2, &x, &y, &cfg2);
        let without = wo.forward(&x, &y, &prompts2);
        assert_ne!(with_pi.embedding.to_vec(), without.embedding.to_vec());
    }

    #[test]
    fn wo_clm_path_runs_without_lm_calls() {
        let (teacher, tok, cfg) = tiny_teacher(AblationConfig::without_clm());
        let mut rng = seeded_rng(5);
        let (x, y) = window(&mut rng);
        let prompts = render_prompts(&tok, &x, &y, &cfg);
        let out = teacher.forward(&x, &y, &prompts);
        assert_eq!(out.reconstruction.dims(), &[4, 3]);
        let (_, misses) = teacher.frozen_lm().cache_stats();
        assert_eq!(misses, 0, "w/o_CLM must not touch the language model");
    }

    #[test]
    fn reconstruction_trainable() {
        let (teacher, tok, cfg) = tiny_teacher(AblationConfig::full());
        let mut rng = seeded_rng(6);
        let (x, y) = window(&mut rng);
        let prompts = render_prompts(&tok, &x, &y, &cfg);
        let params = teacher.params();
        let mut opt = timekd_nn::AdamW::new(
            0.005,
            timekd_nn::AdamWConfig {
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        let before =
            timekd_nn::smooth_l1_loss(&teacher.forward(&x, &y, &prompts).reconstruction, &y).item();
        for _ in 0..40 {
            teacher.zero_grad();
            let loss =
                timekd_nn::smooth_l1_loss(&teacher.forward(&x, &y, &prompts).reconstruction, &y);
            loss.backward();
            opt.step(&params);
        }
        let after =
            timekd_nn::smooth_l1_loss(&teacher.forward(&x, &y, &prompts).reconstruction, &y).item();
        assert!(
            after < before * 0.7,
            "reconstruction did not improve: {before} -> {after}"
        );
    }
}
