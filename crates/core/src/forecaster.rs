//! The common interface every forecasting model in this workspace exposes
//! (TimeKD and all baselines), so the experiment harness can sweep them
//! uniformly.

use timekd_data::{ForecastWindow, MetricAccumulator};
use timekd_tensor::Tensor;

/// A trainable multivariate forecaster mapping `[H, N]` histories to
/// `[M, N]` forecasts.
pub trait Forecaster {
    /// Model name as printed in the paper's tables.
    fn name(&self) -> String;

    /// One pass over the given training windows; returns the mean training
    /// loss.
    fn train_epoch(&mut self, windows: &[ForecastWindow]) -> f32;

    /// Forecast for one history window (no gradient).
    fn predict(&self, x: &Tensor) -> Tensor;

    /// Number of trainable scalar parameters (Table IV's "Trainabl.
    /// Param.").
    fn num_trainable_params(&self) -> usize;

    /// MSE/MAE over a window set (Eq. 31–32), one window at a time to
    /// mirror the paper's batch-size-1 test protocol.
    fn evaluate(&self, windows: &[ForecastWindow]) -> (f32, f32) {
        assert!(!windows.is_empty(), "evaluate() called with no windows");
        let mut acc = MetricAccumulator::new();
        for w in windows {
            let pred = self.predict(&w.x);
            acc.update(&pred, &w.y);
        }
        (acc.mse(), acc.mae())
    }

    /// Autoregressive rolling forecast beyond the trained horizon: predicts
    /// `total_horizon` steps by repeatedly feeding its own predictions back
    /// as history (an extension beyond the paper's fixed-horizon protocol).
    fn predict_rolling(&self, x: &Tensor, total_horizon: usize) -> Tensor {
        assert!(total_horizon > 0, "rolling horizon must be positive");
        let (h, n) = (x.dims()[0], x.dims()[1]);
        let mut history = x.to_vec(); // grows by m rows per round
        let mut collected: Vec<f32> = Vec::with_capacity(total_horizon * n);
        while collected.len() < total_horizon * n {
            let start = history.len() - h * n;
            let window = Tensor::from_vec(history[start..].to_vec(), [h, n]);
            let pred = self.predict(&window);
            assert_eq!(pred.dims()[1], n, "prediction channel mismatch");
            let pred_data = pred.to_vec();
            collected.extend_from_slice(&pred_data);
            history.extend_from_slice(&pred_data);
        }
        collected.truncate(total_horizon * n);
        Tensor::from_vec(collected, [total_horizon, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Predicts the last observed value for every future step (a classic
    /// naive baseline) — used here to exercise the trait's default eval.
    struct NaiveLast {
        horizon: usize,
    }

    impl Forecaster for NaiveLast {
        fn name(&self) -> String {
            "NaiveLast".into()
        }

        fn train_epoch(&mut self, _windows: &[ForecastWindow]) -> f32 {
            0.0
        }

        fn predict(&self, x: &Tensor) -> Tensor {
            let (h, n) = (x.dims()[0], x.dims()[1]);
            let last = x.slice(0, h - 1, 1); // [1, N]
            last.broadcast_to([self.horizon, n])
        }

        fn num_trainable_params(&self) -> usize {
            0
        }
    }

    #[test]
    fn rolling_forecast_shapes_and_consistency() {
        let model = NaiveLast { horizon: 3 };
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        // NaiveLast repeats the last row forever, so rolling = constant.
        let out = model.predict_rolling(&x, 7);
        assert_eq!(out.dims(), &[7, 2]);
        let v = out.to_vec();
        for t in 0..7 {
            assert_eq!(v[t * 2], 3.0);
            assert_eq!(v[t * 2 + 1], 4.0);
        }
    }

    #[test]
    fn rolling_truncates_to_exact_horizon() {
        let model = NaiveLast { horizon: 4 };
        let x = Tensor::zeros([3, 1]);
        // 4-step model asked for 6 steps: 2 rounds, truncated from 8.
        assert_eq!(model.predict_rolling(&x, 6).dims(), &[6, 1]);
    }

    #[test]
    fn default_evaluate_aggregates() {
        let model = NaiveLast { horizon: 2 };
        let x = Tensor::from_vec(vec![0.0, 0.0, 5.0, 7.0], [2, 2]);
        let y = Tensor::from_vec(vec![5.0, 7.0, 6.0, 8.0], [2, 2]);
        let w = ForecastWindow { x, y, index: 0 };
        let (mse, mae) = model.evaluate(&[w]);
        // Predictions are all [5, 7]; errors only on the second row (1, 1).
        assert!((mse - 0.5).abs() < 1e-6);
        assert!((mae - 0.5).abs() < 1e-6);
    }
}
