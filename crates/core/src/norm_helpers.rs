//! Small shared numerical helpers for the core models.

use timekd_tensor::Tensor;

/// Parameter-free layer normalisation over the last axis (γ=1, β=0).
///
/// Eq. 8 of the paper normalises the SCA projections before the similarity
/// product; those normalisations carry no learnable affine of their own.
pub fn layer_norm_const(x: &Tensor) -> Tensor {
    let rank = x.shape().rank();
    let mu = x.mean_axis(rank - 1, true);
    let centered = x.sub(&mu);
    let var = centered.square().mean_axis(rank - 1, true);
    centered.mul(&var.add_scalar(1e-5).rsqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_tensor::seeded_rng;

    #[test]
    fn rows_standardised() {
        let mut rng = seeded_rng(0);
        let x = Tensor::randn([3, 8], 4.0, &mut rng).add_scalar(2.0);
        let y = layer_norm_const(&x).to_vec();
        for r in 0..3 {
            let row = &y[r * 8..(r + 1) * 8];
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn differentiable() {
        let p = Tensor::param(vec![1.0, 2.0, 3.0, 4.0], [1, 4]);
        layer_norm_const(&p).square().mean().backward();
        assert!(p.grad().is_some());
    }
}
