//! TimeKD end-to-end: teacher + student + PKD, jointly optimised per
//! Eq. 30 and Algorithms 1–2.

use std::rc::Rc;

use timekd_data::{ForecastWindow, WindowPrompts};
use timekd_lm::{pretrain_lm, FrozenLm, PretrainConfig, PromptTokenizer};
use timekd_nn::{clip_grad_norm, smooth_l1_loss, AdamW, AdamWConfig, Module};
use timekd_tensor::{seeded_rng, PlanOptimizer, Tensor};

use crate::config::TimeKdConfig;
use crate::distill::pkd_losses;
use crate::forecaster::Forecaster;
use crate::plan::PlannedBatchTrainer;
use crate::student::Student;
use crate::teacher::{render_prompts, CrossModalityTeacher};

/// Loss breakdown of one training epoch.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Mean total loss (Eq. 30).
    pub total: f32,
    /// Mean reconstruction loss `L_recon`.
    pub reconstruction: f32,
    /// Mean correlation distillation loss `L_cd`.
    pub correlation: f32,
    /// Mean feature distillation loss `L_fd`.
    pub feature: f32,
    /// Mean forecasting loss `L_fcst`.
    pub forecast: f32,
}

/// The full TimeKD model: a cross-modality teacher distilled into a
/// lightweight student. Construct with [`TimeKd::new`] (pretrains a fresh
/// CLM) or [`TimeKd::with_frozen_lm`] (shares one across models — the
/// pattern the experiment harness uses).
pub struct TimeKd {
    config: TimeKdConfig,
    tokenizer: Rc<PromptTokenizer>,
    teacher: CrossModalityTeacher,
    student: Student,
    optimizer: AdamW,
    warmup_done: bool,
    /// The batched planned student trainer, built lazily on the first
    /// student epoch and reused for every following one (it owns the
    /// fused AdamW moment state, so it must survive across epochs).
    planned: Option<PlannedBatchTrainer>,
}

impl TimeKd {
    /// Builds TimeKD with an internally pretrained CLM.
    pub fn new(config: TimeKdConfig, input_len: usize, horizon: usize, num_vars: usize) -> TimeKd {
        let tokenizer = Rc::new(PromptTokenizer::new());
        let (lm, _report) = pretrain_lm(
            &tokenizer,
            config.lm,
            PretrainConfig {
                seed: config.seed,
                ..Default::default()
            },
        );
        Self::with_frozen_lm(
            Rc::new(FrozenLm::new(lm)),
            tokenizer,
            config,
            input_len,
            horizon,
            num_vars,
        )
    }

    /// Builds TimeKD around an existing frozen language model.
    pub fn with_frozen_lm(
        frozen_lm: Rc<FrozenLm>,
        tokenizer: Rc<PromptTokenizer>,
        config: TimeKdConfig,
        input_len: usize,
        horizon: usize,
        num_vars: usize,
    ) -> TimeKd {
        let mut rng = seeded_rng(config.seed);
        let teacher = CrossModalityTeacher::new(frozen_lm, config, input_len, horizon, &mut rng);
        let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
        let optimizer = AdamW::new(
            config.lr,
            AdamWConfig {
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        TimeKd {
            config,
            tokenizer,
            teacher,
            student,
            optimizer,
            warmup_done: false,
            planned: None,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &TimeKdConfig {
        &self.config
    }

    /// The student (inference) model.
    pub fn student(&self) -> &Student {
        &self.student
    }

    /// The teacher model.
    pub fn teacher(&self) -> &CrossModalityTeacher {
        &self.teacher
    }

    /// The prompt tokenizer.
    pub fn tokenizer(&self) -> &PromptTokenizer {
        &self.tokenizer
    }

    fn prompts_for(&self, w: &ForecastWindow) -> WindowPrompts {
        render_prompts(&self.tokenizer, &w.x, &w.y, &self.config)
    }

    /// Applies the configured LR schedule for the upcoming optimizer step.
    fn apply_lr_schedule(&mut self) {
        let factor = self.config.lr_schedule.factor(self.optimizer.steps());
        self.optimizer.set_lr(self.config.lr * factor);
    }

    /// All trainable parameters (teacher heads + student; CLM excluded).
    pub fn trainable_params(&self) -> Vec<Tensor> {
        let mut v = self.teacher.params();
        v.extend(self.student.params());
        v
    }

    /// Frozen-parameter invariant (Eqs. 18–30): the calibrated LM must
    /// stay frozen while PKD trains the teacher heads and student —
    /// no backward pass may accumulate a gradient into an LM parameter,
    /// and the optimizer must never have stepped one.
    ///
    /// Called after every backward in the training loops; panics with the
    /// offending parameter's identity on violation.
    pub fn assert_frozen_lm_invariant(&self) {
        for p in self.teacher.frozen_lm().model().params() {
            assert!(
                !p.has_grad(),
                "frozen LM parameter #{} {} accumulated a gradient: the CLM must stay \
                 frozen during PKD training",
                p.id(),
                p.shape()
            );
            assert!(
                !self.optimizer.has_stepped(p.id()),
                "optimizer stepped frozen LM parameter #{} {}",
                p.id(),
                p.shape()
            );
        }
    }

    /// **Algorithm 1**: one pass training the cross-modality teacher on
    /// the reconstruction objective (Eq. 16). Returns the mean `L_recon`.
    pub fn train_teacher_epoch(&mut self, windows: &[ForecastWindow]) -> f32 {
        let _span = timekd_obs::span("epoch.teacher");
        assert!(!windows.is_empty(), "no training windows");
        let params = self.teacher.params();
        let mut total = 0.0f32;
        for w in windows {
            for p in &params {
                p.zero_grad();
            }
            let prompts = self.prompts_for(w);
            let out = self.teacher.forward(&w.x, &w.y, &prompts);
            let recon =
                smooth_l1_loss(&out.reconstruction, &w.y).mul_scalar(self.config.lambda_recon);
            total += recon.item();
            recon.backward();
            self.assert_frozen_lm_invariant();
            clip_grad_norm(&params, self.config.grad_clip);
            self.apply_lr_schedule();
            self.optimizer.step(&params);
        }
        total / windows.len() as f32
    }

    /// **Algorithm 2** + Eq. 29: one pass training the student on
    /// `λ_p·(λ_c·L_cd + λ_e·L_fd) + λ_f·L_fcst` against the (frozen for
    /// this pass) teacher's privileged outputs.
    ///
    /// The whole step — forward, backward, gradient reduction, clipping,
    /// fused AdamW — replays a compiled batched training plan
    /// ([`PlannedBatchTrainer`]): windows are processed in micro-batches
    /// of [`TimeKdConfig::micro_batch`] with one optimizer step per batch.
    /// At `micro_batch == 1` (the default) this is bitwise identical to
    /// the dynamic per-window loop
    /// ([`train_student_epoch_dynamic`](Self::train_student_epoch_dynamic)),
    /// which stays as the equivalence oracle.
    pub fn train_student_epoch(&mut self, windows: &[ForecastWindow]) -> EpochStats {
        let _span = timekd_obs::span("epoch.student");
        assert!(!windows.is_empty(), "no training windows");
        let batch = self.config.micro_batch.max(1);
        if self.planned.as_ref().is_some_and(|t| t.batch() != batch) {
            self.planned = None;
        }
        let mut trainer = match self.planned.take() {
            Some(t) => t,
            None => {
                // Mirror the dynamic optimizer exactly: AdamW at the base
                // LR with decoupled weight decay disabled.
                let cfg = AdamWConfig {
                    weight_decay: 0.0,
                    ..Default::default()
                };
                PlannedBatchTrainer::new(
                    &self.student,
                    &self.config,
                    PlanOptimizer::AdamW {
                        lr: self.config.lr,
                        beta1: cfg.beta1,
                        beta2: cfg.beta2,
                        eps: cfg.eps,
                        weight_decay: cfg.weight_decay,
                    },
                    batch,
                )
                .unwrap_or_else(|e| panic!("batched student training plan: {e}"))
            }
        };
        let mut agg = EpochStats {
            total: 0.0,
            reconstruction: 0.0,
            correlation: 0.0,
            feature: 0.0,
            forecast: 0.0,
        };
        for chunk in windows.chunks(batch) {
            let count = chunk.len();
            for (lane, w) in chunk.iter().enumerate() {
                let prompts = self.prompts_for(w);
                // Teacher provides targets only: no graph, no update.
                let t_out = timekd_tensor::no_grad(|| self.teacher.forward(&w.x, &w.y, &prompts));
                trainer.stage_window(lane, &w.x, &w.y);
                let _stage = timekd_obs::span("pkd.stage");
                trainer.stage_teacher(lane, &t_out.attention, &t_out.embedding);
            }
            let lr = self.config.lr * self.config.lr_schedule.factor(self.optimizer.steps());
            self.optimizer.set_lr(lr);
            trainer.set_lr(lr);
            trainer.set_step_count(self.optimizer.steps());
            {
                let _batch = timekd_obs::span("plan.student_batch");
                trainer.run_batch(count);
            }
            self.optimizer.note_external_step();
            self.assert_frozen_lm_invariant();
            for lane in 0..count {
                agg.total += trainer.lane_total(lane);
                agg.correlation += trainer.lane_correlation(lane);
                agg.feature += trainer.lane_feature(lane);
                agg.forecast += trainer.lane_forecast(lane);
            }
        }
        trainer.write_back();
        self.planned = Some(trainer);
        let k = windows.len() as f32;
        agg.total /= k;
        agg.correlation /= k;
        agg.feature /= k;
        agg.forecast /= k;
        agg
    }

    /// The dynamic per-window reference implementation of
    /// [`train_student_epoch`](Self::train_student_epoch): one graph
    /// build, backward, clip, and optimizer step per window. Kept as the
    /// equivalence oracle for the planned path. Calling it invalidates
    /// any live planned trainer (its bound parameters would go stale), so
    /// use one path per model instance when comparing.
    pub fn train_student_epoch_dynamic(&mut self, windows: &[ForecastWindow]) -> EpochStats {
        let _span = timekd_obs::span("epoch.student");
        assert!(!windows.is_empty(), "no training windows");
        self.planned = None;
        let params = self.student.params();
        let mut agg = EpochStats {
            total: 0.0,
            reconstruction: 0.0,
            correlation: 0.0,
            feature: 0.0,
            forecast: 0.0,
        };
        for w in windows {
            for p in &params {
                p.zero_grad();
            }
            let prompts = self.prompts_for(w);
            // Teacher provides targets only: no graph, no teacher update.
            let teacher_out = timekd_tensor::no_grad(|| self.teacher.forward(&w.x, &w.y, &prompts));
            let student_out = self.student.forward(&w.x);
            let pkd = pkd_losses(
                &teacher_out.attention,
                &teacher_out.embedding,
                &student_out.attention,
                &student_out.embedding,
                &self.config,
            );
            let fcst = smooth_l1_loss(&student_out.forecast, &w.y);
            let loss = pkd
                .combined
                .mul_scalar(self.config.lambda_pkd)
                .add(&fcst.mul_scalar(self.config.lambda_fcst));
            agg.total += loss.item();
            agg.correlation += pkd.correlation.item();
            agg.feature += pkd.feature.item();
            agg.forecast += fcst.item();
            loss.backward();
            self.assert_frozen_lm_invariant();
            clip_grad_norm(&params, self.config.grad_clip);
            self.apply_lr_schedule();
            self.optimizer.step(&params);
        }
        let k = windows.len() as f32;
        agg.total /= k;
        agg.correlation /= k;
        agg.feature /= k;
        agg.forecast /= k;
        agg
    }

    /// One full TimeKD epoch: teacher reconstruction pass (Alg. 1) then
    /// student distillation + forecasting pass (Alg. 2). Returns the loss
    /// breakdown with the teacher's reconstruction loss included.
    pub fn train_epoch_detailed(&mut self, windows: &[ForecastWindow]) -> EpochStats {
        let recon = if !self.warmup_done {
            // Algorithm 1: train the teacher to convergence once. Its
            // outputs are then *stored* privileged information (§IV-B2) —
            // a stationary distillation target for every student epoch.
            let mut last = f32::INFINITY;
            for _ in 0..self.config.teacher_warmup_epochs.max(1) {
                last = self.train_teacher_epoch(windows);
            }
            self.warmup_done = true;
            last
        } else {
            0.0
        };
        let mut stats = self.train_student_epoch(windows);
        stats.reconstruction = recon;
        stats.total += recon * self.config.lambda_recon;
        stats
    }

    /// Teacher vs student attention maps for one window (Fig. 8).
    pub fn attention_maps(&self, w: &ForecastWindow) -> (Tensor, Tensor) {
        timekd_tensor::no_grad(|| {
            let prompts = self.prompts_for(w);
            let t = self.teacher.forward(&w.x, &w.y, &prompts);
            let s = self.student.forward(&w.x);
            (t.attention, s.attention)
        })
    }

    /// Teacher vs student self-relation feature matrices `E·Eᵀ` (Fig. 9).
    pub fn feature_maps(&self, w: &ForecastWindow) -> (Tensor, Tensor) {
        timekd_tensor::no_grad(|| {
            let prompts = self.prompts_for(w);
            let t = self.teacher.forward(&w.x, &w.y, &prompts);
            let s = self.student.forward(&w.x);
            let tg = t.embedding.matmul(&t.embedding.transpose_last());
            let sg = s.embedding.matmul(&s.embedding.transpose_last());
            (tg, sg)
        })
    }
}

impl Forecaster for TimeKd {
    fn name(&self) -> String {
        self.config.ablation.label().to_string()
    }

    fn train_epoch(&mut self, windows: &[ForecastWindow]) -> f32 {
        self.train_epoch_detailed(windows).total
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        self.student.predict(x)
    }

    /// Counts what the paper counts: everything updated by
    /// backpropagation (teacher heads + student), excluding the frozen LM.
    fn num_trainable_params(&self) -> usize {
        self.trainable_params()
            .iter()
            .map(Tensor::num_elements)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_data::{DatasetKind, Split, SplitDataset};
    use timekd_lm::{LmConfig, LmSize};

    #[allow(clippy::field_reassign_with_default)]
    fn tiny_config() -> TimeKdConfig {
        let mut cfg = TimeKdConfig::default();
        cfg.dim = 16;
        cfg.ffn_hidden = 32;
        cfg.num_heads = 2;
        cfg.lm = LmConfig::for_size(LmSize::Small);
        cfg.prompt.max_history = 4;
        cfg.prompt.max_future = 4;
        cfg.lr = 3e-3;
        cfg
    }

    fn tiny_model() -> (TimeKd, SplitDataset) {
        let ds = SplitDataset::new(DatasetKind::EttH1, 600, 7, 24, 8);
        let tokenizer = Rc::new(PromptTokenizer::new());
        let cfg = tiny_config();
        let (lm, _) = pretrain_lm(
            &tokenizer,
            cfg.lm,
            PretrainConfig {
                steps: 3,
                ..Default::default()
            },
        );
        let model = TimeKd::with_frozen_lm(
            Rc::new(FrozenLm::new(lm)),
            tokenizer,
            cfg,
            24,
            8,
            ds.num_vars(),
        );
        (model, ds)
    }

    #[test]
    fn training_improves_validation() {
        let (mut model, ds) = tiny_model();
        let train: Vec<_> = ds.windows(Split::Train, 16);
        let val: Vec<_> = ds.windows(Split::Val, 8);
        let (mse0, _) = model.evaluate(&val);
        for _ in 0..3 {
            model.train_epoch(&train);
        }
        let (mse1, _) = model.evaluate(&val);
        assert!(mse1 < mse0, "val MSE {mse0} -> {mse1}");
    }

    #[test]
    fn loss_breakdown_all_terms_active() {
        let (mut model, ds) = tiny_model();
        let train: Vec<_> = ds.windows(Split::Train, 64);
        let stats = model.train_epoch_detailed(&train[..2.min(train.len())]);
        assert!(stats.reconstruction > 0.0);
        assert!(stats.correlation >= 0.0);
        assert!(stats.feature > 0.0);
        assert!(stats.forecast > 0.0);
        let expected = stats.reconstruction + stats.correlation + stats.feature + stats.forecast;
        // λ all 1.0 here, but the stats are averaged after stepping, so
        // just check total is in the right ballpark.
        assert!(stats.total > 0.0 && stats.total <= expected * 1.5);
    }

    #[test]
    fn clm_cache_populated_once() {
        let (mut model, ds) = tiny_model();
        let train: Vec<_> = ds.windows(Split::Train, 64);
        let subset = &train[..3.min(train.len())];
        model.train_epoch(subset);
        let (_, misses1) = model.teacher().frozen_lm().cache_stats();
        model.train_epoch(subset);
        let (_, misses2) = model.teacher().frozen_lm().cache_stats();
        assert_eq!(misses1, misses2, "epoch 2 must be all cache hits");
    }

    #[test]
    fn attention_and_feature_maps_shapes() {
        let (model, ds) = tiny_model();
        let w = &ds.windows(Split::Test, 32)[0];
        let n = ds.num_vars();
        let (ta, sa) = model.attention_maps(w);
        assert_eq!(ta.dims(), &[n, n]);
        assert_eq!(sa.dims(), &[n, n]);
        let (tf, sf) = model.feature_maps(w);
        assert_eq!(tf.dims(), &[n, n]);
        assert_eq!(sf.dims(), &[n, n]);
    }

    #[test]
    fn predict_matches_student() {
        let (model, ds) = tiny_model();
        let w = &ds.windows(Split::Test, 32)[0];
        let a = model.predict(&w.x);
        let b = model.student().predict(&w.x);
        assert_eq!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn param_count_excludes_frozen_lm() {
        let (model, _ds) = tiny_model();
        let lm_params: usize = model.teacher().frozen_lm().model().num_params();
        let trainable = model.num_trainable_params();
        assert!(trainable > 0);
        // The trainable set must not include the LM (it is larger than the
        // teacher heads + student at these sizes).
        let all_teacher_student: usize = model
            .trainable_params()
            .iter()
            .map(Tensor::num_elements)
            .sum();
        assert_eq!(trainable, all_teacher_student);
        let _ = lm_params; // documented exclusion
    }

    #[test]
    fn lr_schedule_decays_learning_rate() {
        let (mut model, ds) = tiny_model();
        let mut cfg = *model.config();
        cfg.lr_schedule = timekd_nn::LrSchedule::WarmupCosine {
            warmup: 2,
            total: 10,
            min_factor: 0.01,
        };
        model.config = cfg;
        let train: Vec<_> = ds.windows(Split::Train, 64);
        model.train_epoch(&train[..3.min(train.len())]);
        // After many steps the live LR must sit well below the base LR.
        assert!(
            model.optimizer.lr() < cfg.lr * 0.5,
            "lr = {}",
            model.optimizer.lr()
        );
    }

    #[test]
    fn frozen_lm_invariant_holds_through_training() {
        let (mut model, ds) = tiny_model();
        let train: Vec<_> = ds.windows(Split::Train, 64);
        model.train_epoch(&train[..2.min(train.len())]);
        model.assert_frozen_lm_invariant();
    }

    #[test]
    #[should_panic(expected = "frozen LM parameter")]
    fn frozen_lm_invariant_trips_on_injected_grad() {
        let (model, _ds) = tiny_model();
        // Fault injection: pretend a backward pass leaked into the CLM.
        let p = &model.teacher().frozen_lm().model().params()[0];
        p.accumulate_grad(&vec![1.0; p.num_elements()]);
        model.assert_frozen_lm_invariant();
    }

    #[test]
    fn training_graph_audits_clean() {
        // A full student loss graph must satisfy every structural
        // invariant GraphAudit checks, and span all three model layers.
        let (model, ds) = tiny_model();
        let w = &ds.windows(Split::Train, 64)[0];
        let out = model.student().forward(&w.x);
        let loss = smooth_l1_loss(&out.forecast, &w.y);
        let audit = timekd_tensor::GraphAudit::run(&loss);
        assert!(audit.is_clean(), "{}", audit.report());
        assert!(audit.stats.params > 10, "{}", audit.report());
        assert!(audit.stats.max_depth > 5, "{}", audit.report());
    }

    fn epoch_bits(s: &EpochStats) -> [u32; 5] {
        [
            s.total.to_bits(),
            s.reconstruction.to_bits(),
            s.correlation.to_bits(),
            s.feature.to_bits(),
            s.forecast.to_bits(),
        ]
    }

    fn student_param_bits(model: &TimeKd) -> Vec<Vec<u32>> {
        model
            .student
            .params()
            .iter()
            .map(|p| p.to_vec().iter().map(|v| v.to_bits()).collect())
            .collect()
    }

    #[test]
    fn planned_student_epoch_is_bitwise_identical_to_dynamic() {
        // The batched planned path at micro_batch = 1 must reproduce the
        // dynamic per-window loop bit for bit — losses, per-component
        // stats, and every student parameter — at any thread count.
        let (mut reference, ds) = tiny_model();
        let train: Vec<_> = ds.windows(Split::Train, 16);
        let subset = &train[..5.min(train.len())];
        let dyn_stats = reference.train_student_epoch_dynamic(subset);
        let dyn_params = student_param_bits(&reference);
        for threads in [1, 2, 5] {
            let (mut m, _) = tiny_model();
            let stats =
                timekd_tensor::parallel::with_threads(threads, || m.train_student_epoch(subset));
            assert_eq!(
                epoch_bits(&stats),
                epoch_bits(&dyn_stats),
                "epoch stats diverge at {threads} threads"
            );
            assert_eq!(
                student_param_bits(&m),
                dyn_params,
                "student params diverge at {threads} threads"
            );
        }
    }

    #[test]
    fn batched_student_epoch_is_thread_invariant_with_uneven_tail() {
        // micro_batch = 5 over 7 windows: one full batch + a 2-window
        // tail, replayed data-parallel. The pinned window-indexed
        // reduction order must make every thread count bitwise agree.
        let run = |threads: usize| {
            let (mut m, ds) = tiny_model();
            let mut cfg = *m.config();
            cfg.micro_batch = 5;
            m.config = cfg;
            let train: Vec<_> = ds.windows(Split::Train, 16);
            let subset = &train[..7.min(train.len())];
            let stats =
                timekd_tensor::parallel::with_threads(threads, || m.train_student_epoch(subset));
            (epoch_bits(&stats), student_param_bits(&m))
        };
        let baseline = run(1);
        for threads in [2, 5] {
            assert_eq!(run(threads), baseline, "diverges at {threads} threads");
        }
    }

    #[test]
    fn batched_epoch_still_improves_validation() {
        let (mut model, ds) = tiny_model();
        let mut cfg = *model.config();
        cfg.micro_batch = 4;
        model.config = cfg;
        let train: Vec<_> = ds.windows(Split::Train, 16);
        let val: Vec<_> = ds.windows(Split::Val, 8);
        let (mse0, _) = model.evaluate(&val);
        for _ in 0..3 {
            model.train_epoch(&train);
        }
        let (mse1, _) = model.evaluate(&val);
        assert!(mse1 < mse0, "val MSE {mse0} -> {mse1}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut m1, ds) = tiny_model();
        let (mut m2, _) = tiny_model();
        let train: Vec<_> = ds.windows(Split::Train, 64);
        let subset = &train[..2.min(train.len())];
        let l1 = m1.train_epoch(subset);
        let l2 = m2.train_epoch(subset);
        assert_eq!(l1, l2);
    }
}
