//! Symbolic trace of the full TimeKD pipeline (teacher → SCA → student →
//! losses) for the static verifier in `timekd-check`.
//!
//! [`trace_pipeline`] rebuilds every loss graph of one training step on the
//! symbolic IR — same ops, same order, same gradient frontiers as the real
//! [`TimeKd`](crate::TimeKd) trainer — without executing a single kernel.
//! The returned [`SymbolicPipeline`] carries the loss roots the three
//! static passes analyse:
//!
//! - shape inference is the trace itself: any dimension mismatch anywhere in
//!   teacher, CLM, SCA, student or loss wiring surfaces as a
//!   [`ShapeError`] with a provenance chain naming the offending op;
//! - [`reachable_params`](timekd_tensor::reachable_params) over each loss
//!   root yields the loss→parameter flow matrix (who would the backward pass
//!   update);
//! - the [`SymCtx`] parameter registry, minus what any loss reaches, yields
//!   dead/dangling parameters.
//!
//! [`Fault`] injects known-bad wirings so the verifier's detection power is
//! itself testable: each fault must be caught by exactly the pass designed
//! for it.

use timekd_lm::{PromptTokenizer, SymCausalLm};
use timekd_nn::symbolic::{
    sym_smooth_l1_loss, SymFeedForward, SymLayerNorm, SymLinear, SymRevIn, SymTransformerEncoder,
};
use timekd_nn::Activation;
use timekd_tensor::{ShapeError, SymCtx, SymDim, SymbolicTensor, Tensor};

use crate::config::TimeKdConfig;

type SymResult = Result<SymbolicTensor, ShapeError>;

/// Deliberate mis-wirings for fault-injection tests of the verifier.
/// [`Fault::None`] is the faithful mirror of the real pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Fault {
    /// Faithful trace — what `timekd-check --verify` proves clean.
    #[default]
    None,
    /// The *student* attention map is detached before the correlation loss:
    /// the loss is computed but can no longer update any student parameter.
    /// Must be caught by the gradient-flow wiring pass.
    DetachedDistillationTarget,
    /// The frozen CLM forward is traced *outside* `no_grad` (the real bug
    /// would be forgetting the `no_grad` guard in `FrozenLm::embed`):
    /// frozen LM parameters become reachable from the losses. Must be
    /// caught by the frozen-parameter pass.
    UnfrozenLm,
    /// The student encoder splits heads with `head_dim + 1`: the real
    /// constructor would assert, and the symbolic reshape must report the
    /// element-count mismatch. Must be caught by the shape pass.
    MismatchedHeadDim,
    /// An extra trainable parameter is registered under the student but
    /// never used by any forward. Must be caught by the dead-parameter
    /// pass.
    DanglingParam,
}

fn shape_err(x: &SymbolicTensor, op: &str, message: String) -> ShapeError {
    ShapeError {
        op: op.to_string(),
        label: x.label().to_string(),
        message,
        provenance: x.provenance_lines(8),
    }
}

/// Symbolic parameter-free layer norm, mirroring
/// [`layer_norm_const`](crate::layer_norm_const) (9 nodes).
pub fn sym_layer_norm_const(x: &SymbolicTensor) -> SymResult {
    let rank = x.dims().len();
    let mu = x.mean_axis(rank - 1, true)?;
    let centered = x.sub(&mu)?;
    let var = centered.square().mean_axis(rank - 1, true)?;
    centered.mul(&var.add_scalar(1e-5).rsqrt())
}

/// Symbolic [`SubtractiveCrossAttention`](crate::SubtractiveCrossAttention).
#[derive(Debug)]
pub struct SymSca {
    ctx: SymCtx,
    label: String,
    phi_q: SymLinear,
    phi_k: SymLinear,
    phi_v: SymLinear,
    theta_c: SymLinear,
    ln_out: SymLayerNorm,
    ffn: SymFeedForward,
    dim: usize,
}

impl SymSca {
    /// SCA over width `dim`, registered under `name`.
    pub fn new(ctx: &SymCtx, name: &str, dim: usize, ffn_hidden: usize) -> SymSca {
        let label = ctx.label_for(name);
        ctx.scoped(name, || SymSca {
            ctx: ctx.clone(),
            label: label.clone(),
            phi_q: SymLinear::new_no_bias(ctx, "phi_q", dim, dim),
            phi_k: SymLinear::new_no_bias(ctx, "phi_k", dim, dim),
            phi_v: SymLinear::new_no_bias(ctx, "phi_v", dim, dim),
            theta_c: SymLinear::new(ctx, "theta_c", dim, dim),
            ln_out: SymLayerNorm::new(ctx, "ln_out", dim),
            ffn: SymFeedForward::new(ctx, "ffn", dim, ffn_hidden, Activation::Relu),
            dim,
        })
    }

    fn check_inputs(&self, l_gt: &SymbolicTensor, l_hd: &SymbolicTensor) -> Result<(), ShapeError> {
        if l_gt.sizes() != l_hd.sizes() {
            return Err(shape_err(
                l_gt,
                "sca_inputs",
                format!(
                    "SCA inputs must match: {} vs {}",
                    timekd_tensor::render_dims(l_gt.dims()),
                    timekd_tensor::render_dims(l_hd.dims())
                ),
            ));
        }
        if l_gt.dims().len() != 2 || l_gt.dims()[1].size != self.dim {
            return Err(shape_err(
                l_gt,
                "sca_inputs",
                format!(
                    "SCA({}) expects [N, D] inputs, got {}",
                    self.dim,
                    timekd_tensor::render_dims(l_gt.dims())
                ),
            ));
        }
        Ok(())
    }

    /// Mirrors `SubtractiveCrossAttention::forward` (Eq. 8–9).
    pub fn forward(&self, l_gt: &SymbolicTensor, l_hd: &SymbolicTensor) -> SymResult {
        self.check_inputs(l_gt, l_hd)?;
        let q_proj = self.phi_q.forward(l_gt)?;
        let k_proj = self.phi_k.forward(l_hd)?;
        let v = self.phi_v.forward(l_hd)?;
        let refined = self.ctx.with_label(&self.label, || -> SymResult {
            let q = sym_layer_norm_const(&q_proj)?;
            let k = sym_layer_norm_const(&k_proj)?;
            let m_c = q.transpose_last()?.matmul(&k)?.softmax_last();
            let aggregated = v.matmul(&m_c)?;
            Ok(aggregated)
        })?;
        let intersection = self.theta_c.forward(&refined)?;
        let refined = self
            .ctx
            .with_label(&self.label, || l_gt.sub(&intersection))?;
        self.ffn.forward(&self.ln_out.forward(&refined)?)
    }

    /// Mirrors `SubtractiveCrossAttention::forward_direct` (`w/o_SCA`).
    pub fn forward_direct(&self, l_gt: &SymbolicTensor, l_hd: &SymbolicTensor) -> SymResult {
        self.check_inputs(l_gt, l_hd)?;
        let refined = self.ctx.with_label(&self.label, || l_gt.sub(l_hd))?;
        self.ffn.forward(&self.ln_out.forward(&refined)?)
    }
}

/// Symbolic products of one teacher forward, mirroring
/// [`TeacherOutput`](crate::TeacherOutput).
#[derive(Debug)]
pub struct SymTeacherOutput {
    /// Privileged embeddings `E_GT` `[N, D]`.
    pub embedding: SymbolicTensor,
    /// Head-averaged attention `A_PE` `[N, N]`.
    pub attention: SymbolicTensor,
    /// Reconstruction `X̂_G` `[M, N]`.
    pub reconstruction: SymbolicTensor,
}

/// Symbolic [`CrossModalityTeacher`](crate::CrossModalityTeacher).
///
/// The CLM is always registered inside a [`SymCtx::frozen`] scope (the real
/// trainer always owns a `FrozenLm`); the projection layers are gated by
/// ablation exactly as `Module::params` gates them, so the context's
/// parameter registry matches the optimizer's view of the model.
pub struct SymTeacher {
    ctx: SymCtx,
    label: String,
    lm: SymCausalLm,
    lm_dim: usize,
    lm_proj: Option<SymLinear>,
    hist_value_proj: Option<SymLinear>,
    gt_value_proj: Option<SymLinear>,
    sca: SymSca,
    pt_encoder: SymTransformerEncoder,
    recon_head: SymLinear,
    config: TimeKdConfig,
    input_len: usize,
    horizon: usize,
    fault: Fault,
}

impl SymTeacher {
    /// Registers the teacher (and its frozen CLM) under `name`.
    pub fn new(
        ctx: &SymCtx,
        name: &str,
        config: &TimeKdConfig,
        vocab_size: usize,
        input_len: usize,
        horizon: usize,
        fault: Fault,
    ) -> SymTeacher {
        let ab = config.ablation;
        let label = ctx.label_for(name);
        ctx.scoped(name, || SymTeacher {
            ctx: ctx.clone(),
            label: label.clone(),
            lm: ctx.frozen(|| SymCausalLm::new(ctx, "clm", vocab_size, config.lm)),
            lm_dim: config.lm.dim,
            lm_proj: ab
                .use_clm
                .then(|| SymLinear::new(ctx, "lm_proj", config.lm.dim, config.dim)),
            hist_value_proj: (!ab.use_clm)
                .then(|| SymLinear::new(ctx, "hist_value_proj", input_len, config.dim)),
            gt_value_proj: (!ab.use_clm && ab.privileged_info)
                .then(|| SymLinear::new(ctx, "gt_value_proj", input_len + horizon, config.dim)),
            sca: SymSca::new(ctx, "sca", config.dim, config.ffn_hidden),
            pt_encoder: SymTransformerEncoder::new(
                ctx,
                "pt_encoder",
                config.dim,
                config.num_layers,
                config.num_heads,
                config.ffn_hidden,
                Activation::Relu,
            ),
            recon_head: SymLinear::new(ctx, "recon_head", config.dim, horizon),
            config: *config,
            input_len,
            horizon,
            fault,
        })
    }

    /// Mirrors `CrossModalityTeacher::clm_embeddings` for prompts of the
    /// given token counts. Each prompt's LM interior is traced under
    /// `no_grad` (the symbolic analogue of the `FrozenLm` cache returning a
    /// constant), except under [`Fault::UnfrozenLm`].
    fn clm_embeddings(&self, prompt_lens: &[usize]) -> SymResult {
        let proj = self
            .lm_proj
            .as_ref()
            .expect("clm_embeddings requires use_clm");
        let mut rows = Vec::with_capacity(prompt_lens.len());
        for &len in prompt_lens {
            let emb = if self.fault == Fault::UnfrozenLm {
                self.lm.last_token_embedding(len)?
            } else {
                self.ctx.no_grad(|| self.lm.last_token_embedding(len))?
            };
            let row = self.ctx.with_label(&self.label, || {
                emb.reshape(vec![SymDim::anon(1), SymDim::new("lm_dim", self.lm_dim)])
            })?;
            rows.push(row);
        }
        let stacked = self
            .ctx
            .with_label(&self.label, || SymbolicTensor::concat(&rows, 0, "N"))?;
        proj.forward(&stacked)
    }

    /// Mirrors `CrossModalityTeacher::forward`. `hist_lens`/`gt_lens` are
    /// the per-variable prompt token counts (only lengths matter to shapes).
    pub fn forward(
        &self,
        x: &SymbolicTensor,
        y: &SymbolicTensor,
        hist_lens: &[usize],
        gt_lens: &[usize],
    ) -> Result<SymTeacherOutput, ShapeError> {
        let ab = self.config.ablation;
        if x.dims().len() != 2 || x.dims()[0].size != self.input_len {
            return Err(shape_err(
                x,
                "teacher_input",
                format!(
                    "history length mismatch: expected [{}, N], got {}",
                    self.input_len,
                    timekd_tensor::render_dims(x.dims())
                ),
            ));
        }
        if y.dims().len() != 2
            || y.dims()[0].size != self.horizon
            || y.dims()[1].size != x.dims()[1].size
        {
            return Err(shape_err(
                y,
                "teacher_input",
                format!(
                    "horizon mismatch: expected [{}, {}], got {}",
                    self.horizon,
                    x.dims()[1],
                    timekd_tensor::render_dims(y.dims())
                ),
            ));
        }
        let (l_gt, l_hd) = if ab.use_clm {
            let gt = if ab.privileged_info {
                gt_lens
            } else {
                hist_lens
            };
            (self.clm_embeddings(gt)?, self.clm_embeddings(hist_lens)?)
        } else {
            let hist_proj = self
                .hist_value_proj
                .as_ref()
                .expect("w/o_CLM registers hist_value_proj");
            let xt = self.ctx.with_label(&self.label, || x.transpose_last())?;
            let l_hd = hist_proj.forward(&xt)?;
            let l_gt = if ab.privileged_info {
                let joint = self.ctx.with_label(&self.label, || -> SymResult {
                    let yt = y.transpose_last()?;
                    SymbolicTensor::concat(&[xt.clone(), yt], 1, "HM")
                })?;
                self.gt_value_proj
                    .as_ref()
                    .expect("privileged w/o_CLM registers gt_value_proj")
                    .forward(&joint)?
            } else {
                let xt2 = self.ctx.with_label(&self.label, || x.transpose_last())?;
                hist_proj.forward(&xt2)?
            };
            (l_gt, l_hd)
        };
        let refined = if ab.use_sca {
            self.sca.forward(&l_gt, &l_hd)?
        } else {
            self.sca.forward_direct(&l_gt, &l_hd)?
        };
        let enc = self.pt_encoder.forward(&refined, None)?;
        let recon = self.ctx.with_label(&self.label, || -> SymResult {
            self.recon_head.forward(&enc.output)?.transpose_last()
        })?;
        Ok(SymTeacherOutput {
            embedding: enc.output,
            attention: enc.last_attention,
            reconstruction: recon,
        })
    }
}

/// Symbolic products of one student forward, mirroring
/// [`StudentOutput`](crate::StudentOutput).
#[derive(Debug)]
pub struct SymStudentOutput {
    /// Encoder output `T̄_H` `[N, D]`.
    pub embedding: SymbolicTensor,
    /// Head-averaged attention `A_TSE` `[N, N]`.
    pub attention: SymbolicTensor,
    /// Forecast `X̂_M` `[M, N]`.
    pub forecast: SymbolicTensor,
}

/// Symbolic [`Student`](crate::Student).
pub struct SymStudent {
    ctx: SymCtx,
    label: String,
    revin: SymRevIn,
    inverted_embedding: SymLinear,
    encoder: SymTransformerEncoder,
    projection: SymLinear,
    input_len: usize,
    num_vars: usize,
}

impl SymStudent {
    /// Registers the student under `name`. [`Fault::MismatchedHeadDim`]
    /// builds the encoder with `head_dim + 1`.
    pub fn new(
        ctx: &SymCtx,
        name: &str,
        config: &TimeKdConfig,
        input_len: usize,
        horizon: usize,
        num_vars: usize,
        fault: Fault,
    ) -> SymStudent {
        let head_dim =
            config.dim / config.num_heads.max(1) + usize::from(fault == Fault::MismatchedHeadDim);
        let label = ctx.label_for(name);
        ctx.scoped(name, || SymStudent {
            ctx: ctx.clone(),
            label: label.clone(),
            revin: SymRevIn::new(ctx, "revin", num_vars),
            inverted_embedding: SymLinear::new(ctx, "inverted_embedding", input_len, config.dim),
            encoder: SymTransformerEncoder::with_head_dim(
                ctx,
                "encoder",
                config.dim,
                config.num_layers,
                config.num_heads,
                head_dim,
                config.ffn_hidden,
                Activation::Relu,
            ),
            projection: SymLinear::new(ctx, "projection", config.dim, horizon),
            input_len,
            num_vars,
        })
    }

    /// Mirrors `Student::forward`.
    pub fn forward(&self, x: &SymbolicTensor) -> Result<SymStudentOutput, ShapeError> {
        if x.sizes() != vec![self.input_len, self.num_vars] {
            return Err(shape_err(
                x,
                "student_input",
                format!(
                    "student input shape mismatch: expected [{}, {}], got {}",
                    self.input_len,
                    self.num_vars,
                    timekd_tensor::render_dims(x.dims())
                ),
            ));
        }
        let normed = self.revin.normalize(&self.ctx, x)?;
        let transposed = self
            .ctx
            .with_label(&self.label, || normed.transpose_last())?;
        let tokens = self.inverted_embedding.forward(&transposed)?;
        let enc = self.encoder.forward(&tokens, None)?;
        let projected = self.ctx.with_label(&self.label, || -> SymResult {
            self.projection.forward(&enc.output)?.transpose_last()
        })?;
        let forecast = self.revin.denormalize(&self.ctx, &projected)?;
        Ok(SymStudentOutput {
            embedding: enc.output,
            attention: enc.last_attention,
            forecast,
        })
    }
}

/// Symbolic PKD loss roots, mirroring [`PkdLosses`](crate::PkdLosses).
#[derive(Debug)]
pub struct SymPkdLosses {
    /// `L_cd` (constant zero leaf when ablated).
    pub correlation: SymbolicTensor,
    /// `L_fd` (constant zero leaf when ablated).
    pub feature: SymbolicTensor,
    /// `λ_c · L_cd + λ_e · L_fd`.
    pub combined: SymbolicTensor,
}

/// Mirrors [`pkd_losses`](crate::pkd_losses): teacher tensors detached,
/// ablated terms are constant zero leaves.
/// [`Fault::DetachedDistillationTarget`] detaches the *student* attention as
/// well, severing the correlation loss from every student parameter.
pub fn sym_pkd_losses(
    ctx: &SymCtx,
    teacher_attention: &SymbolicTensor,
    teacher_embedding: &SymbolicTensor,
    student_attention: &SymbolicTensor,
    student_embedding: &SymbolicTensor,
    config: &TimeKdConfig,
    fault: Fault,
) -> Result<SymPkdLosses, ShapeError> {
    let ab = config.ablation;
    let student_attention = if fault == Fault::DetachedDistillationTarget {
        student_attention.detach()
    } else {
        student_attention.clone()
    };
    let correlation = if ab.correlation_distillation {
        sym_smooth_l1_loss(&student_attention, &teacher_attention.detach())?
    } else {
        ctx.scalar("zero")
    };
    let feature = if ab.feature_distillation {
        sym_smooth_l1_loss(student_embedding, &teacher_embedding.detach())?
    } else {
        ctx.scalar("zero")
    };
    let combined = correlation
        .mul_scalar(config.lambda_cd)
        .add(&feature.mul_scalar(config.lambda_fd))?;
    Ok(SymPkdLosses {
        correlation,
        feature,
        combined,
    })
}

/// Everything one symbolic trace of a TimeKD training step produces: the
/// tracing context (parameter registry) and the loss roots of Algorithms
/// 1–2 for the gradient-flow passes.
#[derive(Debug)]
pub struct SymbolicPipeline {
    /// The context the whole pipeline was traced in.
    pub ctx: SymCtx,
    /// Teacher products.
    pub teacher: SymTeacherOutput,
    /// Student products.
    pub student: SymStudentOutput,
    /// `λ_r · L_recon` — the Algorithm 1 teacher loss root.
    pub reconstruction: SymbolicTensor,
    /// `L_cd` root (constant when ablated).
    pub correlation: SymbolicTensor,
    /// `L_fd` root (constant when ablated).
    pub feature: SymbolicTensor,
    /// `L_fcst` root.
    pub forecast: SymbolicTensor,
    /// `λ_p·(λ_c·L_cd + λ_e·L_fd) + λ_f·L_fcst` — the Algorithm 2 student
    /// loss root.
    pub student_total: SymbolicTensor,
}

impl SymbolicPipeline {
    /// The named loss roots, in the order the verifier reports them.
    pub fn loss_roots(&self) -> Vec<(&'static str, &SymbolicTensor)> {
        vec![
            ("reconstruction", &self.reconstruction),
            ("correlation", &self.correlation),
            ("feature", &self.feature),
            ("forecast", &self.forecast),
            ("student_total", &self.student_total),
        ]
    }
}

/// Per-variable prompt token counts for a window of the given geometry.
///
/// Prompt lengths are value-independent (every number renders to exactly
/// one bin token), so rendering real prompts over zero-valued windows gives
/// the exact sequence lengths any real window of this geometry produces.
pub fn prompt_token_counts(
    config: &TimeKdConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
) -> (Vec<usize>, Vec<usize>) {
    let tokenizer = PromptTokenizer::new();
    let x = Tensor::zeros([input_len, num_vars]);
    let y = Tensor::zeros([horizon, num_vars]);
    let prompts = timekd_data::window_prompts(&tokenizer, &x, &y, &config.prompt);
    (
        prompts.historical.iter().map(Vec::len).collect(),
        prompts.ground_truth.iter().map(Vec::len).collect(),
    )
}

/// Traces one full TimeKD training step symbolically: teacher forward,
/// reconstruction loss (Alg. 1), student forward, PKD + forecasting losses
/// (Alg. 2, Eq. 29–30). No kernel executes; the trace doubles as the shape
/// proof, and its loss roots feed the gradient-flow passes.
pub fn trace_pipeline(
    config: &TimeKdConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
    fault: Fault,
) -> Result<SymbolicPipeline, ShapeError> {
    let (hist_lens, gt_lens) = prompt_token_counts(config, input_len, horizon, num_vars);
    let vocab_size = PromptTokenizer::new().vocab_size();

    let ctx = SymCtx::new();
    let teacher = SymTeacher::new(
        &ctx, "teacher", config, vocab_size, input_len, horizon, fault,
    );
    let student = SymStudent::new(&ctx, "student", config, input_len, horizon, num_vars, fault);
    if fault == Fault::DanglingParam {
        ctx.scoped("student", || {
            ctx.param(
                "dangling.weight",
                vec![
                    SymDim::new("in", config.dim),
                    SymDim::new("out", config.dim),
                ],
            )
        });
    }

    let x = ctx.constant(
        "x",
        vec![SymDim::new("L", input_len), SymDim::new("N", num_vars)],
    );
    let y = ctx.constant(
        "y",
        vec![SymDim::new("M", horizon), SymDim::new("N", num_vars)],
    );

    let t_out = teacher.forward(&x, &y, &hist_lens, &gt_lens)?;
    let reconstruction =
        sym_smooth_l1_loss(&t_out.reconstruction, &y)?.mul_scalar(config.lambda_recon);

    let s_out = student.forward(&x)?;
    let pkd = sym_pkd_losses(
        &ctx,
        &t_out.attention,
        &t_out.embedding,
        &s_out.attention,
        &s_out.embedding,
        config,
        fault,
    )?;
    let forecast = sym_smooth_l1_loss(&s_out.forecast, &y)?;
    let student_total = pkd
        .combined
        .mul_scalar(config.lambda_pkd)
        .add(&forecast.mul_scalar(config.lambda_fcst))?;

    Ok(SymbolicPipeline {
        ctx,
        teacher: t_out,
        student: s_out,
        reconstruction,
        correlation: pkd.correlation,
        feature: pkd.feature,
        forecast,
        student_total,
    })
}

/// Traces only the student forecasting loss — the exact graph the dynamic
/// audit in `timekd-check` executes (`smooth_l1_loss(student(x).forecast,
/// y)`), for the symbolic-vs-dynamic cross-check.
pub fn trace_student_loss(
    config: &TimeKdConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
) -> Result<(SymCtx, SymbolicTensor), ShapeError> {
    let ctx = SymCtx::new();
    let student = SymStudent::new(
        &ctx,
        "student",
        config,
        input_len,
        horizon,
        num_vars,
        Fault::None,
    );
    let x = ctx.constant(
        "x",
        vec![SymDim::new("L", input_len), SymDim::new("N", num_vars)],
    );
    let y = ctx.constant(
        "y",
        vec![SymDim::new("M", horizon), SymDim::new("N", num_vars)],
    );
    let out = student.forward(&x)?;
    let loss = sym_smooth_l1_loss(&out.forecast, &y)?;
    Ok((ctx, loss))
}

/// Label of the auxiliary constant carrying the teacher attention `A_PE`
/// `[N, N]` in [`trace_student_objective`]. Fed per window at run time via
/// the plan executor's aux slots.
pub const TEACHER_ATT_LABEL: &str = "teacher_att";
/// Label of the auxiliary constant carrying the teacher embedding `E_GT`
/// `[N, D]` in [`trace_student_objective`].
pub const TEACHER_EMB_LABEL: &str = "teacher_emb";

/// The full student objective (Alg. 2, Eq. 29–30) traced for plan
/// compilation: `λ_p·(λ_c·L_cd + λ_e·L_fd) + λ_f·L_fcst` with the teacher's
/// privileged products as auxiliary *constants* instead of detached graph
/// tensors (the plan compiler has no lowering for detach-derived leaves,
/// and the real trainer runs the teacher under `no_grad` anyway, so a
/// constant is the faithful mirror).
#[derive(Debug)]
pub struct StudentObjectiveTrace {
    /// The tracing context (student parameter registry).
    pub ctx: SymCtx,
    /// The total-loss root.
    pub loss: SymbolicTensor,
    /// `L_cd` scalar, absent when ablated (the zero term is skipped
    /// structurally — adding an exact `+0` is a bitwise no-op on the
    /// non-negative remaining losses, so values still match the dynamic
    /// path bit for bit).
    pub correlation: Option<SymbolicTensor>,
    /// `L_fd` scalar, absent when ablated.
    pub feature: Option<SymbolicTensor>,
    /// `L_fcst` scalar (always present).
    pub forecast: SymbolicTensor,
}

/// Traces the complete student training objective against auxiliary
/// teacher-product constants ([`TEACHER_ATT_LABEL`], [`TEACHER_EMB_LABEL`]).
/// Ablated distillation arms are skipped structurally, so only the leaves a
/// configuration actually consumes appear in the graph.
pub fn trace_student_objective(
    config: &TimeKdConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
) -> Result<StudentObjectiveTrace, ShapeError> {
    let ab = config.ablation;
    let ctx = SymCtx::new();
    let student = SymStudent::new(
        &ctx,
        "student",
        config,
        input_len,
        horizon,
        num_vars,
        Fault::None,
    );
    let x = ctx.constant(
        "x",
        vec![SymDim::new("L", input_len), SymDim::new("N", num_vars)],
    );
    let y = ctx.constant(
        "y",
        vec![SymDim::new("M", horizon), SymDim::new("N", num_vars)],
    );
    let out = student.forward(&x)?;
    let correlation = if ab.correlation_distillation {
        let t_att = ctx.constant(
            TEACHER_ATT_LABEL,
            vec![SymDim::new("N", num_vars), SymDim::new("N", num_vars)],
        );
        Some(sym_smooth_l1_loss(&out.attention, &t_att)?)
    } else {
        None
    };
    let feature = if ab.feature_distillation {
        let t_emb = ctx.constant(
            TEACHER_EMB_LABEL,
            vec![SymDim::new("N", num_vars), SymDim::new("D", config.dim)],
        );
        Some(sym_smooth_l1_loss(&out.embedding, &t_emb)?)
    } else {
        None
    };
    let forecast = sym_smooth_l1_loss(&out.forecast, &y)?;
    let combined = match (&correlation, &feature) {
        (Some(c), Some(f)) => Some(
            c.mul_scalar(config.lambda_cd)
                .add(&f.mul_scalar(config.lambda_fd))?,
        ),
        (Some(c), None) => Some(c.mul_scalar(config.lambda_cd)),
        (None, Some(f)) => Some(f.mul_scalar(config.lambda_fd)),
        (None, None) => None,
    };
    let loss = match &combined {
        Some(cmb) => cmb
            .mul_scalar(config.lambda_pkd)
            .add(&forecast.mul_scalar(config.lambda_fcst))?,
        None => forecast.mul_scalar(config.lambda_fcst),
    };
    Ok(StudentObjectiveTrace {
        ctx,
        loss,
        correlation,
        feature,
        forecast,
    })
}

/// Traces only the student *inference* path — `student(x).forecast` with no
/// loss on top. This is the graph the plan compiler lowers into a static
/// execution plan, so its root must be exactly what `Student::predict`
/// returns.
pub fn trace_student_forecast(
    config: &TimeKdConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
) -> Result<(SymCtx, SymbolicTensor), ShapeError> {
    let ctx = SymCtx::new();
    let student = SymStudent::new(
        &ctx,
        "student",
        config,
        input_len,
        horizon,
        num_vars,
        Fault::None,
    );
    let x = ctx.constant(
        "x",
        vec![SymDim::new("L", input_len), SymDim::new("N", num_vars)],
    );
    let out = student.forward(&x)?;
    Ok((ctx, out.forecast))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AblationConfig;
    use crate::student::Student;
    use timekd_lm::{LmConfig, LmSize};
    use timekd_nn::{smooth_l1_loss, Module};
    use timekd_tensor::{graph_stats, reachable_params, seeded_rng, GraphAudit};

    #[allow(clippy::field_reassign_with_default)]
    fn tiny_config(ablation: AblationConfig) -> TimeKdConfig {
        let mut cfg = TimeKdConfig::with_ablation(ablation);
        cfg.dim = 16;
        cfg.ffn_hidden = 32;
        cfg.num_heads = 2;
        cfg.lm = LmConfig::for_size(LmSize::Small);
        cfg.prompt.max_history = 4;
        cfg.prompt.max_future = 4;
        cfg
    }

    #[test]
    fn student_loss_graph_matches_dynamic() {
        let cfg = tiny_config(AblationConfig::full());
        let (ctx, loss) = trace_student_loss(&cfg, 24, 8, 7).unwrap();

        let mut rng = seeded_rng(cfg.seed);
        let real = Student::new(&cfg, 24, 8, 7, &mut rng);
        let x = Tensor::randn([24, 7], 1.0, &mut rng);
        let y = Tensor::randn([8, 7], 1.0, &mut rng);
        let real_loss = smooth_l1_loss(&real.forward(&x).forecast, &y);

        let sym = graph_stats(&loss);
        let dynamic = GraphAudit::run(&real_loss).stats;
        assert_eq!(sym.nodes, dynamic.nodes);
        assert_eq!(sym.edges, dynamic.edges);
        assert_eq!(sym.leaves, dynamic.leaves);
        assert_eq!(sym.params, dynamic.params);
        assert_eq!(sym.max_depth, dynamic.max_depth);
        assert_eq!(ctx.params().len(), real.params().len());
    }

    #[test]
    fn full_pipeline_traces_for_every_ablation() {
        for ablation in [
            AblationConfig::full(),
            AblationConfig::without_privileged_info(),
            AblationConfig::without_calibrated_attention(),
            AblationConfig::without_clm(),
            AblationConfig::without_sca(),
            AblationConfig::without_correlation_distillation(),
            AblationConfig::without_feature_distillation(),
        ] {
            let cfg = tiny_config(ablation);
            let p = trace_pipeline(&cfg, 24, 8, 7, Fault::None)
                .unwrap_or_else(|e| panic!("{}: {e}", ablation.label()));
            assert_eq!(p.teacher.reconstruction.sizes(), vec![8, 7]);
            assert_eq!(p.student.forecast.sizes(), vec![8, 7]);
            assert_eq!(p.teacher.attention.sizes(), vec![7, 7]);
            assert_eq!(p.student.attention.sizes(), vec![7, 7]);
        }
    }

    #[test]
    fn frozen_lm_unreachable_from_all_losses() {
        let cfg = tiny_config(AblationConfig::full());
        let p = trace_pipeline(&cfg, 24, 8, 7, Fault::None).unwrap();
        for (name, root) in p.loss_roots() {
            for param in reachable_params(root) {
                assert!(
                    !param.is_frozen(),
                    "{name} reaches frozen param {}",
                    param.label()
                );
            }
        }
        // The frozen LM params are registered nonetheless.
        assert!(p.ctx.params().iter().any(|q| q.is_frozen()));
    }

    #[test]
    fn student_total_reaches_every_student_param() {
        let cfg = tiny_config(AblationConfig::full());
        let p = trace_pipeline(&cfg, 24, 8, 7, Fault::None).unwrap();
        let reached: std::collections::HashSet<u64> = reachable_params(&p.student_total)
            .iter()
            .map(|t| t.id())
            .collect();
        for param in p.ctx.params() {
            if param.label().starts_with("student.") {
                assert!(
                    reached.contains(&param.id()),
                    "student param {} unreachable from student_total",
                    param.label()
                );
            }
        }
        // No teacher parameter leaks into the student objective.
        assert!(reachable_params(&p.student_total)
            .iter()
            .all(|t| t.label().starts_with("student.")));
    }

    #[test]
    fn reconstruction_reaches_every_teacher_trainable() {
        let cfg = tiny_config(AblationConfig::full());
        let p = trace_pipeline(&cfg, 24, 8, 7, Fault::None).unwrap();
        let reached: std::collections::HashSet<u64> = reachable_params(&p.reconstruction)
            .iter()
            .map(|t| t.id())
            .collect();
        for param in p.ctx.params() {
            if param.label().starts_with("teacher.") && !param.is_frozen() {
                assert!(
                    reached.contains(&param.id()),
                    "teacher trainable {} unreachable from reconstruction",
                    param.label()
                );
            }
        }
    }

    #[test]
    fn correlation_wiring_hits_qk_but_not_vo() {
        let cfg = tiny_config(AblationConfig::full());
        let p = trace_pipeline(&cfg, 24, 8, 7, Fault::None).unwrap();
        let labels: Vec<String> = reachable_params(&p.correlation)
            .iter()
            .map(|t| t.label().to_string())
            .collect();
        let last = cfg.num_layers - 1;
        assert!(labels.contains(&format!("student.encoder.layer{last}.attn.wq.weight")));
        assert!(labels.contains(&format!("student.encoder.layer{last}.attn.wk.weight")));
        assert!(!labels.contains(&format!("student.encoder.layer{last}.attn.wv.weight")));
        assert!(!labels.contains(&format!("student.encoder.layer{last}.attn.wo.weight")));
        assert!(!labels.iter().any(|l| l.starts_with("student.projection")));
        assert!(!labels.iter().any(|l| l.starts_with("teacher.")));
    }

    #[test]
    fn detached_target_fault_severs_correlation() {
        let cfg = tiny_config(AblationConfig::full());
        let p = trace_pipeline(&cfg, 24, 8, 7, Fault::DetachedDistillationTarget).unwrap();
        assert!(reachable_params(&p.correlation).is_empty());
        // The feature loss is untouched by this fault.
        assert!(!reachable_params(&p.feature).is_empty());
    }

    #[test]
    fn unfrozen_lm_fault_reaches_frozen_params() {
        let cfg = tiny_config(AblationConfig::full());
        let p = trace_pipeline(&cfg, 24, 8, 7, Fault::UnfrozenLm).unwrap();
        assert!(reachable_params(&p.reconstruction)
            .iter()
            .any(|t| t.is_frozen()));
    }

    #[test]
    fn mismatched_head_dim_fault_is_shape_error() {
        let cfg = tiny_config(AblationConfig::full());
        let err = trace_pipeline(&cfg, 24, 8, 7, Fault::MismatchedHeadDim).unwrap_err();
        assert_eq!(err.op, "reshape");
        assert!(err.label.contains("student.encoder"), "{}", err.label);
    }

    #[test]
    fn dangling_param_fault_registers_unreachable_param() {
        let cfg = tiny_config(AblationConfig::full());
        let p = trace_pipeline(&cfg, 24, 8, 7, Fault::DanglingParam).unwrap();
        let reached: std::collections::HashSet<u64> = p
            .loss_roots()
            .iter()
            .flat_map(|(_, root)| reachable_params(root))
            .map(|t| t.id())
            .collect();
        let dangling: Vec<String> = p
            .ctx
            .params()
            .iter()
            .filter(|q| !q.is_frozen() && !reached.contains(&q.id()))
            .map(|q| q.label().to_string())
            .collect();
        assert_eq!(dangling, vec!["student.dangling.weight".to_string()]);
    }
}
