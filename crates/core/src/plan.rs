//! Plan-backed student inference.
//!
//! [`PlannedStudent`] compiles the student's symbolic forecast trace into a
//! static [`Plan`] (fixed schedule + liveness-colored arena), binds the
//! real [`Student`] parameters to it by label, and replays it with zero
//! per-call graph construction and zero allocation. Because the plan
//! executor invokes the same serial row-block kernels the dynamic engine
//! partitions across the worker pool, planned forecasts are **bitwise
//! identical** to [`Student::predict`] at any `TIMEKD_THREADS` setting.

use std::collections::HashMap;

use timekd_nn::Module;
use timekd_tensor::{Plan, PlanError, PlanExecutor, PlanSpec, Tensor};

use crate::config::TimeKdConfig;
use crate::student::Student;
use crate::symbolic::trace_student_forecast;

/// The plan spec for the student forecast graph: the history window is the
/// single runtime input, and the RevIN instance statistics (constant
/// leaves in the symbolic trace) lower to per-column mean/std steps over
/// it — with the same `1e-5` epsilon as the real layer.
pub fn student_plan_spec() -> PlanSpec {
    PlanSpec {
        input_label: "x".to_string(),
        col_mean_leaves: vec!["student.revin.mu".to_string()],
        col_std_leaves: vec![("student.revin.std".to_string(), 1e-5)],
    }
}

/// Traces the student forecast graph for this geometry and compiles it
/// into a static plan.
pub fn compile_student_plan(
    config: &TimeKdConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
) -> Result<Plan, PlanError> {
    let (_ctx, forecast) =
        trace_student_forecast(config, input_len, horizon, num_vars).map_err(|e| PlanError {
            message: format!("student trace failed: {e}"),
        })?;
    Plan::compile(&forecast, &student_plan_spec())
}

/// A [`Student`] whose predict path runs a compiled [`Plan`] instead of
/// the dynamic graph engine.
#[derive(Debug)]
pub struct PlannedStudent {
    plan: Plan,
    executor: PlanExecutor,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
}

impl PlannedStudent {
    /// Compiles the plan for `student`'s geometry and binds its parameters.
    ///
    /// Binding zips the symbolic trace's parameter registration order with
    /// [`Module::params`] order (the module mirrors register in lockstep),
    /// cross-checking label-by-label that every shape agrees.
    pub fn new(student: &Student, config: &TimeKdConfig) -> Result<PlannedStudent, PlanError> {
        let (ctx, forecast) = trace_student_forecast(
            config,
            student.input_len(),
            student.horizon(),
            student.num_vars(),
        )
        .map_err(|e| PlanError {
            message: format!("student trace failed: {e}"),
        })?;
        let plan = Plan::compile(&forecast, &student_plan_spec())?;

        let sym_params = ctx.params();
        let real_params = student.params();
        if sym_params.len() != real_params.len() {
            return Err(PlanError {
                message: format!(
                    "parameter count mismatch: trace has {}, student has {}",
                    sym_params.len(),
                    real_params.len()
                ),
            });
        }
        let mut by_label: HashMap<String, Tensor> = HashMap::with_capacity(real_params.len());
        for (sym, real) in sym_params.iter().zip(&real_params) {
            if sym.sizes() != real.dims() {
                return Err(PlanError {
                    message: format!(
                        "parameter `{}` shape mismatch: trace {:?}, student {:?}",
                        sym.label(),
                        sym.sizes(),
                        real.dims()
                    ),
                });
            }
            by_label.insert(sym.label().to_string(), real.clone());
        }

        let executor = PlanExecutor::new(&plan, |label, dims| {
            by_label
                .get(label)
                .filter(|t| t.dims() == dims)
                .map(|t| t.data().clone())
        })?;

        Ok(PlannedStudent {
            plan,
            executor,
            input_len: student.input_len(),
            horizon: student.horizon(),
            num_vars: student.num_vars(),
        })
    }

    /// The compiled plan (for inspection and verification).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Forecast horizon length.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Channel count.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Predicts into a caller-provided `[horizon * num_vars]` buffer with
    /// zero allocation and zero graph construction.
    pub fn predict_into(&mut self, x: &Tensor, out: &mut [f32]) {
        assert_eq!(
            x.dims(),
            &[self.input_len, self.num_vars],
            "planned student input shape"
        );
        self.executor.run(&x.data(), out);
    }

    /// Convenience wrapper returning a `[horizon, num_vars]` tensor.
    ///
    /// The executor never touches a `Tensor` op, but the `no_grad` scope
    /// keeps that guarantee even if one ever sneaks in.
    pub fn predict(&mut self, x: &Tensor) -> Tensor {
        timekd_tensor::no_grad(|| {
            let mut out = vec![0.0f32; self.horizon * self.num_vars];
            self.predict_into(x, &mut out);
            Tensor::from_vec(out, [self.horizon, self.num_vars])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_tensor::{parallel, seeded_rng};

    fn small_config() -> TimeKdConfig {
        let mut config = TimeKdConfig::default();
        config.dim = 16;
        config.num_heads = 2;
        config.num_layers = 2;
        config.ffn_hidden = 32;
        config
    }

    #[test]
    fn planned_predict_is_bitwise_identical_to_dynamic() {
        let config = small_config();
        let (input_len, horizon, num_vars) = (24, 8, 5);
        let mut rng = seeded_rng(7);
        let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
        let mut planned = PlannedStudent::new(&student, &config).unwrap();

        let x = Tensor::randn([input_len, num_vars], 1.0, &mut rng);
        let dynamic = student.predict(&x).to_vec();
        // The dynamic engine saves RevIN stats during predict; run the
        // plan afterwards so any (unwanted) state coupling would surface.
        for threads in [1, 2, 5] {
            let planned_out = parallel::with_threads(threads, || planned.predict(&x).to_vec());
            assert_eq!(
                planned_out, dynamic,
                "planned forecast must be bitwise identical at {threads} threads"
            );
        }
    }

    #[test]
    fn predict_into_writes_the_same_bytes() {
        let config = small_config();
        let mut rng = seeded_rng(11);
        let student = Student::new(&config, 16, 4, 3, &mut rng);
        let mut planned = PlannedStudent::new(&student, &config).unwrap();
        let x = Tensor::randn([16, 3], 1.0, &mut rng);
        let mut out = vec![0.0f32; 4 * 3];
        planned.predict_into(&x, &mut out);
        assert_eq!(out, student.predict(&x).to_vec());
    }

    #[test]
    fn plan_has_no_unlowered_ops_and_reuses_arena() {
        let config = small_config();
        let plan = compile_student_plan(&config, 24, 8, 5).unwrap();
        let total: usize = plan
            .steps()
            .iter()
            .map(|s| plan.values()[s.output].len())
            .sum();
        assert!(
            plan.arena_len() < total / 2,
            "liveness should reuse slots aggressively: arena {} vs outputs {}",
            plan.arena_len(),
            total
        );
    }
}
