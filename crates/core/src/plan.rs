//! Plan-backed student inference.
//!
//! [`PlannedStudent`] compiles the student's symbolic forecast trace into a
//! static [`Plan`] (fixed schedule + liveness-colored arena), binds the
//! real [`Student`] parameters to it by label, and replays it with zero
//! per-call graph construction and zero allocation. Because the plan
//! executor invokes the same serial row-block kernels the dynamic engine
//! partitions across the worker pool, planned forecasts are **bitwise
//! identical** to [`Student::predict`] at any `TIMEKD_THREADS` setting.

use std::collections::HashMap;

use timekd_nn::Module;
use timekd_tensor::{
    Plan, PlanError, PlanExecutor, PlanOptimizer, PlanSpec, Precision, Tensor, TrainExecutor,
    TrainSpec, ValueSource,
};

use crate::config::TimeKdConfig;
use crate::student::Student;
use crate::symbolic::{trace_student_forecast, trace_student_loss};

/// The plan spec for the student forecast graph: the history window is the
/// single runtime input, and the RevIN instance statistics (constant
/// leaves in the symbolic trace) lower to per-column mean/std steps over
/// it — with the same `1e-5` epsilon as the real layer.
pub fn student_plan_spec() -> PlanSpec {
    student_plan_spec_with_precision(Precision::F32)
}

/// [`student_plan_spec`] with an explicit executor precision — `Int8`
/// compiles the quantized inference path ([`QuantizedStudent`]).
pub fn student_plan_spec_with_precision(precision: Precision) -> PlanSpec {
    PlanSpec {
        input_label: "x".to_string(),
        col_mean_leaves: vec!["student.revin.mu".to_string()],
        col_std_leaves: vec![("student.revin.std".to_string(), 1e-5)],
        precision,
    }
}

/// Traces the student forecast graph for this geometry and compiles it
/// into a static plan.
pub fn compile_student_plan(
    config: &TimeKdConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
) -> Result<Plan, PlanError> {
    let (_ctx, forecast) =
        trace_student_forecast(config, input_len, horizon, num_vars).map_err(|e| PlanError {
            message: format!("student trace failed: {e}"),
        })?;
    Plan::compile(&forecast, &student_plan_spec())
}

/// A [`Student`] whose predict path runs a compiled [`Plan`] instead of
/// the dynamic graph engine.
#[derive(Debug)]
pub struct PlannedStudent {
    plan: Plan,
    executor: PlanExecutor,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
}

/// Compiles the forecast plan for `student`'s geometry at the given
/// precision and binds the student's parameters to an executor.
///
/// Binding zips the symbolic trace's parameter registration order with
/// [`Module::params`] order (the module mirrors register in lockstep),
/// cross-checking label-by-label that every shape agrees.
fn bind_student_forecast(
    student: &Student,
    config: &TimeKdConfig,
    precision: Precision,
) -> Result<(Plan, PlanExecutor), PlanError> {
    let (ctx, forecast) = trace_student_forecast(
        config,
        student.input_len(),
        student.horizon(),
        student.num_vars(),
    )
    .map_err(|e| PlanError {
        message: format!("student trace failed: {e}"),
    })?;
    let plan = Plan::compile(&forecast, &student_plan_spec_with_precision(precision))?;

    let sym_params = ctx.params();
    let real_params = student.params();
    if sym_params.len() != real_params.len() {
        return Err(PlanError {
            message: format!(
                "parameter count mismatch: trace has {}, student has {}",
                sym_params.len(),
                real_params.len()
            ),
        });
    }
    let mut by_label: HashMap<String, Tensor> = HashMap::with_capacity(real_params.len());
    for (sym, real) in sym_params.iter().zip(&real_params) {
        if sym.sizes() != real.dims() {
            return Err(PlanError {
                message: format!(
                    "parameter `{}` shape mismatch: trace {:?}, student {:?}",
                    sym.label(),
                    sym.sizes(),
                    real.dims()
                ),
            });
        }
        by_label.insert(sym.label().to_string(), real.clone());
    }

    let executor = PlanExecutor::new(&plan, |label, dims| {
        by_label
            .get(label)
            .filter(|t| t.dims() == dims)
            .map(|t| t.data().clone())
    })?;
    Ok((plan, executor))
}

impl PlannedStudent {
    /// Compiles the plan for `student`'s geometry and binds its parameters
    /// (see [`bind_student_forecast`] for the binding contract).
    pub fn new(student: &Student, config: &TimeKdConfig) -> Result<PlannedStudent, PlanError> {
        let (plan, executor) = bind_student_forecast(student, config, Precision::F32)?;
        Ok(PlannedStudent {
            plan,
            executor,
            input_len: student.input_len(),
            horizon: student.horizon(),
            num_vars: student.num_vars(),
        })
    }

    /// The compiled plan (for inspection and verification).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Forecast horizon length.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Channel count.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Predicts into a caller-provided `[horizon * num_vars]` buffer with
    /// zero allocation and zero graph construction.
    pub fn predict_into(&mut self, x: &Tensor, out: &mut [f32]) {
        assert_eq!(
            x.dims(),
            &[self.input_len, self.num_vars],
            "planned student input shape"
        );
        self.executor.run(&x.data(), out);
    }

    /// Convenience wrapper returning a `[horizon, num_vars]` tensor.
    ///
    /// The executor never touches a `Tensor` op, but the `no_grad` scope
    /// keeps that guarantee even if one ever sneaks in.
    pub fn predict(&mut self, x: &Tensor) -> Tensor {
        timekd_tensor::no_grad(|| {
            let mut out = vec![0.0f32; self.horizon * self.num_vars];
            self.predict_into(x, &mut out);
            Tensor::from_vec(out, [self.horizon, self.num_vars])
        })
    }

    /// Resident parameter bytes of the bound executor.
    pub fn param_bytes(&self) -> usize {
        self.executor.param_bytes()
    }
}

/// A [`Student`] whose predict path runs the compiled plan with int8
/// weight matmuls: every projection weight that feeds a `Matmul2d` step is
/// quantized once at bind time (per-output-column absmax scales),
/// activations are row-quantized on the fly into executor scratch, and
/// products accumulate in exact i32 before dequantizing at the activation
/// boundary. Attention, RevIN, and element-wise ops stay f32.
///
/// Forecasts are approximate — the quantized-vs-f32 MSE delta is gated in
/// `timekd-bench` — but remain bitwise deterministic at any
/// `TIMEKD_THREADS` setting: the integer accumulation is order-free, and
/// the residual f32 steps keep one pinned reduction order per SIMD mode
/// (the two `TIMEKD_SIMD` modes are separately pinned, like everywhere
/// else in the workspace).
#[derive(Debug)]
pub struct QuantizedStudent {
    plan: Plan,
    executor: PlanExecutor,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
}

impl QuantizedStudent {
    /// Compiles the int8-precision plan for `student`'s geometry and binds
    /// (quantizing) its parameters.
    pub fn new(student: &Student, config: &TimeKdConfig) -> Result<QuantizedStudent, PlanError> {
        let (plan, executor) = bind_student_forecast(student, config, Precision::Int8)?;
        Ok(QuantizedStudent {
            plan,
            executor,
            input_len: student.input_len(),
            horizon: student.horizon(),
            num_vars: student.num_vars(),
        })
    }

    /// The compiled plan (for inspection and verification).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Forecast horizon length.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Channel count.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Resident parameter bytes after bind-time quantization: int8 codes +
    /// scales for the quantized weights, f32 for everything else (biases,
    /// norm gains). Compare with [`PlannedStudent::param_bytes`].
    pub fn param_bytes(&self) -> usize {
        self.executor.param_bytes()
    }

    /// Predicts into a caller-provided `[horizon * num_vars]` buffer with
    /// zero allocation and zero graph construction.
    pub fn predict_into(&mut self, x: &Tensor, out: &mut [f32]) {
        assert_eq!(
            x.dims(),
            &[self.input_len, self.num_vars],
            "quantized student input shape"
        );
        self.executor.run(&x.data(), out);
    }

    /// Convenience wrapper returning a `[horizon, num_vars]` tensor.
    pub fn predict(&mut self, x: &Tensor) -> Tensor {
        timekd_tensor::no_grad(|| {
            let mut out = vec![0.0f32; self.horizon * self.num_vars];
            self.predict_into(x, &mut out);
            Tensor::from_vec(out, [self.horizon, self.num_vars])
        })
    }
}

/// The train spec for the student loss graph: the horizon window is the
/// per-step target leaf (`y` in `trace_student_loss`).
pub fn student_train_spec(optimizer: PlanOptimizer) -> TrainSpec {
    TrainSpec {
        target_label: "y".to_string(),
        optimizer,
    }
}

/// Traces the student forecasting loss for this geometry and compiles the
/// full training plan — forward, reverse schedule, fused optimizer.
pub fn compile_student_training_plan(
    config: &TimeKdConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
    optimizer: PlanOptimizer,
) -> Result<Plan, PlanError> {
    let (_ctx, loss) =
        trace_student_loss(config, input_len, horizon, num_vars).map_err(|e| PlanError {
            message: format!("student loss trace failed: {e}"),
        })?;
    Plan::compile_training(&loss, &student_plan_spec(), &student_train_spec(optimizer))
}

/// A [`Student`] training loop whose every step — forward, backward, and
/// optimizer update — replays a compiled training [`Plan`] with zero graph
/// construction and zero heap allocation.
///
/// Because the training executor runs the same serial row-block kernels
/// the dynamic engine partitions across the worker pool, and the fused
/// optimizer updates restate the dynamic optimizers verbatim, parameters
/// after any number of [`PlannedTrainer::planned_train_step`] calls are
/// **bitwise identical** to dynamic [`Student`] training at any
/// `TIMEKD_THREADS` setting.
#[derive(Debug)]
pub struct PlannedTrainer {
    plan: Plan,
    executor: TrainExecutor,
    /// Parameter labels in executor binding order (plan value order).
    param_labels: Vec<String>,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
}

impl PlannedTrainer {
    /// Compiles the training plan for `student`'s geometry and binds its
    /// current parameter values (copied — the live student is untouched).
    pub fn new(
        student: &Student,
        config: &TimeKdConfig,
        optimizer: PlanOptimizer,
    ) -> Result<PlannedTrainer, PlanError> {
        let (ctx, loss) = trace_student_loss(
            config,
            student.input_len(),
            student.horizon(),
            student.num_vars(),
        )
        .map_err(|e| PlanError {
            message: format!("student loss trace failed: {e}"),
        })?;
        let plan =
            Plan::compile_training(&loss, &student_plan_spec(), &student_train_spec(optimizer))?;

        let sym_params = ctx.params();
        let real_params = student.params();
        if sym_params.len() != real_params.len() {
            return Err(PlanError {
                message: format!(
                    "parameter count mismatch: trace has {}, student has {}",
                    sym_params.len(),
                    real_params.len()
                ),
            });
        }
        let mut by_label: HashMap<String, Tensor> = HashMap::with_capacity(real_params.len());
        for (sym, real) in sym_params.iter().zip(&real_params) {
            if sym.sizes() != real.dims() {
                return Err(PlanError {
                    message: format!(
                        "parameter `{}` shape mismatch: trace {:?}, student {:?}",
                        sym.label(),
                        sym.sizes(),
                        real.dims()
                    ),
                });
            }
            by_label.insert(sym.label().to_string(), real.clone());
        }

        let executor = TrainExecutor::new(&plan, |label, dims| {
            by_label
                .get(label)
                .filter(|t| t.dims() == dims)
                .map(|t| t.data().clone())
        })?;
        let param_labels: Vec<String> = plan
            .values()
            .iter()
            .filter(|v| v.source == ValueSource::Param)
            .map(|v| v.label.clone())
            .collect();

        Ok(PlannedTrainer {
            plan,
            executor,
            param_labels,
            input_len: student.input_len(),
            horizon: student.horizon(),
            num_vars: student.num_vars(),
        })
    }

    /// The compiled training plan (for inspection and verification).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Labels of the bound parameters, in binding order.
    pub fn param_labels(&self) -> &[String] {
        &self.param_labels
    }

    /// Current data of the parameter named `label`, if bound.
    pub fn param_data(&self, label: &str) -> Option<&[f32]> {
        let idx = self.param_labels.iter().position(|l| l == label)?;
        Some(self.executor.param_data(idx))
    }

    /// Runs one full training step on a `[L, N]` history window and its
    /// `[M, N]` horizon target, returning the loss. No graph is built and
    /// no heap allocation happens.
    pub fn planned_train_step(&mut self, x: &Tensor, y: &Tensor) -> f32 {
        assert_eq!(
            x.dims(),
            &[self.input_len, self.num_vars],
            "planned trainer input shape"
        );
        assert_eq!(
            y.dims(),
            &[self.horizon, self.num_vars],
            "planned trainer target shape"
        );
        self.executor.run_train_step(&x.data(), &y.data())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_tensor::{parallel, seeded_rng};

    fn small_config() -> TimeKdConfig {
        TimeKdConfig {
            dim: 16,
            num_heads: 2,
            num_layers: 2,
            ffn_hidden: 32,
            ..Default::default()
        }
    }

    #[test]
    fn planned_predict_is_bitwise_identical_to_dynamic() {
        let config = small_config();
        let (input_len, horizon, num_vars) = (24, 8, 5);
        let mut rng = seeded_rng(7);
        let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
        let mut planned = PlannedStudent::new(&student, &config).unwrap();

        let x = Tensor::randn([input_len, num_vars], 1.0, &mut rng);
        let dynamic = student.predict(&x).to_vec();
        // The dynamic engine saves RevIN stats during predict; run the
        // plan afterwards so any (unwanted) state coupling would surface.
        for threads in [1, 2, 5] {
            let planned_out = parallel::with_threads(threads, || planned.predict(&x).to_vec());
            assert_eq!(
                planned_out, dynamic,
                "planned forecast must be bitwise identical at {threads} threads"
            );
        }
    }

    #[test]
    fn predict_into_writes_the_same_bytes() {
        let config = small_config();
        let mut rng = seeded_rng(11);
        let student = Student::new(&config, 16, 4, 3, &mut rng);
        let mut planned = PlannedStudent::new(&student, &config).unwrap();
        let x = Tensor::randn([16, 3], 1.0, &mut rng);
        let mut out = vec![0.0f32; 4 * 3];
        planned.predict_into(&x, &mut out);
        assert_eq!(out, student.predict(&x).to_vec());
    }

    fn windows(
        n: usize,
        input_len: usize,
        horizon: usize,
        num_vars: usize,
    ) -> Vec<(Tensor, Tensor)> {
        let mut rng = seeded_rng(23);
        (0..n)
            .map(|_| {
                (
                    Tensor::randn([input_len, num_vars], 1.0, &mut rng),
                    Tensor::randn([horizon, num_vars], 1.0, &mut rng),
                )
            })
            .collect()
    }

    /// Dynamic reference: the exact `Student` training idiom, returning
    /// every parameter keyed by its symbolic label.
    fn dynamic_train(
        config: &TimeKdConfig,
        data: &[(Tensor, Tensor)],
        sgd_lr: Option<f32>,
    ) -> (HashMap<String, Vec<f32>>, f32) {
        let (input_len, num_vars) = (data[0].0.dims()[0], data[0].0.dims()[1]);
        let horizon = data[0].1.dims()[0];
        let mut rng = seeded_rng(7);
        let student = Student::new(config, input_len, horizon, num_vars, &mut rng);
        let params = student.params();
        let mut adamw = timekd_nn::AdamW::new(0.01, timekd_nn::AdamWConfig::default());
        let sgd = sgd_lr.map(timekd_nn::Sgd::new);
        let mut last = 0.0;
        for (x, y) in data {
            student.zero_grad();
            let out = student.forward(x);
            let loss = timekd_nn::smooth_l1_loss(&out.forecast, y);
            last = loss.item();
            loss.backward();
            match &sgd {
                Some(s) => s.step(&params),
                None => adamw.step(&params),
            }
        }
        let (ctx, _) = trace_student_loss(config, input_len, horizon, num_vars).unwrap();
        let by_label = ctx
            .params()
            .iter()
            .zip(&params)
            .map(|(sym, real)| (sym.label().to_string(), real.to_vec()))
            .collect();
        (by_label, last)
    }

    fn assert_planned_matches_dynamic(optimizer: PlanOptimizer, sgd_lr: Option<f32>) {
        let config = small_config();
        let (input_len, horizon, num_vars) = (24, 8, 5);
        let data = windows(3, input_len, horizon, num_vars);
        let (dynamic_params, dynamic_loss) = dynamic_train(&config, &data, sgd_lr);
        for threads in [1, 2, 5] {
            let mut rng = seeded_rng(7);
            let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
            let mut trainer = PlannedTrainer::new(&student, &config, optimizer).unwrap();
            let mut last = 0.0;
            parallel::with_threads(threads, || {
                for (x, y) in &data {
                    last = trainer.planned_train_step(x, y);
                }
            });
            assert_eq!(
                last.to_bits(),
                dynamic_loss.to_bits(),
                "loss diverges at {threads} threads"
            );
            for label in trainer.param_labels().to_vec() {
                let planned = trainer.param_data(&label).unwrap();
                let dynamic = dynamic_params
                    .get(&label)
                    .unwrap_or_else(|| panic!("dynamic student has no param `{label}`"));
                assert_eq!(
                    planned,
                    &dynamic[..],
                    "param `{label}` diverges at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn planned_sgd_training_is_bitwise_identical_to_dynamic() {
        assert_planned_matches_dynamic(PlanOptimizer::Sgd { lr: 0.05 }, Some(0.05));
    }

    #[test]
    fn planned_adamw_training_is_bitwise_identical_to_dynamic() {
        assert_planned_matches_dynamic(
            PlanOptimizer::AdamW {
                lr: 0.01,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                weight_decay: 0.01,
            },
            None,
        );
    }

    #[test]
    fn training_plan_covers_every_student_parameter() {
        let config = small_config();
        let plan = compile_student_training_plan(&config, 24, 8, 5, PlanOptimizer::Sgd { lr: 0.1 })
            .unwrap();
        let params = plan
            .values()
            .iter()
            .filter(|v| v.source == ValueSource::Param)
            .count();
        assert_eq!(
            plan.update_steps().len(),
            params,
            "every student parameter must receive exactly one fused update"
        );
        assert!(plan.is_training());
        assert!(!plan.bwd_steps().is_empty());
    }

    #[test]
    fn quantized_student_tracks_f32_and_shrinks_params() {
        let config = small_config();
        let (input_len, horizon, num_vars) = (24, 8, 5);
        let mut rng = seeded_rng(7);
        let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
        let mut planned = PlannedStudent::new(&student, &config).unwrap();
        let mut quant = QuantizedStudent::new(&student, &config).unwrap();

        // The int8 executor replaces f32 weight copies with codes+scales:
        // the resident parameter footprint must shrink substantially.
        assert!(
            quant.param_bytes() < planned.param_bytes() / 2,
            "quantized params {} vs f32 {}",
            quant.param_bytes(),
            planned.param_bytes()
        );

        let x = Tensor::randn([input_len, num_vars], 1.0, &mut rng);
        let exact = planned.predict(&x);
        let approx = quant.predict(&x);
        let mse = exact
            .to_vec()
            .iter()
            .zip(approx.to_vec())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / exact.to_vec().len() as f32;
        // Untrained-student outputs are O(1); int8 weight+activation
        // quantization should stay well inside this bound.
        assert!(mse < 1e-2, "quantized forecast drifted: mse {mse}");
        assert!(mse.is_finite());
    }

    #[test]
    fn quantized_student_is_deterministic_across_threads() {
        let config = small_config();
        let (input_len, horizon, num_vars) = (24, 8, 5);
        let mut rng = seeded_rng(13);
        let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
        let x = Tensor::randn([input_len, num_vars], 1.0, &mut rng);
        // The quantized matmuls are order-free (i32 accumulation); the
        // remaining f32 steps (attention, RevIN) have one pinned order per
        // SIMD mode. So forecasts are bitwise stable across threads within
        // each mode, while the two modes may differ by float rounding.
        for simd_on in [true, false] {
            let base = timekd_tensor::with_simd(simd_on, || {
                // Bind inside the override so the executor's resolved
                // mode follows it.
                QuantizedStudent::new(&student, &config)
                    .unwrap()
                    .predict(&x)
                    .to_vec()
            });
            for threads in [1, 2, 5] {
                let out = parallel::with_threads(threads, || {
                    timekd_tensor::with_simd(simd_on, || {
                        QuantizedStudent::new(&student, &config)
                            .unwrap()
                            .predict(&x)
                            .to_vec()
                    })
                });
                assert_eq!(
                    out, base,
                    "quantized forecast diverges at threads={threads} simd={simd_on}"
                );
            }
        }
    }

    #[test]
    fn train_executor_rejects_int8_plans() {
        let config = small_config();
        let (_ctx, loss) = trace_student_loss(&config, 24, 8, 5).unwrap();
        let plan = Plan::compile_training(
            &loss,
            &student_plan_spec_with_precision(Precision::Int8),
            &student_train_spec(PlanOptimizer::Sgd { lr: 0.1 }),
        )
        .unwrap();
        let err = TrainExecutor::new(&plan, |_, _| None).unwrap_err();
        assert!(
            err.to_string().contains("inference-only"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn plan_has_no_unlowered_ops_and_reuses_arena() {
        let config = small_config();
        let plan = compile_student_plan(&config, 24, 8, 5).unwrap();
        let total: usize = plan
            .steps()
            .iter()
            .map(|s| plan.values()[s.output].len())
            .sum();
        assert!(
            plan.arena_len() < total / 2,
            "liveness should reuse slots aggressively: arena {} vs outputs {}",
            plan.arena_len(),
            total
        );
    }
}
