//! Plan-backed student inference.
//!
//! [`PlannedStudent`] compiles the student's symbolic forecast trace into a
//! static [`Plan`] (fixed schedule + liveness-colored arena), binds the
//! real [`Student`] parameters to it by label, and replays it with zero
//! per-call graph construction and zero allocation. Because the plan
//! executor invokes the same serial row-block kernels the dynamic engine
//! partitions across the worker pool, planned forecasts are **bitwise
//! identical** to [`Student::predict`] at any `TIMEKD_THREADS` setting.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use timekd_nn::Module;
use timekd_tensor::{
    BatchTrainExecutor, Plan, PlanError, PlanExecutor, PlanOptimizer, PlanSpec, Precision, Tensor,
    TrainExecutor, TrainSpec, ValueSource,
};

use crate::config::TimeKdConfig;
use crate::student::Student;
use crate::symbolic::{
    trace_student_forecast, trace_student_loss, trace_student_objective, TEACHER_ATT_LABEL,
    TEACHER_EMB_LABEL,
};

/// The plan spec for the student forecast graph: the history window is the
/// single runtime input, and the RevIN instance statistics (constant
/// leaves in the symbolic trace) lower to per-column mean/std steps over
/// it — with the same `1e-5` epsilon as the real layer.
pub fn student_plan_spec() -> PlanSpec {
    student_plan_spec_with_precision(Precision::F32)
}

/// [`student_plan_spec`] with an explicit executor precision — `Int8`
/// compiles the quantized inference path ([`QuantizedStudent`]).
pub fn student_plan_spec_with_precision(precision: Precision) -> PlanSpec {
    PlanSpec {
        input_label: "x".to_string(),
        col_mean_leaves: vec!["student.revin.mu".to_string()],
        col_std_leaves: vec![("student.revin.std".to_string(), 1e-5)],
        aux_labels: Vec::new(),
        precision,
    }
}

/// Aux feed slot of the teacher attention `A_PE` in objective plans.
pub const AUX_TEACHER_ATT: usize = 0;
/// Aux feed slot of the teacher embedding `E_GT` in objective plans.
pub const AUX_TEACHER_EMB: usize = 1;

/// The plan spec for the *full* student objective graph
/// ([`trace_student_objective`]): like [`student_plan_spec`], plus the
/// teacher's privileged products as per-window auxiliary constants. The
/// slot order here fixes [`AUX_TEACHER_ATT`] / [`AUX_TEACHER_EMB`];
/// configurations whose ablation drops an arm simply leave that slot
/// empty (`aux_len == 0`).
pub fn student_objective_spec() -> PlanSpec {
    PlanSpec {
        aux_labels: vec![TEACHER_ATT_LABEL.to_string(), TEACHER_EMB_LABEL.to_string()],
        ..student_plan_spec()
    }
}

// ---------------------------------------------------------------------------
// Compiled-plan cache
// ---------------------------------------------------------------------------

const KIND_FORECAST: u64 = 1;
const KIND_TRAIN_FORECAST_LOSS: u64 = 2;
const KIND_TRAIN_OBJECTIVE: u64 = 3;

thread_local! {
    static PLAN_CACHE: RefCell<HashMap<Vec<u64>, Plan>> = RefCell::new(HashMap::new());
    static PLAN_CACHE_HITS: Cell<u64> = const { Cell::new(0) };
    static PLAN_CACHE_MISSES: Cell<u64> = const { Cell::new(0) };
}

/// `(hits, misses)` of this thread's compiled-plan cache. A miss is an
/// actual [`Plan`] compilation (also counted by the global
/// `timekd_obs::PLAN_COMPILES` counter when tracing is enabled). Epoch
/// loops over a fixed geometry must only ever add hits after their first
/// epoch — the cache-reuse tests assert exactly that.
pub fn plan_cache_stats() -> (u64, u64) {
    (
        PLAN_CACHE_HITS.with(Cell::get),
        PLAN_CACHE_MISSES.with(Cell::get),
    )
}

/// Empties this thread's compiled-plan cache and zeroes its stats. Only
/// tests need this (isolation between compile-count assertions).
pub fn reset_plan_cache() {
    PLAN_CACHE.with(|c| c.borrow_mut().clear());
    PLAN_CACHE_HITS.with(|h| h.set(0));
    PLAN_CACHE_MISSES.with(|m| m.set(0));
}

fn push_f32(key: &mut Vec<u64>, v: f32) {
    key.push(u64::from(v.to_bits()));
}

/// Everything that shapes a compiled student graph for `config` at this
/// geometry: plan kind, sizes, encoder architecture, and ablation bits.
/// Loss weights and optimizer hyper-parameters are appended by the
/// training-plan key builders (they are baked into plan steps).
fn plan_key_base(
    kind: u64,
    config: &TimeKdConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
) -> Vec<u64> {
    let ab = config.ablation;
    vec![
        kind,
        input_len as u64,
        horizon as u64,
        num_vars as u64,
        config.dim as u64,
        config.num_layers as u64,
        config.num_heads as u64,
        config.ffn_hidden as u64,
        u64::from(ab.privileged_info)
            | (u64::from(ab.calibrated_attention) << 1)
            | (u64::from(ab.use_clm) << 2)
            | (u64::from(ab.use_sca) << 3)
            | (u64::from(ab.correlation_distillation) << 4)
            | (u64::from(ab.feature_distillation) << 5),
    ]
}

fn push_optimizer(key: &mut Vec<u64>, optimizer: &PlanOptimizer) {
    match *optimizer {
        PlanOptimizer::Sgd { lr } => {
            key.push(1);
            push_f32(key, lr);
        }
        PlanOptimizer::AdamW {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
        } => {
            key.push(2);
            for v in [lr, beta1, beta2, eps, weight_decay] {
                push_f32(key, v);
            }
        }
    }
}

/// Returns the cached plan for `key`, compiling (and caching) on first
/// use. Compilation is deterministic in the key, so a cache hit is
/// bitwise-equivalent to recompiling — the whole point is that epoch
/// loops stop paying the lowering cost per epoch.
fn cached_plan(
    key: Vec<u64>,
    compile: impl FnOnce() -> Result<Plan, PlanError>,
) -> Result<Plan, PlanError> {
    if let Some(plan) = PLAN_CACHE.with(|c| c.borrow().get(&key).cloned()) {
        PLAN_CACHE_HITS.with(|h| h.set(h.get() + 1));
        return Ok(plan);
    }
    let plan = compile()?;
    timekd_obs::PLAN_COMPILES.add(1);
    PLAN_CACHE_MISSES.with(|m| m.set(m.get() + 1));
    PLAN_CACHE.with(|c| c.borrow_mut().insert(key, plan.clone()));
    Ok(plan)
}

/// Traces the student forecast graph for this geometry and compiles it
/// into a static plan.
pub fn compile_student_plan(
    config: &TimeKdConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
) -> Result<Plan, PlanError> {
    let (_ctx, forecast) =
        trace_student_forecast(config, input_len, horizon, num_vars).map_err(|e| PlanError {
            message: format!("student trace failed: {e}"),
        })?;
    let mut key = plan_key_base(KIND_FORECAST, config, input_len, horizon, num_vars);
    key.push(0); // Precision::F32
    cached_plan(key, || Plan::compile(&forecast, &student_plan_spec()))
}

/// A [`Student`] whose predict path runs a compiled [`Plan`] instead of
/// the dynamic graph engine.
#[derive(Debug)]
pub struct PlannedStudent {
    plan: Plan,
    executor: PlanExecutor,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
}

/// Compiles the forecast plan for `student`'s geometry at the given
/// precision and binds the student's parameters to an executor.
///
/// Binding zips the symbolic trace's parameter registration order with
/// [`Module::params`] order (the module mirrors register in lockstep),
/// cross-checking label-by-label that every shape agrees.
fn bind_student_forecast(
    student: &Student,
    config: &TimeKdConfig,
    precision: Precision,
) -> Result<(Plan, PlanExecutor), PlanError> {
    let (ctx, forecast) = trace_student_forecast(
        config,
        student.input_len(),
        student.horizon(),
        student.num_vars(),
    )
    .map_err(|e| PlanError {
        message: format!("student trace failed: {e}"),
    })?;
    let mut key = plan_key_base(
        KIND_FORECAST,
        config,
        student.input_len(),
        student.horizon(),
        student.num_vars(),
    );
    key.push(match precision {
        Precision::F32 => 0,
        Precision::Int8 => 1,
    });
    let plan = cached_plan(key, || {
        Plan::compile(&forecast, &student_plan_spec_with_precision(precision))
    })?;

    let sym_params = ctx.params();
    let real_params = student.params();
    if sym_params.len() != real_params.len() {
        return Err(PlanError {
            message: format!(
                "parameter count mismatch: trace has {}, student has {}",
                sym_params.len(),
                real_params.len()
            ),
        });
    }
    let mut by_label: HashMap<String, Tensor> = HashMap::with_capacity(real_params.len());
    for (sym, real) in sym_params.iter().zip(&real_params) {
        if sym.sizes() != real.dims() {
            return Err(PlanError {
                message: format!(
                    "parameter `{}` shape mismatch: trace {:?}, student {:?}",
                    sym.label(),
                    sym.sizes(),
                    real.dims()
                ),
            });
        }
        by_label.insert(sym.label().to_string(), real.clone());
    }

    let executor = PlanExecutor::new(&plan, |label, dims| {
        by_label
            .get(label)
            .filter(|t| t.dims() == dims)
            .map(|t| t.data().clone())
    })?;
    Ok((plan, executor))
}

impl PlannedStudent {
    /// Compiles the plan for `student`'s geometry and binds its parameters
    /// (see [`bind_student_forecast`] for the binding contract).
    pub fn new(student: &Student, config: &TimeKdConfig) -> Result<PlannedStudent, PlanError> {
        let (plan, executor) = bind_student_forecast(student, config, Precision::F32)?;
        Ok(PlannedStudent {
            plan,
            executor,
            input_len: student.input_len(),
            horizon: student.horizon(),
            num_vars: student.num_vars(),
        })
    }

    /// The compiled plan (for inspection and verification).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Forecast horizon length.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Channel count.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Predicts into a caller-provided `[horizon * num_vars]` buffer with
    /// zero allocation and zero graph construction.
    pub fn predict_into(&mut self, x: &Tensor, out: &mut [f32]) {
        assert_eq!(
            x.dims(),
            &[self.input_len, self.num_vars],
            "planned student input shape"
        );
        self.executor.run(&x.data(), out);
    }

    /// Convenience wrapper returning a `[horizon, num_vars]` tensor.
    ///
    /// The executor never touches a `Tensor` op, but the `no_grad` scope
    /// keeps that guarantee even if one ever sneaks in.
    pub fn predict(&mut self, x: &Tensor) -> Tensor {
        timekd_tensor::no_grad(|| {
            let mut out = vec![0.0f32; self.horizon * self.num_vars];
            self.predict_into(x, &mut out);
            Tensor::from_vec(out, [self.horizon, self.num_vars])
        })
    }

    /// Resident parameter bytes of the bound executor.
    pub fn param_bytes(&self) -> usize {
        self.executor.param_bytes()
    }
}

/// A [`Student`] whose predict path runs the compiled plan with int8
/// weight matmuls: every projection weight that feeds a `Matmul2d` step is
/// quantized once at bind time (per-output-column absmax scales),
/// activations are row-quantized on the fly into executor scratch, and
/// products accumulate in exact i32 before dequantizing at the activation
/// boundary. Attention, RevIN, and element-wise ops stay f32.
///
/// Forecasts are approximate — the quantized-vs-f32 MSE delta is gated in
/// `timekd-bench` — but remain bitwise deterministic at any
/// `TIMEKD_THREADS` setting: the integer accumulation is order-free, and
/// the residual f32 steps keep one pinned reduction order per SIMD mode
/// (the two `TIMEKD_SIMD` modes are separately pinned, like everywhere
/// else in the workspace).
#[derive(Debug)]
pub struct QuantizedStudent {
    plan: Plan,
    executor: PlanExecutor,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
}

impl QuantizedStudent {
    /// Compiles the int8-precision plan for `student`'s geometry and binds
    /// (quantizing) its parameters.
    pub fn new(student: &Student, config: &TimeKdConfig) -> Result<QuantizedStudent, PlanError> {
        let (plan, executor) = bind_student_forecast(student, config, Precision::Int8)?;
        Ok(QuantizedStudent {
            plan,
            executor,
            input_len: student.input_len(),
            horizon: student.horizon(),
            num_vars: student.num_vars(),
        })
    }

    /// The compiled plan (for inspection and verification).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Forecast horizon length.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Channel count.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Resident parameter bytes after bind-time quantization: int8 codes +
    /// scales for the quantized weights, f32 for everything else (biases,
    /// norm gains). Compare with [`PlannedStudent::param_bytes`].
    pub fn param_bytes(&self) -> usize {
        self.executor.param_bytes()
    }

    /// Predicts into a caller-provided `[horizon * num_vars]` buffer with
    /// zero allocation and zero graph construction.
    pub fn predict_into(&mut self, x: &Tensor, out: &mut [f32]) {
        assert_eq!(
            x.dims(),
            &[self.input_len, self.num_vars],
            "quantized student input shape"
        );
        self.executor.run(&x.data(), out);
    }

    /// Convenience wrapper returning a `[horizon, num_vars]` tensor.
    pub fn predict(&mut self, x: &Tensor) -> Tensor {
        timekd_tensor::no_grad(|| {
            let mut out = vec![0.0f32; self.horizon * self.num_vars];
            self.predict_into(x, &mut out);
            Tensor::from_vec(out, [self.horizon, self.num_vars])
        })
    }
}

/// The train spec for the student loss graph: the horizon window is the
/// per-step target leaf (`y` in `trace_student_loss`).
pub fn student_train_spec(optimizer: PlanOptimizer) -> TrainSpec {
    TrainSpec::new("y", optimizer)
}

/// Traces the student forecasting loss for this geometry and compiles the
/// full training plan — forward, reverse schedule, fused optimizer.
pub fn compile_student_training_plan(
    config: &TimeKdConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
    optimizer: PlanOptimizer,
) -> Result<Plan, PlanError> {
    let (_ctx, loss) =
        trace_student_loss(config, input_len, horizon, num_vars).map_err(|e| PlanError {
            message: format!("student loss trace failed: {e}"),
        })?;
    let mut key = plan_key_base(
        KIND_TRAIN_FORECAST_LOSS,
        config,
        input_len,
        horizon,
        num_vars,
    );
    push_optimizer(&mut key, &optimizer);
    cached_plan(key, || {
        Plan::compile_training(&loss, &student_plan_spec(), &student_train_spec(optimizer))
    })
}

/// [`compile_student_training_plan`] lowered once more into a batched
/// multi-window plan: `batch` per-window gradient lanes plus the pinned
/// cross-window reduction schedule (see
/// [`Plan::compile_training_batched`]). Cached like every other compile.
pub fn compile_student_training_plan_batched(
    config: &TimeKdConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
    optimizer: PlanOptimizer,
    batch: usize,
) -> Result<Plan, PlanError> {
    let (_ctx, loss) =
        trace_student_loss(config, input_len, horizon, num_vars).map_err(|e| PlanError {
            message: format!("student loss trace failed: {e}"),
        })?;
    let mut key = plan_key_base(
        KIND_TRAIN_FORECAST_LOSS,
        config,
        input_len,
        horizon,
        num_vars,
    );
    push_optimizer(&mut key, &optimizer);
    key.push(batch as u64);
    cached_plan(key, || {
        Plan::compile_training_batched(
            &loss,
            &student_plan_spec(),
            &student_train_spec(optimizer),
            batch,
        )
    })
}

/// A [`Student`] training loop whose every step — forward, backward, and
/// optimizer update — replays a compiled training [`Plan`] with zero graph
/// construction and zero heap allocation.
///
/// Because the training executor runs the same serial row-block kernels
/// the dynamic engine partitions across the worker pool, and the fused
/// optimizer updates restate the dynamic optimizers verbatim, parameters
/// after any number of [`PlannedTrainer::planned_train_step`] calls are
/// **bitwise identical** to dynamic [`Student`] training at any
/// `TIMEKD_THREADS` setting.
#[derive(Debug)]
pub struct PlannedTrainer {
    plan: Plan,
    executor: TrainExecutor,
    /// Parameter labels in executor binding order (plan value order).
    param_labels: Vec<String>,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
}

impl PlannedTrainer {
    /// Compiles the training plan for `student`'s geometry and binds its
    /// current parameter values (copied — the live student is untouched).
    pub fn new(
        student: &Student,
        config: &TimeKdConfig,
        optimizer: PlanOptimizer,
    ) -> Result<PlannedTrainer, PlanError> {
        let (ctx, loss) = trace_student_loss(
            config,
            student.input_len(),
            student.horizon(),
            student.num_vars(),
        )
        .map_err(|e| PlanError {
            message: format!("student loss trace failed: {e}"),
        })?;
        let mut key = plan_key_base(
            KIND_TRAIN_FORECAST_LOSS,
            config,
            student.input_len(),
            student.horizon(),
            student.num_vars(),
        );
        push_optimizer(&mut key, &optimizer);
        let plan = cached_plan(key, || {
            Plan::compile_training(&loss, &student_plan_spec(), &student_train_spec(optimizer))
        })?;

        let sym_params = ctx.params();
        let real_params = student.params();
        if sym_params.len() != real_params.len() {
            return Err(PlanError {
                message: format!(
                    "parameter count mismatch: trace has {}, student has {}",
                    sym_params.len(),
                    real_params.len()
                ),
            });
        }
        let mut by_label: HashMap<String, Tensor> = HashMap::with_capacity(real_params.len());
        for (sym, real) in sym_params.iter().zip(&real_params) {
            if sym.sizes() != real.dims() {
                return Err(PlanError {
                    message: format!(
                        "parameter `{}` shape mismatch: trace {:?}, student {:?}",
                        sym.label(),
                        sym.sizes(),
                        real.dims()
                    ),
                });
            }
            by_label.insert(sym.label().to_string(), real.clone());
        }

        let executor = TrainExecutor::new(&plan, |label, dims| {
            by_label
                .get(label)
                .filter(|t| t.dims() == dims)
                .map(|t| t.data().clone())
        })?;
        let param_labels: Vec<String> = plan
            .values()
            .iter()
            .filter(|v| v.source == ValueSource::Param)
            .map(|v| v.label.clone())
            .collect();

        Ok(PlannedTrainer {
            plan,
            executor,
            param_labels,
            input_len: student.input_len(),
            horizon: student.horizon(),
            num_vars: student.num_vars(),
        })
    }

    /// The compiled training plan (for inspection and verification).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Labels of the bound parameters, in binding order.
    pub fn param_labels(&self) -> &[String] {
        &self.param_labels
    }

    /// Current data of the parameter named `label`, if bound.
    pub fn param_data(&self, label: &str) -> Option<&[f32]> {
        let idx = self.param_labels.iter().position(|l| l == label)?;
        Some(self.executor.param_data(idx))
    }

    /// Runs one full training step on a `[L, N]` history window and its
    /// `[M, N]` horizon target, returning the loss. No graph is built and
    /// no heap allocation happens.
    pub fn planned_train_step(&mut self, x: &Tensor, y: &Tensor) -> f32 {
        assert_eq!(
            x.dims(),
            &[self.input_len, self.num_vars],
            "planned trainer input shape"
        );
        assert_eq!(
            y.dims(),
            &[self.horizon, self.num_vars],
            "planned trainer target shape"
        );
        self.executor.run_train_step(&x.data(), &y.data())
    }
}

/// The full student objective (PKD + forecasting, Alg. 2) compiled once
/// into a *batched* multi-window training plan and bound to a live
/// [`Student`]'s parameters.
///
/// One [`run_batch`](PlannedBatchTrainer::run_batch) call replays up to
/// `batch` staged windows — data-parallel across the worker pool, one
/// private gradient lane per window — folds every extra lane's gradients
/// into lane 0 in the pinned ascending window order, clips, and applies
/// one fused optimizer step. The reduction order is keyed by window index,
/// never thread id, so results are bitwise identical to the serial
/// replay-and-accumulate loop at any `TIMEKD_THREADS` setting, and
/// `batch == 1` degenerates bitwise to the per-window path.
#[derive(Debug)]
pub struct PlannedBatchTrainer {
    plan: Plan,
    executor: BatchTrainExecutor,
    /// Parameter labels in executor binding order (plan value order).
    param_labels: Vec<String>,
    /// The student's parameter tensors in executor binding order, kept so
    /// [`write_back`](PlannedBatchTrainer::write_back) can publish trained
    /// values into the live model.
    bound_params: Vec<Tensor>,
    /// Arena ranges of the pinned per-component loss scalars.
    correlation: Option<(usize, usize)>,
    feature: Option<(usize, usize)>,
    forecast: (usize, usize),
    input_len: usize,
    horizon: usize,
    num_vars: usize,
}

impl PlannedBatchTrainer {
    /// Compiles (or fetches from the plan cache) the batched objective
    /// plan for `student`'s geometry and binds its current parameter
    /// values. Gradient clipping and the per-component loss pins mirror
    /// the dynamic `TimeKd::train_student_epoch_dynamic` loop exactly.
    pub fn new(
        student: &Student,
        config: &TimeKdConfig,
        optimizer: PlanOptimizer,
        batch: usize,
    ) -> Result<PlannedBatchTrainer, PlanError> {
        let trace = trace_student_objective(
            config,
            student.input_len(),
            student.horizon(),
            student.num_vars(),
        )
        .map_err(|e| PlanError {
            message: format!("student objective trace failed: {e}"),
        })?;
        let sym_params = trace.ctx.params();
        let real_params = student.params();
        if sym_params.len() != real_params.len() {
            return Err(PlanError {
                message: format!(
                    "parameter count mismatch: trace has {}, student has {}",
                    sym_params.len(),
                    real_params.len()
                ),
            });
        }
        let mut by_label: HashMap<String, Tensor> = HashMap::with_capacity(real_params.len());
        for (sym, real) in sym_params.iter().zip(&real_params) {
            if sym.sizes() != real.dims() {
                return Err(PlanError {
                    message: format!(
                        "parameter `{}` shape mismatch: trace {:?}, student {:?}",
                        sym.label(),
                        sym.sizes(),
                        real.dims()
                    ),
                });
            }
            by_label.insert(sym.label().to_string(), real.clone());
        }

        let mut train = TrainSpec::new("y", optimizer);
        train.grad_clip = Some(config.grad_clip);
        train.clip_param_order = sym_params.iter().map(|p| p.label().to_string()).collect();
        train.pinned = [
            trace.correlation.as_ref(),
            trace.feature.as_ref(),
            Some(&trace.forecast),
        ]
        .into_iter()
        .flatten()
        .map(|t| t.id())
        .collect();

        let mut key = plan_key_base(
            KIND_TRAIN_OBJECTIVE,
            config,
            student.input_len(),
            student.horizon(),
            student.num_vars(),
        );
        for v in [
            config.lambda_cd,
            config.lambda_fd,
            config.lambda_pkd,
            config.lambda_fcst,
            config.grad_clip,
        ] {
            push_f32(&mut key, v);
        }
        push_optimizer(&mut key, &optimizer);
        key.push(batch as u64);
        let plan = cached_plan(key, || {
            Plan::compile_training_batched(&trace.loss, &student_objective_spec(), &train, batch)
        })?;

        let executor = BatchTrainExecutor::new(&plan, |label, dims| {
            by_label
                .get(label)
                .filter(|t| t.dims() == dims)
                .map(|t| t.data().clone())
        })?;
        let param_labels: Vec<String> = plan
            .values()
            .iter()
            .filter(|v| v.source == ValueSource::Param)
            .map(|v| v.label.clone())
            .collect();
        let bound_params: Vec<Tensor> = param_labels
            .iter()
            .map(|label| by_label[label].clone())
            .collect();

        let range_of = |t: Option<&timekd_tensor::SymbolicTensor>| {
            t.and_then(|t| plan.value_for_sym(t.id()))
                .and_then(|vid| plan.arena_range(vid))
        };
        let correlation = range_of(trace.correlation.as_ref());
        let feature = range_of(trace.feature.as_ref());
        if trace.correlation.is_some() && correlation.is_none()
            || trace.feature.is_some() && feature.is_none()
        {
            return Err(PlanError {
                message: "pinned distillation loss has no arena slot".to_string(),
            });
        }
        let forecast = range_of(Some(&trace.forecast)).ok_or_else(|| PlanError {
            message: "pinned forecasting loss has no arena slot".to_string(),
        })?;

        Ok(PlannedBatchTrainer {
            plan,
            executor,
            param_labels,
            bound_params,
            correlation,
            feature,
            forecast,
            input_len: student.input_len(),
            horizon: student.horizon(),
            num_vars: student.num_vars(),
        })
    }

    /// The compiled batched training plan (for inspection/verification).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Window capacity `B` of one batch.
    pub fn batch(&self) -> usize {
        self.executor.batch()
    }

    /// Labels of the bound parameters, in binding order.
    pub fn param_labels(&self) -> &[String] {
        &self.param_labels
    }

    /// Current data of the parameter named `label`, if bound.
    pub fn param_data(&self, label: &str) -> Option<&[f32]> {
        let idx = self.param_labels.iter().position(|l| l == label)?;
        Some(self.executor.param_data(idx))
    }

    /// Stages window `w`'s `[L, N]` history and `[M, N]` target for the
    /// next [`run_batch`](PlannedBatchTrainer::run_batch).
    pub fn stage_window(&mut self, w: usize, x: &Tensor, y: &Tensor) {
        assert_eq!(
            x.dims(),
            &[self.input_len, self.num_vars],
            "batched trainer input shape"
        );
        assert_eq!(
            y.dims(),
            &[self.horizon, self.num_vars],
            "batched trainer target shape"
        );
        self.executor.stage_window(w, &x.data(), &y.data());
    }

    /// Stages the teacher's privileged products for window `w`. Slots an
    /// ablation dropped from the graph are skipped (their aux length is
    /// zero).
    pub fn stage_teacher(&mut self, w: usize, attention: &Tensor, embedding: &Tensor) {
        if self.executor.aux_len(AUX_TEACHER_ATT) > 0 {
            self.executor
                .stage_aux(w, AUX_TEACHER_ATT, &attention.data());
        }
        if self.executor.aux_len(AUX_TEACHER_EMB) > 0 {
            self.executor
                .stage_aux(w, AUX_TEACHER_EMB, &embedding.data());
        }
    }

    /// Updates the fused optimizer's learning rate (LR schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.executor.set_lr(lr);
    }

    /// Aligns the fused optimizer's step counter (AdamW bias correction)
    /// with an external clock — the trainer's shared dynamic optimizer.
    pub fn set_step_count(&mut self, n: u64) {
        self.executor.set_step_count(n);
    }

    /// Replays the first `count` staged windows, reduces, clips, and
    /// applies one fused optimizer step.
    pub fn run_batch(&mut self, count: usize) {
        self.executor.run_batch(count);
    }

    fn lane_component(&self, w: usize, range: Option<(usize, usize)>) -> f32 {
        match range {
            Some((off, len)) => self.executor.lane_value(w, off, len)[0],
            None => 0.0,
        }
    }

    /// Window `w`'s total loss from the last batch.
    pub fn lane_total(&self, w: usize) -> f32 {
        self.executor.lane_loss(w)
    }

    /// Window `w`'s correlation distillation loss `L_cd` (0 when ablated).
    pub fn lane_correlation(&self, w: usize) -> f32 {
        self.lane_component(w, self.correlation)
    }

    /// Window `w`'s feature distillation loss `L_fd` (0 when ablated).
    pub fn lane_feature(&self, w: usize) -> f32 {
        self.lane_component(w, self.feature)
    }

    /// Window `w`'s forecasting loss `L_fcst`.
    pub fn lane_forecast(&self, w: usize) -> f32 {
        self.lane_component(w, Some(self.forecast))
    }

    /// Copies the executor's current parameter values back into the bound
    /// student tensors (the same handles the constructor was given), so
    /// the live model observes the training.
    pub fn write_back(&self) {
        for (i, p) in self.bound_params.iter().enumerate() {
            let data = self.executor.param_data(i);
            p.update_data(|d| d.copy_from_slice(data));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_tensor::{parallel, seeded_rng};

    fn small_config() -> TimeKdConfig {
        TimeKdConfig {
            dim: 16,
            num_heads: 2,
            num_layers: 2,
            ffn_hidden: 32,
            ..Default::default()
        }
    }

    #[test]
    fn planned_predict_is_bitwise_identical_to_dynamic() {
        let config = small_config();
        let (input_len, horizon, num_vars) = (24, 8, 5);
        let mut rng = seeded_rng(7);
        let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
        let mut planned = PlannedStudent::new(&student, &config).unwrap();

        let x = Tensor::randn([input_len, num_vars], 1.0, &mut rng);
        let dynamic = student.predict(&x).to_vec();
        // The dynamic engine saves RevIN stats during predict; run the
        // plan afterwards so any (unwanted) state coupling would surface.
        for threads in [1, 2, 5] {
            let planned_out = parallel::with_threads(threads, || planned.predict(&x).to_vec());
            assert_eq!(
                planned_out, dynamic,
                "planned forecast must be bitwise identical at {threads} threads"
            );
        }
    }

    #[test]
    fn predict_into_writes_the_same_bytes() {
        let config = small_config();
        let mut rng = seeded_rng(11);
        let student = Student::new(&config, 16, 4, 3, &mut rng);
        let mut planned = PlannedStudent::new(&student, &config).unwrap();
        let x = Tensor::randn([16, 3], 1.0, &mut rng);
        let mut out = vec![0.0f32; 4 * 3];
        planned.predict_into(&x, &mut out);
        assert_eq!(out, student.predict(&x).to_vec());
    }

    fn windows(
        n: usize,
        input_len: usize,
        horizon: usize,
        num_vars: usize,
    ) -> Vec<(Tensor, Tensor)> {
        let mut rng = seeded_rng(23);
        (0..n)
            .map(|_| {
                (
                    Tensor::randn([input_len, num_vars], 1.0, &mut rng),
                    Tensor::randn([horizon, num_vars], 1.0, &mut rng),
                )
            })
            .collect()
    }

    /// Dynamic reference: the exact `Student` training idiom, returning
    /// every parameter keyed by its symbolic label.
    fn dynamic_train(
        config: &TimeKdConfig,
        data: &[(Tensor, Tensor)],
        sgd_lr: Option<f32>,
    ) -> (HashMap<String, Vec<f32>>, f32) {
        let (input_len, num_vars) = (data[0].0.dims()[0], data[0].0.dims()[1]);
        let horizon = data[0].1.dims()[0];
        let mut rng = seeded_rng(7);
        let student = Student::new(config, input_len, horizon, num_vars, &mut rng);
        let params = student.params();
        let mut adamw = timekd_nn::AdamW::new(0.01, timekd_nn::AdamWConfig::default());
        let sgd = sgd_lr.map(timekd_nn::Sgd::new);
        let mut last = 0.0;
        for (x, y) in data {
            student.zero_grad();
            let out = student.forward(x);
            let loss = timekd_nn::smooth_l1_loss(&out.forecast, y);
            last = loss.item();
            loss.backward();
            match &sgd {
                Some(s) => s.step(&params),
                None => adamw.step(&params),
            }
        }
        let (ctx, _) = trace_student_loss(config, input_len, horizon, num_vars).unwrap();
        let by_label = ctx
            .params()
            .iter()
            .zip(&params)
            .map(|(sym, real)| (sym.label().to_string(), real.to_vec()))
            .collect();
        (by_label, last)
    }

    fn assert_planned_matches_dynamic(optimizer: PlanOptimizer, sgd_lr: Option<f32>) {
        let config = small_config();
        let (input_len, horizon, num_vars) = (24, 8, 5);
        let data = windows(3, input_len, horizon, num_vars);
        let (dynamic_params, dynamic_loss) = dynamic_train(&config, &data, sgd_lr);
        for threads in [1, 2, 5] {
            let mut rng = seeded_rng(7);
            let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
            let mut trainer = PlannedTrainer::new(&student, &config, optimizer).unwrap();
            let mut last = 0.0;
            parallel::with_threads(threads, || {
                for (x, y) in &data {
                    last = trainer.planned_train_step(x, y);
                }
            });
            assert_eq!(
                last.to_bits(),
                dynamic_loss.to_bits(),
                "loss diverges at {threads} threads"
            );
            for label in trainer.param_labels().to_vec() {
                let planned = trainer.param_data(&label).unwrap();
                let dynamic = dynamic_params
                    .get(&label)
                    .unwrap_or_else(|| panic!("dynamic student has no param `{label}`"));
                assert_eq!(
                    planned,
                    &dynamic[..],
                    "param `{label}` diverges at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn planned_sgd_training_is_bitwise_identical_to_dynamic() {
        assert_planned_matches_dynamic(PlanOptimizer::Sgd { lr: 0.05 }, Some(0.05));
    }

    #[test]
    fn planned_adamw_training_is_bitwise_identical_to_dynamic() {
        assert_planned_matches_dynamic(
            PlanOptimizer::AdamW {
                lr: 0.01,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                weight_decay: 0.01,
            },
            None,
        );
    }

    #[test]
    fn training_plan_covers_every_student_parameter() {
        let config = small_config();
        let plan = compile_student_training_plan(&config, 24, 8, 5, PlanOptimizer::Sgd { lr: 0.1 })
            .unwrap();
        let params = plan
            .values()
            .iter()
            .filter(|v| v.source == ValueSource::Param)
            .count();
        assert_eq!(
            plan.update_steps().len(),
            params,
            "every student parameter must receive exactly one fused update"
        );
        assert!(plan.is_training());
        assert!(!plan.bwd_steps().is_empty());
    }

    #[test]
    fn quantized_student_tracks_f32_and_shrinks_params() {
        let config = small_config();
        let (input_len, horizon, num_vars) = (24, 8, 5);
        let mut rng = seeded_rng(7);
        let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
        let mut planned = PlannedStudent::new(&student, &config).unwrap();
        let mut quant = QuantizedStudent::new(&student, &config).unwrap();

        // The int8 executor replaces f32 weight copies with codes+scales:
        // the resident parameter footprint must shrink substantially.
        assert!(
            quant.param_bytes() < planned.param_bytes() / 2,
            "quantized params {} vs f32 {}",
            quant.param_bytes(),
            planned.param_bytes()
        );

        let x = Tensor::randn([input_len, num_vars], 1.0, &mut rng);
        let exact = planned.predict(&x);
        let approx = quant.predict(&x);
        let mse = exact
            .to_vec()
            .iter()
            .zip(approx.to_vec())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / exact.to_vec().len() as f32;
        // Untrained-student outputs are O(1); int8 weight+activation
        // quantization should stay well inside this bound.
        assert!(mse < 1e-2, "quantized forecast drifted: mse {mse}");
        assert!(mse.is_finite());
    }

    #[test]
    fn quantized_student_is_deterministic_across_threads() {
        let config = small_config();
        let (input_len, horizon, num_vars) = (24, 8, 5);
        let mut rng = seeded_rng(13);
        let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
        let x = Tensor::randn([input_len, num_vars], 1.0, &mut rng);
        // The quantized matmuls are order-free (i32 accumulation); the
        // remaining f32 steps (attention, RevIN) have one pinned order per
        // SIMD mode. So forecasts are bitwise stable across threads within
        // each mode, while the two modes may differ by float rounding.
        for simd_on in [true, false] {
            let base = timekd_tensor::with_simd(simd_on, || {
                // Bind inside the override so the executor's resolved
                // mode follows it.
                QuantizedStudent::new(&student, &config)
                    .unwrap()
                    .predict(&x)
                    .to_vec()
            });
            for threads in [1, 2, 5] {
                let out = parallel::with_threads(threads, || {
                    timekd_tensor::with_simd(simd_on, || {
                        QuantizedStudent::new(&student, &config)
                            .unwrap()
                            .predict(&x)
                            .to_vec()
                    })
                });
                assert_eq!(
                    out, base,
                    "quantized forecast diverges at threads={threads} simd={simd_on}"
                );
            }
        }
    }

    #[test]
    fn train_executor_rejects_int8_plans() {
        let config = small_config();
        let (_ctx, loss) = trace_student_loss(&config, 24, 8, 5).unwrap();
        let plan = Plan::compile_training(
            &loss,
            &student_plan_spec_with_precision(Precision::Int8),
            &student_train_spec(PlanOptimizer::Sgd { lr: 0.1 }),
        )
        .unwrap();
        let err = TrainExecutor::new(&plan, |_, _| None).unwrap_err();
        assert!(
            err.to_string().contains("inference-only"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn plan_cache_compiles_once_per_distinct_key() {
        // The cache is thread-local, so this test observes only its own
        // compiles; work with deltas to stay robust if the harness ever
        // reuses threads.
        reset_plan_cache();
        let config = small_config();
        let mut rng = seeded_rng(7);
        let student = Student::new(&config, 24, 8, 5, &mut rng);
        let opt = PlanOptimizer::Sgd { lr: 0.05 };
        let (h0, m0) = plan_cache_stats();

        let _a = PlannedTrainer::new(&student, &config, opt).unwrap();
        assert_eq!(plan_cache_stats(), (h0, m0 + 1), "first build must compile");
        let _b = PlannedTrainer::new(&student, &config, opt).unwrap();
        assert_eq!(
            plan_cache_stats(),
            (h0 + 1, m0 + 1),
            "identical geometry+optimizer must reuse the compiled plan"
        );
        // A different hyper-parameter is a different plan (fused update
        // constants are baked in), so it must miss.
        let _c = PlannedTrainer::new(&student, &config, PlanOptimizer::Sgd { lr: 0.1 }).unwrap();
        assert_eq!(plan_cache_stats(), (h0 + 1, m0 + 2));
        reset_plan_cache();
    }

    #[test]
    fn batch_trainer_reuses_cached_plan_across_rebuilds() {
        reset_plan_cache();
        let config = small_config();
        let mut rng = seeded_rng(7);
        let student = Student::new(&config, 24, 8, 5, &mut rng);
        let opt = PlanOptimizer::AdamW {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        };
        let (h0, m0) = plan_cache_stats();
        let _a = PlannedBatchTrainer::new(&student, &config, opt, 4).unwrap();
        let _b = PlannedBatchTrainer::new(&student, &config, opt, 4).unwrap();
        let (h1, m1) = plan_cache_stats();
        assert_eq!(
            (h1 - h0, m1 - m0),
            (1, 1),
            "epoch-over-epoch rebuild must not recompile the objective plan"
        );
        // A different batch changes the lowered schedule, so it misses.
        let _c = PlannedBatchTrainer::new(&student, &config, opt, 2).unwrap();
        let (h2, m2) = plan_cache_stats();
        assert_eq!((h2 - h0, m2 - m0), (1, 2));
        reset_plan_cache();
    }

    #[test]
    fn batched_training_plan_has_reduction_and_lane_metadata() {
        let config = small_config();
        let batch = 4;
        let plan = compile_student_training_plan_batched(
            &config,
            24,
            8,
            5,
            PlanOptimizer::Sgd { lr: 0.1 },
            batch,
        )
        .unwrap();
        assert_eq!(plan.batch(), batch);
        let params = plan
            .values()
            .iter()
            .filter(|v| v.source == ValueSource::Param)
            .count();
        // Every parameter gradient gets (batch - 1) lane reductions and
        // exactly one fused update per batch.
        assert_eq!(plan.reduce_steps().len(), params * (batch - 1));
        assert_eq!(plan.update_steps().len(), params);
    }

    #[test]
    fn plan_has_no_unlowered_ops_and_reuses_arena() {
        let config = small_config();
        let plan = compile_student_plan(&config, 24, 8, 5).unwrap();
        let total: usize = plan
            .steps()
            .iter()
            .map(|s| plan.values()[s.output].len())
            .sum();
        assert!(
            plan.arena_len() < total / 2,
            "liveness should reuse slots aggressively: arena {} vs outputs {}",
            plan.arena_len(),
            total
        );
    }
}
