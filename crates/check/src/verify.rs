//! The symbolic pipeline verifier — static passes over
//! [`trace_pipeline`](timekd::trace_pipeline)'s graph IR.
//!
//! Three passes, none of which executes a kernel:
//!
//! 1. **shape** — the trace itself type-checks every op of
//!    teacher → CLM → SCA → student → losses for each configuration in the
//!    matrix (LM size presets × head counts × prompt budgets × ablation
//!    arms). A mismatch surfaces as a [`ShapeError`] with a provenance
//!    chain naming the offending op.
//! 2. **gradient-flow** — walks gradient edges from each loss root and
//!    proves: every student trainable is reachable from the combined
//!    student loss, every teacher trainable from the reconstruction loss,
//!    no frozen CLM parameter from *any* loss, and each PKD loss is wired
//!    to exactly its intended layers (correlation → last-layer `wq`/`wk`
//!    only; feature → encoder + embedding but not the forecast head).
//! 3. **dead-param** — any registered trainable parameter no loss reaches
//!    is reported (the optimizer would step it to no effect). Parameters a
//!    specific ablation arm deliberately idles (the SCA projections under
//!    `w/o_SCA`) are exempt.
//!
//! Every finding carries the configuration label, a message naming the
//! offending parameter/op, and — where a path exists — the gradient route
//! or provenance chain that proves it.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use timekd::{trace_pipeline, AblationConfig, Fault, SymbolicPipeline, TimeKdConfig};
use timekd_lm::LmSize;
use timekd_tensor::{find_path, reachable_params};

/// One verifier finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Pass that produced it: `shape`, `gradient-flow` or `dead-param`.
    pub pass: &'static str,
    /// Stable kebab-case kind: `shape-error`, `frozen-reachable`,
    /// `unreachable-trainable`, `wrong-wiring`, `dead-param`.
    pub kind: &'static str,
    /// Configuration label the finding occurred under.
    pub config: String,
    /// Human-readable description naming the offending parameter/op.
    pub message: String,
    /// Gradient route or provenance chain supporting the finding.
    pub provenance: Vec<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}/{}] {}: {}",
            self.pass, self.kind, self.config, self.message
        )?;
        for line in &self.provenance {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

/// Aggregate result of a verification run.
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Number of (config, ablation) combinations traced.
    pub configs_checked: usize,
    /// Invariants proven (summary lines, only meaningful when clean).
    pub proofs: Vec<String>,
    /// All findings across all passes and configurations.
    pub findings: Vec<Finding>,
}

impl VerifyReport {
    /// True when no pass produced a finding.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings sorted into the stable order used for reporting and JSON.
    fn sorted_findings(&self) -> Vec<&Finding> {
        let mut v: Vec<&Finding> = self.findings.iter().collect();
        v.sort_by(|a, b| {
            (a.pass, a.kind, &a.config, &a.message).cmp(&(b.pass, b.kind, &b.config, &b.message))
        });
        v
    }

    /// Renders the report as stable, diffable JSON: keys in fixed order,
    /// findings sorted by (pass, kind, config, message), no timestamps.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"configs_checked\": {},\n  \"clean\": {},\n  \"findings\": [",
            self.configs_checked,
            self.is_clean()
        ));
        let sorted = self.sorted_findings();
        for (i, f) in sorted.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"pass\": {}, ", json_str(f.pass)));
            out.push_str(&format!("\"kind\": {}, ", json_str(f.kind)));
            out.push_str(&format!("\"config\": {}, ", json_str(&f.config)));
            out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
            out.push_str("\"provenance\": [");
            for (j, line) in f.provenance.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_str(line));
            }
            out.push_str("]}");
        }
        if !sorted.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"proofs\": [");
        for (i, p) in self.proofs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&json_str(p));
        }
        if !self.proofs.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Label prefixes of parameters a given ablation arm deliberately leaves
/// without gradient flow. `w/o_SCA` swaps `forward_direct` in but the real
/// `Module::params` still registers the SCA projections, so the optimizer
/// carries them as dead weight by design — documented here, not a finding.
fn ablation_idle_prefixes(cfg: &TimeKdConfig) -> Vec<&'static str> {
    if cfg.ablation.use_sca {
        Vec::new()
    } else {
        vec![
            "teacher.sca.phi_q.",
            "teacher.sca.phi_k.",
            "teacher.sca.phi_v.",
            "teacher.sca.theta_c.",
        ]
    }
}

fn is_idle(label: &str, idle: &[&str]) -> bool {
    idle.iter().any(|p| label.starts_with(p))
}

/// Runs all three passes on one configuration. `label` tags findings;
/// `fault` is [`Fault::None`] in production and a specific fault in the
/// verifier's own injection tests.
pub fn verify_pipeline(
    cfg: &TimeKdConfig,
    label: &str,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
    fault: Fault,
) -> Vec<Finding> {
    let p = match trace_pipeline(cfg, input_len, horizon, num_vars, fault) {
        Ok(p) => p,
        Err(e) => {
            return vec![Finding {
                pass: "shape",
                kind: "shape-error",
                config: label.to_string(),
                message: format!("`{}` at `{}`: {}", e.op, e.label, e.message),
                provenance: e.provenance,
            }];
        }
    };
    let mut findings = gradient_flow_findings(&p, cfg, label);
    findings.extend(dead_param_findings(&p, cfg, label));
    findings
}

/// Pass 2: the loss→parameter flow matrix and its invariants.
fn gradient_flow_findings(p: &SymbolicPipeline, cfg: &TimeKdConfig, label: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let params = p.ctx.params();
    let by_label: HashMap<String, u64> = params
        .iter()
        .map(|q| (q.label().to_string(), q.id()))
        .collect();

    // Reachable parameter sets per loss root.
    let mut reach: BTreeMap<&'static str, HashMap<u64, String>> = BTreeMap::new();
    for (name, root) in p.loss_roots() {
        reach.insert(
            name,
            reachable_params(root)
                .iter()
                .map(|q| (q.id(), q.label().to_string()))
                .collect(),
        );
    }

    // (a) No loss may reach a frozen CLM parameter.
    for (name, root) in p.loss_roots() {
        for q in reachable_params(root) {
            if q.is_frozen() {
                findings.push(Finding {
                    pass: "gradient-flow",
                    kind: "frozen-reachable",
                    config: label.to_string(),
                    message: format!(
                        "loss `{name}` reaches frozen CLM parameter `{}` — the backward \
                         pass would update pretrained weights",
                        q.label()
                    ),
                    provenance: find_path(root, q.id()).unwrap_or_default(),
                });
            }
        }
    }

    let idle = ablation_idle_prefixes(cfg);
    let student_total = &reach["student_total"];
    let reconstruction = &reach["reconstruction"];

    // (b) Coverage: the combined student loss must update every student
    // trainable; the reconstruction loss every (non-idle) teacher trainable.
    for q in &params {
        if q.is_frozen() {
            continue;
        }
        let l = q.label();
        if l.starts_with("student.") && !student_total.contains_key(&q.id()) {
            findings.push(Finding {
                pass: "gradient-flow",
                kind: "unreachable-trainable",
                config: label.to_string(),
                message: format!(
                    "student parameter `{l}` is not reachable from the combined student \
                     loss — it would never train"
                ),
                provenance: p.student_total.provenance_lines(6),
            });
        }
        if l.starts_with("teacher.") && !is_idle(l, &idle) && !reconstruction.contains_key(&q.id())
        {
            findings.push(Finding {
                pass: "gradient-flow",
                kind: "unreachable-trainable",
                config: label.to_string(),
                message: format!(
                    "teacher parameter `{l}` is not reachable from the reconstruction \
                     loss — Algorithm 1 would never train it"
                ),
                provenance: p.reconstruction.provenance_lines(6),
            });
        }
    }

    // (c) PKD wiring: correlation distills the attention map, so it must
    // reach the last student layer's query/key projections and nothing
    // downstream of the attention weights (values, output proj, forecast
    // head).
    let last = cfg.num_layers.saturating_sub(1);
    if cfg.ablation.correlation_distillation {
        let corr = &reach["correlation"];
        for name in ["wq", "wk"] {
            let want = format!("student.encoder.layer{last}.attn.{name}.weight");
            let ok = by_label.get(&want).is_some_and(|id| corr.contains_key(id));
            if !ok {
                findings.push(Finding {
                    pass: "gradient-flow",
                    kind: "wrong-wiring",
                    config: label.to_string(),
                    message: format!(
                        "correlation loss does not reach `{want}` — attention-map \
                         distillation is severed from the student (e.g. a detached \
                         student attention)"
                    ),
                    provenance: p.correlation.provenance_lines(6),
                });
            }
        }
        let forbidden = [
            format!("student.encoder.layer{last}.attn.wv.weight"),
            format!("student.encoder.layer{last}.attn.wo.weight"),
        ];
        for (id, l) in corr {
            let beyond_attention = forbidden.iter().any(|f| l == f)
                || l.starts_with("student.projection.")
                || l.starts_with("student.encoder.final_ln.");
            if beyond_attention || l.starts_with("teacher.") {
                findings.push(Finding {
                    pass: "gradient-flow",
                    kind: "wrong-wiring",
                    config: label.to_string(),
                    message: format!(
                        "correlation loss unexpectedly reaches `{l}` — the attention-map \
                         target leaks beyond the student's query/key path"
                    ),
                    provenance: find_path(&p.correlation, *id).unwrap_or_default(),
                });
            }
        }
    }
    if cfg.ablation.feature_distillation {
        let feat = &reach["feature"];
        for want in [
            "student.inverted_embedding.weight".to_string(),
            "student.encoder.final_ln.gamma".to_string(),
        ] {
            let ok = by_label.get(&want).is_some_and(|id| feat.contains_key(id));
            if !ok {
                findings.push(Finding {
                    pass: "gradient-flow",
                    kind: "wrong-wiring",
                    config: label.to_string(),
                    message: format!(
                        "feature loss does not reach `{want}` — embedding distillation is \
                         severed from the student encoder"
                    ),
                    provenance: p.feature.provenance_lines(6),
                });
            }
        }
        for (id, l) in feat {
            if l.starts_with("student.projection.") || l.starts_with("teacher.") {
                findings.push(Finding {
                    pass: "gradient-flow",
                    kind: "wrong-wiring",
                    config: label.to_string(),
                    message: format!(
                        "feature loss unexpectedly reaches `{l}` — embedding distillation \
                         must stop at the encoder output"
                    ),
                    provenance: find_path(&p.feature, *id).unwrap_or_default(),
                });
            }
        }
    }
    // (d) The student objective must never update the teacher (detach
    // proof), in any arm.
    for (id, l) in student_total {
        if l.starts_with("teacher.") {
            findings.push(Finding {
                pass: "gradient-flow",
                kind: "wrong-wiring",
                config: label.to_string(),
                message: format!(
                    "combined student loss reaches teacher parameter `{l}` — the \
                     distillation targets are not detached"
                ),
                provenance: find_path(&p.student_total, *id).unwrap_or_default(),
            });
        }
    }
    findings
}

/// Pass 3: registered-but-unreachable trainable parameters.
fn dead_param_findings(p: &SymbolicPipeline, cfg: &TimeKdConfig, label: &str) -> Vec<Finding> {
    let mut reached: HashSet<u64> = HashSet::new();
    for (_, root) in p.loss_roots() {
        reached.extend(reachable_params(root).iter().map(|q| q.id()));
    }
    let idle = ablation_idle_prefixes(cfg);
    p.ctx
        .params()
        .iter()
        .filter(|q| !q.is_frozen() && !reached.contains(&q.id()) && !is_idle(q.label(), &idle))
        .map(|q| Finding {
            pass: "dead-param",
            kind: "dead-param",
            config: label.to_string(),
            message: format!(
                "parameter `{}` is registered (the optimizer would step it) but no loss \
                 reaches it",
                q.label()
            ),
            provenance: Vec::new(),
        })
        .collect()
}

/// Every ablation arm of Fig. 6.
fn all_ablations() -> Vec<AblationConfig> {
    vec![
        AblationConfig::full(),
        AblationConfig::without_privileged_info(),
        AblationConfig::without_calibrated_attention(),
        AblationConfig::without_clm(),
        AblationConfig::without_sca(),
        AblationConfig::without_correlation_distillation(),
        AblationConfig::without_feature_distillation(),
    ]
}

/// The verification matrix: LM presets × head counts × prompt budgets ×
/// ablation arms, over the paper's default window geometry.
pub(crate) fn config_matrix() -> Vec<(TimeKdConfig, String)> {
    let mut out = Vec::new();
    for lm_size in [LmSize::Small, LmSize::Base, LmSize::Large] {
        for num_heads in [2usize, 4, 8] {
            for (max_history, max_future) in [(4usize, 4usize), (16, 16)] {
                for ablation in all_ablations() {
                    let mut cfg = TimeKdConfig::with_lm_size(lm_size);
                    cfg.num_heads = num_heads;
                    cfg.ablation = ablation;
                    if !ablation.calibrated_attention {
                        cfg.lm.calibration_delta = 0.0;
                    }
                    cfg.prompt.max_history = max_history;
                    cfg.prompt.max_future = max_future;
                    let label = format!(
                        "lm={lm_size:?} heads={num_heads} prompt={max_history}x{max_future} \
                         ablation={}",
                        ablation.label()
                    );
                    out.push((cfg, label));
                }
            }
        }
    }
    out
}

/// Runs the full matrix (paper default geometry: 96-step history, 24-step
/// horizon, 7 ETT variables) through all three passes.
pub fn verify_all() -> VerifyReport {
    let (input_len, horizon, num_vars) = (96, 24, 7);
    let mut report = VerifyReport::default();
    for (cfg, label) in config_matrix() {
        report.configs_checked += 1;
        report.findings.extend(verify_pipeline(
            &cfg,
            &label,
            input_len,
            horizon,
            num_vars,
            Fault::None,
        ));
    }
    if report.is_clean() {
        let n = report.configs_checked;
        report.proofs = vec![
            format!(
                "every student trainable parameter is reachable from the combined \
                 student loss ({n}/{n} configs)"
            ),
            format!(
                "every teacher trainable parameter is reachable from the reconstruction \
                 loss ({n}/{n} configs)"
            ),
            format!("no frozen CLM parameter is reachable from any loss ({n}/{n} configs)"),
            format!(
                "correlation distillation is wired to the last student layer's \
                 query/key path and feature distillation to the encoder output, in \
                 every arm that enables them ({n}/{n} configs)"
            ),
            format!("no registered parameter is dead ({n}/{n} configs)"),
        ];
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::field_reassign_with_default)]
    fn tiny_cfg(ablation: AblationConfig) -> TimeKdConfig {
        let mut cfg = TimeKdConfig::with_ablation(ablation);
        cfg.dim = 16;
        cfg.ffn_hidden = 32;
        cfg.num_heads = 2;
        cfg.lm = timekd_lm::LmConfig::for_size(LmSize::Small);
        cfg.prompt.max_history = 4;
        cfg.prompt.max_future = 4;
        cfg
    }

    #[test]
    fn clean_pipeline_has_no_findings() {
        for ablation in all_ablations() {
            let cfg = tiny_cfg(ablation);
            let fs = verify_pipeline(&cfg, ablation.label(), 24, 8, 3, Fault::None);
            assert!(fs.is_empty(), "{}: {fs:?}", ablation.label());
        }
    }

    #[test]
    fn detached_target_fault_is_caught_by_wiring_pass() {
        let cfg = tiny_cfg(AblationConfig::full());
        let fs = verify_pipeline(&cfg, "t", 24, 8, 3, Fault::DetachedDistillationTarget);
        let hit = fs
            .iter()
            .find(|f| f.kind == "wrong-wiring" && f.message.contains("attn.wq.weight"))
            .unwrap_or_else(|| panic!("detached target not caught: {fs:?}"));
        assert_eq!(hit.pass, "gradient-flow");
        // The provenance chain exposes the severing detach leaf.
        assert!(
            hit.provenance.iter().any(|l| l.contains("detach")),
            "provenance must name the offending detach: {:?}",
            hit.provenance
        );
    }

    #[test]
    fn unfrozen_lm_fault_is_caught_by_frozen_pass() {
        let cfg = tiny_cfg(AblationConfig::full());
        let fs = verify_pipeline(&cfg, "t", 24, 8, 3, Fault::UnfrozenLm);
        let hit = fs
            .iter()
            .find(|f| f.kind == "frozen-reachable")
            .unwrap_or_else(|| panic!("unfrozen LM not caught: {fs:?}"));
        assert!(hit.message.contains("teacher.clm."), "{}", hit.message);
        // The gradient route from the loss down to the frozen parameter is
        // reported in full.
        assert!(hit.provenance.len() > 2, "{:?}", hit.provenance);
        assert!(
            hit.provenance.last().unwrap().contains("teacher.clm."),
            "{:?}",
            hit.provenance
        );
    }

    #[test]
    fn mismatched_head_dim_fault_is_caught_by_shape_pass() {
        let cfg = tiny_cfg(AblationConfig::full());
        let fs = verify_pipeline(&cfg, "t", 24, 8, 3, Fault::MismatchedHeadDim);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].pass, "shape");
        assert!(fs[0].message.contains("`reshape`"), "{}", fs[0].message);
        assert!(
            fs[0].message.contains("student.encoder"),
            "{}",
            fs[0].message
        );
        assert!(!fs[0].provenance.is_empty());
    }

    #[test]
    fn dangling_param_fault_is_caught_by_dead_pass() {
        let cfg = tiny_cfg(AblationConfig::full());
        let fs = verify_pipeline(&cfg, "t", 24, 8, 3, Fault::DanglingParam);
        let hit = fs
            .iter()
            .find(|f| f.kind == "dead-param")
            .unwrap_or_else(|| panic!("dangling param not caught: {fs:?}"));
        assert!(
            hit.message.contains("student.dangling.weight"),
            "{}",
            hit.message
        );
    }

    #[test]
    fn wo_sca_idles_projections_without_findings() {
        // The w/o_SCA arm leaves the SCA projections registered but
        // unreachable by design; the dead-param pass must not flag them.
        let cfg = tiny_cfg(AblationConfig::without_sca());
        let fs = verify_pipeline(&cfg, "wo_sca", 24, 8, 3, Fault::None);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn json_output_is_stable_and_ordered() {
        let cfg = tiny_cfg(AblationConfig::full());
        let mk = || {
            let mut r = VerifyReport {
                configs_checked: 1,
                proofs: Vec::new(),
                findings: verify_pipeline(&cfg, "t", 24, 8, 3, Fault::DanglingParam),
            };
            // Scramble insertion order; to_json must sort.
            r.findings.reverse();
            r.to_json()
        };
        let a = mk();
        assert_eq!(a, mk(), "JSON must be deterministic across runs");
        assert!(a.contains("\"configs_checked\": 1"));
        assert!(a.contains("\"clean\": false"));
        assert!(a.contains("\"pass\": \"dead-param\""));
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
