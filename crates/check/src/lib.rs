//! # timekd-check
//!
//! Dependency-free source linter for the TimeKD workspace, plus the
//! entrypoint that runs the autograd-graph sanity checks (see `main.rs`).
//!
//! The linter is a hand-rolled line scanner — no `syn`, no regex crate —
//! that tracks just enough structure (brace depth, current function,
//! `#[cfg(test)]` regions, strings and comments) to enforce a small set of
//! repo rules over `crates/*/src`:
//!
//! | rule | scope | requirement |
//! |------|-------|-------------|
//! | `no-unwrap-in-kernels` | `tensor/src/ops/*`, `tensor/src/parallel.rs`, `tensor/src/simd.rs` | no `.unwrap()` / `.expect(` in hot kernels |
//! | `no-instant-in-kernels` | `tensor/src/ops/*`, `tensor/src/parallel.rs`, `tensor/src/simd.rs` | no `Instant::now` timing inside kernels |
//! | `no-clone-in-forward` | all crates | no tensor-data copies (`.to_vec()`, `.data().clone()`) inside `forward*` fns |
//! | `no-grad-in-inference` | all crates | `predict` / `evaluate` fns must run under `no_grad` (directly or by delegating to `predict`) |
//! | `no-lock-in-worker` | worker loops | no lock/condvar acquisition (`.lock(`, `.wait(`) in per-block worker loops |
//! | `no-alloc-in-worker` | worker loops | no allocation (`vec![`, `Vec::`, `Box::new`, `.to_vec()`, `.collect()`) in per-block worker loops |
//! | `no-println-in-worker` | worker loops | no `print!`/`println!`/`dbg!` I/O in per-block worker loops |
//! | `no-span-in-worker` | worker loops | no `timekd_obs` span/count hooks in per-block worker loops |
//! | `no-alloc-in-plan-loop` | plan loops | no allocation (`vec![`, `Vec::`, `.push(`, `Box::new`, `.to_vec()`, `.collect()`) in the plan executors' step loops |
//! | `no-unwrap-in-plan-loop` | plan loops | no `.unwrap()` / `.expect(` in the plan executors' step loops |
//! | `no-span-in-plan-loop` | plan loops | no `timekd_obs` span/count hooks in the plan executors' step loops |
//! | `no-alloc-in-serve-loop` | serve loops | no allocation (`vec![`, `Vec::`, `.push(`, `Box::new`, `.to_vec()`, `.collect()`) in the serving hot loops |
//! | `no-unwrap-in-serve-loop` | serve loops | no `.unwrap()` / `.expect(` in the serving hot loops |
//! | `no-println-in-serve-loop` | serve loops | no `print!`/`println!`/`dbg!` I/O in the serving hot loops |
//!
//! "Worker loops" are the hot per-block functions of the parallel kernel
//! path — functions in `tensor/src/parallel.rs`,
//! `tensor/src/ops/matmul.rs`, `tensor/src/ops/attention.rs`,
//! `tensor/src/ops/qmm.rs`, or `tensor/src/simd.rs` whose name ends in
//! `_block` or `_lanes` or is `drain_tasks` (the naming contract those
//! files document; `_lanes` fns are the `f32x8` microkernel loops the
//! `_block` kernels call). They run on
//! pool threads inside a claimed task, where a lock could deadlock the
//! pool, an allocation serialises on the global allocator, and console
//! I/O both blocks and interleaves.
//!
//! "Plan loops" are the hot schedule-replay functions of the static plan
//! executors — functions in `tensor/src/plan.rs` (forward replay),
//! `tensor/src/plan_train.rs` (backward and optimizer replay), or
//! `tensor/src/plan_batch.rs` (the batched gradient reduction) whose
//! name ends in `_plan_loop` (the naming contract those files document).
//! In `plan_batch.rs` the same rules additionally cover `*_block` fns —
//! the parallel fan-out and parameter-broadcast blocks of the batched
//! executor, which run inside the per-batch hot path. The executors'
//! whole point is zero per-call allocation and zero instrumentation; a
//! stray `Vec::push`, panic path, or span there silently voids the
//! plan's performance contract — for training plans, on every forward,
//! backward, *and* optimizer step of every epoch.
//!
//! "Serve loops" are the hot per-request functions of the forecast server
//! — functions in `serve/src/` whose name ends in `_serve_loop` (the
//! naming contract `timekd-serve` documents): the micro-batch fused
//! execution loop and the listener accept loop. They sit on the serving
//! critical path of every request, where an allocation serialises
//! concurrent connections on the global allocator, an `unwrap` turns one
//! bad request into a dead batcher for *all* tenants, and console I/O
//! blocks the accept thread. Fallible work belongs in the per-connection
//! handlers, which reply with an HTTP error instead of panicking.
//!
//! Test modules are exempt from every rule. Justified exceptions go in the
//! repo-root `lint-allow.txt` allowlist (see [`Allowlist`]).

#![deny(
    unused_must_use,
    unused_imports,
    unused_variables,
    dead_code,
    unreachable_patterns,
    missing_debug_implementations
)]
#![warn(missing_docs)]

pub mod plan;
pub mod verify;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Rule identifier (kebab-case, stable — used in the allowlist).
    pub rule: &'static str,
    /// Path of the offending file as scanned.
    pub path: String,
    /// 1-indexed line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub text: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.text
        )
    }
}

/// Allowlist for justified rule exceptions.
///
/// Format, one entry per line: `rule path-fragment line-fragment`, where
/// `rule` is a rule id or `*`, `path-fragment` must be contained in the
/// violation's path, and the rest of the line must be contained in the
/// offending source line. `#` starts a comment.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String, String)>,
}

impl Allowlist {
    /// Parses allowlist text. Malformed lines (fewer than 3 fields) are
    /// ignored rather than fatal so a stale allowlist cannot break CI.
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            if let (Some(rule), Some(path), Some(frag)) = (parts.next(), parts.next(), parts.next())
            {
                entries.push((rule.to_string(), path.to_string(), frag.trim().to_string()));
            }
        }
        Allowlist { entries }
    }

    /// Loads the allowlist from `path`; a missing file means no exceptions.
    pub fn load(path: &Path) -> Allowlist {
        match fs::read_to_string(path) {
            Ok(text) => Allowlist::parse(&text),
            Err(_) => Allowlist::default(),
        }
    }

    /// True if `v` matches an entry and should be suppressed.
    pub fn allows(&self, v: &Violation) -> bool {
        self.match_entry(v).is_some()
    }

    /// Index of the first entry matching `v`, if any. The scanner uses the
    /// index to track which entries actually fire, so stale entries (ones
    /// matching no current violation) can be reported.
    pub fn match_entry(&self, v: &Violation) -> Option<usize> {
        self.entries.iter().position(|(rule, path, frag)| {
            (rule == "*" || rule == v.rule)
                && v.path.contains(path.as_str())
                && v.text.contains(frag.as_str())
        })
    }

    /// Renders entry `idx` back in the file's `rule path fragment` form.
    pub fn describe(&self, idx: usize) -> String {
        let (rule, path, frag) = &self.entries[idx];
        format!("{rule} {path} {frag}")
    }

    /// Number of entries (for reporting).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the allowlist has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Strips comments and string/char literal *contents* from one line,
/// carrying block-comment state across lines. Literal delimiters are kept
/// so brace counting still sees code structure, but braces and rule
/// keywords inside strings or comments are ignored.
fn code_only(line: &str, in_block_comment: &mut bool) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if *in_block_comment {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                *in_block_comment = true;
                i += 2;
            }
            b'"' => {
                // Skip string contents (with escapes).
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.push_str("\"\"");
            }
            b'\'' => {
                // Char literal like '{' or '\n'; lifetimes ('a) have no
                // closing quote within a few bytes — treat those as code.
                let close = if i + 2 < bytes.len() && bytes[i + 1] == b'\\' {
                    (bytes[i + 3] == b'\'').then_some(i + 3)
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    Some(i + 2)
                } else {
                    None
                };
                if let Some(end) = close {
                    out.push_str("' '");
                    i = end + 1;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    out
}

/// Extracts the name following a `fn ` keyword, if the line declares one.
fn fn_name(code: &str) -> Option<String> {
    let idx = code.find("fn ")?;
    // Require a word boundary before `fn` (start, space, or punctuation).
    if idx > 0 {
        let prev = code.as_bytes()[idx - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return None;
        }
    }
    let rest = &code[idx + 3..];
    let name: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

struct OpenFn {
    name: String,
    start_line: usize,
    depth: usize,
    body: String,
}

/// Scans one file's source text and returns every rule violation,
/// un-filtered by any allowlist. `path_label` is used for reporting and
/// for path-scoped rules, so pass a repo-relative path.
pub fn scan_source(path_label: &str, source: &str) -> Vec<Violation> {
    let in_kernels = path_label.contains("tensor/src/ops/")
        || path_label.contains("tensor/src/parallel.rs")
        || path_label.contains("tensor/src/simd.rs");
    // Files that may define per-block worker-loop fns (`*_block`,
    // `*_lanes`, `drain_tasks`) subject to the no-lock/no-alloc/no-println
    // rules. `simd.rs` hosts the `_lanes` microkernel loops the `_block`
    // kernels call, and `qmm.rs` the int8 quantized matmul blocks — both
    // run inside claimed pool tasks just like the f32 kernels.
    let in_worker_file = path_label.contains("tensor/src/parallel.rs")
        || path_label.contains("tensor/src/ops/matmul.rs")
        || path_label.contains("tensor/src/ops/attention.rs")
        || path_label.contains("tensor/src/ops/qmm.rs")
        || path_label.contains("tensor/src/simd.rs");
    // Files that may define plan-executor hot loops (`*_plan_loop`),
    // subject to the no-alloc/no-unwrap/no-span plan rules. `plan.rs`
    // hosts the forward replay loop, `plan_train.rs` the backward and
    // optimizer replay loops of training plans, and `plan_batch.rs` the
    // batched reduction loop. In the batched module the same rules also
    // cover `*_block` fns — its fan-out and broadcast blocks run on (or
    // submit to) pool threads inside the per-batch hot path.
    let in_batch_file = path_label.contains("tensor/src/plan_batch.rs");
    let in_plan_file = path_label.contains("tensor/src/plan.rs")
        || path_label.contains("tensor/src/plan_train.rs")
        || in_batch_file;
    // Any module of the serving crate may define `*_serve_loop` fns —
    // the micro-batch execution loop and the accept loop — subject to the
    // no-alloc/no-unwrap/no-println serve rules. They run on the serving
    // critical path of every request; fallible work belongs in the
    // per-connection handlers, which answer with an HTTP error instead.
    let in_serve_file = path_label.contains("serve/src/");
    let mut violations = Vec::new();
    let mut depth = 0usize;
    let mut in_block_comment = false;
    // `Some(d)` = inside a `#[cfg(test)]` item whose brace opened at depth d.
    let mut test_region: Option<usize> = None;
    let mut test_pending = false;
    let mut pending_fn: Option<(String, usize)> = None;
    let mut open_fns: Vec<OpenFn> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let code = code_only(raw, &mut in_block_comment);
        let trimmed = raw.trim();
        if trimmed.starts_with("#[cfg(test)]") && test_region.is_none() {
            test_pending = true;
        }
        let in_test = test_region.is_some();

        if !in_test {
            if let Some(name) = fn_name(&code) {
                pending_fn = Some((name, lineno));
            }
        }

        // Per-line rules run before brace processing so a violation on the
        // closing line of a fn still attributes to it.
        if !in_test && !test_pending {
            let current_fn = open_fns.last().map(|f| f.name.as_str()).unwrap_or("");
            if in_kernels && (code.contains(".unwrap()") || code.contains(".expect(")) {
                violations.push(Violation {
                    rule: "no-unwrap-in-kernels",
                    path: path_label.to_string(),
                    line: lineno,
                    text: trimmed.to_string(),
                });
            }
            if in_kernels && code.contains("Instant::now") {
                violations.push(Violation {
                    rule: "no-instant-in-kernels",
                    path: path_label.to_string(),
                    line: lineno,
                    text: trimmed.to_string(),
                });
            }
            if current_fn.starts_with("forward")
                && (code.contains(".to_vec()") || code.contains(".data().clone()"))
            {
                violations.push(Violation {
                    rule: "no-clone-in-forward",
                    path: path_label.to_string(),
                    line: lineno,
                    text: trimmed.to_string(),
                });
            }
            let in_worker_fn = in_worker_file
                && (current_fn.ends_with("_block")
                    || current_fn.ends_with("_lanes")
                    || current_fn == "drain_tasks");
            if in_worker_fn {
                if code.contains(".lock(") || code.contains(".wait(") {
                    violations.push(Violation {
                        rule: "no-lock-in-worker",
                        path: path_label.to_string(),
                        line: lineno,
                        text: trimmed.to_string(),
                    });
                }
                if code.contains("vec![")
                    || code.contains("Vec::")
                    || code.contains("Box::new")
                    || code.contains(".to_vec()")
                    || code.contains(".collect()")
                {
                    violations.push(Violation {
                        rule: "no-alloc-in-worker",
                        path: path_label.to_string(),
                        line: lineno,
                        text: trimmed.to_string(),
                    });
                }
                if code.contains("println!") || code.contains("print!") || code.contains("dbg!") {
                    violations.push(Violation {
                        rule: "no-println-in-worker",
                        path: path_label.to_string(),
                        line: lineno,
                        text: trimmed.to_string(),
                    });
                }
                // Observability hooks stay at the job boundary (worker_loop,
                // parallel_for): a span records through a thread-local trie
                // and an op count through a thread-local map, both of which
                // may allocate on first touch — never inside a claimed
                // block. Counter `.add(` is a lone atomic and stays legal.
                if code.contains("obs::span(") || code.contains("obs::count_op(") {
                    violations.push(Violation {
                        rule: "no-span-in-worker",
                        path: path_label.to_string(),
                        line: lineno,
                        text: trimmed.to_string(),
                    });
                }
            }
            // The plan executor's schedule-replay loop promises zero
            // per-call allocation, no panic paths, and no instrumentation
            // — that promise is the whole reason the plan exists.
            let in_plan_fn = (in_plan_file && current_fn.ends_with("_plan_loop"))
                || (in_batch_file && current_fn.ends_with("_block"));
            if in_plan_fn {
                if code.contains("vec![")
                    || code.contains("Vec::")
                    || code.contains(".push(")
                    || code.contains("Box::new")
                    || code.contains(".to_vec()")
                    || code.contains(".collect()")
                {
                    violations.push(Violation {
                        rule: "no-alloc-in-plan-loop",
                        path: path_label.to_string(),
                        line: lineno,
                        text: trimmed.to_string(),
                    });
                }
                if code.contains(".unwrap()") || code.contains(".expect(") {
                    violations.push(Violation {
                        rule: "no-unwrap-in-plan-loop",
                        path: path_label.to_string(),
                        line: lineno,
                        text: trimmed.to_string(),
                    });
                }
                if code.contains("obs::span(") || code.contains("obs::count_op(") {
                    violations.push(Violation {
                        rule: "no-span-in-plan-loop",
                        path: path_label.to_string(),
                        line: lineno,
                        text: trimmed.to_string(),
                    });
                }
            }
            // The serving hot loops (batcher execution, listener accept)
            // promise the same: no per-request allocation, no panic paths
            // that could kill the shared batcher or accept thread, and no
            // console I/O on the critical path.
            let in_serve_fn = in_serve_file && current_fn.ends_with("_serve_loop");
            if in_serve_fn {
                if code.contains("vec![")
                    || code.contains("Vec::")
                    || code.contains(".push(")
                    || code.contains("Box::new")
                    || code.contains(".to_vec()")
                    || code.contains(".collect()")
                {
                    violations.push(Violation {
                        rule: "no-alloc-in-serve-loop",
                        path: path_label.to_string(),
                        line: lineno,
                        text: trimmed.to_string(),
                    });
                }
                if code.contains(".unwrap()") || code.contains(".expect(") {
                    violations.push(Violation {
                        rule: "no-unwrap-in-serve-loop",
                        path: path_label.to_string(),
                        line: lineno,
                        text: trimmed.to_string(),
                    });
                }
                if code.contains("println!") || code.contains("print!") || code.contains("dbg!") {
                    violations.push(Violation {
                        rule: "no-println-in-serve-loop",
                        path: path_label.to_string(),
                        line: lineno,
                        text: trimmed.to_string(),
                    });
                }
            }
        }

        for ch in code.chars() {
            match ch {
                '{' => {
                    if test_pending {
                        test_region = Some(depth);
                        test_pending = false;
                    }
                    if let Some((name, start)) = pending_fn.take() {
                        open_fns.push(OpenFn {
                            name,
                            start_line: start,
                            depth,
                            body: String::new(),
                        });
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if open_fns.last().is_some_and(|f| f.depth == depth) {
                        let f = open_fns.pop().unwrap_or_else(|| unreachable!());
                        let inference = f.name == "predict" || f.name == "evaluate";
                        if inference
                            && test_region.is_none()
                            && !f.body.contains("no_grad")
                            && !f.body.contains(".predict(")
                        {
                            violations.push(Violation {
                                rule: "no-grad-in-inference",
                                path: path_label.to_string(),
                                line: f.start_line,
                                text: format!("fn {} runs without a no_grad scope", f.name),
                            });
                        }
                    }
                    if test_region == Some(depth) {
                        test_region = None;
                    }
                }
                // A `;` before any `{` means the pending decl was bodyless
                // (trait method): drop it so the next block is not
                // mis-attributed.
                ';' if pending_fn.is_some() => pending_fn = None,
                _ => {}
            }
        }
        for f in &mut open_fns {
            f.body.push_str(&code);
            f.body.push('\n');
        }
    }
    violations
}

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Result of a workspace scan: live violations plus allowlist entries that
/// matched nothing (stale — the exception they document no longer exists
/// and should be deleted).
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Violations not suppressed by the allowlist.
    pub violations: Vec<Violation>,
    /// Allowlist entries (rendered back in file form) that suppressed no
    /// violation anywhere in the workspace.
    pub stale_allowlist: Vec<String>,
}

/// As [`scan_workspace`], but also reports stale allowlist entries.
pub fn scan_workspace_with_stale(repo_root: &Path, allow: &Allowlist) -> io::Result<ScanOutcome> {
    let mut files = Vec::new();
    let crates_dir = repo_root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            rust_files(&src, &mut files)?;
        }
    }
    let root_src = repo_root.join("src");
    if root_src.is_dir() {
        rust_files(&root_src, &mut files)?;
    }
    files.sort();
    let mut outcome = ScanOutcome::default();
    let mut used = vec![false; allow.len()];
    for file in files {
        let label = file
            .strip_prefix(repo_root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&file)?;
        for v in scan_source(&label, &source) {
            match allow.match_entry(&v) {
                Some(idx) => used[idx] = true,
                None => outcome.violations.push(v),
            }
        }
    }
    outcome.stale_allowlist = used
        .iter()
        .enumerate()
        .filter(|(_, fired)| !**fired)
        .map(|(idx, _)| allow.describe(idx))
        .collect();
    Ok(outcome)
}

/// Scans every `crates/*/src` tree (and the root package `src/` if
/// present) under `repo_root`. Returns violations not covered by `allow`,
/// with repo-relative paths.
pub fn scan_workspace(repo_root: &Path, allow: &Allowlist) -> io::Result<Vec<Violation>> {
    Ok(scan_workspace_with_stale(repo_root, allow)?.violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_only_strips_comments_and_strings() {
        let mut blk = false;
        assert_eq!(
            code_only("let x = 1; // .unwrap()", &mut blk),
            "let x = 1; "
        );
        assert_eq!(
            code_only("let s = \".unwrap()\";", &mut blk),
            "let s = \"\";"
        );
        assert_eq!(code_only("a /* x.unwrap() */ b", &mut blk), "a  b");
        assert!(!blk);
        assert_eq!(code_only("start /* spans", &mut blk), "start ");
        assert!(blk);
        assert_eq!(code_only("still } comment */ after", &mut blk), " after");
        assert!(!blk);
    }

    #[test]
    fn code_only_handles_char_literals() {
        let mut blk = false;
        // A '{' char literal must not look like an opening brace.
        assert_eq!(code_only("if c == '{' {", &mut blk), "if c == ' ' {");
        // Lifetimes pass through.
        assert_eq!(
            code_only("fn f<'a>(x: &'a str)", &mut blk),
            "fn f<'a>(x: &'a str)"
        );
    }

    #[test]
    fn fn_name_extraction() {
        assert_eq!(fn_name("pub fn forward(&self)").as_deref(), Some("forward"));
        assert_eq!(fn_name("    fn predict(").as_deref(), Some("predict"));
        assert_eq!(fn_name("let fnord = 3;"), None);
        assert_eq!(fn_name("no function here"), None);
    }

    #[test]
    fn allowlist_matches_rule_path_and_fragment() {
        let allow = Allowlist::parse(
            "# comment\nno-clone-in-forward student.rs .to_vec()\n* teacher.rs Instant\n",
        );
        assert_eq!(allow.len(), 2);
        let v = Violation {
            rule: "no-clone-in-forward",
            path: "crates/core/src/student.rs".into(),
            line: 3,
            text: "let v = x.to_vec();".into(),
        };
        assert!(allow.allows(&v));
        let other = Violation {
            rule: "no-unwrap-in-kernels",
            ..v.clone()
        };
        assert!(!allow.allows(&other), "rule must match unless wildcard");
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "\
impl Tensor {
    fn kernel(&self) -> f32 { self.data.first().copied().unwrap_or(0.0) }
}
#[cfg(test)]
mod tests {
    fn helper() { x.unwrap(); }
}
";
        let v = scan_source("crates/tensor/src/ops/fake.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }
}
