//! The execution-plan verifier — `timekd-check --plan`.
//!
//! [`Plan::compile`](timekd_tensor::Plan) performs liveness analysis and
//! slot coloring; this module **re-derives everything from scratch** and
//! refuses to trust any field the compiler wrote. Four passes per
//! configuration, none of which reuses the compiler's analysis:
//!
//! 1. **slot-overlap** — recompute def/use intervals over the schedule and
//!    prove no two simultaneously-live values share an arena slot, and no
//!    two slots overlap in the arena (interference soundness).
//! 2. **use-before-def** — walk the schedule in order and prove every
//!    step's operands are parameters, the input, or outputs of *earlier*
//!    steps (derived by scanning the schedule, not by trusting the
//!    recorded producer index), that no value is produced twice, and that
//!    the root is produced at all (topological validity).
//! 3. **arena-bound-mismatch** — recompute each slot's required extent
//!    from the values assigned to it and prove the packing is a gapless
//!    prefix-sum whose total equals the declared arena length (the
//!    executor allocates exactly that).
//! 4. **graph-diff** — re-trace the symbolic graph and prove the plan is a
//!    bijection of it: every symbolic node maps to exactly one plan value,
//!    every op's schedule entry carries the same op name and the same
//!    dependency edges in order, and the only synthesized steps are the
//!    RevIN stat lowerings. The gradient subgraph derived from the plan's
//!    `tracked` flags must then agree node-for-node (counts and depth)
//!    with both the symbolic [`graph_stats`] and a dynamic [`GraphAudit`]
//!    over a real seeded student forward — the same three-way agreement
//!    the `--graph` layer enforces for the loss graph.
//!
//! A final execution cross-check replays each distinct student geometry
//! through [`PlannedStudent`] and requires bitwise equality with the
//! dynamic `Student::predict`.
//!
//! Each pass has a fault-injection test (via
//! [`PlanFault`](timekd_tensor::PlanFault)) proving it actually fires.

use std::collections::{HashMap, HashSet};

use timekd::{student_plan_spec, trace_student_forecast, PlannedStudent, Student, TimeKdConfig};
use timekd_tensor::{
    graph_stats, seeded_rng, GraphAudit, Plan, SymbolicTensor, Tensor, ValueSource,
};

use crate::verify::{config_matrix, Finding};

fn finding(kind: &'static str, config: &str, message: String) -> Finding {
    Finding {
        pass: "plan",
        kind,
        config: config.to_string(),
        message,
        provenance: Vec::new(),
    }
}

/// Def/use intervals re-derived purely from the schedule: `def[v]` is the
/// first step producing `v`, `last[v]` the last step consuming it (the
/// root is pinned live through the end of the schedule).
fn derive_intervals(plan: &Plan) -> (Vec<Option<usize>>, Vec<usize>) {
    let n = plan.values().len();
    let mut def: Vec<Option<usize>> = vec![None; n];
    let mut last: Vec<usize> = vec![0; n];
    for (t, step) in plan.steps().iter().enumerate() {
        if def[step.output].is_none() {
            def[step.output] = Some(t);
        }
        for &v in &step.inputs {
            last[v] = last[v].max(t);
        }
    }
    last[plan.root()] = plan.steps().len();
    (def, last)
}

/// Pass 1: no two live values share a slot; no two slots share arena bytes.
pub fn check_slot_interference(plan: &Plan, config: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let (def, last) = derive_intervals(plan);
    let vals = plan.values();
    for i in 0..vals.len() {
        let (Some(si), Some(di)) = (vals[i].slot, def[i]) else {
            continue;
        };
        let li = last[i].max(di);
        for j in (i + 1)..vals.len() {
            let (Some(sj), Some(dj)) = (vals[j].slot, def[j]) else {
                continue;
            };
            if si != sj {
                continue;
            }
            let lj = last[j].max(dj);
            if di <= lj && dj <= li {
                out.push(finding(
                    "slot-overlap",
                    config,
                    format!(
                        "values `{}` (live {di}..={li}) and `{}` (live {dj}..={lj}) both \
                         occupy slot {si}",
                        vals[i].label, vals[j].label
                    ),
                ));
            }
        }
    }
    let slots = plan.slots();
    for a in 0..slots.len() {
        for b in (a + 1)..slots.len() {
            let (sa, sb) = (slots[a], slots[b]);
            if sa.offset < sb.offset + sb.size && sb.offset < sa.offset + sa.size {
                out.push(finding(
                    "slot-overlap",
                    config,
                    format!(
                        "slots {a} [{}, {}) and {b} [{}, {}) overlap in the arena",
                        sa.offset,
                        sa.offset + sa.size,
                        sb.offset,
                        sb.offset + sb.size
                    ),
                ));
            }
        }
    }
    out
}

/// Pass 2: every operand is defined before its use, in schedule order.
pub fn check_topo_validity(plan: &Plan, config: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let vals = plan.values();
    let mut produced = vec![false; vals.len()];
    for (t, step) in plan.steps().iter().enumerate() {
        for &v in &step.inputs {
            let external = matches!(vals[v].source, ValueSource::Input | ValueSource::Param);
            if !external && !produced[v] {
                out.push(finding(
                    "use-before-def",
                    config,
                    format!(
                        "step {t} (`{}`) consumes `{}` before any earlier step produces it",
                        vals[step.output].label, vals[v].label
                    ),
                ));
            }
        }
        if produced[step.output] {
            out.push(finding(
                "use-before-def",
                config,
                format!(
                    "step {t} re-produces `{}` (already defined)",
                    vals[step.output].label
                ),
            ));
        }
        produced[step.output] = true;
    }
    if !produced[plan.root()] {
        out.push(finding(
            "use-before-def",
            config,
            format!("root `{}` is never produced", vals[plan.root()].label),
        ));
    }
    out
}

/// Pass 3: the declared arena length equals the bound the analysis implies.
pub fn check_arena_bound(plan: &Plan, config: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let vals = plan.values();
    let slots = plan.slots();
    // Required extent of each slot, from the values assigned to it.
    let mut required = vec![0usize; slots.len()];
    for v in vals {
        if let Some(s) = v.slot {
            if s >= slots.len() {
                out.push(finding(
                    "arena-bound-mismatch",
                    config,
                    format!("value `{}` names slot {s} of {}", v.label, slots.len()),
                ));
                continue;
            }
            required[s] = required[s].max(v.len());
        }
    }
    let mut expect_offset = 0usize;
    for (i, slot) in slots.iter().enumerate() {
        if slot.size != required[i] {
            out.push(finding(
                "arena-bound-mismatch",
                config,
                format!(
                    "slot {i} declares {} elements but its values need {}",
                    slot.size, required[i]
                ),
            ));
        }
        if slot.offset != expect_offset {
            out.push(finding(
                "arena-bound-mismatch",
                config,
                format!(
                    "slot {i} at offset {} breaks the prefix-sum packing (expected {})",
                    slot.offset, expect_offset
                ),
            ));
        }
        expect_offset += slot.size;
    }
    if plan.arena_len() != expect_offset {
        out.push(finding(
            "arena-bound-mismatch",
            config,
            format!(
                "declared arena of {} elements does not match the analysis bound {}",
                plan.arena_len(),
                expect_offset
            ),
        ));
    }
    out
}

/// Pass 4 (structural half): the plan is a bijection of the re-traced
/// symbolic graph — same ops, same dependency edges, stat leaves aside.
pub fn check_graph_diff(plan: &Plan, root: &SymbolicTensor, config: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let vals = plan.values();

    // sym node id -> plan value, from the plan's own claim; ids must be
    // claimed exactly once.
    let mut val_of: HashMap<u64, usize> = HashMap::new();
    for (i, v) in vals.iter().enumerate() {
        for &id in &v.sym_ids {
            if val_of.insert(id, i).is_some() {
                out.push(finding(
                    "graph-diff",
                    config,
                    format!("symbolic node #{id} is claimed by two plan values"),
                ));
            }
        }
    }
    let step_of: HashMap<u64, usize> = plan
        .steps()
        .iter()
        .enumerate()
        .filter_map(|(t, s)| s.sym_id.map(|id| (id, t)))
        .collect();

    let spec = plan.spec();
    let mut graph_ids: HashSet<u64> = HashSet::new();
    let mut stack = vec![root.clone()];
    let mut seen: HashSet<u64> = HashSet::new();
    while let Some(node) = stack.pop() {
        if !seen.insert(node.id()) {
            continue;
        }
        graph_ids.insert(node.id());
        for p in node.parents() {
            stack.push(p.clone());
        }
        let Some(&vid) = val_of.get(&node.id()) else {
            out.push(finding(
                "graph-diff",
                config,
                format!(
                    "symbolic `{}` at `{}` has no plan value",
                    node.op_name(),
                    node.label()
                ),
            ));
            continue;
        };
        match node.op_name() {
            "param" | "leaf" => {
                // Stat leaves lower to synthesized steps; everything else
                // must stay a non-step value.
                let is_stat = spec.col_mean_leaves.contains(&vals[vid].label)
                    || spec
                        .col_std_leaves
                        .iter()
                        .any(|(l, _)| *l == vals[vid].label);
                let is_step = matches!(vals[vid].source, ValueSource::Step(_));
                if is_step != is_stat && node.label() != spec.input_label {
                    out.push(finding(
                        "graph-diff",
                        config,
                        format!(
                            "leaf `{}` lowered inconsistently (stat={is_stat}, step={is_step})",
                            node.label()
                        ),
                    ));
                }
            }
            op => {
                let Some(&t) = step_of.get(&node.id()) else {
                    out.push(finding(
                        "graph-diff",
                        config,
                        format!(
                            "symbolic op `{op}` at `{}` has no schedule entry",
                            node.label()
                        ),
                    ));
                    continue;
                };
                let step = &plan.steps()[t];
                if step.sym_op != op {
                    out.push(finding(
                        "graph-diff",
                        config,
                        format!(
                            "step {t} records op `{}` but the symbolic node is `{op}`",
                            step.sym_op
                        ),
                    ));
                }
                if step.output != vid {
                    out.push(finding(
                        "graph-diff",
                        config,
                        format!("step {t} writes a different value than `{op}` maps to"),
                    ));
                }
                let parents = node.parents();
                if step.inputs.len() != parents.len() {
                    out.push(finding(
                        "graph-diff",
                        config,
                        format!(
                            "step {t} (`{op}` at `{}`) has {} dependency edge(s), symbolic \
                             node has {}",
                            node.label(),
                            step.inputs.len(),
                            parents.len()
                        ),
                    ));
                } else {
                    for (slot, (inp, parent)) in step.inputs.iter().zip(parents).enumerate() {
                        if val_of.get(&parent.id()) != Some(inp) {
                            out.push(finding(
                                "graph-diff",
                                config,
                                format!(
                                    "step {t} (`{op}`) edge {slot} disagrees with symbolic \
                                     parent `{}`",
                                    parent.label()
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    // No phantom structure: every claimed sym id must exist in the graph,
    // and the only steps without a symbolic identity are stat lowerings.
    for id in val_of.keys() {
        if !graph_ids.contains(id) {
            out.push(finding(
                "graph-diff",
                config,
                format!("plan claims symbolic node #{id}, which the trace does not contain"),
            ));
        }
    }
    let stat_labels = spec.col_mean_leaves.len() + spec.col_std_leaves.len();
    let synthesized = plan.steps().iter().filter(|s| s.sym_id.is_none()).count();
    if synthesized > stat_labels {
        out.push(finding(
            "graph-diff",
            config,
            format!(
                "{synthesized} synthesized step(s), but the spec only lowers {stat_labels} \
                 stat leaf label(s)"
            ),
        ));
    }
    out
}

/// The gradient subgraph implied by the plan's `tracked` flags, accounted
/// exactly like [`graph_stats`] / [`GraphAudit`]: (nodes, edges, leaves,
/// params, max depth).
pub fn plan_grad_stats(plan: &Plan) -> (usize, usize, usize, usize, usize) {
    let vals = plan.values();
    // Producing *tracked* step per value: untracked producers make the
    // value a gradient-frontier leaf, exactly as the dynamic engine does.
    let mut tracked_step: Vec<Option<usize>> = vec![None; vals.len()];
    for (t, step) in plan.steps().iter().enumerate() {
        if step.tracked {
            tracked_step[step.output] = Some(t);
        }
    }
    let (mut nodes, mut edges, mut leaves, mut params, mut max_depth) = (0, 0, 0, 0, 0);
    let mut depth: HashMap<usize, usize> = HashMap::new();
    let mut stack = vec![(plan.root(), 0usize)];
    while let Some((v, d)) = stack.pop() {
        match depth.get(&v) {
            Some(&seen) if seen >= d => continue,
            Some(_) => {
                // Deeper revisit: update and propagate, but — exactly like
                // `graph_stats` / `GraphAudit` — only first visits feed
                // the max-depth accounting.
                depth.insert(v, d);
                if let Some(t) = tracked_step[v] {
                    for &p in &plan.steps()[t].inputs {
                        stack.push((p, d + 1));
                    }
                }
                continue;
            }
            None => {}
        }
        depth.insert(v, d);
        nodes += 1;
        max_depth = max_depth.max(d);
        match tracked_step[v] {
            Some(t) => {
                edges += plan.steps()[t].inputs.len();
                for &p in &plan.steps()[t].inputs {
                    stack.push((p, d + 1));
                }
            }
            None => {
                leaves += 1;
                if vals[v].requires_grad {
                    params += 1;
                }
            }
        }
    }
    (nodes, edges, leaves, params, max_depth)
}

/// Structural verification of one configuration: trace, compile, run the
/// four static passes.
pub fn verify_plan_config(
    cfg: &TimeKdConfig,
    label: &str,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
) -> Vec<Finding> {
    let (_ctx, forecast) = match trace_student_forecast(cfg, input_len, horizon, num_vars) {
        Ok(t) => t,
        Err(e) => {
            return vec![finding(
                "plan-compile",
                label,
                format!("student trace failed: {e}"),
            )]
        }
    };
    let plan = match Plan::compile(&forecast, &student_plan_spec()) {
        Ok(p) => p,
        Err(e) => return vec![finding("plan-compile", label, e.message)],
    };
    let mut out = check_slot_interference(&plan, label);
    out.extend(check_topo_validity(&plan, label));
    out.extend(check_arena_bound(&plan, label));
    out.extend(check_graph_diff(&plan, &forecast, label));
    out
}

/// Dynamic agreement for one student geometry: the plan's gradient stats
/// must match the symbolic trace and a real executed forward, and planned
/// predict must be bitwise identical to dynamic predict.
pub fn check_dynamic_agreement(
    cfg: &TimeKdConfig,
    label: &str,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let (_ctx, forecast) = match trace_student_forecast(cfg, input_len, horizon, num_vars) {
        Ok(t) => t,
        Err(e) => return vec![finding("plan-compile", label, format!("trace failed: {e}"))],
    };
    let plan = match Plan::compile(&forecast, &student_plan_spec()) {
        Ok(p) => p,
        Err(e) => return vec![finding("plan-compile", label, e.message)],
    };

    let mut rng = seeded_rng(0xD1CE);
    let student = Student::new(cfg, input_len, horizon, num_vars, &mut rng);
    let x = Tensor::randn([input_len, num_vars], 1.0, &mut rng);
    let audit = GraphAudit::run(&student.forward(&x).forecast);
    let dy = &audit.stats;
    let sym = graph_stats(&forecast);
    let from_plan = plan_grad_stats(&plan);
    let sym_t = (sym.nodes, sym.edges, sym.leaves, sym.params, sym.max_depth);
    let dy_t = (dy.nodes, dy.edges, dy.leaves, dy.params, dy.max_depth);
    if from_plan != sym_t || sym_t != dy_t {
        out.push(finding(
            "graph-diff",
            label,
            format!(
                "gradient subgraph disagreement (nodes, edges, leaves, params, depth): \
                 plan {from_plan:?}, symbolic {sym_t:?}, dynamic {dy_t:?}"
            ),
        ));
    }

    match PlannedStudent::new(&student, cfg) {
        Ok(mut planned) => {
            let dynamic = student.predict(&x).to_vec();
            let via_plan = planned.predict(&x).to_vec();
            if via_plan != dynamic {
                let diverging = via_plan
                    .iter()
                    .zip(&dynamic)
                    .filter(|(a, b)| a != b)
                    .count();
                out.push(finding(
                    "exec-divergence",
                    label,
                    format!(
                        "planned predict diverges from dynamic predict on {diverging}/{} \
                         elements",
                        dynamic.len()
                    ),
                ));
            }
        }
        Err(e) => out.push(finding("plan-compile", label, e.message)),
    }
    out
}

/// Aggregate result of a `--plan` run.
#[derive(Debug, Default)]
pub struct PlanReport {
    /// Configurations whose plans were statically verified.
    pub configs_checked: usize,
    /// Distinct student geometries cross-checked against dynamic execution.
    pub geometries_executed: usize,
    /// All findings across all passes and configurations.
    pub findings: Vec<Finding>,
    /// Invariants proven (only meaningful when clean).
    pub proofs: Vec<String>,
}

impl PlanReport {
    /// True when no pass produced a finding.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Compiles and verifies the student plan for every configuration in the
/// verification matrix (paper default geometry), then cross-checks each
/// distinct student geometry against real dynamic execution.
pub fn verify_plans() -> PlanReport {
    let (input_len, horizon, num_vars) = (96, 24, 7);
    let mut report = PlanReport::default();
    // The student is blind to the LM/prompt axes of the matrix, so dynamic
    // execution only needs one run per distinct (dim, heads, layers, ffn).
    let mut executed: HashSet<(usize, usize, usize, usize)> = HashSet::new();
    for (cfg, label) in config_matrix() {
        report.configs_checked += 1;
        report.findings.extend(verify_plan_config(
            &cfg, &label, input_len, horizon, num_vars,
        ));
        let key = (cfg.dim, cfg.num_heads, cfg.num_layers, cfg.ffn_hidden);
        if executed.insert(key) {
            report.geometries_executed += 1;
            report.findings.extend(check_dynamic_agreement(
                &cfg, &label, input_len, horizon, num_vars,
            ));
        }
    }
    if report.is_clean() {
        let n = report.configs_checked;
        let g = report.geometries_executed;
        report.proofs = vec![
            format!("no two live values share an arena slot ({n}/{n} configs)"),
            format!("every operand is defined before use in the schedule ({n}/{n} configs)"),
            format!("the declared arena length equals the liveness bound ({n}/{n} configs)"),
            format!(
                "the plan diffs clean against the symbolic graph, and its gradient \
                 subgraph matches symbolic and dynamic accounting ({n}/{n} configs)"
            ),
            format!(
                "planned predict is bitwise identical to dynamic predict ({g}/{g} \
                 student geometries)"
            ),
        ];
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd::compile_student_plan;
    use timekd_tensor::PlanFault;

    fn tiny_cfg() -> TimeKdConfig {
        let mut cfg = TimeKdConfig::default();
        cfg.dim = 16;
        cfg.num_heads = 2;
        cfg.ffn_hidden = 32;
        cfg
    }

    fn tiny_plan() -> Plan {
        compile_student_plan(&tiny_cfg(), 24, 8, 3).unwrap()
    }

    fn all_static_passes(plan: &Plan) -> Vec<Finding> {
        let mut out = check_slot_interference(plan, "t");
        out.extend(check_topo_validity(plan, "t"));
        out.extend(check_arena_bound(plan, "t"));
        out
    }

    #[test]
    fn clean_plan_passes_all_passes() {
        let cfg = tiny_cfg();
        let fs = verify_plan_config(&cfg, "tiny", 24, 8, 3);
        assert!(fs.is_empty(), "{fs:?}");
        let fs = check_dynamic_agreement(&cfg, "tiny", 24, 8, 3);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn overlap_fault_trips_slot_overlap() {
        let mut plan = tiny_plan();
        plan.inject_fault(PlanFault::OverlapSlots);
        let fs = check_slot_interference(&plan, "t");
        assert!(
            fs.iter().any(|f| f.kind == "slot-overlap"),
            "expected a slot-overlap finding, got {fs:?}"
        );
    }

    #[test]
    fn swap_fault_trips_use_before_def() {
        let mut plan = tiny_plan();
        plan.inject_fault(PlanFault::SwapSchedule);
        let fs = check_topo_validity(&plan, "t");
        assert!(
            fs.iter().any(|f| f.kind == "use-before-def"),
            "expected a use-before-def finding, got {fs:?}"
        );
    }

    #[test]
    fn shrink_fault_trips_arena_bound() {
        let mut plan = tiny_plan();
        plan.inject_fault(PlanFault::ShrinkArena);
        let fs = check_arena_bound(&plan, "t");
        assert!(
            fs.iter().any(|f| f.kind == "arena-bound-mismatch"),
            "expected an arena-bound-mismatch finding, got {fs:?}"
        );
    }

    #[test]
    fn drop_edge_fault_trips_graph_diff() {
        let cfg = tiny_cfg();
        let (_ctx, forecast) = trace_student_forecast(&cfg, 24, 8, 3).unwrap();
        let mut plan = Plan::compile(&forecast, &student_plan_spec()).unwrap();
        plan.inject_fault(PlanFault::DropEdge);
        let fs = check_graph_diff(&plan, &forecast, "t");
        assert!(
            fs.iter().any(|f| f.kind == "graph-diff"),
            "expected a graph-diff finding, got {fs:?}"
        );
    }

    #[test]
    fn faults_do_not_leak_into_other_passes_cleanliness() {
        // Each fault must be caught by its own pass — the clean plan must
        // stay clean under every pass so the named diagnostics are trusted.
        let plan = tiny_plan();
        assert!(all_static_passes(&plan).is_empty());
    }
}
