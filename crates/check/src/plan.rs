//! The execution-plan verifier — `timekd-check --plan`.
//!
//! [`Plan::compile`](timekd_tensor::Plan) performs liveness analysis and
//! slot coloring; this module **re-derives everything from scratch** and
//! refuses to trust any field the compiler wrote. Four passes per
//! configuration, none of which reuses the compiler's analysis:
//!
//! 1. **slot-overlap** — recompute def/use intervals over the schedule and
//!    prove no two simultaneously-live values share an arena slot, and no
//!    two slots overlap in the arena (interference soundness).
//! 2. **use-before-def** — walk the schedule in order and prove every
//!    step's operands are parameters, the input, or outputs of *earlier*
//!    steps (derived by scanning the schedule, not by trusting the
//!    recorded producer index), that no value is produced twice, and that
//!    the root is produced at all (topological validity).
//! 3. **arena-bound-mismatch** — recompute each slot's required extent
//!    from the values assigned to it and prove the packing is a gapless
//!    prefix-sum whose total equals the declared arena length (the
//!    executor allocates exactly that).
//! 4. **graph-diff** — re-trace the symbolic graph and prove the plan is a
//!    bijection of it: every symbolic node maps to exactly one plan value,
//!    every op's schedule entry carries the same op name and the same
//!    dependency edges in order, and the only synthesized steps are the
//!    RevIN stat lowerings. The gradient subgraph derived from the plan's
//!    `tracked` flags must then agree node-for-node (counts and depth)
//!    with both the symbolic [`graph_stats`] and a dynamic [`GraphAudit`]
//!    over a real seeded student forward — the same three-way agreement
//!    the `--graph` layer enforces for the loss graph.
//!
//! A final execution cross-check replays each distinct student geometry
//! through [`PlannedStudent`] and requires bitwise equality with the
//! dynamic `Student::predict`.
//!
//! ## Backward passes (training plans)
//!
//! Training plans compiled by `Plan::compile_training` get four more
//! passes over the reverse schedule, run as a *chain*: each pass runs
//! only when every earlier backward pass is clean, so the first firing
//! pass names the fault class unambiguously.
//!
//! 5. **adjoint-incomplete** — every reachable trainable parameter
//!    receives exactly one well-formed gradient (one `Init` among its
//!    writes) and exactly one fused optimizer update; frozen parameters
//!    provably receive no update (re-proving the frozen-CLM invariant at
//!    the plan level); no update reads an unwritten gradient; exactly one
//!    seed step initializes the root gradient.
//! 6. **reverse-topo** — walking the reverse schedule in order, every
//!    consumed upstream gradient was written by an earlier backward step,
//!    every `Init` write is the buffer's first, and every `Accum` write
//!    follows one.
//! 7. **saved-liveness** — re-derive def/use intervals over the combined
//!    `forward ++ backward ++ update` timeline (saved activations stay
//!    live until their last backward reader, gradients from first write
//!    to last consumer) and prove no two simultaneously-live values share
//!    an arena slot.
//! 8. **train-divergence** — run real planned training steps and require
//!    bitwise-identical parameters vs the dynamic `Student` training
//!    idiom under the same optimizer.
//!
//! ## Batched plans
//!
//! Plans compiled by `Plan::compile_training_batched` get two more static
//! passes over their batch metadata, run against both the per-window
//! training plan (where the metadata must be vacuous) and a `B = 4`
//! batched compile of the same configuration:
//!
//! 9. **batch-reduction** — re-derive the full pinned reduction sequence
//!    from the update schedule (source lanes `1..B` ascending, update
//!    order within a lane) and require the plan's
//!    [`ReduceStep`](timekd_tensor::ReduceStep) list to
//!    match it exactly, so every trained gradient is folded into lane 0
//!    exactly once per extra window and in the deterministic order.
//! 10. **lane-disjoint** — require the per-lane arena stride to cover a
//!     full arena, so no two lanes' gradient buffers can alias.
//!
//! Each pass has a fault-injection test (via
//! [`PlanFault`](timekd_tensor::PlanFault)) proving it actually fires.

use std::collections::{HashMap, HashSet};

use timekd::{
    student_plan_spec, student_train_spec, trace_student_forecast, trace_student_loss,
    PlannedStudent, Student, TimeKdConfig,
};
use timekd_nn::Module;
use timekd_tensor::{
    graph_stats, seeded_rng, GradMode, GraphAudit, Plan, PlanOptimizer, SymbolicTensor, Tensor,
    TrainExecutor, ValueSource,
};

use crate::verify::{config_matrix, Finding};

/// Optimizer every training-plan verification uses (the paper trains with
/// AdamW; hyper-parameters mirror `timekd_nn::AdamWConfig::default`).
pub fn verification_optimizer() -> PlanOptimizer {
    PlanOptimizer::AdamW {
        lr: 0.01,
        beta1: 0.9,
        beta2: 0.999,
        eps: 1e-8,
        weight_decay: 0.01,
    }
}

fn finding(kind: &'static str, config: &str, message: String) -> Finding {
    Finding {
        pass: "plan",
        kind,
        config: config.to_string(),
        message,
        provenance: Vec::new(),
    }
}

/// Def/use intervals re-derived purely from the schedule: `def[v]` is the
/// first step producing `v`, `last[v]` the last step consuming it (the
/// root is pinned live through the end of the schedule).
fn derive_intervals(plan: &Plan) -> (Vec<Option<usize>>, Vec<usize>) {
    let n = plan.values().len();
    let mut def: Vec<Option<usize>> = vec![None; n];
    let mut last: Vec<usize> = vec![0; n];
    for (t, step) in plan.steps().iter().enumerate() {
        if def[step.output].is_none() {
            def[step.output] = Some(t);
        }
        for &v in &step.inputs {
            last[v] = last[v].max(t);
        }
    }
    last[plan.root()] = plan.steps().len();
    (def, last)
}

/// Pass 1: no two live values share a slot; no two slots share arena bytes.
pub fn check_slot_interference(plan: &Plan, config: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let (def, last) = derive_intervals(plan);
    let vals = plan.values();
    for i in 0..vals.len() {
        let (Some(si), Some(di)) = (vals[i].slot, def[i]) else {
            continue;
        };
        let li = last[i].max(di);
        for j in (i + 1)..vals.len() {
            let (Some(sj), Some(dj)) = (vals[j].slot, def[j]) else {
                continue;
            };
            if si != sj {
                continue;
            }
            let lj = last[j].max(dj);
            if di <= lj && dj <= li {
                out.push(finding(
                    "slot-overlap",
                    config,
                    format!(
                        "values `{}` (live {di}..={li}) and `{}` (live {dj}..={lj}) both \
                         occupy slot {si}",
                        vals[i].label, vals[j].label
                    ),
                ));
            }
        }
    }
    let slots = plan.slots();
    for a in 0..slots.len() {
        for b in (a + 1)..slots.len() {
            let (sa, sb) = (slots[a], slots[b]);
            if sa.offset < sb.offset + sb.size && sb.offset < sa.offset + sa.size {
                out.push(finding(
                    "slot-overlap",
                    config,
                    format!(
                        "slots {a} [{}, {}) and {b} [{}, {}) overlap in the arena",
                        sa.offset,
                        sa.offset + sa.size,
                        sb.offset,
                        sb.offset + sb.size
                    ),
                ));
            }
        }
    }
    out
}

/// Pass 2: every operand is defined before its use, in schedule order.
pub fn check_topo_validity(plan: &Plan, config: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let vals = plan.values();
    let mut produced = vec![false; vals.len()];
    for (t, step) in plan.steps().iter().enumerate() {
        for &v in &step.inputs {
            let external = matches!(
                vals[v].source,
                ValueSource::Input | ValueSource::Param | ValueSource::Target | ValueSource::Aux(_)
            );
            if !external && !produced[v] {
                out.push(finding(
                    "use-before-def",
                    config,
                    format!(
                        "step {t} (`{}`) consumes `{}` before any earlier step produces it",
                        vals[step.output].label, vals[v].label
                    ),
                ));
            }
        }
        if produced[step.output] {
            out.push(finding(
                "use-before-def",
                config,
                format!(
                    "step {t} re-produces `{}` (already defined)",
                    vals[step.output].label
                ),
            ));
        }
        produced[step.output] = true;
    }
    if !produced[plan.root()] {
        out.push(finding(
            "use-before-def",
            config,
            format!("root `{}` is never produced", vals[plan.root()].label),
        ));
    }
    out
}

/// Pass 3: the declared arena length equals the bound the analysis implies.
pub fn check_arena_bound(plan: &Plan, config: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let vals = plan.values();
    let slots = plan.slots();
    // Required extent of each slot, from the values assigned to it.
    let mut required = vec![0usize; slots.len()];
    for v in vals {
        if let Some(s) = v.slot {
            if s >= slots.len() {
                out.push(finding(
                    "arena-bound-mismatch",
                    config,
                    format!("value `{}` names slot {s} of {}", v.label, slots.len()),
                ));
                continue;
            }
            required[s] = required[s].max(v.len());
        }
    }
    let mut expect_offset = 0usize;
    for (i, slot) in slots.iter().enumerate() {
        if slot.size != required[i] {
            out.push(finding(
                "arena-bound-mismatch",
                config,
                format!(
                    "slot {i} declares {} elements but its values need {}",
                    slot.size, required[i]
                ),
            ));
        }
        if slot.offset != expect_offset {
            out.push(finding(
                "arena-bound-mismatch",
                config,
                format!(
                    "slot {i} at offset {} breaks the prefix-sum packing (expected {})",
                    slot.offset, expect_offset
                ),
            ));
        }
        expect_offset += slot.size;
    }
    if plan.arena_len() != expect_offset {
        out.push(finding(
            "arena-bound-mismatch",
            config,
            format!(
                "declared arena of {} elements does not match the analysis bound {}",
                plan.arena_len(),
                expect_offset
            ),
        ));
    }
    out
}

/// Pass 4 (structural half): the plan is a bijection of the re-traced
/// symbolic graph — same ops, same dependency edges, stat leaves aside.
pub fn check_graph_diff(plan: &Plan, root: &SymbolicTensor, config: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let vals = plan.values();

    // sym node id -> plan value, from the plan's own claim; ids must be
    // claimed exactly once.
    let mut val_of: HashMap<u64, usize> = HashMap::new();
    for (i, v) in vals.iter().enumerate() {
        for &id in &v.sym_ids {
            if val_of.insert(id, i).is_some() {
                out.push(finding(
                    "graph-diff",
                    config,
                    format!("symbolic node #{id} is claimed by two plan values"),
                ));
            }
        }
    }
    let step_of: HashMap<u64, usize> = plan
        .steps()
        .iter()
        .enumerate()
        .filter_map(|(t, s)| s.sym_id.map(|id| (id, t)))
        .collect();

    let spec = plan.spec();
    let mut graph_ids: HashSet<u64> = HashSet::new();
    let mut stack = vec![root.clone()];
    let mut seen: HashSet<u64> = HashSet::new();
    while let Some(node) = stack.pop() {
        if !seen.insert(node.id()) {
            continue;
        }
        graph_ids.insert(node.id());
        for p in node.parents() {
            stack.push(p.clone());
        }
        let Some(&vid) = val_of.get(&node.id()) else {
            out.push(finding(
                "graph-diff",
                config,
                format!(
                    "symbolic `{}` at `{}` has no plan value",
                    node.op_name(),
                    node.label()
                ),
            ));
            continue;
        };
        match node.op_name() {
            "param" | "leaf" => {
                // Stat leaves lower to synthesized steps; everything else
                // must stay a non-step value.
                let is_stat = spec.col_mean_leaves.contains(&vals[vid].label)
                    || spec
                        .col_std_leaves
                        .iter()
                        .any(|(l, _)| *l == vals[vid].label);
                let is_step = matches!(vals[vid].source, ValueSource::Step(_));
                if is_step != is_stat && node.label() != spec.input_label {
                    out.push(finding(
                        "graph-diff",
                        config,
                        format!(
                            "leaf `{}` lowered inconsistently (stat={is_stat}, step={is_step})",
                            node.label()
                        ),
                    ));
                }
            }
            op => {
                let Some(&t) = step_of.get(&node.id()) else {
                    out.push(finding(
                        "graph-diff",
                        config,
                        format!(
                            "symbolic op `{op}` at `{}` has no schedule entry",
                            node.label()
                        ),
                    ));
                    continue;
                };
                let step = &plan.steps()[t];
                if step.sym_op != op {
                    out.push(finding(
                        "graph-diff",
                        config,
                        format!(
                            "step {t} records op `{}` but the symbolic node is `{op}`",
                            step.sym_op
                        ),
                    ));
                }
                if step.output != vid {
                    out.push(finding(
                        "graph-diff",
                        config,
                        format!("step {t} writes a different value than `{op}` maps to"),
                    ));
                }
                let parents = node.parents();
                if step.inputs.len() != parents.len() {
                    out.push(finding(
                        "graph-diff",
                        config,
                        format!(
                            "step {t} (`{op}` at `{}`) has {} dependency edge(s), symbolic \
                             node has {}",
                            node.label(),
                            step.inputs.len(),
                            parents.len()
                        ),
                    ));
                } else {
                    for (slot, (inp, parent)) in step.inputs.iter().zip(parents).enumerate() {
                        if val_of.get(&parent.id()) != Some(inp) {
                            out.push(finding(
                                "graph-diff",
                                config,
                                format!(
                                    "step {t} (`{op}`) edge {slot} disagrees with symbolic \
                                     parent `{}`",
                                    parent.label()
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    // No phantom structure: every claimed sym id must exist in the graph,
    // and the only steps without a symbolic identity are stat lowerings.
    for id in val_of.keys() {
        if !graph_ids.contains(id) {
            out.push(finding(
                "graph-diff",
                config,
                format!("plan claims symbolic node #{id}, which the trace does not contain"),
            ));
        }
    }
    let stat_labels = spec.col_mean_leaves.len() + spec.col_std_leaves.len();
    let synthesized = plan.steps().iter().filter(|s| s.sym_id.is_none()).count();
    if synthesized > stat_labels {
        out.push(finding(
            "graph-diff",
            config,
            format!(
                "{synthesized} synthesized step(s), but the spec only lowers {stat_labels} \
                 stat leaf label(s)"
            ),
        ));
    }
    out
}

/// The gradient subgraph implied by the plan's `tracked` flags, accounted
/// exactly like [`graph_stats`] / [`GraphAudit`]: (nodes, edges, leaves,
/// params, max depth).
pub fn plan_grad_stats(plan: &Plan) -> (usize, usize, usize, usize, usize) {
    let vals = plan.values();
    // Producing *tracked* step per value: untracked producers make the
    // value a gradient-frontier leaf, exactly as the dynamic engine does.
    let mut tracked_step: Vec<Option<usize>> = vec![None; vals.len()];
    for (t, step) in plan.steps().iter().enumerate() {
        if step.tracked {
            tracked_step[step.output] = Some(t);
        }
    }
    let (mut nodes, mut edges, mut leaves, mut params, mut max_depth) = (0, 0, 0, 0, 0);
    let mut depth: HashMap<usize, usize> = HashMap::new();
    let mut stack = vec![(plan.root(), 0usize)];
    while let Some((v, d)) = stack.pop() {
        match depth.get(&v) {
            Some(&seen) if seen >= d => continue,
            Some(_) => {
                // Deeper revisit: update and propagate, but — exactly like
                // `graph_stats` / `GraphAudit` — only first visits feed
                // the max-depth accounting.
                depth.insert(v, d);
                if let Some(t) = tracked_step[v] {
                    for &p in &plan.steps()[t].inputs {
                        stack.push((p, d + 1));
                    }
                }
                continue;
            }
            None => {}
        }
        depth.insert(v, d);
        nodes += 1;
        max_depth = max_depth.max(d);
        match tracked_step[v] {
            Some(t) => {
                edges += plan.steps()[t].inputs.len();
                for &p in &plan.steps()[t].inputs {
                    stack.push((p, d + 1));
                }
            }
            None => {
                leaves += 1;
                if vals[v].requires_grad {
                    params += 1;
                }
            }
        }
    }
    (nodes, edges, leaves, params, max_depth)
}

/// Parameter values of the gradient subgraph: reachable from the root
/// through values that require grad via tracked steps — the exact set the
/// dynamic engine accumulates gradients into, re-derived from the
/// schedule rather than read off any compiler field.
fn grad_reachable_params(plan: &Plan) -> HashSet<usize> {
    let vals = plan.values();
    let mut producer: Vec<Option<usize>> = vec![None; vals.len()];
    for (t, step) in plan.steps().iter().enumerate() {
        if step.tracked {
            producer[step.output] = Some(t);
        }
    }
    let mut params = HashSet::new();
    let mut seen = HashSet::new();
    let mut stack = vec![plan.root()];
    while let Some(v) = stack.pop() {
        if !seen.insert(v) {
            continue;
        }
        match producer[v] {
            Some(t) => {
                for &p in &plan.steps()[t].inputs {
                    if vals[p].requires_grad {
                        stack.push(p);
                    }
                }
            }
            None => {
                if matches!(vals[v].source, ValueSource::Param) && vals[v].requires_grad {
                    params.insert(v);
                }
            }
        }
    }
    params
}

/// Pass 5: adjoint completeness. Every reachable trainable parameter gets
/// exactly one accumulated gradient and exactly one fused update; frozen
/// parameters provably receive no update; no update reads an unwritten
/// gradient; exactly one seed step initializes the root's adjoint.
pub fn check_adjoint_completeness(plan: &Plan, config: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let vals = plan.values();
    if !plan.is_training() {
        out.push(finding(
            "adjoint-incomplete",
            config,
            "plan carries no reverse schedule".to_string(),
        ));
        return out;
    }

    // Adjoint ownership and write accounting, from the reverse schedule.
    let mut grads_of: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, v) in vals.iter().enumerate() {
        if let Some(owner) = v.adjoint_of {
            grads_of.entry(owner).or_default().push(i);
        }
    }
    let mut writes: HashMap<usize, (usize, usize)> = HashMap::new(); // grad -> (inits, accums)
    let mut seeds = 0usize;
    for step in plan.bwd_steps() {
        if step.fwd_step.is_none() {
            seeds += 1;
            let well_formed = step.grad_in.is_none()
                && step.writes.len() == 1
                && step.writes[0].1 == GradMode::Init
                && vals[step.writes[0].0].adjoint_of == Some(plan.root());
            if !well_formed {
                out.push(finding(
                    "adjoint-incomplete",
                    config,
                    "seed step does not initialize exactly the root gradient".to_string(),
                ));
            }
        }
        for &(g, mode) in &step.writes {
            let e = writes.entry(g).or_insert((0, 0));
            match mode {
                GradMode::Init => e.0 += 1,
                GradMode::Accum => e.1 += 1,
            }
        }
    }
    if seeds != 1 {
        out.push(finding(
            "adjoint-incomplete",
            config,
            format!("{seeds} seed step(s); the reverse schedule needs exactly one"),
        ));
    }
    for (&g, &(inits, _)) in &writes {
        if inits != 1 {
            out.push(finding(
                "adjoint-incomplete",
                config,
                format!(
                    "gradient `{}` has {inits} Init write(s) (want exactly one)",
                    vals[g].label
                ),
            ));
        }
    }

    // Fused updates: each must read a written adjoint of its own parameter.
    let mut updates: HashMap<usize, usize> = HashMap::new();
    for u in plan.update_steps() {
        *updates.entry(u.param).or_default() += 1;
        if !writes.contains_key(&u.grad) {
            out.push(finding(
                "adjoint-incomplete",
                config,
                format!(
                    "update of `{}` reads gradient `{}`, which no backward step writes",
                    vals[u.param].label, vals[u.grad].label
                ),
            ));
        }
        if vals[u.grad].adjoint_of != Some(u.param) {
            out.push(finding(
                "adjoint-incomplete",
                config,
                format!(
                    "update of `{}` reads a gradient that is not its adjoint",
                    vals[u.param].label
                ),
            ));
        }
    }

    // Per-parameter completeness against the re-derived gradient subgraph.
    let reachable = grad_reachable_params(plan);
    for (i, v) in vals.iter().enumerate() {
        if !matches!(v.source, ValueSource::Param) {
            continue;
        }
        let n_upd = updates.get(&i).copied().unwrap_or(0);
        if reachable.contains(&i) && !v.frozen {
            let written = grads_of
                .get(&i)
                .map_or(0, |gs| gs.iter().filter(|g| writes.contains_key(g)).count());
            if written != 1 {
                out.push(finding(
                    "adjoint-incomplete",
                    config,
                    format!(
                        "trainable parameter `{}` has {written} accumulated gradient(s) \
                         (want exactly one)",
                        v.label
                    ),
                ));
            }
            if n_upd != 1 {
                out.push(finding(
                    "adjoint-incomplete",
                    config,
                    format!(
                        "trainable parameter `{}` receives {n_upd} optimizer update(s) \
                         (want exactly one)",
                        v.label
                    ),
                ));
            }
        } else if n_upd != 0 {
            out.push(finding(
                "adjoint-incomplete",
                config,
                format!(
                    "frozen/non-trainable parameter `{}` receives {n_upd} optimizer \
                     update(s) (must receive none)",
                    v.label
                ),
            ));
        }
    }
    out
}

/// Pass 6: reverse-topological validity. Walking the reverse schedule in
/// order, every consumed upstream gradient was written earlier, every
/// `Init` is its buffer's first write, every `Accum` follows one, and each
/// non-seed step's incoming gradient is the adjoint of the forward step it
/// claims to reverse.
pub fn check_reverse_topo(plan: &Plan, config: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let vals = plan.values();
    let mut written: HashSet<usize> = HashSet::new();
    for (j, step) in plan.bwd_steps().iter().enumerate() {
        if let Some(g) = step.grad_in {
            if !written.contains(&g) {
                out.push(finding(
                    "reverse-topo",
                    config,
                    format!(
                        "backward step {j} consumes `{}` before any earlier step writes it",
                        vals[g].label
                    ),
                ));
            }
        }
        if let (Some(fs), Some(g)) = (step.fwd_step, step.grad_in) {
            let reversed_output = plan.steps().get(fs).map(|s| s.output);
            if vals[g].adjoint_of != reversed_output {
                out.push(finding(
                    "reverse-topo",
                    config,
                    format!(
                        "backward step {j} claims to reverse forward step {fs} but consumes \
                         a gradient that is not its output's adjoint"
                    ),
                ));
            }
        }
        for &(g, mode) in &step.writes {
            match mode {
                GradMode::Init => {
                    if written.contains(&g) {
                        out.push(finding(
                            "reverse-topo",
                            config,
                            format!(
                                "backward step {j} re-initializes `{}` after earlier writes",
                                vals[g].label
                            ),
                        ));
                    }
                }
                GradMode::Accum => {
                    if !written.contains(&g) {
                        out.push(finding(
                            "reverse-topo",
                            config,
                            format!(
                                "backward step {j} accumulates into `{}` before its Init",
                                vals[g].label
                            ),
                        ));
                    }
                }
            }
            written.insert(g);
        }
    }
    out
}

/// Def/use intervals over the combined `forward ++ backward ++ update`
/// timeline, re-derived from the schedules: saved activations stay live to
/// their last backward reader, gradients from first write to last consumer,
/// and the root (loss) is pinned through the end of the whole step.
fn derive_train_intervals(plan: &Plan) -> (Vec<Option<usize>>, Vec<usize>) {
    let n = plan.values().len();
    let mut def: Vec<Option<usize>> = vec![None; n];
    let mut last: Vec<usize> = vec![0; n];
    let fwd_end = plan.steps().len();
    for (t, step) in plan.steps().iter().enumerate() {
        if def[step.output].is_none() {
            def[step.output] = Some(t);
        }
        for &v in &step.inputs {
            last[v] = last[v].max(t);
        }
    }
    for (j, step) in plan.bwd_steps().iter().enumerate() {
        let t = fwd_end + j;
        if let Some(g) = step.grad_in {
            last[g] = last[g].max(t);
        }
        for &v in &step.reads {
            last[v] = last[v].max(t);
        }
        for &(g, _) in &step.writes {
            if def[g].is_none() {
                def[g] = Some(t);
            }
            last[g] = last[g].max(t);
        }
    }
    let bwd_end = fwd_end + plan.bwd_steps().len();
    for (u, upd) in plan.update_steps().iter().enumerate() {
        last[upd.grad] = last[upd.grad].max(bwd_end + u);
    }
    last[plan.root()] = bwd_end + plan.update_steps().len();
    (def, last)
}

/// Pass 7: saved-activation liveness soundness. No two values that are
/// simultaneously live anywhere on the combined timeline — a saved forward
/// activation and the gradient that outlives it included — share a slot.
pub fn check_saved_liveness(plan: &Plan, config: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let (def, last) = derive_train_intervals(plan);
    let vals = plan.values();
    for i in 0..vals.len() {
        let (Some(si), Some(di)) = (vals[i].slot, def[i]) else {
            continue;
        };
        let li = last[i].max(di);
        for j in (i + 1)..vals.len() {
            let (Some(sj), Some(dj)) = (vals[j].slot, def[j]) else {
                continue;
            };
            if si != sj {
                continue;
            }
            let lj = last[j].max(dj);
            if di <= lj && dj <= li {
                out.push(finding(
                    "saved-liveness",
                    config,
                    format!(
                        "values `{}` (live {di}..={li}) and `{}` (live {dj}..={lj}) share \
                         slot {si} on the combined forward+backward timeline",
                        vals[i].label, vals[j].label
                    ),
                ));
            }
        }
    }
    out
}

/// Pass 9: batch-reduction completeness. Per-window plans must carry no
/// batch metadata at all; batched plans must reduce every trained
/// gradient into lane 0 exactly once per extra lane, in the pinned order
/// (ascending source lane — i.e. window index — first, update-schedule
/// order within a lane). The expected sequence is re-derived from the
/// update schedule; the compiler's list is only compared against it.
pub fn check_batch_reduction(plan: &Plan, config: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let batch = plan.batch();
    if batch == 0 {
        if !plan.reduce_steps().is_empty() {
            out.push(finding(
                "batch-reduction",
                config,
                format!(
                    "per-window plan carries {} reduce step(s); it must carry none",
                    plan.reduce_steps().len()
                ),
            ));
        }
        if plan.lane_stride() != 0 {
            out.push(finding(
                "batch-reduction",
                config,
                format!(
                    "per-window plan declares a lane stride of {}; it must declare none",
                    plan.lane_stride()
                ),
            ));
        }
        return out;
    }
    let expected: Vec<(usize, usize)> = (1..batch)
        .flat_map(|lane| plan.update_steps().iter().map(move |u| (lane, u.grad)))
        .collect();
    let actual: Vec<(usize, usize)> = plan
        .reduce_steps()
        .iter()
        .map(|r| (r.src_lane, r.grad))
        .collect();
    if actual.len() != expected.len() {
        out.push(finding(
            "batch-reduction",
            config,
            format!(
                "batched plan (B={batch}) records {} reduce step(s); the update schedule \
                 implies {} (one per trained gradient per extra lane)",
                actual.len(),
                expected.len()
            ),
        ));
        return out;
    }
    for (i, (a, e)) in actual.iter().zip(&expected).enumerate() {
        if a != e {
            let vals = plan.values();
            out.push(finding(
                "batch-reduction",
                config,
                format!(
                    "reduce step {i} folds `{}` from lane {}, but the pinned order \
                     requires `{}` from lane {}",
                    vals[a.1].label, a.0, vals[e.1].label, e.0
                ),
            ));
            return out;
        }
    }
    out
}

/// Pass 10: per-lane arena disjointness. A batched plan replays one lane
/// per window; the declared lane stride must cover a full arena so no
/// two lanes' buffers can alias.
pub fn check_lane_disjointness(plan: &Plan, config: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    if plan.batch() == 0 {
        return out;
    }
    if plan.lane_stride() < plan.arena_len() {
        out.push(finding(
            "lane-disjoint",
            config,
            format!(
                "lane stride {} is smaller than the {}-element arena: adjacent lanes \
                 would alias",
                plan.lane_stride(),
                plan.arena_len()
            ),
        ));
    }
    out
}

/// The chained backward verification: completeness, then reverse-topo,
/// then saved-liveness — each pass runs only when every earlier backward
/// pass came back clean, so the first firing pass names the fault class
/// unambiguously.
pub fn verify_backward_chain(plan: &Plan, config: &str) -> Vec<Finding> {
    let out = check_adjoint_completeness(plan, config);
    if !out.is_empty() {
        return out;
    }
    let out = check_reverse_topo(plan, config);
    if !out.is_empty() {
        return out;
    }
    check_saved_liveness(plan, config)
}

/// Pass 8: plan-vs-dynamic gradient diff. Binds the training plan to a
/// freshly seeded student, runs two real planned training steps, and
/// requires every parameter to be bitwise identical to the dynamic
/// `Student` training idiom (`zero_grad → forward → smooth_l1 → backward →
/// optimizer step`) under the same optimizer.
pub fn check_train_divergence(
    plan: &Plan,
    cfg: &TimeKdConfig,
    label: &str,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(&optimizer) = plan.optimizer() else {
        return vec![finding(
            "train-divergence",
            label,
            "training plan declares no optimizer".to_string(),
        )];
    };
    let (ctx, _loss) = match trace_student_loss(cfg, input_len, horizon, num_vars) {
        Ok(t) => t,
        Err(e) => return vec![finding("plan-compile", label, format!("trace failed: {e}"))],
    };
    let mut rng = seeded_rng(0xD1CE);
    let student = Student::new(cfg, input_len, horizon, num_vars, &mut rng);
    let params = student.params();
    let sym_params = ctx.params();
    if sym_params.len() != params.len() {
        return vec![finding(
            "train-divergence",
            label,
            format!(
                "symbolic trace registers {} parameters, dynamic student has {}",
                sym_params.len(),
                params.len()
            ),
        )];
    }
    let by_label: HashMap<String, Tensor> = sym_params
        .iter()
        .zip(&params)
        .map(|(s, t)| (s.label().to_string(), t.clone()))
        .collect();
    let initial: HashMap<String, Vec<f32>> = by_label
        .iter()
        .map(|(l, t)| (l.clone(), t.to_vec()))
        .collect();
    // Bind the executor to pre-training copies before the dynamic reference
    // moves anything.
    let mut exec = match TrainExecutor::new(plan, |lbl, dims| {
        by_label
            .get(lbl)
            .filter(|t| t.dims() == dims)
            .map(|t| t.data().clone())
    }) {
        Ok(e) => e,
        Err(e) => {
            return vec![finding(
                "train-divergence",
                label,
                format!("training plan rejected at bind: {}", e.message),
            )]
        }
    };

    enum DynOpt {
        Sgd(timekd_nn::Sgd),
        AdamW(timekd_nn::AdamW),
    }
    let mut dyn_opt = match optimizer {
        PlanOptimizer::Sgd { lr } => DynOpt::Sgd(timekd_nn::Sgd::new(lr)),
        PlanOptimizer::AdamW {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
        } => DynOpt::AdamW(timekd_nn::AdamW::new(
            lr,
            timekd_nn::AdamWConfig {
                beta1,
                beta2,
                eps,
                weight_decay,
            },
        )),
    };

    let mut wrng = seeded_rng(0x7A17);
    for _ in 0..2 {
        let x = Tensor::randn([input_len, num_vars], 1.0, &mut wrng);
        let y = Tensor::randn([horizon, num_vars], 0.5, &mut wrng);
        for p in &params {
            p.zero_grad();
        }
        let forecast = student.forward(&x).forecast;
        timekd_nn::smooth_l1_loss(&forecast, &y).backward();
        match &mut dyn_opt {
            DynOpt::Sgd(o) => o.step(&params),
            DynOpt::AdamW(o) => o.step(&params),
        }
        let _ = exec.run_train_step(&x.to_vec(), &y.to_vec());
    }

    let plan_param_labels: Vec<&str> = plan
        .values()
        .iter()
        .filter(|v| matches!(v.source, ValueSource::Param))
        .map(|v| v.label.as_str())
        .collect();
    for (lbl, t) in &by_label {
        let dynamic = t.to_vec();
        let planned: &[f32] = match plan_param_labels.iter().position(|l| l == lbl) {
            Some(i) => exec.param_data(i),
            None => &initial[lbl],
        };
        let diverging = planned
            .iter()
            .zip(&dynamic)
            .filter(|(a, b)| a.to_bits() != b.to_bits())
            .count();
        if diverging > 0 {
            out.push(finding(
                "train-divergence",
                label,
                format!(
                    "parameter `{lbl}` diverges from dynamic training on {diverging}/{} \
                     elements after 2 steps",
                    dynamic.len()
                ),
            ));
        }
    }
    out
}

/// Structural verification of one configuration: trace, compile, run the
/// four static passes.
pub fn verify_plan_config(
    cfg: &TimeKdConfig,
    label: &str,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
) -> Vec<Finding> {
    let (_ctx, forecast) = match trace_student_forecast(cfg, input_len, horizon, num_vars) {
        Ok(t) => t,
        Err(e) => {
            return vec![finding(
                "plan-compile",
                label,
                format!("student trace failed: {e}"),
            )]
        }
    };
    let plan = match Plan::compile(&forecast, &student_plan_spec()) {
        Ok(p) => p,
        Err(e) => return vec![finding("plan-compile", label, e.message)],
    };
    let mut out = check_slot_interference(&plan, label);
    out.extend(check_topo_validity(&plan, label));
    out.extend(check_arena_bound(&plan, label));
    out.extend(check_graph_diff(&plan, &forecast, label));

    // Training plan: same forward passes over the extended value set, then
    // the chained backward passes over the reverse schedule.
    let (_ctx, loss) = match trace_student_loss(cfg, input_len, horizon, num_vars) {
        Ok(t) => t,
        Err(e) => {
            out.push(finding(
                "plan-compile",
                label,
                format!("student loss trace failed: {e}"),
            ));
            return out;
        }
    };
    let train_plan = match Plan::compile_training(
        &loss,
        &student_plan_spec(),
        &student_train_spec(verification_optimizer()),
    ) {
        Ok(p) => p,
        Err(e) => {
            out.push(finding("plan-compile", label, e.message));
            return out;
        }
    };
    out.extend(check_slot_interference(&train_plan, label));
    out.extend(check_topo_validity(&train_plan, label));
    out.extend(check_arena_bound(&train_plan, label));
    out.extend(check_graph_diff(&train_plan, &loss, label));
    out.extend(verify_backward_chain(&train_plan, label));

    // Batch metadata: vacuous on the per-window plan, then fully proven
    // on a B=4 batched compile of the same configuration.
    out.extend(check_batch_reduction(&train_plan, label));
    out.extend(check_lane_disjointness(&train_plan, label));
    let batched = match Plan::compile_training_batched(
        &loss,
        &student_plan_spec(),
        &student_train_spec(verification_optimizer()),
        4,
    ) {
        Ok(p) => p,
        Err(e) => {
            out.push(finding("plan-compile", label, e.message));
            return out;
        }
    };
    out.extend(check_batch_reduction(&batched, label));
    out.extend(check_lane_disjointness(&batched, label));
    out
}

/// Dynamic agreement for one student geometry: the plan's gradient stats
/// must match the symbolic trace and a real executed forward, and planned
/// predict must be bitwise identical to dynamic predict.
pub fn check_dynamic_agreement(
    cfg: &TimeKdConfig,
    label: &str,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let (_ctx, forecast) = match trace_student_forecast(cfg, input_len, horizon, num_vars) {
        Ok(t) => t,
        Err(e) => return vec![finding("plan-compile", label, format!("trace failed: {e}"))],
    };
    let plan = match Plan::compile(&forecast, &student_plan_spec()) {
        Ok(p) => p,
        Err(e) => return vec![finding("plan-compile", label, e.message)],
    };

    let mut rng = seeded_rng(0xD1CE);
    let student = Student::new(cfg, input_len, horizon, num_vars, &mut rng);
    let x = Tensor::randn([input_len, num_vars], 1.0, &mut rng);
    let audit = GraphAudit::run(&student.forward(&x).forecast);
    let dy = &audit.stats;
    let sym = graph_stats(&forecast);
    let from_plan = plan_grad_stats(&plan);
    let sym_t = (sym.nodes, sym.edges, sym.leaves, sym.params, sym.max_depth);
    let dy_t = (dy.nodes, dy.edges, dy.leaves, dy.params, dy.max_depth);
    if from_plan != sym_t || sym_t != dy_t {
        out.push(finding(
            "graph-diff",
            label,
            format!(
                "gradient subgraph disagreement (nodes, edges, leaves, params, depth): \
                 plan {from_plan:?}, symbolic {sym_t:?}, dynamic {dy_t:?}"
            ),
        ));
    }

    match PlannedStudent::new(&student, cfg) {
        Ok(mut planned) => {
            let dynamic = student.predict(&x).to_vec();
            let via_plan = planned.predict(&x).to_vec();
            if via_plan != dynamic {
                let diverging = via_plan
                    .iter()
                    .zip(&dynamic)
                    .filter(|(a, b)| a != b)
                    .count();
                out.push(finding(
                    "exec-divergence",
                    label,
                    format!(
                        "planned predict diverges from dynamic predict on {diverging}/{} \
                         elements",
                        dynamic.len()
                    ),
                ));
            }
        }
        Err(e) => out.push(finding("plan-compile", label, e.message)),
    }
    out
}

/// Training agreement for one student geometry: compile the training plan
/// and, when the structural backward chain is clean (chain semantics —
/// divergence is the last pass), require bitwise agreement with dynamic
/// training.
pub fn check_train_agreement(
    cfg: &TimeKdConfig,
    label: &str,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
) -> Vec<Finding> {
    let (_ctx, loss) = match trace_student_loss(cfg, input_len, horizon, num_vars) {
        Ok(t) => t,
        Err(e) => return vec![finding("plan-compile", label, format!("trace failed: {e}"))],
    };
    let plan = match Plan::compile_training(
        &loss,
        &student_plan_spec(),
        &student_train_spec(verification_optimizer()),
    ) {
        Ok(p) => p,
        Err(e) => return vec![finding("plan-compile", label, e.message)],
    };
    if !verify_backward_chain(&plan, label).is_empty() {
        // The structural chain already reported at config level; running a
        // provably broken schedule would only produce noise.
        return Vec::new();
    }
    check_train_divergence(&plan, cfg, label, input_len, horizon, num_vars)
}

/// Aggregate result of a `--plan` run.
#[derive(Debug, Default)]
pub struct PlanReport {
    /// Configurations whose plans were statically verified.
    pub configs_checked: usize,
    /// Distinct student geometries cross-checked against dynamic execution.
    pub geometries_executed: usize,
    /// All findings across all passes and configurations.
    pub findings: Vec<Finding>,
    /// Invariants proven (only meaningful when clean).
    pub proofs: Vec<String>,
}

impl PlanReport {
    /// True when no pass produced a finding.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Compiles and verifies the student plan for every configuration in the
/// verification matrix (paper default geometry), then cross-checks each
/// distinct student geometry against real dynamic execution.
pub fn verify_plans() -> PlanReport {
    let (input_len, horizon, num_vars) = (96, 24, 7);
    let mut report = PlanReport::default();
    // The student is blind to the LM/prompt axes of the matrix, so dynamic
    // execution only needs one run per distinct (dim, heads, layers, ffn).
    let mut executed: HashSet<(usize, usize, usize, usize)> = HashSet::new();
    for (cfg, label) in config_matrix() {
        report.configs_checked += 1;
        report.findings.extend(verify_plan_config(
            &cfg, &label, input_len, horizon, num_vars,
        ));
        let key = (cfg.dim, cfg.num_heads, cfg.num_layers, cfg.ffn_hidden);
        if executed.insert(key) {
            report.geometries_executed += 1;
            report.findings.extend(check_dynamic_agreement(
                &cfg, &label, input_len, horizon, num_vars,
            ));
            report.findings.extend(check_train_agreement(
                &cfg, &label, input_len, horizon, num_vars,
            ));
        }
    }
    if report.is_clean() {
        let n = report.configs_checked;
        let g = report.geometries_executed;
        report.proofs = vec![
            format!("no two live values share an arena slot ({n}/{n} configs)"),
            format!("every operand is defined before use in the schedule ({n}/{n} configs)"),
            format!("the declared arena length equals the liveness bound ({n}/{n} configs)"),
            format!(
                "the plan diffs clean against the symbolic graph, and its gradient \
                 subgraph matches symbolic and dynamic accounting ({n}/{n} configs)"
            ),
            format!(
                "planned predict is bitwise identical to dynamic predict ({g}/{g} \
                 student geometries)"
            ),
            format!(
                "every reachable trainable parameter receives exactly one accumulated \
                 gradient and one fused update; frozen parameters receive none \
                 ({n}/{n} configs)"
            ),
            format!(
                "the reverse schedule writes every gradient before any consumer, Init \
                 before Accum ({n}/{n} configs)"
            ),
            format!(
                "no saved activation's slot is reused before its last backward reader \
                 on the combined timeline ({n}/{n} configs)"
            ),
            format!(
                "planned training steps are bitwise identical to dynamic Student \
                 training ({g}/{g} student geometries)"
            ),
            format!(
                "every trained gradient is reduced into lane 0 exactly once per extra \
                 lane, in the pinned window order (B=4, {n}/{n} configs)"
            ),
            format!(
                "per-lane gradient arenas are disjoint: the lane stride covers a full \
                 arena ({n}/{n} configs)"
            ),
        ];
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd::{compile_student_plan, compile_student_training_plan};
    use timekd_tensor::PlanFault;

    fn tiny_cfg() -> TimeKdConfig {
        TimeKdConfig {
            dim: 16,
            num_heads: 2,
            ffn_hidden: 32,
            ..Default::default()
        }
    }

    fn tiny_plan() -> Plan {
        compile_student_plan(&tiny_cfg(), 24, 8, 3).unwrap()
    }

    fn tiny_train_plan() -> Plan {
        compile_student_training_plan(&tiny_cfg(), 24, 8, 3, verification_optimizer()).unwrap()
    }

    fn all_static_passes(plan: &Plan) -> Vec<Finding> {
        let mut out = check_slot_interference(plan, "t");
        out.extend(check_topo_validity(plan, "t"));
        out.extend(check_arena_bound(plan, "t"));
        out
    }

    #[test]
    fn clean_plan_passes_all_passes() {
        let cfg = tiny_cfg();
        let fs = verify_plan_config(&cfg, "tiny", 24, 8, 3);
        assert!(fs.is_empty(), "{fs:?}");
        let fs = check_dynamic_agreement(&cfg, "tiny", 24, 8, 3);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn overlap_fault_trips_slot_overlap() {
        let mut plan = tiny_plan();
        plan.inject_fault(PlanFault::OverlapSlots);
        let fs = check_slot_interference(&plan, "t");
        assert!(
            fs.iter().any(|f| f.kind == "slot-overlap"),
            "expected a slot-overlap finding, got {fs:?}"
        );
    }

    #[test]
    fn swap_fault_trips_use_before_def() {
        let mut plan = tiny_plan();
        plan.inject_fault(PlanFault::SwapSchedule);
        let fs = check_topo_validity(&plan, "t");
        assert!(
            fs.iter().any(|f| f.kind == "use-before-def"),
            "expected a use-before-def finding, got {fs:?}"
        );
    }

    #[test]
    fn shrink_fault_trips_arena_bound() {
        let mut plan = tiny_plan();
        plan.inject_fault(PlanFault::ShrinkArena);
        let fs = check_arena_bound(&plan, "t");
        assert!(
            fs.iter().any(|f| f.kind == "arena-bound-mismatch"),
            "expected an arena-bound-mismatch finding, got {fs:?}"
        );
    }

    #[test]
    fn drop_edge_fault_trips_graph_diff() {
        let cfg = tiny_cfg();
        let (_ctx, forecast) = trace_student_forecast(&cfg, 24, 8, 3).unwrap();
        let mut plan = Plan::compile(&forecast, &student_plan_spec()).unwrap();
        plan.inject_fault(PlanFault::DropEdge);
        let fs = check_graph_diff(&plan, &forecast, "t");
        assert!(
            fs.iter().any(|f| f.kind == "graph-diff"),
            "expected a graph-diff finding, got {fs:?}"
        );
    }

    #[test]
    fn faults_do_not_leak_into_other_passes_cleanliness() {
        // Each fault must be caught by its own pass — the clean plan must
        // stay clean under every pass so the named diagnostics are trusted.
        let plan = tiny_plan();
        assert!(all_static_passes(&plan).is_empty());
    }

    #[test]
    fn clean_training_plan_passes_backward_chain_and_divergence() {
        let plan = tiny_train_plan();
        assert!(plan.is_training());
        let fs = verify_backward_chain(&plan, "t");
        assert!(fs.is_empty(), "{fs:?}");
        let fs = check_train_agreement(&tiny_cfg(), "t", 24, 8, 3);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn forward_only_plans_still_verify_unchanged() {
        // Regression: forward plans carry empty backward schedules, the
        // forward passes stay oblivious to training support, and only the
        // completeness pass (by design) rejects the missing reverse
        // schedule when asked.
        let plan = tiny_plan();
        assert!(!plan.is_training());
        assert!(plan.bwd_steps().is_empty() && plan.update_steps().is_empty());
        assert!(all_static_passes(&plan).is_empty());
        let fs = check_adjoint_completeness(&plan, "t");
        assert!(fs.iter().all(|f| f.kind == "adjoint-incomplete") && !fs.is_empty());
    }

    #[test]
    fn drop_adjoint_fault_trips_adjoint_completeness() {
        let mut plan = tiny_train_plan();
        plan.inject_fault(PlanFault::DropAdjoint);
        let fs = check_adjoint_completeness(&plan, "t");
        assert!(
            fs.iter().any(|f| f.kind == "adjoint-incomplete"),
            "expected an adjoint-incomplete finding, got {fs:?}"
        );
    }

    #[test]
    fn reorder_backward_fault_trips_reverse_topo() {
        let mut plan = tiny_train_plan();
        plan.inject_fault(PlanFault::ReorderBackward);
        assert!(check_adjoint_completeness(&plan, "t").is_empty());
        let fs = check_reverse_topo(&plan, "t");
        assert!(
            fs.iter().any(|f| f.kind == "reverse-topo"),
            "expected a reverse-topo finding, got {fs:?}"
        );
    }

    #[test]
    fn clobber_saved_activation_fault_trips_saved_liveness() {
        let mut plan = tiny_train_plan();
        plan.inject_fault(PlanFault::ClobberSavedActivation);
        assert!(check_adjoint_completeness(&plan, "t").is_empty());
        assert!(check_reverse_topo(&plan, "t").is_empty());
        let fs = check_saved_liveness(&plan, "t");
        assert!(
            fs.iter().any(|f| f.kind == "saved-liveness"),
            "expected a saved-liveness finding, got {fs:?}"
        );
    }

    #[test]
    fn backward_fault_isolation_matrix() {
        // Each backward fault is caught by exactly its owning pass in the
        // chain, and by no forward pass.
        let cfg = tiny_cfg();
        let (_ctx, loss) = trace_student_loss(&cfg, 24, 8, 3).unwrap();
        let owners = [
            (PlanFault::DropAdjoint, "adjoint-incomplete"),
            (PlanFault::ReorderBackward, "reverse-topo"),
            (PlanFault::ClobberSavedActivation, "saved-liveness"),
        ];
        for (fault, owner) in owners {
            let mut plan = Plan::compile_training(
                &loss,
                &student_plan_spec(),
                &student_train_spec(verification_optimizer()),
            )
            .unwrap();
            plan.inject_fault(fault);
            let mut fwd = all_static_passes(&plan);
            fwd.extend(check_graph_diff(&plan, &loss, "t"));
            assert!(
                fwd.is_empty(),
                "{fault:?} leaked into a forward pass: {fwd:?}"
            );
            let fs = verify_backward_chain(&plan, "t");
            assert!(!fs.is_empty(), "{fault:?} was not caught by the chain");
            assert!(
                fs.iter().all(|f| f.kind == owner),
                "{fault:?} expected only `{owner}` findings, got {fs:?}"
            );
        }
    }

    fn tiny_batched_plan(batch: usize) -> Plan {
        let (_ctx, loss) = trace_student_loss(&tiny_cfg(), 24, 8, 3).unwrap();
        Plan::compile_training_batched(
            &loss,
            &student_plan_spec(),
            &student_train_spec(verification_optimizer()),
            batch,
        )
        .unwrap()
    }

    #[test]
    fn clean_batched_plans_pass_batch_passes() {
        for batch in [1, 4] {
            let plan = tiny_batched_plan(batch);
            let mut fs = check_batch_reduction(&plan, "t");
            fs.extend(check_lane_disjointness(&plan, "t"));
            assert!(fs.is_empty(), "B={batch}: {fs:?}");
        }
        // Per-window plans must be vacuously clean: no batch metadata.
        let plan = tiny_train_plan();
        let mut fs = check_batch_reduction(&plan, "t");
        fs.extend(check_lane_disjointness(&plan, "t"));
        assert!(fs.is_empty(), "per-window: {fs:?}");
    }

    #[test]
    fn batch_fault_isolation_matrix() {
        // Each batch fault is caught by exactly its owning pass, and by no
        // forward, backward, or sibling batch pass.
        let cfg = tiny_cfg();
        let (_ctx, loss) = trace_student_loss(&cfg, 24, 8, 3).unwrap();
        let owners = [
            (PlanFault::DropReduceStep, "batch-reduction"),
            (PlanFault::OverlapLaneArenas, "lane-disjoint"),
        ];
        for (fault, owner) in owners {
            let mut plan = Plan::compile_training_batched(
                &loss,
                &student_plan_spec(),
                &student_train_spec(verification_optimizer()),
                4,
            )
            .unwrap();
            plan.inject_fault(fault);
            let mut other = all_static_passes(&plan);
            other.extend(check_graph_diff(&plan, &loss, "t"));
            other.extend(verify_backward_chain(&plan, "t"));
            assert!(
                other.is_empty(),
                "{fault:?} leaked into a non-batch pass: {other:?}"
            );
            let mut fs = check_batch_reduction(&plan, "t");
            fs.extend(check_lane_disjointness(&plan, "t"));
            assert!(!fs.is_empty(), "{fault:?} was not caught");
            assert!(
                fs.iter().all(|f| f.kind == owner),
                "{fault:?} expected only `{owner}` findings, got {fs:?}"
            );
        }
    }

    #[test]
    fn update_frozen_param_fault_caught_only_by_train_divergence() {
        // The fault yields a perfectly self-consistent plan (a frozen
        // parameter legitimately receives no update), so every static pass
        // must stay clean; only real execution against the dynamic
        // reference can expose that the wrong parameter was frozen.
        let cfg = tiny_cfg();
        let (_ctx, loss) = trace_student_loss(&cfg, 24, 8, 3).unwrap();
        let mut plan = Plan::compile_training(
            &loss,
            &student_plan_spec(),
            &student_train_spec(verification_optimizer()),
        )
        .unwrap();
        plan.inject_fault(PlanFault::UpdateFrozenParam);
        let mut fwd = all_static_passes(&plan);
        fwd.extend(check_graph_diff(&plan, &loss, "t"));
        assert!(fwd.is_empty(), "{fwd:?}");
        let fs = verify_backward_chain(&plan, "t");
        assert!(
            fs.is_empty(),
            "static backward passes must stay clean: {fs:?}"
        );
        let fs = check_train_divergence(&plan, &cfg, "t", 24, 8, 3);
        assert!(
            fs.iter().any(|f| f.kind == "train-divergence"),
            "expected a train-divergence finding, got {fs:?}"
        );
    }
}
