//! `cargo run -p timekd-check` — the workspace's static-analysis
//! entrypoint. Runs both layers:
//!
//! 1. the source lint pass over `crates/*/src` (rules + allowlist in
//!    `timekd_check`), and
//! 2. dynamic autograd-graph sanity checks: a [`GraphAudit`] over a real
//!    TimeKD student loss graph and the frozen-LM parameter invariant
//!    after a genuine backward pass.
//!
//! Exits non-zero if any layer finds a problem, so CI can gate on it.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::rc::Rc;

use timekd::{Forecaster, TimeKd, TimeKdConfig};
use timekd_check::{scan_workspace, Allowlist};
use timekd_data::{DatasetKind, Split, SplitDataset};
use timekd_lm::{pretrain_lm, FrozenLm, LmConfig, LmSize, PretrainConfig, PromptTokenizer};
use timekd_nn::smooth_l1_loss;
use timekd_tensor::GraphAudit;

fn repo_root() -> PathBuf {
    // crates/check/ -> repo root is two levels up from this manifest.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("manifest dir has two ancestors")
        .to_path_buf()
}

fn run_lints(root: &Path) -> Result<(), String> {
    let allow = Allowlist::load(&root.join("lint-allow.txt"));
    println!(
        "lint: scanning crates/*/src and src/ ({} allowlist entries)",
        allow.len()
    );
    let violations = scan_workspace(root, &allow).map_err(|e| format!("lint: scan failed: {e}"))?;
    if violations.is_empty() {
        println!("lint: clean");
        return Ok(());
    }
    for v in &violations {
        println!("lint: {v}");
    }
    Err(format!("lint: {} violation(s)", violations.len()))
}

#[allow(clippy::field_reassign_with_default)]
fn tiny_model() -> (TimeKd, SplitDataset) {
    let mut cfg = TimeKdConfig::default();
    cfg.dim = 16;
    cfg.ffn_hidden = 32;
    cfg.num_heads = 2;
    cfg.lm = LmConfig::for_size(LmSize::Small);
    cfg.prompt.max_history = 4;
    cfg.prompt.max_future = 4;
    let ds = SplitDataset::new(DatasetKind::EttH1, 500, 7, 24, 8);
    let tokenizer = Rc::new(PromptTokenizer::new());
    let (lm, _) = pretrain_lm(
        &tokenizer,
        cfg.lm,
        PretrainConfig {
            steps: 3,
            ..Default::default()
        },
    );
    let model = TimeKd::with_frozen_lm(
        Rc::new(FrozenLm::new(lm)),
        tokenizer,
        cfg,
        24,
        8,
        ds.num_vars(),
    );
    (model, ds)
}

fn run_graph_checks() -> Result<(), String> {
    let (mut model, ds) = tiny_model();
    let windows = ds.windows(Split::Train, 32);

    // Audit the student's real loss graph before any training.
    let w = &windows[0];
    let out = model.student().forward(&w.x);
    let loss = smooth_l1_loss(&out.forecast, &w.y);
    let audit = GraphAudit::run(&loss);
    print!("{}", audit.report());
    if !audit.is_clean() {
        return Err(format!("graph: {} issue(s)", audit.issues.len()));
    }

    // One genuine training epoch, then the frozen-LM invariant (it also
    // runs inside the loop after every backward; this is the final gate).
    model.train_epoch(&windows[..2.min(windows.len())]);
    model.assert_frozen_lm_invariant();
    println!("graph: frozen-LM invariant holds after training");

    // Audit again after training: backward must leave no interior grads.
    let out = model.student().forward(&w.x);
    let loss = smooth_l1_loss(&out.forecast, &w.y);
    loss.backward();
    let audit = GraphAudit::run(&loss);
    if !audit.is_clean() {
        print!("{}", audit.report());
        return Err("graph: post-backward audit failed".to_string());
    }
    println!("graph: post-backward audit clean");
    Ok(())
}

fn main() -> ExitCode {
    let root = repo_root();
    let mut failed = false;
    for result in [run_lints(&root), run_graph_checks()] {
        if let Err(msg) = result {
            eprintln!("FAIL {msg}");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("timekd-check: all checks passed");
        ExitCode::SUCCESS
    }
}
