//! `cargo run -p timekd-check` — the workspace's static-analysis
//! entrypoint. Three layers, selectable by flag (a bare run executes all):
//!
//! - `--lints`: the source lint pass over `crates/*/src` (rules +
//!   allowlist in `timekd_check`), stale-allowlist detection, and a check
//!   that no `target/` build artifact is tracked by git;
//! - `--verify`: the symbolic verifier (`timekd_check::verify`) — static
//!   shape inference and gradient-flow reachability over the traced
//!   TimeKD pipeline for the whole configuration matrix;
//! - `--graph`: dynamic autograd-graph sanity checks — a [`GraphAudit`]
//!   over a real student loss graph, the frozen-LM invariant after a
//!   genuine backward pass, and a symbolic-vs-dynamic cross-check that the
//!   traced graph agrees with the executed one on node/edge counts;
//! - `--plan`: the execution-plan verifier (`timekd_check::plan`) —
//!   independently re-derives liveness over each compiled student plan and
//!   proves slot interference soundness, def-before-use, the arena bound,
//!   and a clean diff against the symbolic graph and dynamic execution,
//!   for the whole configuration matrix. Training plans additionally get
//!   the chained backward passes: adjoint completeness (frozen parameters
//!   provably receive no update), reverse-topological validity,
//!   saved-activation liveness over the combined forward+backward
//!   timeline, and a bitwise plan-vs-dynamic training diff. Batched
//!   training plans get two further static passes: batch-reduction
//!   completeness (every trained gradient folded into lane 0 exactly
//!   once per extra window, in the pinned window order) and per-lane
//!   arena disjointness.
//!
//! Modifiers: `--json` renders the verifier report as stable, diffable
//! JSON; `--strict` turns stale-allowlist warnings into failures.
//!
//! Exits non-zero if any selected layer finds a problem, so CI can gate
//! on it.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};
use std::rc::Rc;

use timekd::{trace_student_loss, Forecaster, TimeKd, TimeKdConfig};
use timekd_check::plan::verify_plans;
use timekd_check::verify::verify_all;
use timekd_check::{scan_workspace_with_stale, Allowlist};
use timekd_data::{DatasetKind, Split, SplitDataset};
use timekd_lm::{pretrain_lm, FrozenLm, LmConfig, LmSize, PretrainConfig, PromptTokenizer};
use timekd_nn::smooth_l1_loss;
use timekd_tensor::{graph_stats, GraphAudit};

fn repo_root() -> PathBuf {
    // crates/check/ -> repo root is two levels up from this manifest.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("manifest dir has two ancestors")
        .to_path_buf()
}

#[derive(Clone, Copy, Debug, Default)]
struct Options {
    lints: bool,
    graph: bool,
    verify: bool,
    plan: bool,
    json: bool,
    strict: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    for a in args {
        match a.as_str() {
            "--lints" => opts.lints = true,
            "--graph" => opts.graph = true,
            "--verify" => opts.verify = true,
            "--plan" => opts.plan = true,
            "--json" => opts.json = true,
            "--strict" => opts.strict = true,
            other => {
                return Err(format!(
                    "unknown flag `{other}`\nusage: timekd-check [--lints] [--graph] \
                     [--verify] [--plan] [--json] [--strict]\n(no selection flag runs all layers)"
                ));
            }
        }
    }
    if !opts.lints && !opts.graph && !opts.verify && !opts.plan {
        opts.lints = true;
        opts.graph = true;
        opts.verify = true;
        opts.plan = true;
    }
    Ok(opts)
}

/// Fails if git tracks anything under a `target/` directory — build
/// artifacts must stay out of the repository (`.gitignore` covers them).
fn check_tracked_target(root: &Path) -> Result<(), String> {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["ls-files", "--", "target/", "crates/*/target/"])
        .output();
    let out = match out {
        Ok(o) if o.status.success() => o,
        // Not a git checkout (e.g. an exported tarball) — nothing to check.
        _ => {
            println!("lint: tracked-target check skipped (git unavailable)");
            return Ok(());
        }
    };
    let listed = String::from_utf8_lossy(&out.stdout);
    let tracked: Vec<&str> = listed.lines().collect();
    if tracked.is_empty() {
        println!("lint: no target/ artifacts tracked");
        return Ok(());
    }
    for p in tracked.iter().take(5) {
        println!("lint: tracked build artifact: {p}");
    }
    Err(format!(
        "lint: {} build artifact(s) under target/ are tracked by git — \
         run `git rm -r --cached target/`",
        tracked.len()
    ))
}

fn run_lints(root: &Path, strict: bool) -> Result<(), String> {
    let allow = Allowlist::load(&root.join("lint-allow.txt"));
    println!(
        "lint: scanning crates/*/src and src/ ({} allowlist entries)",
        allow.len()
    );
    let outcome =
        scan_workspace_with_stale(root, &allow).map_err(|e| format!("lint: scan failed: {e}"))?;
    for entry in &outcome.stale_allowlist {
        println!("lint: stale allowlist entry (matches no current violation): {entry}");
    }
    let mut failures = Vec::new();
    if !outcome.violations.is_empty() {
        for v in &outcome.violations {
            println!("lint: {v}");
        }
        failures.push(format!("{} violation(s)", outcome.violations.len()));
    }
    if !outcome.stale_allowlist.is_empty() && strict {
        failures.push(format!(
            "{} stale allowlist entr(ies) under --strict",
            outcome.stale_allowlist.len()
        ));
    }
    if let Err(e) = check_tracked_target(root) {
        failures.push(e);
    }
    if failures.is_empty() {
        println!("lint: clean");
        Ok(())
    } else {
        Err(format!("lint: {}", failures.join("; ")))
    }
}

fn run_verify(json: bool) -> Result<(), String> {
    let report = verify_all();
    if json {
        print!("{}", report.to_json());
    } else {
        println!(
            "verify: traced {} configurations (LM sizes x heads x prompt budgets x ablations)",
            report.configs_checked
        );
        for f in &report.findings {
            print!("verify: {f}");
        }
        for p in &report.proofs {
            println!("verify: proved {p}");
        }
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("verify: {} finding(s)", report.findings.len()))
    }
}

fn run_plan_checks() -> Result<(), String> {
    let report = verify_plans();
    println!(
        "plan: verified {} compiled forward+training plans ({} geometries executed against \
         the dynamic engine)",
        report.configs_checked, report.geometries_executed
    );
    for f in &report.findings {
        print!("plan: {f}");
    }
    for p in &report.proofs {
        println!("plan: proved {p}");
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("plan: {} finding(s)", report.findings.len()))
    }
}

#[allow(clippy::field_reassign_with_default)]
fn tiny_model() -> (TimeKd, SplitDataset) {
    let mut cfg = TimeKdConfig::default();
    cfg.dim = 16;
    cfg.ffn_hidden = 32;
    cfg.num_heads = 2;
    cfg.lm = LmConfig::for_size(LmSize::Small);
    cfg.prompt.max_history = 4;
    cfg.prompt.max_future = 4;
    let ds = SplitDataset::new(DatasetKind::EttH1, 500, 7, 24, 8);
    let tokenizer = Rc::new(PromptTokenizer::new());
    let (lm, _) = pretrain_lm(
        &tokenizer,
        cfg.lm,
        PretrainConfig {
            steps: 3,
            ..Default::default()
        },
    );
    let model = TimeKd::with_frozen_lm(
        Rc::new(FrozenLm::new(lm)),
        tokenizer,
        cfg,
        24,
        8,
        ds.num_vars(),
    );
    (model, ds)
}

fn run_graph_checks() -> Result<(), String> {
    let (mut model, ds) = tiny_model();
    let windows = ds.windows(Split::Train, 32);

    // Audit the student's real loss graph before any training.
    let w = &windows[0];
    let out = model.student().forward(&w.x);
    let loss = smooth_l1_loss(&out.forecast, &w.y);
    let audit = GraphAudit::run(&loss);
    print!("{}", audit.report());
    if !audit.is_clean() {
        return Err(format!("graph: {} issue(s)", audit.issues.len()));
    }

    // Cross-check: the symbolic trace of the same student loss must agree
    // with the executed graph on every structural count. If the tracer and
    // the kernels ever drift apart, this is the alarm.
    let (_ctx, sym_loss) = trace_student_loss(model.config(), 24, 8, ds.num_vars())
        .map_err(|e| format!("graph: symbolic trace failed: {e}"))?;
    let sym = graph_stats(&sym_loss);
    let dy = &audit.stats;
    if (sym.nodes, sym.edges, sym.leaves, sym.params, sym.max_depth)
        != (dy.nodes, dy.edges, dy.leaves, dy.params, dy.max_depth)
    {
        return Err(format!(
            "graph: symbolic/dynamic disagreement — symbolic nodes={} edges={} leaves={} \
             params={} depth={}, dynamic nodes={} edges={} leaves={} params={} depth={}",
            sym.nodes,
            sym.edges,
            sym.leaves,
            sym.params,
            sym.max_depth,
            dy.nodes,
            dy.edges,
            dy.leaves,
            dy.params,
            dy.max_depth
        ));
    }
    println!(
        "graph: symbolic trace agrees with dynamic graph (nodes={} edges={} depth={})",
        sym.nodes, sym.edges, sym.max_depth
    );

    // One genuine training epoch, then the frozen-LM invariant (it also
    // runs inside the loop after every backward; this is the final gate).
    model.train_epoch(&windows[..2.min(windows.len())]);
    model.assert_frozen_lm_invariant();
    println!("graph: frozen-LM invariant holds after training");

    // Audit again after training: backward must leave no interior grads.
    let out = model.student().forward(&w.x);
    let loss = smooth_l1_loss(&out.forecast, &w.y);
    loss.backward();
    let audit = GraphAudit::run(&loss);
    if !audit.is_clean() {
        print!("{}", audit.report());
        return Err("graph: post-backward audit failed".to_string());
    }
    println!("graph: post-backward audit clean");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let root = repo_root();
    let mut results = Vec::new();
    if opts.lints {
        results.push(run_lints(&root, opts.strict));
    }
    if opts.verify {
        results.push(run_verify(opts.json));
    }
    if opts.graph {
        results.push(run_graph_checks());
    }
    if opts.plan {
        results.push(run_plan_checks());
    }
    let mut failed = false;
    for result in results {
        if let Err(msg) = result {
            eprintln!("FAIL {msg}");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else if !opts.json {
        println!("timekd-check: all checks passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::SUCCESS
    }
}
