//! Fault-injection tests for the source linter: each rule must trip on a
//! fixture source that violates it, and the allowlist must be able to
//! suppress a violation. Fixtures live in `tests/fixtures/` and are never
//! compiled — they are scanned as text, exactly like `scan_workspace`
//! scans the real crates.

use std::path::Path;

use timekd_check::{scan_source, Allowlist, Violation};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

fn rules_of(violations: &[Violation]) -> Vec<&str> {
    violations.iter().map(|v| v.rule).collect()
}

#[test]
fn unwrap_in_kernel_trips() {
    // The kernel rules are scoped to tensor/src/ops/, so label the fixture
    // as if it lived there.
    let vs = scan_source(
        "crates/tensor/src/ops/bad_kernel.rs",
        &fixture("bad_kernel.rs"),
    );
    let rules = rules_of(&vs);
    // .unwrap() on line 8 and .expect(...) on line 9.
    assert_eq!(
        rules
            .iter()
            .filter(|r| **r == "no-unwrap-in-kernels")
            .count(),
        2,
        "expected both unwrap and expect to trip: {vs:?}"
    );
    let unwrap_v = vs.iter().find(|v| v.text.contains(".unwrap()")).unwrap();
    assert_eq!(
        unwrap_v.line, 8,
        "line numbers must point at the offence: {unwrap_v}"
    );
}

#[test]
fn instant_in_kernel_trips() {
    let vs = scan_source(
        "crates/tensor/src/ops/bad_kernel.rs",
        &fixture("bad_kernel.rs"),
    );
    assert!(
        rules_of(&vs).contains(&"no-instant-in-kernels"),
        "Instant::now in a kernel must trip: {vs:?}"
    );
}

#[test]
fn kernel_rules_do_not_trip_outside_ops() {
    // Same source, but labelled outside tensor/src/ops/: the kernel-scoped
    // rules must stay quiet (the fixture has no forward/predict fns).
    let vs = scan_source("crates/data/src/bad_kernel.rs", &fixture("bad_kernel.rs"));
    assert!(
        vs.is_empty(),
        "kernel rules are scoped to tensor ops: {vs:?}"
    );
}

#[test]
fn unwrap_in_test_module_is_exempt() {
    let vs = scan_source(
        "crates/tensor/src/ops/bad_kernel.rs",
        &fixture("bad_kernel.rs"),
    );
    // The fixture's #[cfg(test)] module uses unwrap() on line 21; no
    // violation may point there.
    assert!(
        vs.iter().all(|v| v.line < 15),
        "violations inside #[cfg(test)] must be exempt: {vs:?}"
    );
}

#[test]
fn tensor_clone_in_forward_trips() {
    let vs = scan_source("crates/core/src/bad_forward.rs", &fixture("bad_forward.rs"));
    let clones: Vec<_> = vs
        .iter()
        .filter(|v| v.rule == "no-clone-in-forward")
        .collect();
    // .to_vec() and .data().clone() inside fn forward; the .to_vec() in
    // the non-forward helper must not trip.
    assert_eq!(clones.len(), 2, "both copies in forward must trip: {vs:?}");
    assert!(
        clones.iter().all(|v| v.line <= 8),
        "the helper fn is out of scope: {clones:?}"
    );
}

#[test]
fn inference_without_no_grad_trips() {
    let vs = scan_source(
        "crates/core/src/bad_inference.rs",
        &fixture("bad_inference.rs"),
    );
    let grads: Vec<_> = vs
        .iter()
        .filter(|v| v.rule == "no-grad-in-inference")
        .collect();
    // BadModel::predict and BadModel::evaluate both lack no_grad;
    // GoodModel::predict wraps its body and must not trip.
    assert_eq!(
        grads.len(),
        2,
        "both graph-building entrypoints must trip: {vs:?}"
    );
    assert!(
        grads.iter().all(|v| v.line < 19),
        "a no_grad-wrapped predict must pass: {grads:?}"
    );
}

#[test]
fn allowlist_suppresses_matching_violation() {
    let source = fixture("bad_kernel.rs");
    let label = "crates/tensor/src/ops/bad_kernel.rs";
    let all = scan_source(label, &source);
    assert!(!all.is_empty());

    let allow = Allowlist::parse(
        "# narrow exception for the broadcast unwrap\n\
         no-unwrap-in-kernels bad_kernel.rs broadcast_with\n",
    );
    assert_eq!(allow.len(), 1);
    let kept: Vec<_> = all.iter().filter(|v| !allow.allows(v)).collect();
    assert_eq!(
        kept.len(),
        all.len() - 1,
        "exactly the broadcast unwrap is suppressed: {kept:?}"
    );
    assert!(kept.iter().all(|v| !v.text.contains("broadcast_with")));

    // A `*` rule with a broad line fragment suppresses across rules.
    let wild = Allowlist::parse("* bad_kernel.rs (\n");
    assert!(
        all.iter().all(|v| wild.allows(v)),
        "wildcard entry suppresses all"
    );
}

#[test]
fn allowlist_ignores_comments_and_blank_lines() {
    let allow = Allowlist::parse(
        "\n   \n# a full-line comment\n\t\n  # indented comment\n\
         no-clone-in-forward a.rs .to_vec()\n\n# trailing\n",
    );
    assert_eq!(allow.len(), 1, "only the real entry survives parsing");
}

#[test]
fn rule_text_inside_string_literals_does_not_trip() {
    // A kernel whose *error message* mentions .unwrap() / Instant::now —
    // the scanner strips string literals before matching, so none of the
    // rules may fire on the quoted text.
    let src = "\
fn kernel_add(a: &[f32]) -> f32 {
    let msg = \"never call .unwrap() or .expect( here; Instant::now is banned\";
    assert!(!msg.is_empty(), \"x.data().clone() and .to_vec() are quoted\");
    a[0]
}
";
    let vs = scan_source("crates/tensor/src/ops/strings.rs", src);
    assert!(vs.is_empty(), "quoted rule text must not trip: {vs:?}");
}

#[test]
fn stale_allowlist_entries_are_reported() {
    use timekd_check::scan_workspace_with_stale;
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");

    // An entry that can never match (bogus path) must come back stale
    // without creating violations.
    let allow = Allowlist::parse("no-unwrap-in-kernels no_such_file.rs no_such_fragment\n");
    let outcome = scan_workspace_with_stale(&root, &allow).expect("scan");
    assert!(
        outcome.violations.is_empty(),
        "workspace must stay lint-clean: {:?}",
        outcome.violations
    );
    assert_eq!(outcome.stale_allowlist.len(), 1, "{outcome:?}");
    assert!(
        outcome.stale_allowlist[0].contains("no_such_file.rs"),
        "stale report names the entry: {:?}",
        outcome.stale_allowlist
    );

    // With no entries there is nothing to go stale.
    let outcome = scan_workspace_with_stale(&root, &Allowlist::parse("")).expect("scan");
    assert!(outcome.stale_allowlist.is_empty());
}

#[test]
fn repo_allowlist_file_parses() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../lint-allow.txt");
    let allow = Allowlist::load(&path);
    // The checked-in file is documentation-only today; parsing must not
    // invent entries from comments.
    assert!(
        allow.is_empty(),
        "lint-allow.txt should have no live entries"
    );
}

#[test]
fn lock_in_worker_loop_trips() {
    let vs = scan_source("crates/tensor/src/ops/matmul.rs", &fixture("bad_worker.rs"));
    let locks: Vec<_> = vs
        .iter()
        .filter(|v| v.rule == "no-lock-in-worker")
        .collect();
    // `.lock(` in evil_row_block (line 6) and `.wait(` in drain_tasks
    // (line 15); nothing in setup_ranges or the test module.
    assert_eq!(locks.len(), 2, "{vs:?}");
    assert_eq!(locks[0].line, 6, "{locks:?}");
    assert_eq!(locks[1].line, 15, "{locks:?}");
}

#[test]
fn alloc_in_worker_loop_trips() {
    let vs = scan_source("crates/tensor/src/parallel.rs", &fixture("bad_worker.rs"));
    let allocs: Vec<_> = vs
        .iter()
        .filter(|v| v.rule == "no-alloc-in-worker")
        .collect();
    // Only the `vec![` on line 7 — the allocations in setup_ranges (not a
    // worker fn) and the test module are out of scope.
    assert_eq!(allocs.len(), 1, "{vs:?}");
    assert_eq!(allocs[0].line, 7, "{allocs:?}");
}

#[test]
fn println_in_worker_loop_trips() {
    let vs = scan_source("crates/tensor/src/ops/matmul.rs", &fixture("bad_worker.rs"));
    let prints: Vec<_> = vs
        .iter()
        .filter(|v| v.rule == "no-println-in-worker")
        .collect();
    // Only line 8 (inside evil_row_block); the println! in setup_ranges
    // and the test module must not trip.
    assert_eq!(prints.len(), 1, "{vs:?}");
    assert_eq!(prints[0].line, 8, "{prints:?}");
}

#[test]
fn worker_rules_do_not_trip_outside_worker_files() {
    // Same source labelled as a file outside the parallel kernel path:
    // worker-loop fns there are not subject to the rules.
    let vs = scan_source("crates/nn/src/bad_worker.rs", &fixture("bad_worker.rs"));
    assert!(
        vs.iter().all(|v| !v.rule.ends_with("-in-worker")),
        "worker rules are scoped to parallel.rs/matmul.rs: {vs:?}"
    );
}

#[test]
fn kernel_rules_cover_parallel_module() {
    // The no-unwrap/no-instant kernel rules extend to
    // tensor/src/parallel.rs (the pool shares the kernel hot path).
    let vs = scan_source("crates/tensor/src/parallel.rs", &fixture("bad_kernel.rs"));
    let rules = rules_of(&vs);
    assert!(
        rules.contains(&"no-unwrap-in-kernels"),
        "unwrap in parallel.rs must trip: {vs:?}"
    );
    assert!(
        rules.contains(&"no-instant-in-kernels"),
        "Instant::now in parallel.rs must trip: {vs:?}"
    );
}

#[test]
fn attention_kernel_rules_trip() {
    // ops/attention.rs is a kernel file: the unwrap/expect and
    // Instant::now bans apply file-wide.
    let vs = scan_source(
        "crates/tensor/src/ops/attention.rs",
        &fixture("bad_attention.rs"),
    );
    let unwraps: Vec<_> = vs
        .iter()
        .filter(|v| v.rule == "no-unwrap-in-kernels")
        .collect();
    // `.unwrap()` on line 9 (worker fn) and `.expect(` on line 22
    // (non-worker fn — the kernel rules are path-scoped, not fn-scoped).
    assert_eq!(unwraps.len(), 2, "{vs:?}");
    assert_eq!(unwraps[0].line, 9, "{unwraps:?}");
    assert_eq!(unwraps[1].line, 22, "{unwraps:?}");
    let instants: Vec<_> = vs
        .iter()
        .filter(|v| v.rule == "no-instant-in-kernels")
        .collect();
    assert_eq!(instants.len(), 1, "{vs:?}");
    assert_eq!(instants[0].line, 10, "{instants:?}");
}

#[test]
fn attention_worker_rules_trip() {
    // The worker-loop rules now cover ops/attention.rs `_block` fns: the
    // lock (line 6), the allocation (line 7) and the println (line 8)
    // inside attn_fwd_row_block each trip exactly once; the allocation and
    // println in plan_attention (not a worker fn) stay quiet.
    let vs = scan_source(
        "crates/tensor/src/ops/attention.rs",
        &fixture("bad_attention.rs"),
    );
    let of_rule = |rule: &str| -> Vec<usize> {
        vs.iter()
            .filter(|v| v.rule == rule)
            .map(|v| v.line)
            .collect()
    };
    assert_eq!(of_rule("no-lock-in-worker"), vec![6], "{vs:?}");
    assert_eq!(of_rule("no-alloc-in-worker"), vec![7], "{vs:?}");
    assert_eq!(of_rule("no-println-in-worker"), vec![8], "{vs:?}");
}

#[test]
fn attention_test_module_is_exempt() {
    let vs = scan_source(
        "crates/tensor/src/ops/attention.rs",
        &fixture("bad_attention.rs"),
    );
    assert!(
        vs.iter().all(|v| v.line < 26),
        "violations inside #[cfg(test)] must be exempt: {vs:?}"
    );
}

#[test]
fn attention_rules_do_not_trip_outside_kernel_files() {
    // Same source labelled outside the kernel/worker paths: no rule
    // applies (the fixture has no forward/predict fns).
    let vs = scan_source(
        "crates/nn/src/bad_attention.rs",
        &fixture("bad_attention.rs"),
    );
    assert!(
        vs.is_empty(),
        "kernel and worker rules are path-scoped: {vs:?}"
    );
}

#[test]
fn obs_hooks_in_worker_loop_trip() {
    let vs = scan_source("crates/tensor/src/parallel.rs", &fixture("bad_obs.rs"));
    let spans: Vec<usize> = vs
        .iter()
        .filter(|v| v.rule == "no-span-in-worker")
        .map(|v| v.line)
        .collect();
    // span + count_op inside traced_row_block (lines 6-7) and the aliased
    // `obs::span(` in drain_tasks (line 14). The same hooks in worker_loop
    // (the job boundary, not a worker fn) and the test module are legal,
    // as is the bare counter add in fast_path_block.
    assert_eq!(spans, vec![6, 7, 14], "{vs:?}");
    assert!(
        vs.iter()
            .all(|v| v.rule != "no-span-in-worker" || !v.text.contains(".add(")),
        "counter adds are a lone atomic and must stay legal: {vs:?}"
    );
}

#[test]
fn obs_rule_does_not_trip_outside_worker_files() {
    // Same source labelled outside the parallel kernel path: the rule is
    // scoped to worker files, and instrumented library code (nn, lm, core)
    // uses these hooks freely.
    let vs = scan_source("crates/nn/src/bad_obs.rs", &fixture("bad_obs.rs"));
    assert!(
        vs.iter().all(|v| v.rule != "no-span-in-worker"),
        "no-span-in-worker is scoped to worker files: {vs:?}"
    );
}

#[test]
fn real_parallel_module_passes_obs_rule() {
    // The actual pool instruments worker_loop and parallel_for (legal)
    // but never drain_tasks or a `*_block` fn — the shipped source must
    // stay clean under its own lint.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../tensor/src/parallel.rs");
    let source = std::fs::read_to_string(&path).expect("read parallel.rs");
    let vs = scan_source("crates/tensor/src/parallel.rs", &source);
    assert!(
        vs.iter().all(|v| v.rule != "no-span-in-worker"),
        "shipped pool violates its own obs lint: {vs:?}"
    );
}

#[test]
fn plan_loop_rules_trip_on_exact_lines() {
    // The *-in-plan-loop rules are scoped to `*_plan_loop` fns in
    // tensor/src/plan.rs: the vec! (line 6) and .push( (line 7) trip the
    // alloc rule, the .unwrap() (line 8) the unwrap rule, and the span
    // (line 9) the span rule. Nothing in build_plan (construction-time
    // code) or the test module may trip.
    let vs = scan_source("crates/tensor/src/plan.rs", &fixture("bad_plan.rs"));
    let of_rule = |rule: &str| -> Vec<usize> {
        vs.iter()
            .filter(|v| v.rule == rule)
            .map(|v| v.line)
            .collect()
    };
    assert_eq!(of_rule("no-alloc-in-plan-loop"), vec![6, 7], "{vs:?}");
    assert_eq!(of_rule("no-unwrap-in-plan-loop"), vec![8], "{vs:?}");
    assert_eq!(of_rule("no-span-in-plan-loop"), vec![9], "{vs:?}");
    assert!(
        vs.iter().all(|v| v.line < 15),
        "build_plan and the test module are out of scope: {vs:?}"
    );
}

#[test]
fn plan_loop_rules_do_not_trip_outside_plan_file() {
    // Same source labelled outside tensor/src/plan.rs: the plan rules are
    // path-scoped, like the worker rules.
    let vs = scan_source("crates/nn/src/bad_plan.rs", &fixture("bad_plan.rs"));
    assert!(
        vs.iter().all(|v| !v.rule.ends_with("-in-plan-loop")),
        "plan rules are scoped to tensor/src/plan.rs: {vs:?}"
    );
}

#[test]
fn real_plan_module_passes_its_own_lint() {
    // The shipped executor promises a zero-alloc, unwrap-free,
    // uninstrumented hot loop — it must stay clean under its own rules.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../tensor/src/plan.rs");
    let source = std::fs::read_to_string(&path).expect("read plan.rs");
    let vs = scan_source("crates/tensor/src/plan.rs", &source);
    assert!(
        vs.is_empty(),
        "shipped plan executor violates its own lint: {vs:?}"
    );
}

#[test]
fn backward_plan_loop_rules_trip_on_exact_lines() {
    // The *-in-plan-loop rules extend to the backward/optimizer replay
    // loops in tensor/src/plan_train.rs: the vec! (line 6) and .push(
    // (line 7) trip the alloc rule inside backward_plan_loop, as does the
    // .to_vec() (line 17) inside optimizer_plan_loop; the .unwrap() (line
    // 8) trips the unwrap rule and the span (line 9) the span rule.
    // Nothing in bind_training (bind-time code) or the test module may
    // trip.
    let vs = scan_source(
        "crates/tensor/src/plan_train.rs",
        &fixture("bad_backward_plan.rs"),
    );
    let of_rule = |rule: &str| -> Vec<usize> {
        vs.iter()
            .filter(|v| v.rule == rule)
            .map(|v| v.line)
            .collect()
    };
    assert_eq!(of_rule("no-alloc-in-plan-loop"), vec![6, 7, 17], "{vs:?}");
    assert_eq!(of_rule("no-unwrap-in-plan-loop"), vec![8], "{vs:?}");
    assert_eq!(of_rule("no-span-in-plan-loop"), vec![9], "{vs:?}");
    assert!(
        vs.iter().all(|v| v.line < 21),
        "bind_training and the test module are out of scope: {vs:?}"
    );
}

#[test]
fn backward_plan_loop_rules_do_not_trip_outside_plan_files() {
    // Same source labelled outside tensor/src/plan*.rs: the plan rules
    // are path-scoped, like the worker rules.
    let vs = scan_source(
        "crates/nn/src/bad_backward_plan.rs",
        &fixture("bad_backward_plan.rs"),
    );
    assert!(
        vs.iter().all(|v| !v.rule.ends_with("-in-plan-loop")),
        "plan rules are scoped to tensor/src/plan.rs and plan_train.rs: {vs:?}"
    );
}

#[test]
fn real_train_plan_module_passes_its_own_lint() {
    // The shipped training executor promises zero-alloc, unwrap-free,
    // uninstrumented backward and optimizer loops — it must stay clean
    // under its own rules.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../tensor/src/plan_train.rs");
    let source = std::fs::read_to_string(&path).expect("read plan_train.rs");
    let vs = scan_source("crates/tensor/src/plan_train.rs", &source);
    assert!(
        vs.is_empty(),
        "shipped training executor violates its own lint: {vs:?}"
    );
}

#[test]
fn batch_plan_rules_trip_on_exact_lines() {
    // In tensor/src/plan_batch.rs the plan rules cover both `*_plan_loop`
    // and `*_block` fns: the vec! (line 6) and .push( (line 7) trip the
    // alloc rule inside reduce_plan_loop, as does the .to_vec() (line 17)
    // inside replay_lanes_block; the .unwrap() (line 8) trips the unwrap
    // rule and the span (line 9) the span rule. Nothing in bind_batched
    // (bind-time code) or the test module may trip.
    let vs = scan_source(
        "crates/tensor/src/plan_batch.rs",
        &fixture("bad_batch_plan.rs"),
    );
    let of_rule = |rule: &str| -> Vec<usize> {
        vs.iter()
            .filter(|v| v.rule == rule)
            .map(|v| v.line)
            .collect()
    };
    assert_eq!(of_rule("no-alloc-in-plan-loop"), vec![6, 7, 17], "{vs:?}");
    assert_eq!(of_rule("no-unwrap-in-plan-loop"), vec![8], "{vs:?}");
    assert_eq!(of_rule("no-span-in-plan-loop"), vec![9], "{vs:?}");
    assert!(
        vs.iter().all(|v| v.line < 21),
        "bind_batched and the test module are out of scope: {vs:?}"
    );
}

#[test]
fn batch_block_rule_is_scoped_to_the_batched_module() {
    // The same fixture labelled as plan_train.rs: `*_plan_loop` fns are
    // still plan loops there, but the `_block` extension is exclusive to
    // plan_batch.rs — replay_lanes_block (line 17) must not trip.
    let vs = scan_source(
        "crates/tensor/src/plan_train.rs",
        &fixture("bad_batch_plan.rs"),
    );
    let alloc: Vec<usize> = vs
        .iter()
        .filter(|v| v.rule == "no-alloc-in-plan-loop")
        .map(|v| v.line)
        .collect();
    assert_eq!(alloc, vec![6, 7], "{vs:?}");
}

#[test]
fn batch_plan_rules_do_not_trip_outside_plan_files() {
    // Same source labelled outside tensor/src/plan*.rs: the plan rules
    // are path-scoped, like the worker rules.
    let vs = scan_source(
        "crates/nn/src/bad_batch_plan.rs",
        &fixture("bad_batch_plan.rs"),
    );
    assert!(
        vs.iter().all(|v| !v.rule.ends_with("-in-plan-loop")),
        "plan rules are scoped to the tensor plan modules: {vs:?}"
    );
}

#[test]
fn real_batch_plan_module_passes_its_own_lint() {
    // The shipped batched executor promises zero-alloc, unwrap-free,
    // uninstrumented reduction and fan-out paths — it must stay clean
    // under its own rules.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../tensor/src/plan_batch.rs");
    let source = std::fs::read_to_string(&path).expect("read plan_batch.rs");
    let vs = scan_source("crates/tensor/src/plan_batch.rs", &source);
    assert!(
        vs.is_empty(),
        "shipped batched executor violates its own lint: {vs:?}"
    );
}

#[test]
fn simd_lane_loop_rules_trip_on_exact_lines() {
    // tensor/src/simd.rs is both a kernel file (no-unwrap/no-Instant
    // file-wide) and a worker file whose `_lanes` fns are worker loops:
    // the lock (line 7), vec! (line 8) and println (line 9) inside
    // dot_lanes trip the worker rules, the `.collect()` inside
    // qmm_row_block (line 15) trips the alloc rule, and the unwrap/expect
    // (lines 10, 25) and Instant::now (line 24) trip the kernel rules —
    // even in simd_enabled_cached, which is not a worker fn.
    let vs = scan_source("crates/tensor/src/simd.rs", &fixture("bad_simd.rs"));
    let of_rule = |rule: &str| -> Vec<usize> {
        vs.iter()
            .filter(|v| v.rule == rule)
            .map(|v| v.line)
            .collect()
    };
    assert_eq!(of_rule("no-lock-in-worker"), vec![7], "{vs:?}");
    assert_eq!(of_rule("no-alloc-in-worker"), vec![8, 15], "{vs:?}");
    assert_eq!(of_rule("no-println-in-worker"), vec![9], "{vs:?}");
    assert_eq!(of_rule("no-unwrap-in-kernels"), vec![10, 25], "{vs:?}");
    assert_eq!(of_rule("no-instant-in-kernels"), vec![24], "{vs:?}");
    assert!(
        vs.iter().all(|v| v.line < 30),
        "violations inside #[cfg(test)] must be exempt: {vs:?}"
    );
}

#[test]
fn qmm_worker_rules_trip() {
    // ops/qmm.rs `_block` fns are worker loops too (the quantized matmul
    // runs inside claimed pool tasks like the f32 kernels).
    let vs = scan_source("crates/tensor/src/ops/qmm.rs", &fixture("bad_simd.rs"));
    let allocs: Vec<usize> = vs
        .iter()
        .filter(|v| v.rule == "no-alloc-in-worker")
        .map(|v| v.line)
        .collect();
    assert_eq!(allocs, vec![8, 15], "{vs:?}");
}

#[test]
fn simd_rules_do_not_trip_outside_kernel_files() {
    // Same source labelled outside the kernel/worker paths: no rule
    // applies (the fixture has no forward/predict fns).
    let vs = scan_source("crates/nn/src/bad_simd.rs", &fixture("bad_simd.rs"));
    assert!(
        vs.is_empty(),
        "kernel and worker rules are path-scoped: {vs:?}"
    );
}

#[test]
fn real_simd_module_passes_its_own_lint() {
    // The shipped microkernels promise lock-free, alloc-free, I/O-free
    // lane loops — they must stay clean under their own rules.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../tensor/src/simd.rs");
    let source = std::fs::read_to_string(&path).expect("read simd.rs");
    let vs = scan_source("crates/tensor/src/simd.rs", &source);
    assert!(
        vs.is_empty(),
        "shipped simd module violates its own lint: {vs:?}"
    );
}

#[test]
fn real_qmm_module_passes_its_own_lint() {
    // The shipped quantized matmul promises alloc-free `_block` loops
    // (activations quantize into caller scratch) — it must stay clean
    // under its own rules.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../tensor/src/ops/qmm.rs");
    let source = std::fs::read_to_string(&path).expect("read qmm.rs");
    let vs = scan_source("crates/tensor/src/ops/qmm.rs", &source);
    assert!(
        vs.is_empty(),
        "shipped qmm module violates its own lint: {vs:?}"
    );
}

#[test]
fn allowlist_suppresses_worker_rules() {
    let source = fixture("bad_worker.rs");
    let label = "crates/tensor/src/ops/matmul.rs";
    let all = scan_source(label, &source);
    let allow = Allowlist::parse("no-alloc-in-worker matmul.rs scratch\n");
    let kept: Vec<_> = all.iter().filter(|v| !allow.allows(v)).collect();
    assert_eq!(
        kept.len(),
        all.len() - 1,
        "exactly the scratch allocation is suppressed: {kept:?}"
    );
    assert!(kept.iter().all(|v| v.rule != "no-alloc-in-worker"));
}

#[test]
fn serve_loop_rules_trip_on_exact_lines() {
    // The *-in-serve-loop rules are scoped to `*_serve_loop` fns anywhere
    // under serve/src/: the vec! (line 6) and .push( (line 7) trip the
    // alloc rule, the .unwrap() (line 8) the unwrap rule, and the
    // println! (line 9) the println rule. Nothing in handle_request
    // (per-connection handler code) or the test module may trip.
    let vs = scan_source("crates/serve/src/batch.rs", &fixture("bad_serve.rs"));
    let of_rule = |rule: &str| -> Vec<usize> {
        vs.iter()
            .filter(|v| v.rule == rule)
            .map(|v| v.line)
            .collect()
    };
    assert_eq!(of_rule("no-alloc-in-serve-loop"), vec![6, 7], "{vs:?}");
    assert_eq!(of_rule("no-unwrap-in-serve-loop"), vec![8], "{vs:?}");
    assert_eq!(of_rule("no-println-in-serve-loop"), vec![9], "{vs:?}");
    assert!(
        vs.iter().all(|v| v.line < 15),
        "handle_request and the test module are out of scope: {vs:?}"
    );
}

#[test]
fn serve_loop_rules_cover_every_serve_module() {
    // Unlike the plan rules, which name specific tensor files, the serve
    // rules apply to any module of the serving crate — a new
    // `*_serve_loop` fn in server.rs is held to the same contract.
    let vs = scan_source("crates/serve/src/server.rs", &fixture("bad_serve.rs"));
    assert!(
        vs.iter().any(|v| v.rule == "no-alloc-in-serve-loop"),
        "serve rules cover all of serve/src/: {vs:?}"
    );
}

#[test]
fn serve_loop_rules_do_not_trip_outside_serve_files() {
    // Same source labelled outside serve/src/: the serve rules are
    // path-scoped, like the worker and plan rules.
    let vs = scan_source("crates/nn/src/bad_serve.rs", &fixture("bad_serve.rs"));
    assert!(
        vs.iter().all(|v| !v.rule.ends_with("-in-serve-loop")),
        "serve rules are scoped to serve/src/: {vs:?}"
    );
}

#[test]
fn real_serve_modules_pass_their_own_lint() {
    // The shipped batcher (run_serve_loop) and listener
    // (accept_serve_loop) promise alloc-free, unwrap-free, I/O-free hot
    // loops — they must stay clean under their own rules.
    for file in ["batch.rs", "server.rs"] {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../serve/src")
            .join(file);
        let source =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read serve/src/{file}: {e}"));
        let vs = scan_source(&format!("crates/serve/src/{file}"), &source);
        assert!(
            vs.is_empty(),
            "shipped serve module {file} violates its own lint: {vs:?}"
        );
    }
}
