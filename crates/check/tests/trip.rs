//! Fault-injection tests for the source linter: each rule must trip on a
//! fixture source that violates it, and the allowlist must be able to
//! suppress a violation. Fixtures live in `tests/fixtures/` and are never
//! compiled — they are scanned as text, exactly like `scan_workspace`
//! scans the real crates.

use std::path::Path;

use timekd_check::{scan_source, Allowlist, Violation};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

fn rules_of(violations: &[Violation]) -> Vec<&str> {
    violations.iter().map(|v| v.rule).collect()
}

#[test]
fn unwrap_in_kernel_trips() {
    // The kernel rules are scoped to tensor/src/ops/, so label the fixture
    // as if it lived there.
    let vs = scan_source(
        "crates/tensor/src/ops/bad_kernel.rs",
        &fixture("bad_kernel.rs"),
    );
    let rules = rules_of(&vs);
    // .unwrap() on line 8 and .expect(...) on line 9.
    assert_eq!(
        rules
            .iter()
            .filter(|r| **r == "no-unwrap-in-kernels")
            .count(),
        2,
        "expected both unwrap and expect to trip: {vs:?}"
    );
    let unwrap_v = vs.iter().find(|v| v.text.contains(".unwrap()")).unwrap();
    assert_eq!(
        unwrap_v.line, 8,
        "line numbers must point at the offence: {unwrap_v}"
    );
}

#[test]
fn instant_in_kernel_trips() {
    let vs = scan_source(
        "crates/tensor/src/ops/bad_kernel.rs",
        &fixture("bad_kernel.rs"),
    );
    assert!(
        rules_of(&vs).contains(&"no-instant-in-kernels"),
        "Instant::now in a kernel must trip: {vs:?}"
    );
}

#[test]
fn kernel_rules_do_not_trip_outside_ops() {
    // Same source, but labelled outside tensor/src/ops/: the kernel-scoped
    // rules must stay quiet (the fixture has no forward/predict fns).
    let vs = scan_source("crates/data/src/bad_kernel.rs", &fixture("bad_kernel.rs"));
    assert!(
        vs.is_empty(),
        "kernel rules are scoped to tensor ops: {vs:?}"
    );
}

#[test]
fn unwrap_in_test_module_is_exempt() {
    let vs = scan_source(
        "crates/tensor/src/ops/bad_kernel.rs",
        &fixture("bad_kernel.rs"),
    );
    // The fixture's #[cfg(test)] module uses unwrap() on line 21; no
    // violation may point there.
    assert!(
        vs.iter().all(|v| v.line < 15),
        "violations inside #[cfg(test)] must be exempt: {vs:?}"
    );
}

#[test]
fn tensor_clone_in_forward_trips() {
    let vs = scan_source("crates/core/src/bad_forward.rs", &fixture("bad_forward.rs"));
    let clones: Vec<_> = vs
        .iter()
        .filter(|v| v.rule == "no-clone-in-forward")
        .collect();
    // .to_vec() and .data().clone() inside fn forward; the .to_vec() in
    // the non-forward helper must not trip.
    assert_eq!(clones.len(), 2, "both copies in forward must trip: {vs:?}");
    assert!(
        clones.iter().all(|v| v.line <= 8),
        "the helper fn is out of scope: {clones:?}"
    );
}

#[test]
fn inference_without_no_grad_trips() {
    let vs = scan_source(
        "crates/core/src/bad_inference.rs",
        &fixture("bad_inference.rs"),
    );
    let grads: Vec<_> = vs
        .iter()
        .filter(|v| v.rule == "no-grad-in-inference")
        .collect();
    // BadModel::predict and BadModel::evaluate both lack no_grad;
    // GoodModel::predict wraps its body and must not trip.
    assert_eq!(
        grads.len(),
        2,
        "both graph-building entrypoints must trip: {vs:?}"
    );
    assert!(
        grads.iter().all(|v| v.line < 19),
        "a no_grad-wrapped predict must pass: {grads:?}"
    );
}

#[test]
fn allowlist_suppresses_matching_violation() {
    let source = fixture("bad_kernel.rs");
    let label = "crates/tensor/src/ops/bad_kernel.rs";
    let all = scan_source(label, &source);
    assert!(!all.is_empty());

    let allow = Allowlist::parse(
        "# narrow exception for the broadcast unwrap\n\
         no-unwrap-in-kernels bad_kernel.rs broadcast_with\n",
    );
    assert_eq!(allow.len(), 1);
    let kept: Vec<_> = all.iter().filter(|v| !allow.allows(v)).collect();
    assert_eq!(
        kept.len(),
        all.len() - 1,
        "exactly the broadcast unwrap is suppressed: {kept:?}"
    );
    assert!(kept.iter().all(|v| !v.text.contains("broadcast_with")));

    // A `*` rule with a broad line fragment suppresses across rules.
    let wild = Allowlist::parse("* bad_kernel.rs (\n");
    assert!(
        all.iter().all(|v| wild.allows(v)),
        "wildcard entry suppresses all"
    );
}

#[test]
fn allowlist_ignores_comments_and_blank_lines() {
    let allow = Allowlist::parse(
        "\n   \n# a full-line comment\n\t\n  # indented comment\n\
         no-clone-in-forward a.rs .to_vec()\n\n# trailing\n",
    );
    assert_eq!(allow.len(), 1, "only the real entry survives parsing");
}

#[test]
fn rule_text_inside_string_literals_does_not_trip() {
    // A kernel whose *error message* mentions .unwrap() / Instant::now —
    // the scanner strips string literals before matching, so none of the
    // rules may fire on the quoted text.
    let src = "\
fn kernel_add(a: &[f32]) -> f32 {
    let msg = \"never call .unwrap() or .expect( here; Instant::now is banned\";
    assert!(!msg.is_empty(), \"x.data().clone() and .to_vec() are quoted\");
    a[0]
}
";
    let vs = scan_source("crates/tensor/src/ops/strings.rs", src);
    assert!(vs.is_empty(), "quoted rule text must not trip: {vs:?}");
}

#[test]
fn stale_allowlist_entries_are_reported() {
    use timekd_check::scan_workspace_with_stale;
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");

    // An entry that can never match (bogus path) must come back stale
    // without creating violations.
    let allow = Allowlist::parse("no-unwrap-in-kernels no_such_file.rs no_such_fragment\n");
    let outcome = scan_workspace_with_stale(&root, &allow).expect("scan");
    assert!(
        outcome.violations.is_empty(),
        "workspace must stay lint-clean: {:?}",
        outcome.violations
    );
    assert_eq!(outcome.stale_allowlist.len(), 1, "{outcome:?}");
    assert!(
        outcome.stale_allowlist[0].contains("no_such_file.rs"),
        "stale report names the entry: {:?}",
        outcome.stale_allowlist
    );

    // With no entries there is nothing to go stale.
    let outcome = scan_workspace_with_stale(&root, &Allowlist::parse("")).expect("scan");
    assert!(outcome.stale_allowlist.is_empty());
}

#[test]
fn repo_allowlist_file_parses() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../lint-allow.txt");
    let allow = Allowlist::load(&path);
    // The checked-in file is documentation-only today; parsing must not
    // invent entries from comments.
    assert!(
        allow.is_empty(),
        "lint-allow.txt should have no live entries"
    );
}
