// Lint fixture (never compiled): observability hooks inside per-block
// worker-loop functions. The no-span-in-worker rule must trip on the
// span/count_op calls in worker fns and nowhere else. Line numbers
// matter — trip.rs asserts them.
fn traced_row_block(out: &mut [f32]) {
    let _span = timekd_obs::span("kernel.block");
    timekd_obs::count_op("row_block");
    for v in out.iter_mut() {
        *v += 1.0;
    }
}

fn drain_tasks(queue: &JobQueue) {
    let _span = obs::span("pool.drain");
    queue.run_claimed();
}

fn worker_loop(shared: &Shared, id: usize) {
    // The job boundary is not a `*_block`/`drain_tasks` fn: spans and
    // counter hooks belong here and must not trip.
    let _span = timekd_obs::span("pool.job");
    timekd_obs::count_op("pool.job");
    timekd_obs::POOL_JOBS.add(1);
    let _ = (shared, id);
}

fn fast_path_block(out: &mut [f32]) {
    // Bare atomic counters are a single relaxed add: legal in workers.
    timekd_obs::POOL_TASKS.add(out.len() as u64);
}

#[cfg(test)]
mod tests {
    fn helper_block() {
        // Inside a test module the same hooks are exempt.
        let _span = timekd_obs::span("exempt");
        timekd_obs::count_op("exempt");
    }
}
