// Lint fixture (never compiled): a "hot kernel" violating the
// no-unwrap-in-kernels and no-instant-in-kernels rules.
use std::time::Instant;

impl Tensor {
    pub fn fused_kernel(&self, other: &Tensor) -> Tensor {
        let t0 = Instant::now();
        let shape = self.shape().broadcast_with(other.shape()).unwrap();
        let scale = std::env::var("SCALE").expect("SCALE must be set");
        let _ = (t0, scale);
        Tensor::zeros(shape)
    }
}

#[cfg(test)]
mod tests {
    // Inside a test module the same patterns are fine.
    #[test]
    fn unwrap_is_allowed_here() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
