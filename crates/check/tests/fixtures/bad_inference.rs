// Lint fixture (never compiled): inference entrypoints building a graph,
// violating no-grad-in-inference.
impl Forecaster for BadModel {
    fn predict(&self, x: &Tensor) -> Tensor {
        // Missing no_grad: every op here records backward closures.
        self.backbone.forward(x)
    }

    fn evaluate(&self, windows: &[ForecastWindow]) -> (f32, f32) {
        let mut acc = MetricAccumulator::new();
        for w in windows {
            let pred = self.backbone.forward(&w.x);
            acc.update(&pred, &w.y);
        }
        (acc.mse(), acc.mae())
    }
}

impl GoodModel {
    fn predict(&self, x: &Tensor) -> Tensor {
        timekd_tensor::no_grad(|| self.backbone.forward(x))
    }
}
