// Lint fixture (never compiled): per-block worker-loop functions that
// violate the no-lock-in-worker, no-alloc-in-worker and
// no-println-in-worker rules. Line numbers matter — trip.rs asserts them.

fn evil_row_block(out: &mut [f32], state: &SharedState) {
    let _guard = state.mutex.lock();
    let scratch = vec![0.0f32; 8];
    println!("rows = {}", out.len());
    for v in out.iter_mut() {
        *v += scratch[0];
    }
}

fn drain_tasks(queue: &JobQueue) {
    let _job = queue.cv.wait(queue.guard());
}

fn setup_ranges(rows: usize) -> Vec<(usize, usize)> {
    // Not a worker-loop fn (name matches neither `*_block` nor
    // `drain_tasks`): allocation and printing are allowed here.
    let ranges = vec![(0, rows)];
    println!("blocks: {}", ranges.len());
    ranges
}

#[cfg(test)]
mod tests {
    fn helper_block() {
        // Inside a test module the same patterns are exempt.
        let _v = vec![1, 2, 3];
        println!("exempt");
    }
}
