// Lint fixture (never compiled): forbidden constructs inside a plan
// executor hot loop. The *-in-plan-loop rules must trip on allocation,
// unwrap/expect, and observability hooks in `*_plan_loop` fns and nowhere
// else. Line numbers matter — trip.rs asserts them.
fn evil_plan_loop(&mut self, input: &[f32]) {
    let mut scratch = vec![0.0f32; input.len()];
    scratch.push(0.0);
    let first = self.exec.first().unwrap();
    let _span = timekd_obs::span("plan.step");
    for step in &self.exec {
        scratch[0] += step.out_len as f32;
    }
}

fn build_plan(steps: &[Step]) -> Vec<ExecStep> {
    // Construction-time code is not a plan loop: allocation, expect and
    // spans are all legal here.
    let _span = timekd_obs::span("plan.build");
    let mut out = Vec::with_capacity(steps.len());
    out.push(ExecStep::default());
    steps.first().expect("at least one step");
    out
}

#[cfg(test)]
mod tests {
    fn helper_plan_loop() {
        // Inside a test module the same constructs are exempt.
        let v = vec![1.0f32].first().copied().unwrap();
        let _span = timekd_obs::span("exempt");
        let _ = v;
    }
}
