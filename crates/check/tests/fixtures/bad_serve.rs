// Lint fixture (never compiled): forbidden constructs inside the serving
// hot loops. The *-in-serve-loop rules must trip on allocation,
// unwrap/expect, and console I/O in `*_serve_loop` fns and nowhere else.
// Line numbers matter — trip.rs asserts them.
fn evil_serve_loop(&mut self, jobs: &[ForecastJob]) {
    let mut ready = vec![0.0f32; jobs.len()];
    ready.push(0.0);
    let first = jobs.first().unwrap();
    println!("draining {} jobs", jobs.len());
    for job in jobs {
        ready[0] += job.input.len() as f32;
    }
    let _ = first;
}

fn handle_request(shared: &Shared, body: &str) -> Response {
    // Per-connection handler code is not a serve loop: allocation, expect
    // and logging are all legal here — a bad request becomes an HTTP
    // error, not a dead batcher.
    let mut out = Vec::with_capacity(body.len());
    out.push(b'{');
    let doc = Json::parse(body).expect("request body");
    println!("handled {doc:?}");
    Response::ok(out)
}

#[cfg(test)]
mod tests {
    fn helper_serve_loop() {
        // Inside a test module the same constructs are exempt.
        let v = vec![1.0f32].first().copied().unwrap();
        println!("exempt {v}");
    }
}
