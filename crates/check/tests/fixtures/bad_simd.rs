// Lint fixture (never compiled): an f32x8 microkernel file violating the
// kernel rules (no-unwrap, no-Instant) and the worker-loop rules inside a
// `_lanes` lane loop (no-lock, no-alloc, no-println). Line numbers matter —
// trip.rs asserts them.

fn dot_lanes(a: &[f32], b: &[f32], state: &SharedState) -> f32 {
    let _guard = state.mutex.lock();
    let lanes = vec![0.0f32; 8];
    println!("n = {}", a.len());
    let first = b.first().unwrap();
    lanes[0] + *first
}

fn qmm_row_block(xq: &[i8], out: &mut [f32]) {
    let codes: Vec<i8> = xq.iter().copied().collect();
    for (o, &c) in out.iter_mut().zip(&codes) {
        *o = c as f32;
    }
}

fn simd_enabled_cached() -> bool {
    // Not a `_lanes`/`_block` fn: allocation is fine here, but the
    // file-wide kernel rules still catch the expect and the timing below.
    let t0 = std::time::Instant::now();
    let mode = std::env::var("TIMEKD_SIMD").expect("env");
    mode.len() as u128 > t0.elapsed().as_nanos()
}

#[cfg(test)]
mod tests {
    fn helper_lanes() {
        // Inside a test module the same patterns are exempt.
        let _v = vec![1.0f32; 8];
        let _ = x.unwrap();
        println!("exempt");
    }
}
