// Lint fixture (never compiled): forbidden constructs inside the batched
// executor's reduction and fan-out hot paths. In plan_batch.rs the
// *-in-plan-loop rules cover `*_plan_loop` AND `*_block` fns. Line
// numbers matter — trip.rs asserts them.
fn reduce_plan_loop(&mut self, count: usize) {
    let mut order = vec![0usize; count];
    order.push(count);
    let first = self.reduce.first().unwrap();
    let _span = timekd_obs::span("plan.reduce");
    for r in &self.reduce {
        order[0] += r.len;
    }
}

fn replay_lanes_block(&mut self, count: usize) {
    // Fan-out blocks are held to the same contract in this module.
    let shards = self.lanes.to_vec();
    let _ = (shards, count);
}

fn bind_batched(plan: &Plan) -> Vec<f32> {
    // Bind-time code is not a plan loop: allocation, expect and spans
    // are all legal here.
    let _span = timekd_obs::span("plan.bind");
    let mut m = Vec::with_capacity(plan.len());
    m.push(0.0);
    plan.first().expect("non-empty plan");
    m
}

#[cfg(test)]
mod tests {
    fn helper_reduce_plan_loop() {
        // Inside a test module the same constructs are exempt.
        let g = vec![0.0f32].first().copied().unwrap();
        let _span = timekd_obs::span("exempt");
        let _ = g;
    }
}
