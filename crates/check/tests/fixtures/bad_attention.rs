// Lint fixture (never compiled): a fused-attention kernel file violating
// every kernel rule (no-unwrap, no-Instant) and every worker-loop rule
// (no-lock, no-alloc, no-println). Line numbers matter — trip.rs asserts them.

fn attn_fwd_row_block(out: &mut [f32], q: &[f32], state: &SharedState) {
    let _guard = state.mutex.lock();
    let scratch = vec![0.0f32; 8];
    println!("rows = {}", out.len());
    let first = q.first().unwrap();
    let t0 = std::time::Instant::now();
    for v in out.iter_mut() {
        *v += scratch[0] + *first + t0.elapsed().as_secs_f32();
    }
}

fn plan_attention(rows: usize) -> Vec<(usize, usize)> {
    // Not a worker-loop fn (name matches neither `*_block` nor
    // `drain_tasks`): allocation and printing are fine here, but the
    // file-wide kernel rules still catch the expect below.
    let ranges = vec![(0, rows)];
    println!("blocks: {}", ranges.len());
    let _first = ranges.first().copied().expect("non-empty");
    ranges
}

#[cfg(test)]
mod tests {
    fn helper_block() {
        // Inside a test module the same patterns are exempt.
        let _v = vec![1, 2, 3];
        let _ = x.unwrap();
        println!("exempt");
    }
}
