// Lint fixture (never compiled): a forward path copying tensor data,
// violating no-clone-in-forward.
impl Student {
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let copied = x.to_vec();
        let again = x.data().clone();
        Tensor::from_vec(copied, x.shape().clone()).add_slice(&again)
    }

    // Helper fns are out of scope for the rule.
    pub fn snapshot(&self) -> Vec<f32> {
        self.embedding.to_vec()
    }
}
