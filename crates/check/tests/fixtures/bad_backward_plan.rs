// Lint fixture (never compiled): forbidden constructs inside the training
// executor's backward/optimizer hot loops. The *-in-plan-loop rules must
// trip in `*_plan_loop` fns of plan_train.rs exactly as they do for the
// forward replay loop. Line numbers matter — trip.rs asserts them.
fn backward_plan_loop(&mut self, input: &[f32]) {
    let mut grads = vec![0.0f32; input.len()];
    grads.push(0.0);
    let head = self.bwd.first().unwrap();
    let _span = timekd_obs::span("plan.backward");
    for step in &self.bwd {
        grads[0] += step.g_len as f32;
    }
}

fn optimizer_plan_loop(&mut self) {
    // The fused update loop is held to the same contract.
    let state = self.moments.to_vec();
    let _ = state;
}

fn bind_training(plan: &Plan) -> Vec<f32> {
    // Bind-time code is not a plan loop: allocation, expect and spans are
    // all legal here.
    let _span = timekd_obs::span("plan.bind");
    let mut m = Vec::with_capacity(plan.len());
    m.push(0.0);
    plan.first().expect("non-empty plan");
    m
}

#[cfg(test)]
mod tests {
    fn helper_backward_plan_loop() {
        // Inside a test module the same constructs are exempt.
        let g = vec![0.0f32].first().copied().unwrap();
        let _span = timekd_obs::span("exempt");
        let _ = g;
    }
}
