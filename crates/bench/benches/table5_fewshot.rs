//! Reproduces **Table V**: few-shot forecasting with only the first 10% of
//! the training data, horizon 96, on the four ETT datasets.
//!
//! Expected shape: TimeKD ahead of all baselines; LLM-based methods ahead
//! of the pure Transformers under data scarcity.
//!
//! Run: `cargo bench -p timekd-bench --bench table5_fewshot`

use timekd_bench::{f3, ModelKind, Profile, ResultTable, SharedLm};
use timekd_data::{DatasetKind, SplitDataset};
use timekd_lm::LmSize;

fn main() {
    let profile = Profile::from_env();
    let shared = SharedLm::pretrain(LmSize::Base, &profile);
    let horizon = 96;

    let mut headers = vec!["dataset".to_string()];
    for m in ModelKind::paper_models() {
        headers.push(format!("{} MSE", m.name()));
        headers.push(format!("{} MAE", m.name()));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = ResultTable::new("Table V: few-shot (10% training data, FH 96)", &header_refs);

    for kind in [
        DatasetKind::EttM1,
        DatasetKind::EttM2,
        DatasetKind::EttH1,
        DatasetKind::EttH2,
    ] {
        let ds = SplitDataset::new(
            kind,
            profile.num_steps(horizon),
            42,
            profile.input_len,
            horizon,
        );
        let mut row = vec![kind.name().to_string()];
        for model in ModelKind::paper_models() {
            let r = timekd_bench::run_experiment(model, &ds, &shared, &profile, 0.1);
            eprintln!(
                "[table5] {} {}: MSE {:.3} MAE {:.3}",
                kind.name(),
                r.model,
                r.mse,
                r.mae
            );
            row.push(f3(r.mse));
            row.push(f3(r.mae));
        }
        table.push_row(row);
    }

    table.print();
    match table.save_csv("table5_fewshot") {
        Ok(p) => println!("saved {}", p.display()),
        Err(e) => eprintln!("csv save failed: {e}"),
    }
}
