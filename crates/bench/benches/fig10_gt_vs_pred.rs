//! Reproduces **Figure 10**: ground truth vs TimeKD prediction on ETTh1
//! (FH 96), for four variables (HUFL, MUFL, LUFL, OT), printed as ASCII
//! sparkline pairs and saved as CSV series.
//!
//! Expected shape: the prediction tracks the periodic structure of the
//! ground truth.
//!
//! Run: `cargo bench -p timekd-bench --bench fig10_gt_vs_pred`

use timekd_bench::{ModelKind, Profile, SharedLm};
use timekd_data::{column, write_csv, DatasetKind, SplitDataset};
use timekd_lm::LmSize;

/// Eight-level unicode sparkline of a series.
fn sparkline(values: &[f32]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    values
        .iter()
        .map(|&v| {
            let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
            BARS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

fn main() {
    let profile = Profile::from_env();
    let shared = SharedLm::pretrain(LmSize::Base, &profile);
    let horizon = 96;
    let ds = SplitDataset::new(
        DatasetKind::EttH1,
        profile.num_steps(horizon),
        42,
        profile.input_len,
        horizon,
    );
    let mut model = timekd_bench::build_model(
        ModelKind::TimeKd,
        &shared,
        &profile,
        ds.input_len(),
        ds.horizon(),
        ds.num_vars(),
        ds.kind().freq_minutes(),
    );
    let windows = timekd_bench::run_windows(&ds, &profile, 1.0);
    for _ in 0..profile.epochs {
        model.train_epoch(&windows.train);
    }
    let probe = &windows.test[windows.test.len() / 2];
    let pred = model.predict(&probe.x);

    let names = ds.kind().variable_names();
    // Paper shows HUFL, MUFL, LUFL, OT — indices 0, 2, 4, 6.
    let chosen = [0usize, 2, 4, 6];
    let mut rows: Vec<Vec<String>> = Vec::new();
    println!("\n=== Figure 10: ground truth vs prediction (ETTh1, FH 96) ===");
    for &v in &chosen {
        let truth = column(&probe.y, v);
        let predicted = column(&pred, v);
        println!("\n{}:", names[v]);
        println!("  truth {}", sparkline(&truth));
        println!("  pred  {}", sparkline(&predicted));
        let mse: f32 = truth
            .iter()
            .zip(&predicted)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / truth.len() as f32;
        println!("  per-variable MSE: {mse:.4}");
        for (t, (gt, p)) in truth.iter().zip(&predicted).enumerate() {
            rows.push(vec![
                names[v].clone(),
                t.to_string(),
                format!("{gt:.6}"),
                format!("{p:.6}"),
            ]);
        }
    }
    let dir = timekd_bench::experiments_dir();
    write_csv(
        dir.join("fig10_gt_vs_pred.csv"),
        &["variable", "step", "ground_truth", "prediction"],
        &rows,
    )
    .unwrap();
    println!("\nsaved {}", dir.join("fig10_gt_vs_pred.csv").display());
}
