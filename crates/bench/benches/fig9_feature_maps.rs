//! Reproduces **Figure 9**: self-relation feature matrices `E·Eᵀ` of the
//! privileged Transformer vs the time-series Transformer on ETTm1 (FH 96).
//!
//! Expected shape: the teacher's matrix shows broad, balanced pairwise
//! interactions (global LLM context); the student's is sparser and more
//! localised.
//!
//! Run: `cargo bench -p timekd-bench --bench fig9_feature_maps`

use timekd::{Forecaster, TimeKd};
use timekd_bench::{render_heatmap, Profile, SharedLm};
use timekd_data::{write_csv, DatasetKind, SplitDataset};
use timekd_lm::LmSize;
use timekd_tensor::Tensor;

fn matrix_rows(m: &Tensor) -> Vec<Vec<String>> {
    let (r, c) = (m.dims()[0], m.dims()[1]);
    let data = m.data();
    (0..r)
        .map(|i| (0..c).map(|j| format!("{:.6}", data[i * c + j])).collect())
        .collect()
}

/// Off-diagonal energy fraction — higher means broader interactions.
fn offdiag_fraction(m: &Tensor) -> f32 {
    let n = m.dims()[0];
    let data = m.data();
    let mut diag = 0.0f32;
    let mut total = 0.0f32;
    for i in 0..n {
        for j in 0..n {
            let v = data[i * n + j].abs();
            total += v;
            if i == j {
                diag += v;
            }
        }
    }
    1.0 - diag / total.max(1e-9)
}

fn main() {
    let profile = Profile::from_env();
    let shared = SharedLm::pretrain(LmSize::Base, &profile);
    let horizon = 96;
    let ds = SplitDataset::new(
        DatasetKind::EttM1,
        profile.num_steps(horizon),
        42,
        profile.input_len,
        horizon,
    );
    let cfg = timekd_bench::timekd_config(&profile, &shared, ds.kind().freq_minutes());
    let mut model = TimeKd::with_frozen_lm(
        shared.frozen.clone(),
        shared.tokenizer.clone(),
        cfg,
        ds.input_len(),
        ds.horizon(),
        ds.num_vars(),
    );
    let windows = timekd_bench::run_windows(&ds, &profile, 1.0);
    for _ in 0..profile.epochs {
        model.train_epoch(&windows.train);
    }
    let probe = &windows.test[0];
    let (teacher, student) = model.feature_maps(probe);

    println!(
        "{}",
        render_heatmap(
            &teacher,
            "Fig 9a: privileged feature self-relations (E_GT·E_GTᵀ)"
        )
    );
    println!(
        "{}",
        render_heatmap(
            &student,
            "Fig 9b: time-series feature self-relations (T̄_H·T̄_Hᵀ)"
        )
    );
    println!(
        "off-diagonal energy: teacher {:.3}, student {:.3}",
        offdiag_fraction(&teacher),
        offdiag_fraction(&student)
    );

    let var_names: Vec<String> = ds.kind().variable_names();
    let headers: Vec<&str> = var_names.iter().map(String::as_str).collect();
    let dir = timekd_bench::experiments_dir();
    write_csv(
        dir.join("fig9_teacher_features.csv"),
        &headers,
        &matrix_rows(&teacher),
    )
    .unwrap();
    write_csv(
        dir.join("fig9_student_features.csv"),
        &headers,
        &matrix_rows(&student),
    )
    .unwrap();
    println!("saved {}", dir.join("fig9_*.csv").display());
}
