//! Reproduces **Figure 6**: component ablations of TimeKD — w/o_PI,
//! w/o_CA, w/o_CLM, w/o_SCA, w/o_CD, w/o_FD — on ETTm1, ETTh2, Weather and
//! Exchange, averaged over horizons.
//!
//! Expected shape: the full model best; w/o_CLM weakest; w/o_PI and w/o_CD
//! clearly worse than full (privileged information and correlation
//! distillation matter).
//!
//! Run: `cargo bench -p timekd-bench --bench fig6_ablation`

use timekd::{AblationConfig, Forecaster, TimeKd};
use timekd_bench::{f3, Profile, ResultTable, SharedLm};
use timekd_data::{DatasetKind, SplitDataset};
use timekd_lm::LmSize;

fn variants() -> Vec<AblationConfig> {
    vec![
        AblationConfig::full(),
        AblationConfig::without_privileged_info(),
        AblationConfig::without_calibrated_attention(),
        AblationConfig::without_clm(),
        AblationConfig::without_sca(),
        AblationConfig::without_correlation_distillation(),
        AblationConfig::without_feature_distillation(),
    ]
}

fn main() {
    let profile = Profile::from_env();
    let shared = SharedLm::pretrain(LmSize::Base, &profile);
    let horizons: Vec<usize> = if profile.quick {
        vec![24, 48]
    } else {
        vec![24, 36, 48, 96, 192]
    };

    let mut headers = vec!["dataset".to_string()];
    for v in variants() {
        headers.push(format!("{} MSE", v.label()));
        headers.push(format!("{} MAE", v.label()));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = ResultTable::new("Figure 6: ablations (avg over horizons)", &header_refs);

    for kind in [
        DatasetKind::EttM1,
        DatasetKind::EttH2,
        DatasetKind::Weather,
        DatasetKind::Exchange,
    ] {
        let mut row = vec![kind.name().to_string()];
        for ablation in variants() {
            let mut mse_sum = 0.0f64;
            let mut mae_sum = 0.0f64;
            for &horizon in &horizons {
                let ds = SplitDataset::new(
                    kind,
                    profile.num_steps(horizon),
                    42,
                    profile.input_len,
                    horizon,
                );
                let mut cfg = timekd_bench::timekd_config(&profile, &shared, kind.freq_minutes());
                cfg.ablation = ablation;
                if !ablation.calibrated_attention {
                    cfg.lm.calibration_delta = 0.0;
                }
                let mut model = TimeKd::with_frozen_lm(
                    shared.frozen.clone(),
                    shared.tokenizer.clone(),
                    cfg,
                    ds.input_len(),
                    ds.horizon(),
                    ds.num_vars(),
                );
                let windows = timekd_bench::run_windows(&ds, &profile, 1.0);
                for _ in 0..profile.epochs {
                    model.train_epoch(&windows.train);
                }
                let (mse, mae) = model.evaluate(&windows.test);
                mse_sum += mse as f64;
                mae_sum += mae as f64;
            }
            let mse = (mse_sum / horizons.len() as f64) as f32;
            let mae = (mae_sum / horizons.len() as f64) as f32;
            eprintln!(
                "[fig6] {} {}: MSE {mse:.3} MAE {mae:.3}",
                kind.name(),
                ablation.label()
            );
            row.push(f3(mse));
            row.push(f3(mae));
        }
        table.push_row(row);
    }

    table.print();
    match table.save_csv("fig6_ablation") {
        Ok(p) => println!("saved {}", p.display()),
        Err(e) => eprintln!("csv save failed: {e}"),
    }
}
