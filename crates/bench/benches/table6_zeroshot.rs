//! Reproduces **Table VI**: zero-shot transfer between related ETT
//! datasets — the model is trained on the source and evaluated, untouched,
//! on the target's test split (FH 96).
//!
//! Expected shape: TimeKD transfers best; channel-dependent LLM methods
//! beat the pure Transformers, whose iTransformer suffers most.
//!
//! Run: `cargo bench -p timekd-bench --bench table6_zeroshot`

use timekd_bench::{f3, ModelKind, Profile, ResultTable, SharedLm};
use timekd_data::{DatasetKind, SplitDataset};
use timekd_lm::LmSize;

fn main() {
    let profile = Profile::from_env();
    let shared = SharedLm::pretrain(LmSize::Base, &profile);
    let horizon = 96;

    let pairs = [
        (DatasetKind::EttM1, DatasetKind::EttM2),
        (DatasetKind::EttM2, DatasetKind::EttM1),
        (DatasetKind::EttH1, DatasetKind::EttH2),
        (DatasetKind::EttH2, DatasetKind::EttH1),
    ];

    let mut headers = vec!["transfer".to_string()];
    for m in ModelKind::paper_models() {
        headers.push(format!("{} MSE", m.name()));
        headers.push(format!("{} MAE", m.name()));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = ResultTable::new(
        "Table VI: zero-shot forecasting on ETT (FH 96)",
        &header_refs,
    );

    for (src_kind, dst_kind) in pairs {
        let src = SplitDataset::new(
            src_kind,
            profile.num_steps(horizon),
            42,
            profile.input_len,
            horizon,
        );
        let dst = SplitDataset::new(
            dst_kind,
            profile.num_steps(horizon),
            43,
            profile.input_len,
            horizon,
        );
        let label = format!("{} -> {}", src_kind.name(), dst_kind.name());
        let mut row = vec![label.clone()];
        for model in ModelKind::paper_models() {
            let (mse, mae) = timekd_bench::run_zero_shot(model, &src, &dst, &shared, &profile);
            eprintln!(
                "[table6] {label} {}: MSE {mse:.3} MAE {mae:.3}",
                model.name()
            );
            row.push(f3(mse));
            row.push(f3(mae));
        }
        table.push_row(row);
    }

    table.print();
    match table.save_csv("table6_zeroshot") {
        Ok(p) => println!("saved {}", p.display()),
        Err(e) => eprintln!("csv save failed: {e}"),
    }
}
