//! Reproduces **Figure 8**: attention maps of the privileged Transformer
//! (teacher) vs the time-series Transformer (student) on ETTm1 (FH 96),
//! rendered as ASCII heatmaps and saved as CSV matrices.
//!
//! Expected shape: the teacher's (LLM-derived) map is global/diffuse, the
//! student's more local/variable-specific, with correlation distillation
//! pulling the two closer than at initialisation.
//!
//! Run: `cargo bench -p timekd-bench --bench fig8_attention_maps`

use timekd::{Forecaster, TimeKd};
use timekd_bench::{render_heatmap, Profile, SharedLm};
use timekd_data::{write_csv, DatasetKind, SplitDataset};
use timekd_lm::LmSize;
use timekd_tensor::Tensor;

fn matrix_rows(m: &Tensor) -> Vec<Vec<String>> {
    let (r, c) = (m.dims()[0], m.dims()[1]);
    let data = m.data();
    (0..r)
        .map(|i| (0..c).map(|j| format!("{:.6}", data[i * c + j])).collect())
        .collect()
}

fn frobenius_distance(a: &Tensor, b: &Tensor) -> f32 {
    a.sub(b).square().sum().item().sqrt()
}

fn main() {
    let profile = Profile::from_env();
    let shared = SharedLm::pretrain(LmSize::Base, &profile);
    let horizon = 96;
    let ds = SplitDataset::new(
        DatasetKind::EttM1,
        profile.num_steps(horizon),
        42,
        profile.input_len,
        horizon,
    );
    let cfg = timekd_bench::timekd_config(&profile, &shared, ds.kind().freq_minutes());
    let mut model = TimeKd::with_frozen_lm(
        shared.frozen.clone(),
        shared.tokenizer.clone(),
        cfg,
        ds.input_len(),
        ds.horizon(),
        ds.num_vars(),
    );
    let windows = timekd_bench::run_windows(&ds, &profile, 1.0);
    let probe = &windows.test[0];

    let (t0, s0) = model.attention_maps(probe);
    let before = frobenius_distance(&t0, &s0);
    for _ in 0..profile.epochs {
        model.train_epoch(&windows.train);
    }
    let (teacher, student) = model.attention_maps(probe);
    let after = frobenius_distance(&teacher, &student);

    println!(
        "{}",
        render_heatmap(&teacher, "Fig 8a: privileged Transformer attention (A_PE)")
    );
    println!(
        "{}",
        render_heatmap(
            &student,
            "Fig 8b: time-series Transformer attention (A_TSE)"
        )
    );
    println!("teacher-student attention distance: {before:.4} (init) -> {after:.4} (trained)");
    if after < before {
        println!("correlation distillation pulled the maps together ✔");
    } else {
        println!("warning: maps did not converge within this profile");
    }

    let var_names: Vec<String> = ds.kind().variable_names();
    let headers: Vec<&str> = var_names.iter().map(String::as_str).collect();
    let dir = timekd_bench::experiments_dir();
    write_csv(
        dir.join("fig8_teacher_attention.csv"),
        &headers,
        &matrix_rows(&teacher),
    )
    .unwrap();
    write_csv(
        dir.join("fig8_student_attention.csv"),
        &headers,
        &matrix_rows(&student),
    )
    .unwrap();
    println!("saved {}", dir.join("fig8_*.csv").display());
}
