//! Reproduces **Table I**: long-term forecasting MSE/MAE on ETTm1, ETTm2,
//! ETTh1, ETTh2, Weather and Exchange with input length 96 and horizons
//! {24, 36, 48, 96, 192}, for TimeKD and the six baselines.
//!
//! Expected shape (not absolute numbers — the substrate is synthetic):
//! TimeKD best overall, TimeCMA the best existing method, LLM-based models
//! generally ahead of the pure Transformers.
//!
//! Run: `cargo bench -p timekd-bench --bench table1_longterm`
//! (`QUICK=0` for the full profile; `DATASETS`/`HORIZONS` env vars narrow
//! the sweep, e.g. `DATASETS=ETTm1 HORIZONS=24,96`.)

use timekd_bench::{f3, ModelKind, Profile, ResultTable, SharedLm};
use timekd_data::{DatasetKind, SplitDataset};
use timekd_lm::LmSize;

fn main() {
    let profile = Profile::from_env();
    let shared = SharedLm::pretrain(LmSize::Base, &profile);

    let all_datasets = [
        DatasetKind::EttM1,
        DatasetKind::EttM2,
        DatasetKind::EttH1,
        DatasetKind::EttH2,
        DatasetKind::Weather,
        DatasetKind::Exchange,
    ];
    let datasets: Vec<DatasetKind> = match std::env::var("DATASETS") {
        Ok(list) => all_datasets
            .iter()
            .copied()
            .filter(|k| list.split(',').any(|n| n.eq_ignore_ascii_case(k.name())))
            .collect(),
        Err(_) => all_datasets.to_vec(),
    };
    let horizons: Vec<usize> = match std::env::var("HORIZONS") {
        Ok(list) => list.split(',').filter_map(|h| h.parse().ok()).collect(),
        Err(_) => profile.long_horizons.to_vec(),
    };

    let mut headers = vec!["dataset".to_string(), "FH".to_string()];
    for m in ModelKind::paper_models() {
        headers.push(format!("{} MSE", m.name()));
        headers.push(format!("{} MAE", m.name()));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = ResultTable::new("Table I: long-term forecasting (input 96)", &header_refs);

    for &kind in &datasets {
        let mut avg: Vec<(f64, f64)> = vec![(0.0, 0.0); ModelKind::paper_models().len()];
        for &horizon in &horizons {
            let ds = SplitDataset::new(
                kind,
                profile.num_steps(horizon),
                42,
                profile.input_len,
                horizon,
            );
            let mut row = vec![kind.name().to_string(), horizon.to_string()];
            for (mi, model) in ModelKind::paper_models().into_iter().enumerate() {
                let r = timekd_bench::run_experiment(model, &ds, &shared, &profile, 1.0);
                eprintln!(
                    "[table1] {} FH={horizon} {}: MSE {:.3} MAE {:.3}",
                    kind.name(),
                    r.model,
                    r.mse,
                    r.mae
                );
                avg[mi].0 += r.mse as f64;
                avg[mi].1 += r.mae as f64;
                row.push(f3(r.mse));
                row.push(f3(r.mae));
            }
            table.push_row(row);
        }
        // Per-dataset average row, as in the paper.
        let mut row = vec![kind.name().to_string(), "Avg".to_string()];
        for (m, a) in avg.iter().enumerate() {
            let _ = m;
            row.push(f3((a.0 / horizons.len() as f64) as f32));
            row.push(f3((a.1 / horizons.len() as f64) as f32));
        }
        table.push_row(row);
    }

    table.print();
    match table.save_csv("table1_longterm") {
        Ok(p) => println!("saved {}", p.display()),
        Err(e) => eprintln!("csv save failed: {e}"),
    }
}
