//! Design-choice ablation: the frozen-CLM **embedding cache** (paper
//! §IV-B2, "to avoid repetitive processing with the frozen CLMs, we store
//! the subtracted embeddings").
//!
//! Measures TimeKD training epochs with the cache enabled vs disabled; the
//! steady-state epoch time with caching should be several times lower,
//! which is what keeps TimeKD's training competitive in Table IV.
//!
//! Run: `cargo bench -p timekd-bench --bench ablation_cache`

use std::time::Instant;

use timekd::{Forecaster, TimeKd};
use timekd_bench::{secs, Profile, ResultTable, SharedLm};
use timekd_data::{DatasetKind, SplitDataset};
use timekd_lm::LmSize;

fn main() {
    let profile = Profile::from_env();
    let shared = SharedLm::pretrain(LmSize::Base, &profile);
    let horizon = 96;
    let ds = SplitDataset::new(
        DatasetKind::EttM1,
        profile.num_steps(horizon),
        42,
        profile.input_len,
        horizon,
    );
    let windows = timekd_bench::run_windows(&ds, &profile, 1.0);

    let mut table = ResultTable::new(
        "Design ablation: frozen-CLM embedding cache",
        &["cache", "epoch", "train time", "cache hits", "cache misses"],
    );

    for enabled in [true, false] {
        shared.frozen.clear_cache();
        shared.frozen.set_caching(enabled);
        let cfg = timekd_bench::timekd_config(&profile, &shared, ds.kind().freq_minutes());
        let mut model = TimeKd::with_frozen_lm(
            shared.frozen.clone(),
            shared.tokenizer.clone(),
            cfg,
            ds.input_len(),
            ds.horizon(),
            ds.num_vars(),
        );
        for epoch in 1..=3 {
            let t0 = Instant::now();
            model.train_epoch(&windows.train);
            let dt = t0.elapsed().as_secs_f64();
            let (hits, misses) = shared.frozen.cache_stats();
            eprintln!(
                "[ablation_cache] cache={enabled} epoch {epoch}: {} (hits {hits}, misses {misses})",
                secs(dt)
            );
            table.push_row(vec![
                enabled.to_string(),
                epoch.to_string(),
                secs(dt),
                hits.to_string(),
                misses.to_string(),
            ]);
        }
    }
    shared.frozen.set_caching(true);

    table.print();
    match table.save_csv("ablation_cache") {
        Ok(p) => println!("saved {}", p.display()),
        Err(e) => eprintln!("csv save failed: {e}"),
    }
}
