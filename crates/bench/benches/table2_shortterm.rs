//! Reproduces **Table II**: short-term forecasting on PEMS04 and PEMS08
//! with input length 96 and horizon 12.
//!
//! Expected shape: the channel-dependent models with inverted embeddings
//! (TimeKD, TimeCMA, iTransformer) ahead of the channel-independent ones,
//! because the PEMS generators couple adjacent sensors.
//!
//! Run: `cargo bench -p timekd-bench --bench table2_shortterm`

use timekd_bench::{f3, ModelKind, Profile, ResultTable, SharedLm};
use timekd_data::{DatasetKind, SplitDataset};
use timekd_lm::LmSize;

fn main() {
    let profile = Profile::from_env();
    let shared = SharedLm::pretrain(LmSize::Base, &profile);
    let horizon = 12;

    let mut headers = vec!["dataset".to_string()];
    for m in ModelKind::paper_models() {
        headers.push(format!("{} MSE", m.name()));
        headers.push(format!("{} MAE", m.name()));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = ResultTable::new(
        "Table II: short-term forecasting (input 96, FH 12)",
        &header_refs,
    );

    for kind in [DatasetKind::Pems04, DatasetKind::Pems08] {
        let ds = SplitDataset::new(
            kind,
            profile.num_steps(horizon),
            42,
            profile.input_len,
            horizon,
        );
        let mut row = vec![kind.name().to_string()];
        for model in ModelKind::paper_models() {
            let r = timekd_bench::run_experiment(model, &ds, &shared, &profile, 1.0);
            eprintln!(
                "[table2] {} {}: MSE {:.3} MAE {:.3}",
                kind.name(),
                r.model,
                r.mse,
                r.mae
            );
            row.push(f3(r.mse));
            row.push(f3(r.mae));
        }
        table.push_row(row);
    }

    table.print();
    match table.save_csv("table2_shortterm") {
        Ok(p) => println!("saved {}", p.display()),
        Err(e) => eprintln!("csv save failed: {e}"),
    }
}
