//! Reproduces **Table IV**: resource efficiency on ETTm1 with horizon 96 —
//! trainable parameters, training time per epoch, peak memory, and
//! inference seconds per window, for every model.
//!
//! Expected shape: TimeKD with the lowest memory and fastest inference
//! (no LM at test time), the lowest trainable-parameter count and training
//! time among the LLM-based methods, and Time-LLM the slowest overall.
//!
//! The peak-memory column uses a counting global allocator installed in
//! this binary, measured per model around its train+inference phase.
//!
//! Run: `cargo bench -p timekd-bench --bench table4_efficiency`

use timekd_bench::{secs, ModelKind, PeakAlloc, Profile, ResultTable, SharedLm};
use timekd_data::{DatasetKind, SplitDataset};
use timekd_lm::LmSize;

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc::new();

fn main() {
    let profile = Profile::from_env();
    let shared = SharedLm::pretrain(LmSize::Base, &profile);
    let horizon = 96;
    let ds = SplitDataset::new(
        DatasetKind::EttM1,
        profile.num_steps(horizon),
        42,
        profile.input_len,
        horizon,
    );

    let mut table = ResultTable::new(
        "Table IV: efficiency on ETTm1 (FH 96)",
        &[
            "model",
            "trainable params",
            "train time/epoch",
            "peak mem (MiB)",
            "infer s/window",
        ],
    );

    let mut models: Vec<ModelKind> = ModelKind::paper_models().to_vec();
    models.push(ModelKind::Dlinear);
    for kind in models {
        // Reset peak so each model is measured from the shared baseline
        // (datasets + pretrained LM stay live across models).
        ALLOC.reset_peak();
        let base = ALLOC.live_bytes();
        let r = timekd_bench::run_experiment(kind, &ds, &shared, &profile, 1.0);
        let peak_delta = ALLOC.peak_bytes().saturating_sub(base);
        eprintln!(
            "[table4] {}: {} params, {} /epoch, {:.1} MiB, {} /window",
            r.model,
            r.params,
            secs(r.train_secs_per_epoch),
            peak_delta as f64 / (1024.0 * 1024.0),
            secs(r.infer_secs_per_window),
        );
        table.push_row(vec![
            r.model.clone(),
            r.params.to_string(),
            secs(r.train_secs_per_epoch),
            format!("{:.1}", peak_delta as f64 / (1024.0 * 1024.0)),
            secs(r.infer_secs_per_window),
        ]);
    }

    table.print();
    match table.save_csv("table4_efficiency") {
        Ok(p) => println!("saved {}", p.display()),
        Err(e) => eprintln!("csv save failed: {e}"),
    }
}
