//! Reproduces **Table III**: ablation of the LM backbone inside TimeKD on
//! Exchange with horizon 24 — BERT-, GPT-2- and LLaMA-3.2-tier substitutes
//! (see DESIGN.md for the substitution).
//!
//! Expected shape: accuracy improves with LM capacity, with diminishing
//! returns from base → large (the paper's reason for adopting GPT-2).
//!
//! Run: `cargo bench -p timekd-bench --bench table3_llm_ablation`

use timekd_bench::{f3, ModelKind, Profile, ResultTable, SharedLm};
use timekd_data::{DatasetKind, SplitDataset};
use timekd_lm::{LmConfig, LmSize};
use timekd_nn::Module;

fn main() {
    let profile = Profile::from_env();
    let horizon = 24;
    let ds = SplitDataset::new(
        DatasetKind::Exchange,
        profile.num_steps(horizon),
        42,
        profile.input_len,
        horizon,
    );

    let mut table = ResultTable::new(
        "Table III: LLM backbone ablation (Exchange, FH 24)",
        &["backbone", "LM params", "MSE", "MAE"],
    );

    for size in [LmSize::Small, LmSize::Base, LmSize::Large] {
        let shared = SharedLm::pretrain(size, &profile);
        let lm_params = shared.frozen.model().num_params();
        let r = timekd_bench::run_experiment(ModelKind::TimeKd, &ds, &shared, &profile, 1.0);
        eprintln!(
            "[table3] {} ({} params): MSE {:.3} MAE {:.3}",
            size.backbone_name(),
            lm_params,
            r.mse,
            r.mae
        );
        let _ = LmConfig::for_size(size);
        table.push_row(vec![
            size.backbone_name().to_string(),
            lm_params.to_string(),
            f3(r.mse),
            f3(r.mae),
        ]);
    }

    table.print();
    match table.save_csv("table3_llm_ablation") {
        Ok(p) => println!("saved {}", p.display()),
        Err(e) => eprintln!("csv save failed: {e}"),
    }
}
