//! Microbenchmarks of the hot kernels underneath every experiment:
//! batched matmul, calibrated-LM prompt encoding, subtractive cross
//! attention, and the full student forward pass.
//!
//! Dependency-free harness: each benchmark is warmed up, then timed over a
//! fixed iteration budget, reporting the mean wall time per iteration.
//!
//! Run: `cargo bench -p timekd-bench --bench kernels`

use std::hint::black_box;
use std::time::Instant;

use timekd::{SubtractiveCrossAttention, TimeKdConfig};
use timekd_lm::{pretrain_lm, LmConfig, LmSize, PretrainConfig, PromptTokenizer};
use timekd_tensor::{no_grad, seeded_rng, Tensor};

/// Times `f` and prints mean ns/iter. Warmup runs are discarded so cold
/// caches and lazy allocations do not pollute the measurement.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    for _ in 0..iters.div_ceil(10).max(3) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed().as_nanos() / u128::from(iters);
    println!("{name:<36} {per_iter:>12} ns/iter  ({iters} iters)");
}

fn bench_matmul() {
    let mut rng = seeded_rng(0);
    let a = Tensor::randn([64, 64], 1.0, &mut rng);
    let b = Tensor::randn([64, 64], 1.0, &mut rng);
    bench("matmul_64x64", 200, || {
        no_grad(|| black_box(&a).matmul(black_box(&b)));
    });
    let a3 = Tensor::randn([4, 32, 32], 1.0, &mut rng);
    let b3 = Tensor::randn([4, 32, 32], 1.0, &mut rng);
    bench("matmul_batched_4x32x32", 200, || {
        no_grad(|| black_box(&a3).matmul(black_box(&b3)));
    });
}

fn bench_softmax() {
    let mut rng = seeded_rng(1);
    let x = Tensor::randn([64, 128], 1.0, &mut rng);
    bench("softmax_64x128", 500, || {
        no_grad(|| black_box(&x).softmax_last());
    });
}

fn bench_clm_prompt() {
    let tok = PromptTokenizer::new();
    let (lm, _) = pretrain_lm(
        &tok,
        LmConfig::for_size(LmSize::Base),
        PretrainConfig {
            steps: 1,
            ..Default::default()
        },
    );
    let mut rng = seeded_rng(2);
    let prompt = timekd_lm::sample_corpus_prompt(&tok, 16, &mut rng);
    bench("clm_last_token_embedding", 20, || {
        no_grad(|| lm.last_token_embedding(black_box(&prompt), true));
    });
}

fn bench_sca() {
    let mut rng = seeded_rng(3);
    let sca = SubtractiveCrossAttention::new(32, 64, &mut rng);
    let gt = Tensor::randn([21, 32], 1.0, &mut rng);
    let hd = Tensor::randn([21, 32], 1.0, &mut rng);
    bench("sca_forward_21vars", 100, || {
        no_grad(|| sca.forward(black_box(&gt), black_box(&hd)));
    });
}

#[allow(clippy::field_reassign_with_default)]
fn bench_student_forward() {
    let mut cfg = TimeKdConfig::default();
    cfg.dim = 32;
    let mut rng = seeded_rng(4);
    let student = timekd::Student::new(&cfg, 96, 96, 7, &mut rng);
    let x = Tensor::randn([96, 7], 1.0, &mut rng);
    bench("student_predict_96to96_7vars", 50, || {
        student.predict(black_box(&x));
    });
}

fn main() {
    bench_matmul();
    bench_softmax();
    bench_clm_prompt();
    bench_sca();
    bench_student_forward();
}
