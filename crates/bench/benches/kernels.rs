//! Criterion microbenchmarks of the hot kernels underneath every
//! experiment: batched matmul, calibrated-LM prompt encoding, subtractive
//! cross attention, and the full student forward pass.
//!
//! Run: `cargo bench -p timekd-bench --bench kernels`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use timekd::{SubtractiveCrossAttention, TimeKdConfig};
use timekd_lm::{pretrain_lm, CausalLm, LmConfig, LmSize, PretrainConfig, PromptTokenizer};
use timekd_tensor::{no_grad, seeded_rng, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = seeded_rng(0);
    let a = Tensor::randn([64, 64], 1.0, &mut rng);
    let b = Tensor::randn([64, 64], 1.0, &mut rng);
    c.bench_function("matmul_64x64", |bench| {
        bench.iter(|| no_grad(|| black_box(&a).matmul(black_box(&b))))
    });
    let a3 = Tensor::randn([4, 32, 32], 1.0, &mut rng);
    let b3 = Tensor::randn([4, 32, 32], 1.0, &mut rng);
    c.bench_function("matmul_batched_4x32x32", |bench| {
        bench.iter(|| no_grad(|| black_box(&a3).matmul(black_box(&b3))))
    });
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = seeded_rng(1);
    let x = Tensor::randn([64, 128], 1.0, &mut rng);
    c.bench_function("softmax_64x128", |bench| {
        bench.iter(|| no_grad(|| black_box(&x).softmax_last()))
    });
}

fn bench_clm_prompt(c: &mut Criterion) {
    let tok = PromptTokenizer::new();
    let (lm, _) = pretrain_lm(
        &tok,
        LmConfig::for_size(LmSize::Base),
        PretrainConfig { steps: 1, ..Default::default() },
    );
    let mut rng = seeded_rng(2);
    let prompt = timekd_lm::sample_corpus_prompt(&tok, 16, &mut rng);
    c.bench_function("clm_last_token_embedding", |bench| {
        bench.iter(|| no_grad(|| lm.last_token_embedding(black_box(&prompt), true)))
    });
    let _: &CausalLm = &lm;
}

fn bench_sca(c: &mut Criterion) {
    let mut rng = seeded_rng(3);
    let sca = SubtractiveCrossAttention::new(32, 64, &mut rng);
    let gt = Tensor::randn([21, 32], 1.0, &mut rng);
    let hd = Tensor::randn([21, 32], 1.0, &mut rng);
    c.bench_function("sca_forward_21vars", |bench| {
        bench.iter(|| no_grad(|| sca.forward(black_box(&gt), black_box(&hd))))
    });
}

#[allow(clippy::field_reassign_with_default)]
fn bench_student_forward(c: &mut Criterion) {
    let mut cfg = TimeKdConfig::default();
    cfg.dim = 32;
    let mut rng = seeded_rng(4);
    let student = timekd::Student::new(&cfg, 96, 96, 7, &mut rng);
    let x = Tensor::randn([96, 7], 1.0, &mut rng);
    c.bench_function("student_predict_96to96_7vars", |bench| {
        bench.iter(|| student.predict(black_box(&x)))
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_softmax, bench_clm_prompt, bench_sca, bench_student_forward
);
criterion_main!(kernels);
