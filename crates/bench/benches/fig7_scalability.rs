//! Reproduces **Figure 7**: scalability of TimeKD under data scarcity —
//! training-data fractions 20/40/60/80/100% on ETTm1, ETTh2, Weather and
//! Exchange with horizon 96.
//!
//! Expected shape: MSE and MAE decrease monotonically (modulo noise) as
//! the fraction grows.
//!
//! Run: `cargo bench -p timekd-bench --bench fig7_scalability`

use timekd_bench::{f3, ModelKind, Profile, ResultTable, SharedLm};
use timekd_data::{DatasetKind, SplitDataset};
use timekd_lm::LmSize;

fn main() {
    let profile = Profile::from_env();
    let shared = SharedLm::pretrain(LmSize::Base, &profile);
    let horizon = 96;
    let fractions = [0.2f32, 0.4, 0.6, 0.8, 1.0];

    let mut table = ResultTable::new(
        "Figure 7: effect of training-data fraction (TimeKD, FH 96)",
        &["dataset", "fraction", "MSE", "MAE"],
    );

    for kind in [
        DatasetKind::EttM1,
        DatasetKind::EttH2,
        DatasetKind::Weather,
        DatasetKind::Exchange,
    ] {
        let ds = SplitDataset::new(
            kind,
            profile.num_steps(horizon),
            42,
            profile.input_len,
            horizon,
        );
        for &fraction in &fractions {
            let r =
                timekd_bench::run_experiment(ModelKind::TimeKd, &ds, &shared, &profile, fraction);
            eprintln!(
                "[fig7] {} {:.0}%: MSE {:.3} MAE {:.3}",
                kind.name(),
                fraction * 100.0,
                r.mse,
                r.mae
            );
            table.push_row(vec![
                kind.name().to_string(),
                format!("{:.0}%", fraction * 100.0),
                f3(r.mse),
                f3(r.mae),
            ]);
        }
    }

    table.print();
    match table.save_csv("fig7_scalability") {
        Ok(p) => println!("saved {}", p.display()),
        Err(e) => eprintln!("csv save failed: {e}"),
    }
}
