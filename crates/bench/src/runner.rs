//! Model zoo construction and single-experiment execution.

use std::rc::Rc;
use std::time::Instant;

use timekd::{Forecaster, TimeKd, TimeKdConfig};
use timekd_baselines::{
    Dlinear, DlinearConfig, ITransformer, ITransformerConfig, Ofa, OfaConfig, PatchTst,
    PatchTstConfig, TimeCma, TimeCmaConfig, TimeLlm, TimeLlmConfig, UniTime, UniTimeConfig,
};
use timekd_data::{ForecastWindow, PromptConfig, Split, SplitDataset};
use timekd_lm::{pretrain_lm, FrozenLm, LmConfig, LmSize, PretrainConfig, PromptTokenizer};

use crate::profile::Profile;

/// The models of the paper's comparison tables (plus DLinear as an extra
/// sanity baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The proposed method.
    TimeKd,
    /// Strongest existing baseline (LLM, channel-dependent).
    TimeCma,
    /// LLM reprogramming (channel-independent).
    TimeLlm,
    /// LLM with text instructions (channel-independent).
    UniTime,
    /// Frozen-LM fine-tuning.
    Ofa,
    /// Inverted-embedding Transformer.
    ITransformer,
    /// Channel-independent patching Transformer.
    PatchTst,
    /// Decomposition + linear maps.
    Dlinear,
}

impl ModelKind {
    /// The seven models of Tables I/II in paper column order.
    pub fn paper_models() -> [ModelKind; 7] {
        [
            ModelKind::TimeKd,
            ModelKind::TimeCma,
            ModelKind::TimeLlm,
            ModelKind::UniTime,
            ModelKind::Ofa,
            ModelKind::ITransformer,
            ModelKind::PatchTst,
        ]
    }

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::TimeKd => "TimeKD",
            ModelKind::TimeCma => "TimeCMA",
            ModelKind::TimeLlm => "Time-LLM",
            ModelKind::UniTime => "UniTime",
            ModelKind::Ofa => "OFA",
            ModelKind::ITransformer => "iTransformer",
            ModelKind::PatchTst => "PatchTST",
            ModelKind::Dlinear => "DLinear",
        }
    }

    /// Whether the model contains a language model.
    pub fn is_llm_based(self) -> bool {
        matches!(
            self,
            ModelKind::TimeKd
                | ModelKind::TimeCma
                | ModelKind::TimeLlm
                | ModelKind::UniTime
                | ModelKind::Ofa
        )
    }
}

/// One pretrained frozen LM shared by every LLM-based model in a sweep —
/// the analogue of the shared GPT-2 checkpoint.
pub struct SharedLm {
    /// Prompt tokenizer used to pretrain the LM.
    pub tokenizer: Rc<PromptTokenizer>,
    /// The frozen model.
    pub frozen: Rc<FrozenLm>,
    /// The tier it was built at.
    pub size: LmSize,
}

impl SharedLm {
    /// Pretrains an LM of `size` on the synthetic prompt corpus.
    pub fn pretrain(size: LmSize, profile: &Profile) -> SharedLm {
        let steps = if profile.quick { 600 } else { 1500 };
        Self::pretrain_with_steps(size, steps)
    }

    /// Pretraining with an explicit step budget (tests use small budgets).
    pub fn pretrain_with_steps(size: LmSize, steps: usize) -> SharedLm {
        let tokenizer = Rc::new(PromptTokenizer::new());
        let (lm, _report) = pretrain_lm(
            &tokenizer,
            LmConfig::for_size(size),
            PretrainConfig {
                steps,
                ..Default::default()
            },
        );
        SharedLm {
            tokenizer,
            frozen: Rc::new(FrozenLm::new(lm)),
            size,
        }
    }
}

/// Prompt sizing for the profile.
pub fn prompt_config(profile: &Profile, freq_minutes: usize) -> PromptConfig {
    PromptConfig {
        max_history: if profile.quick { 8 } else { 16 },
        max_future: if profile.quick { 12 } else { 16 },
        freq_minutes,
    }
}

/// The TimeKD configuration a sweep uses (ablation switches default to the
/// full model).
pub fn timekd_config(profile: &Profile, shared: &SharedLm, freq_minutes: usize) -> TimeKdConfig {
    let mut cfg = TimeKdConfig::with_lm_size(shared.size);
    if profile.quick {
        cfg.dim = 16;
        cfg.ffn_hidden = 32;
        cfg.num_heads = 2;
        // Few optimisation steps per run at this scale: compensate with a
        // higher learning rate (all models get the same treatment below).
        cfg.lr = 5e-3;
    }
    cfg.prompt = prompt_config(profile, freq_minutes);
    cfg
}

/// Builds one model of the zoo for the given geometry.
pub fn build_model(
    kind: ModelKind,
    shared: &SharedLm,
    profile: &Profile,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
    freq_minutes: usize,
) -> Box<dyn Forecaster> {
    match kind {
        ModelKind::TimeKd => Box::new(TimeKd::with_frozen_lm(
            shared.frozen.clone(),
            shared.tokenizer.clone(),
            timekd_config(profile, shared, freq_minutes),
            input_len,
            horizon,
            num_vars,
        )),
        ModelKind::TimeCma => Box::new(TimeCma::new(
            shared.frozen.clone(),
            TimeCmaConfig {
                prompt: prompt_config(profile, freq_minutes),
                ..Default::default()
            },
            input_len,
            horizon,
            num_vars,
        )),
        ModelKind::TimeLlm => Box::new(TimeLlm::new(
            shared.frozen.clone(),
            TimeLlmConfig::default(),
            input_len,
            horizon,
            num_vars,
        )),
        ModelKind::UniTime => Box::new(UniTime::new(
            shared.frozen.clone(),
            UniTimeConfig::default(),
            input_len,
            horizon,
            num_vars,
        )),
        ModelKind::Ofa => Box::new(Ofa::new(
            shared.frozen.clone(),
            OfaConfig::default(),
            input_len,
            horizon,
            num_vars,
        )),
        ModelKind::ITransformer => Box::new(ITransformer::new(
            ITransformerConfig::default(),
            input_len,
            horizon,
            num_vars,
        )),
        ModelKind::PatchTst => Box::new(PatchTst::new(
            PatchTstConfig::default(),
            input_len,
            horizon,
            num_vars,
        )),
        ModelKind::Dlinear => Box::new(Dlinear::new(
            DlinearConfig::default(),
            input_len,
            horizon,
            num_vars,
        )),
    }
}

/// Outcome of one (model, dataset, horizon) run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Model display name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Forecast horizon.
    pub horizon: usize,
    /// Test MSE.
    pub mse: f32,
    /// Test MAE.
    pub mae: f32,
    /// Wall-clock seconds per training epoch.
    pub train_secs_per_epoch: f64,
    /// Wall-clock seconds per inference window (test batch size 1, as in
    /// the paper).
    pub infer_secs_per_window: f64,
    /// Trainable parameter count.
    pub params: usize,
}

/// Training/evaluation window sets for a run.
pub struct RunWindows {
    /// Training windows (strided, possibly truncated by `train_fraction`).
    pub train: Vec<ForecastWindow>,
    /// Test windows.
    pub test: Vec<ForecastWindow>,
}

/// Extracts capped window sets per the profile. `train_fraction < 1`
/// reproduces few-shot (Table V) and scalability (Fig. 7) protocols.
pub fn run_windows(ds: &SplitDataset, profile: &Profile, train_fraction: f32) -> RunWindows {
    let train_stride = profile.stride_for(ds.num_windows(Split::Train), profile.max_train_windows);
    let test_stride = profile.stride_for(ds.num_windows(Split::Test), profile.max_eval_windows);
    RunWindows {
        train: ds.windows_with(Split::Train, train_stride, train_fraction),
        test: ds.windows(Split::Test, test_stride),
    }
}

/// Trains `model` on `windows.train` for `profile.epochs` and measures test
/// error plus the Table IV efficiency metrics.
pub fn run_model(
    model: &mut dyn Forecaster,
    windows: &RunWindows,
    ds: &SplitDataset,
    profile: &Profile,
) -> RunResult {
    let t0 = Instant::now();
    for _ in 0..profile.epochs {
        model.train_epoch(&windows.train);
    }
    let train_secs_per_epoch = t0.elapsed().as_secs_f64() / profile.epochs as f64;

    let (mse, mae) = model.evaluate(&windows.test);

    let infer_t0 = Instant::now();
    for w in &windows.test {
        let _ = model.predict(&w.x);
    }
    let infer_secs_per_window = infer_t0.elapsed().as_secs_f64() / windows.test.len().max(1) as f64;

    RunResult {
        model: model.name(),
        dataset: ds.kind().name().to_string(),
        horizon: ds.horizon(),
        mse,
        mae,
        train_secs_per_epoch,
        infer_secs_per_window,
        params: model.num_trainable_params(),
    }
}

/// Convenience wrapper: build, train, evaluate one configuration.
pub fn run_experiment(
    kind: ModelKind,
    ds: &SplitDataset,
    shared: &SharedLm,
    profile: &Profile,
    train_fraction: f32,
) -> RunResult {
    let mut model = build_model(
        kind,
        shared,
        profile,
        ds.input_len(),
        ds.horizon(),
        ds.num_vars(),
        ds.kind().freq_minutes(),
    );
    let windows = run_windows(ds, profile, train_fraction);
    run_model(model.as_mut(), &windows, ds, profile)
}

/// Averages a run over several model seeds (the paper repeats each
/// experiment with three seeds). Dataset and windows stay fixed; only the
/// model initialisation varies.
pub fn run_experiment_seeds(
    kind: ModelKind,
    ds: &SplitDataset,
    shared: &SharedLm,
    profile: &Profile,
    train_fraction: f32,
    seeds: &[u64],
) -> RunResult {
    assert!(!seeds.is_empty(), "need at least one seed");
    let windows = run_windows(ds, profile, train_fraction);
    let mut agg: Option<RunResult> = None;
    for &seed in seeds {
        let mut model = build_model_seeded(
            kind,
            shared,
            profile,
            ds.input_len(),
            ds.horizon(),
            ds.num_vars(),
            ds.kind().freq_minutes(),
            seed,
        );
        let r = run_model(model.as_mut(), &windows, ds, profile);
        agg = Some(match agg {
            None => r,
            Some(mut a) => {
                a.mse += r.mse;
                a.mae += r.mae;
                a.train_secs_per_epoch += r.train_secs_per_epoch;
                a.infer_secs_per_window += r.infer_secs_per_window;
                a
            }
        });
    }
    let mut a = agg.expect("at least one seed");
    let k = seeds.len() as f32;
    a.mse /= k;
    a.mae /= k;
    a.train_secs_per_epoch /= k as f64;
    a.infer_secs_per_window /= k as f64;
    a
}

/// [`build_model`] with an explicit model seed overriding each config's
/// default.
#[allow(clippy::too_many_arguments)]
pub fn build_model_seeded(
    kind: ModelKind,
    shared: &SharedLm,
    profile: &Profile,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
    freq_minutes: usize,
    seed: u64,
) -> Box<dyn Forecaster> {
    match kind {
        ModelKind::TimeKd => {
            let mut cfg = timekd_config(profile, shared, freq_minutes);
            cfg.seed = seed;
            Box::new(TimeKd::with_frozen_lm(
                shared.frozen.clone(),
                shared.tokenizer.clone(),
                cfg,
                input_len,
                horizon,
                num_vars,
            ))
        }
        ModelKind::TimeCma => Box::new(TimeCma::new(
            shared.frozen.clone(),
            TimeCmaConfig {
                prompt: prompt_config(profile, freq_minutes),
                seed,
                ..Default::default()
            },
            input_len,
            horizon,
            num_vars,
        )),
        ModelKind::TimeLlm => Box::new(TimeLlm::new(
            shared.frozen.clone(),
            TimeLlmConfig {
                seed,
                ..Default::default()
            },
            input_len,
            horizon,
            num_vars,
        )),
        ModelKind::UniTime => Box::new(UniTime::new(
            shared.frozen.clone(),
            UniTimeConfig {
                seed,
                ..Default::default()
            },
            input_len,
            horizon,
            num_vars,
        )),
        ModelKind::Ofa => Box::new(Ofa::new(
            shared.frozen.clone(),
            OfaConfig {
                seed,
                ..Default::default()
            },
            input_len,
            horizon,
            num_vars,
        )),
        ModelKind::ITransformer => Box::new(ITransformer::new(
            ITransformerConfig {
                seed,
                ..Default::default()
            },
            input_len,
            horizon,
            num_vars,
        )),
        ModelKind::PatchTst => Box::new(PatchTst::new(
            PatchTstConfig {
                seed,
                ..Default::default()
            },
            input_len,
            horizon,
            num_vars,
        )),
        ModelKind::Dlinear => Box::new(Dlinear::new(
            DlinearConfig {
                seed,
                ..Default::default()
            },
            input_len,
            horizon,
            num_vars,
        )),
    }
}

/// Zero-shot transfer (Table VI): train on `source`, evaluate on `target`
/// (same geometry). Returns (mse, mae) on the target's test split.
pub fn run_zero_shot(
    kind: ModelKind,
    source: &SplitDataset,
    target: &SplitDataset,
    shared: &SharedLm,
    profile: &Profile,
) -> (f32, f32) {
    assert_eq!(
        source.num_vars(),
        target.num_vars(),
        "zero-shot needs matching N"
    );
    assert_eq!(source.horizon(), target.horizon());
    assert_eq!(source.input_len(), target.input_len());
    let mut model = build_model(
        kind,
        shared,
        profile,
        source.input_len(),
        source.horizon(),
        source.num_vars(),
        source.kind().freq_minutes(),
    );
    let windows = run_windows(source, profile, 1.0);
    for _ in 0..profile.epochs {
        model.train_epoch(&windows.train);
    }
    let target_windows = run_windows(target, profile, 1.0);
    model.evaluate(&target_windows.test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_data::DatasetKind;

    fn tiny_profile() -> Profile {
        Profile {
            base_steps: 500,
            epochs: 1,
            max_train_windows: 6,
            max_eval_windows: 6,
            input_len: 32,
            long_horizons: &[8],
            quick: true,
        }
    }

    #[test]
    fn all_models_build_and_run() {
        let profile = tiny_profile();
        let shared = SharedLm::pretrain_with_steps(LmSize::Small, 5);
        let ds = SplitDataset::new(DatasetKind::EttH1, 500, 1, 32, 8);
        for kind in ModelKind::paper_models() {
            let r = run_experiment(kind, &ds, &shared, &profile, 1.0);
            assert!(r.mse.is_finite() && r.mse > 0.0, "{kind:?}");
            assert!(r.params > 0, "{kind:?}");
            assert_eq!(r.model, kind.name());
        }
    }

    #[test]
    fn train_fraction_reduces_training_set() {
        let profile = tiny_profile();
        let ds = SplitDataset::new(DatasetKind::EttH1, 500, 1, 32, 8);
        let full = run_windows(&ds, &profile, 1.0);
        let few = run_windows(&ds, &profile, 0.1);
        assert!(few.train.len() < full.train.len());
        assert_eq!(few.test.len(), full.test.len(), "test set unchanged");
    }

    #[test]
    fn zero_shot_runs_between_ett_pairs() {
        let profile = tiny_profile();
        let shared = SharedLm::pretrain_with_steps(LmSize::Small, 5);
        let src = SplitDataset::new(DatasetKind::EttH1, 500, 1, 32, 8);
        let dst = SplitDataset::new(DatasetKind::EttH2, 500, 1, 32, 8);
        let (mse, mae) = run_zero_shot(ModelKind::ITransformer, &src, &dst, &shared, &profile);
        assert!(mse.is_finite() && mae.is_finite());
    }

    #[test]
    fn multi_seed_average_runs() {
        let profile = tiny_profile();
        let shared = SharedLm::pretrain_with_steps(LmSize::Small, 5);
        let ds = SplitDataset::new(DatasetKind::EttH1, 500, 1, 32, 8);
        let avg = run_experiment_seeds(
            ModelKind::ITransformer,
            &ds,
            &shared,
            &profile,
            1.0,
            &[1, 2, 3],
        );
        assert!(avg.mse.is_finite() && avg.mse > 0.0);
        // Averaging over seeds must differ from any single degenerate
        // value only by being finite; check it sits between per-seed runs.
        let singles: Vec<f32> = [1u64, 2, 3]
            .iter()
            .map(|&s| {
                run_experiment_seeds(ModelKind::ITransformer, &ds, &shared, &profile, 1.0, &[s]).mse
            })
            .collect();
        let lo = singles.iter().cloned().fold(f32::MAX, f32::min);
        let hi = singles.iter().cloned().fold(f32::MIN, f32::max);
        assert!(avg.mse >= lo - 1e-5 && avg.mse <= hi + 1e-5);
    }

    #[test]
    fn paper_models_order_matches_tables() {
        let names: Vec<_> = ModelKind::paper_models().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "TimeKD",
                "TimeCMA",
                "Time-LLM",
                "UniTime",
                "OFA",
                "iTransformer",
                "PatchTST"
            ]
        );
    }
}
