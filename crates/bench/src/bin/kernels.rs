//! Kernel + end-to-end perf baseline runner.
//!
//! Measures the hot matmul kernels (forward and backward) serial vs
//! parallel, the f32x8 SIMD kernels against the `TIMEKD_SIMD=off` scalar
//! fallback (`speedup_simd_vs_scalar`), a naive-kernel reference (the
//! pre-optimisation triple loop with the `a_ik == 0.0` skip, kept here so
//! the register-blocking win stays measurable), the int8-quantized
//! compiled student against the f32 plan (accuracy-gated: the run exits
//! non-zero if the quantized forecast drifts past the stated MSE bound),
//! the fused attention kernel against the composed op
//! chain it replaced (per LM size + encoder geometry, forward and
//! training step), the compiled student plan against the dynamic graph
//! engine (per-window predict and a full inference-epoch sweep), the
//! compiled *training* plan against the dynamic training idiom (one full
//! step — forward, reverse schedule, fused AdamW update — and a
//! multi-window training epoch), the batched multi-window training plan
//! (per-window gradient lanes replayed data-parallel with a pinned
//! window-order reduction) against the serial per-window planned epoch,
//! and teacher/student epoch times, then emits a
//! machine-readable `BENCH_<unix-seconds>.json` at the repo root so the
//! perf trajectory is tracked across PRs.
//!
//! Usage:
//!
//! ```text
//! cargo run -p timekd-bench --release --bin kernels            # run + emit JSON
//! QUICK=1 cargo run -p timekd-bench --release --bin kernels    # smoke-sized run
//! cargo run -p timekd-bench --release --bin kernels -- --validate <file.json>
//! cargo run -p timekd-bench --release --bin kernels -- --validate-trace <trace.json>
//! ```
//!
//! `--validate-trace` checks a `timekd-trace/v1` report (as emitted by
//! `TIMEKD_TRACE=1 TIMEKD_TRACE_OUT=… cargo run --example quickstart`)
//! for both schema shape and pipeline coverage.
//!
//! `TIMEKD_THREADS` sizes the worker pool (the "parallel" columns);
//! "serial" numbers are taken in-process via
//! `timekd_tensor::parallel::with_threads(1, …)`, which is the same code
//! path `TIMEKD_THREADS=1` selects. `TIMEKD_BENCH_DIR` overrides the
//! output directory (default: repo root).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use timekd::{
    compile_student_training_plan_batched, trace_student_loss, PlannedStudent, PlannedTrainer,
    QuantizedStudent, Student, TimeKd, TimeKdConfig,
};
use timekd_bench::{
    json::Json, run_windows, timekd_config, validate_kernel_bench, validate_trace_coverage,
    validate_trace_report, Profile, SharedLm,
};
use timekd_data::{DatasetKind, SplitDataset};
use timekd_lm::LmSize;
use timekd_nn::{smooth_l1_loss, AdamW, AdamWConfig, Module};
use timekd_tensor::parallel::{configured_threads, with_threads};
use timekd_tensor::{no_grad, seeded_rng, with_simd, BatchTrainExecutor, PlanOptimizer, Tensor};

/// Minimum wall time of `f` in milliseconds over `iters` runs (after one
/// warmup run). Minimum, not mean: scheduling noise only ever adds time.
fn time_min_ms(iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The pre-PR3 serial kernel, verbatim: i-k-j loop with a per-element
/// zero-skip branch. Kept as the reference the blocked kernel is judged
/// against (`speedup_blocked_vs_naive` in the JSON).
fn naive_mm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                *o += a_ik * b_kj;
            }
        }
    }
}

struct ShapeSpec {
    name: &'static str,
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    iters: u32,
}

fn shapes(quick: bool) -> Vec<ShapeSpec> {
    let mut s = vec![
        ShapeSpec {
            name: "mm_64",
            batch: 1,
            m: 64,
            k: 64,
            n: 64,
            iters: if quick { 5 } else { 40 },
        },
        ShapeSpec {
            name: "mm_128",
            batch: 1,
            m: 128,
            k: 128,
            n: 128,
            iters: if quick { 3 } else { 20 },
        },
        ShapeSpec {
            name: "mm_256",
            batch: 1,
            m: 256,
            k: 256,
            n: 256,
            iters: if quick { 2 } else { 8 },
        },
        ShapeSpec {
            name: "mm_rect_512x64x256",
            batch: 1,
            m: 512,
            k: 64,
            n: 256,
            iters: if quick { 2 } else { 8 },
        },
        ShapeSpec {
            name: "mm_batched_8x96",
            batch: 8,
            m: 96,
            k: 96,
            n: 96,
            iters: if quick { 2 } else { 8 },
        },
    ];
    if !quick {
        s.push(ShapeSpec {
            name: "mm_320",
            batch: 1,
            m: 320,
            k: 320,
            n: 320,
            iters: 4,
        });
    }
    s
}

/// An attention geometry: `[H, T_q, dh]` queries against `[H, T_k, dh]`
/// keys/values, optionally through a causal mask (as in the CLM blocks).
struct AttnShapeSpec {
    name: &'static str,
    heads: usize,
    tq: usize,
    tk: usize,
    dh: usize,
    causal: bool,
    iters: u32,
}

/// The attention shapes that actually occur in this repo: one per LM size
/// (`LmConfig::for_size` dims at a typical prompt length, causal like the
/// CLM blocks) plus the student/teacher encoder geometry (core config:
/// dim 32, 4 heads, over the input window).
fn attention_shapes(quick: bool) -> Vec<AttnShapeSpec> {
    let mut s = vec![
        AttnShapeSpec {
            name: "attn_lm_small",
            heads: 2,
            tq: 32,
            tk: 32,
            dh: 12,
            causal: true,
            iters: if quick { 5 } else { 40 },
        },
        AttnShapeSpec {
            name: "attn_lm_base",
            heads: 4,
            tq: 32,
            tk: 32,
            dh: 8,
            causal: true,
            iters: if quick { 5 } else { 40 },
        },
        AttnShapeSpec {
            name: "attn_lm_large",
            heads: 4,
            tq: 48,
            tk: 48,
            dh: 12,
            causal: true,
            iters: if quick { 5 } else { 40 },
        },
        AttnShapeSpec {
            name: "attn_encoder_48",
            heads: 4,
            tq: 48,
            tk: 48,
            dh: 8,
            causal: false,
            iters: if quick { 5 } else { 40 },
        },
    ];
    if !quick {
        s.push(AttnShapeSpec {
            name: "attn_encoder_96",
            heads: 4,
            tq: 96,
            tk: 96,
            dh: 8,
            causal: false,
            iters: 20,
        });
    }
    s
}

/// Builds a causal additive mask (as `timekd_nn::causal_mask` does) on raw
/// data, so the bench stays at the tensor layer.
fn causal_mask_tensor(t: usize) -> Tensor {
    let mut data = vec![0.0f32; t * t];
    for i in 0..t {
        for j in (i + 1)..t {
            data[i * t + j] = -1e9;
        }
    }
    Tensor::from_vec(data, [t, t])
}

/// One attention-shape measurement: the fused kernel against the composed
/// op chain it replaced (matmul → scale → mask → softmax → matmul → merge
/// + head-averaged map), forward-only and forward+backward.
fn bench_attention_shape(spec: &AttnShapeSpec) -> Json {
    let AttnShapeSpec {
        name,
        heads,
        tq,
        tk,
        dh,
        causal,
        iters,
    } = *spec;
    let mut rng = seeded_rng(0xA77E ^ (heads * tq * dh) as u64);
    let q0 = Tensor::randn([heads, tq, dh], 1.0, &mut rng).to_vec();
    let k0 = Tensor::randn([heads, tk, dh], 1.0, &mut rng).to_vec();
    let v0 = Tensor::randn([heads, tk, dh], 1.0, &mut rng).to_vec();
    let mask = causal.then(|| causal_mask_tensor(tq));

    let composed = |q: &Tensor, k: &Tensor, v: &Tensor| -> (Tensor, Tensor) {
        let scale = 1.0 / (dh as f32).sqrt();
        let mut scores = q.matmul(&k.transpose_last()).mul_scalar(scale);
        if let Some(m) = &mask {
            scores = scores.add(m);
        }
        let attn = scores.softmax_last();
        let ctx = attn.matmul(v);
        let merged = ctx.permute(&[1, 0, 2]).reshape([tq, heads * dh]);
        (merged, attn.mean_axis(0, false))
    };

    let q = Tensor::from_vec(q0.clone(), [heads, tq, dh]);
    let k = Tensor::from_vec(k0.clone(), [heads, tk, dh]);
    let v = Tensor::from_vec(v0.clone(), [heads, tk, dh]);
    let fused_ms = time_min_ms(iters, || {
        no_grad(|| {
            std::hint::black_box(Tensor::fused_attention(
                std::hint::black_box(&q),
                &k,
                &v,
                mask.as_ref(),
            ));
        });
    });
    let composed_ms = time_min_ms(iters, || {
        no_grad(|| {
            std::hint::black_box(composed(std::hint::black_box(&q), &k, &v));
        });
    });

    // Training step: forward + backward through the merged context — the
    // per-layer hot path (every attention layer trains through its
    // context; the map is trained through only at the last student layer
    // by correlation distillation, and that mixed cost is what the
    // end-to-end epoch rows measure).
    let fused_train_ms = time_min_ms(iters, || {
        let q = Tensor::param(q0.clone(), [heads, tq, dh]);
        let k = Tensor::param(k0.clone(), [heads, tk, dh]);
        let v = Tensor::param(v0.clone(), [heads, tk, dh]);
        let (out, _map) = Tensor::fused_attention(&q, &k, &v, mask.as_ref());
        out.sum().backward();
    });
    let composed_train_ms = time_min_ms(iters, || {
        let q = Tensor::param(q0.clone(), [heads, tq, dh]);
        let k = Tensor::param(k0.clone(), [heads, tk, dh]);
        let v = Tensor::param(v0.clone(), [heads, tk, dh]);
        let (out, _map) = composed(&q, &k, &v);
        out.sum().backward();
    });

    Json::obj(vec![
        ("name", Json::str(name)),
        ("heads", Json::num(heads as f64)),
        ("tq", Json::num(tq as f64)),
        ("tk", Json::num(tk as f64)),
        ("dh", Json::num(dh as f64)),
        ("causal", Json::Bool(causal)),
        ("iters", Json::num(f64::from(iters))),
        ("fused_ms", Json::num(fused_ms)),
        ("composed_ms", Json::num(composed_ms)),
        ("speedup_fused", Json::num(composed_ms / fused_ms)),
        ("fused_train_ms", Json::num(fused_train_ms)),
        ("composed_train_ms", Json::num(composed_train_ms)),
        (
            "speedup_fused_train",
            Json::num(composed_train_ms / fused_train_ms),
        ),
    ])
}

/// One kernel-shape measurement: forward serial/parallel/naive, plus a
/// forward+backward pass (which exercises the NT/TN gradient kernels).
fn bench_shape(spec: &ShapeSpec, threads: usize) -> Json {
    let ShapeSpec {
        name,
        batch,
        m,
        k,
        n,
        iters,
    } = *spec;
    let mut rng = seeded_rng(0xBEEF ^ (m * n + k) as u64);
    let (a, b) = if batch == 1 {
        (
            Tensor::randn([m, k], 1.0, &mut rng),
            Tensor::randn([k, n], 1.0, &mut rng),
        )
    } else {
        (
            Tensor::randn([batch, m, k], 1.0, &mut rng),
            Tensor::randn([batch, k, n], 1.0, &mut rng),
        )
    };

    let fwd = |_: ()| no_grad(|| std::hint::black_box(&a).matmul(std::hint::black_box(&b)));
    let serial_ms = with_threads(1, || time_min_ms(iters, || drop(fwd(()))));
    let parallel_ms = with_threads(threads, || time_min_ms(iters, || drop(fwd(()))));
    // Scalar-fallback reference (`TIMEKD_SIMD=off`): same serial path
    // through the pre-SIMD 4-wide kernels, so `speedup_simd_vs_scalar`
    // isolates what the f32x8 microkernels buy.
    let serial_scalar_ms = with_simd(false, || {
        with_threads(1, || time_min_ms(iters, || drop(fwd(()))))
    });

    // Naive reference runs on the raw buffers (per batch for 3-D shapes).
    let (av, bv) = (a.to_vec(), b.to_vec());
    let naive_ms = time_min_ms(iters, || {
        let mut out = vec![0.0f32; batch * m * n];
        for t in 0..batch {
            naive_mm(
                &av[t * m * k..(t + 1) * m * k],
                &bv[t * k * n..(t + 1) * k * n],
                &mut out[t * m * n..(t + 1) * m * n],
                m,
                k,
                n,
            );
        }
        std::hint::black_box(&out);
    });

    // Forward + backward (sum loss): the backward pass routes through the
    // NT (gA) and TN (gB) gradient kernels at the same geometry.
    let shape_a: Vec<usize> = if batch == 1 {
        vec![m, k]
    } else {
        vec![batch, m, k]
    };
    let shape_b: Vec<usize> = if batch == 1 {
        vec![k, n]
    } else {
        vec![batch, k, n]
    };
    let train = || {
        let ap = Tensor::param(av.clone(), &shape_a[..]);
        let bp = Tensor::param(bv.clone(), &shape_b[..]);
        ap.matmul(&bp).sum().backward();
    };
    let grad_serial_ms = with_threads(1, || time_min_ms(iters, train));
    let grad_parallel_ms = with_threads(threads, || time_min_ms(iters, train));

    let flops = (2 * batch * m * k * n) as f64;
    let gflops = |ms: f64| flops / (ms / 1e3) / 1e9;
    Json::obj(vec![
        ("name", Json::str(name)),
        ("batch", Json::num(batch as f64)),
        ("m", Json::num(m as f64)),
        ("k", Json::num(k as f64)),
        ("n", Json::num(n as f64)),
        ("iters", Json::num(f64::from(iters))),
        ("serial_ms", Json::num(serial_ms)),
        ("serial_scalar_ms", Json::num(serial_scalar_ms)),
        (
            "speedup_simd_vs_scalar",
            Json::num(serial_scalar_ms / serial_ms),
        ),
        ("parallel_ms", Json::num(parallel_ms)),
        ("speedup_parallel", Json::num(serial_ms / parallel_ms)),
        ("gflops_serial", Json::num(gflops(serial_ms))),
        ("gflops_parallel", Json::num(gflops(parallel_ms))),
        ("naive_ms", Json::num(naive_ms)),
        ("speedup_blocked_vs_naive", Json::num(naive_ms / serial_ms)),
        ("grad_serial_ms", Json::num(grad_serial_ms)),
        ("grad_parallel_ms", Json::num(grad_parallel_ms)),
        (
            "speedup_grad_parallel",
            Json::num(grad_serial_ms / grad_parallel_ms),
        ),
    ])
}

/// Teacher (Alg. 1) and student (Alg. 2) epoch wall time, serial vs
/// parallel, on a small synthetic ETTh1 setup. One untimed warmup epoch
/// per algorithm first, so the frozen-LM prompt cache is hot and both
/// timed passes measure the same (cached) work.
fn bench_end_to_end(quick: bool, threads: usize) -> Json {
    let profile = if quick {
        Profile::quick()
    } else {
        Profile::full()
    };
    let shared = SharedLm::pretrain_with_steps(LmSize::Base, 120);
    let (input_len, horizon) = (48, 24);
    let ds = SplitDataset::new(DatasetKind::EttH1, 600, 7, input_len, horizon);
    let cfg = timekd_config(&profile, &shared, DatasetKind::EttH1.freq_minutes());
    let mut model = TimeKd::with_frozen_lm(
        shared.frozen.clone(),
        shared.tokenizer.clone(),
        cfg,
        input_len,
        horizon,
        ds.num_vars(),
    );
    let mut windows = run_windows(&ds, &profile, 1.0).train;
    windows.truncate(if quick { 4 } else { 8 });

    // Warmup: populates the frozen-LM embedding cache.
    let _ = model.train_teacher_epoch(&windows);
    let _ = model.train_student_epoch(&windows);

    let teacher_serial_ms = with_threads(1, || {
        time_min_ms(1, || {
            let _ = model.train_teacher_epoch(&windows);
        })
    });
    let teacher_parallel_ms = with_threads(threads, || {
        time_min_ms(1, || {
            let _ = model.train_teacher_epoch(&windows);
        })
    });
    let student_serial_ms = with_threads(1, || {
        time_min_ms(1, || {
            let _ = model.train_student_epoch(&windows);
        })
    });
    let student_parallel_ms = with_threads(threads, || {
        time_min_ms(1, || {
            let _ = model.train_student_epoch(&windows);
        })
    });

    Json::obj(vec![
        ("dataset", Json::str("ETTh1-synthetic")),
        ("train_windows", Json::num(windows.len() as f64)),
        ("teacher_epoch_serial_ms", Json::num(teacher_serial_ms)),
        ("teacher_epoch_parallel_ms", Json::num(teacher_parallel_ms)),
        (
            "speedup_teacher",
            Json::num(teacher_serial_ms / teacher_parallel_ms),
        ),
        ("student_epoch_serial_ms", Json::num(student_serial_ms)),
        ("student_epoch_parallel_ms", Json::num(student_parallel_ms)),
        (
            "speedup_student",
            Json::num(student_serial_ms / student_parallel_ms),
        ),
    ])
}

/// Planned vs dynamic student predict: per-window forecast latency plus a
/// full inference-epoch sweep over a batch of windows. "Dynamic" runs
/// [`Student::predict`] through the graph engine (worker pool at
/// `threads`); "planned" replays the compiled static plan (fixed schedule,
/// liveness-colored arena, zero allocation) through
/// [`PlannedStudent::predict_into`]. The two are bitwise identical — this
/// row measures what the plan compiler buys, not what it changes.
fn bench_planned_student(quick: bool, threads: usize) -> Json {
    let (input_len, horizon, num_vars) = (48usize, 24usize, 7usize);
    let config = TimeKdConfig::default();
    let mut rng = seeded_rng(0x1A7E);
    let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
    let mut planned = PlannedStudent::new(&student, &config).expect("student plan compiles");

    let windows: Vec<Tensor> = (0..if quick { 8 } else { 32 })
        .map(|_| Tensor::randn([input_len, num_vars], 1.0, &mut rng))
        .collect();
    let iters = if quick { 5 } else { 40 };
    let epoch_iters = if quick { 2 } else { 8 };

    // Sanity: the plan must reproduce the dynamic forecast bitwise before
    // its timings mean anything.
    let reference = student.predict(&windows[0]).to_vec();
    assert_eq!(
        planned.predict(&windows[0]).to_vec(),
        reference,
        "planned forecast diverged from the dynamic engine"
    );

    let x = &windows[0];
    let predict_dynamic_ms = with_threads(threads, || {
        time_min_ms(iters, || {
            std::hint::black_box(student.predict(std::hint::black_box(x)));
        })
    });
    let mut out = vec![0.0f32; horizon * num_vars];
    let predict_planned_ms = time_min_ms(iters, || {
        planned.predict_into(std::hint::black_box(x), &mut out);
        std::hint::black_box(&out);
    });

    let epoch_dynamic_ms = with_threads(threads, || {
        time_min_ms(epoch_iters, || {
            for w in &windows {
                std::hint::black_box(student.predict(w));
            }
        })
    });
    let epoch_planned_ms = time_min_ms(epoch_iters, || {
        for w in &windows {
            planned.predict_into(w, &mut out);
        }
        std::hint::black_box(&out);
    });

    let plan = planned.plan();
    Json::obj(vec![
        ("input_len", Json::num(input_len as f64)),
        ("horizon", Json::num(horizon as f64)),
        ("num_vars", Json::num(num_vars as f64)),
        ("windows", Json::num(windows.len() as f64)),
        ("iters", Json::num(f64::from(iters))),
        ("predict_dynamic_ms", Json::num(predict_dynamic_ms)),
        ("predict_planned_ms", Json::num(predict_planned_ms)),
        (
            "speedup_planned_predict",
            Json::num(predict_dynamic_ms / predict_planned_ms),
        ),
        ("epoch_dynamic_ms", Json::num(epoch_dynamic_ms)),
        ("epoch_planned_ms", Json::num(epoch_planned_ms)),
        (
            "speedup_planned_epoch",
            Json::num(epoch_dynamic_ms / epoch_planned_ms),
        ),
        ("plan_steps", Json::num(plan.steps().len() as f64)),
        ("plan_arena_f32", Json::num(plan.arena_len() as f64)),
    ])
}

/// Planned vs dynamic student *training*: one full step (forward, reverse
/// schedule, fused optimizer update) and a multi-window epoch. "Dynamic"
/// runs the graph-engine idiom (`zero_grad` → `forward` → loss →
/// `backward` → `AdamW::step`, worker pool at `threads`); "planned" replays
/// the compiled training plan through
/// [`PlannedTrainer::planned_train_step`] — fixed reverse schedule,
/// liveness-colored arena shared across forward and backward, zero
/// allocation. The two produce bitwise-identical parameter updates (the
/// sanity block asserts it over two steps: the step-2 losses can only
/// match if the step-1 updates matched), so this row measures scheduling
/// cost only.
fn bench_planned_training(quick: bool, threads: usize) -> Json {
    let (input_len, horizon, num_vars) = (48usize, 24usize, 7usize);
    let config = TimeKdConfig::default();
    let optimizer = PlanOptimizer::AdamW {
        lr: 0.01,
        beta1: 0.9,
        beta2: 0.999,
        eps: 1e-8,
        weight_decay: 0.01,
    };

    let mut wrng = seeded_rng(0x7EA1);
    let windows: Vec<(Tensor, Tensor)> = (0..if quick { 4 } else { 16 })
        .map(|_| {
            (
                Tensor::randn([input_len, num_vars], 1.0, &mut wrng),
                Tensor::randn([horizon, num_vars], 0.5, &mut wrng),
            )
        })
        .collect();
    let iters = if quick { 3 } else { 20 };
    let epoch_iters = if quick { 1 } else { 4 };

    // Sanity: the planned step must track the dynamic engine bitwise
    // before its timings mean anything. Two steps: the second loss agrees
    // only if the first parameter update already agreed.
    {
        let mut rng = seeded_rng(0x1A7E);
        let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
        let mut trainer =
            PlannedTrainer::new(&student, &config, optimizer).expect("training plan compiles");
        let params = student.params();
        let mut adamw = AdamW::new(0.01, AdamWConfig::default());
        for (x, y) in windows.iter().take(2) {
            student.zero_grad();
            let loss = smooth_l1_loss(&student.forward(x).forecast, y);
            loss.backward();
            adamw.step(&params);
            assert_eq!(
                trainer.planned_train_step(x, y).to_bits(),
                loss.item().to_bits(),
                "planned training step diverged from the dynamic engine"
            );
        }
    }

    // Dynamic timings: a fresh student + optimizer, graph engine on the
    // worker pool. Each timed call is a genuine step (params move), which
    // is exactly what an epoch does.
    let mut rng = seeded_rng(0x1A7E);
    let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
    let params = student.params();
    let mut adamw = AdamW::new(0.01, AdamWConfig::default());
    let (x0, y0) = &windows[0];
    let train_step_dynamic_ms = with_threads(threads, || {
        time_min_ms(iters, || {
            student.zero_grad();
            let loss = smooth_l1_loss(&student.forward(x0).forecast, y0);
            loss.backward();
            adamw.step(&params);
            std::hint::black_box(loss.item());
        })
    });
    let train_epoch_dynamic_ms = with_threads(threads, || {
        time_min_ms(epoch_iters, || {
            for (x, y) in &windows {
                student.zero_grad();
                let loss = smooth_l1_loss(&student.forward(x).forecast, y);
                loss.backward();
                adamw.step(&params);
                std::hint::black_box(loss.item());
            }
        })
    });

    // Planned timings: a fresh trainer from the same seed, serial (the
    // plan executor is single-threaded by design).
    let mut rng = seeded_rng(0x1A7E);
    let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
    let mut trainer =
        PlannedTrainer::new(&student, &config, optimizer).expect("training plan compiles");
    let train_step_planned_ms = time_min_ms(iters, || {
        std::hint::black_box(trainer.planned_train_step(x0, y0));
    });
    let train_epoch_planned_ms = time_min_ms(epoch_iters, || {
        for (x, y) in &windows {
            std::hint::black_box(trainer.planned_train_step(x, y));
        }
    });

    let plan = trainer.plan();
    Json::obj(vec![
        ("input_len", Json::num(input_len as f64)),
        ("horizon", Json::num(horizon as f64)),
        ("num_vars", Json::num(num_vars as f64)),
        ("windows", Json::num(windows.len() as f64)),
        ("iters", Json::num(f64::from(iters))),
        ("train_step_dynamic_ms", Json::num(train_step_dynamic_ms)),
        ("train_step_planned_ms", Json::num(train_step_planned_ms)),
        (
            "speedup_planned_train_step",
            Json::num(train_step_dynamic_ms / train_step_planned_ms),
        ),
        ("train_epoch_dynamic_ms", Json::num(train_epoch_dynamic_ms)),
        ("train_epoch_planned_ms", Json::num(train_epoch_planned_ms)),
        (
            "speedup_planned_train_epoch",
            Json::num(train_epoch_dynamic_ms / train_epoch_planned_ms),
        ),
        ("bwd_steps", Json::num(plan.bwd_steps().len() as f64)),
        ("update_steps", Json::num(plan.update_steps().len() as f64)),
    ])
}

/// Batched multi-window planned training vs the per-window planned epoch:
/// the same forecast-loss training graph is lowered per micro-batch size
/// `B` into per-window gradient lanes replayed data-parallel on the worker
/// pool, folded by the pinned window-order reduction into one fused
/// optimizer step per batch. The per-window baseline is the serial
/// [`PlannedTrainer`] epoch (one fused step per window) — the path this
/// section exists to beat at `B > 1`. Sanity: each batched epoch must be
/// bitwise thread-invariant (serial fold == pool partition) before its
/// timings mean anything.
fn bench_batched_training(quick: bool, threads: usize) -> Vec<Json> {
    let (input_len, horizon, num_vars) = (48usize, 24usize, 7usize);
    let config = TimeKdConfig::default();
    let optimizer = PlanOptimizer::AdamW {
        lr: 0.01,
        beta1: 0.9,
        beta2: 0.999,
        eps: 1e-8,
        weight_decay: 0.01,
    };

    // 16 windows even in QUICK so B = 8 still folds two full batches;
    // QUICK trims the iteration count instead.
    let mut wrng = seeded_rng(0x7EA1);
    let windows: Vec<(Tensor, Tensor)> = (0..16)
        .map(|_| {
            (
                Tensor::randn([input_len, num_vars], 1.0, &mut wrng),
                Tensor::randn([horizon, num_vars], 0.5, &mut wrng),
            )
        })
        .collect();
    let epoch_iters = if quick { 1 } else { 4 };

    // Per-window baseline: the serial planned epoch, one fused update per
    // window. Shared by every row (it does not depend on B).
    let epoch_per_window_ms = {
        let mut rng = seeded_rng(0x1A7E);
        let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
        let mut trainer =
            PlannedTrainer::new(&student, &config, optimizer).expect("training plan compiles");
        time_min_ms(epoch_iters, || {
            for (x, y) in &windows {
                std::hint::black_box(trainer.planned_train_step(x, y));
            }
        })
    };

    let replay_epoch = |exec: &mut BatchTrainExecutor, b: usize| {
        for chunk in windows.chunks(b) {
            for (lane, (x, y)) in chunk.iter().enumerate() {
                exec.stage_window(lane, &x.data(), &y.data());
            }
            exec.run_batch(chunk.len());
        }
    };
    let build = |b: usize| {
        let plan = compile_student_training_plan_batched(
            &config, input_len, horizon, num_vars, optimizer, b,
        )
        .expect("batched training plan compiles");
        let mut rng = seeded_rng(0x1A7E);
        let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
        let (ctx, _) =
            trace_student_loss(&config, input_len, horizon, num_vars).expect("student loss traces");
        let by_label: HashMap<String, Tensor> = ctx
            .params()
            .iter()
            .zip(student.params())
            .map(|(sym, real)| (sym.label().to_string(), real.clone()))
            .collect();
        let exec = BatchTrainExecutor::new(&plan, |label, dims| {
            by_label
                .get(label)
                .filter(|t| t.dims() == dims)
                .map(|t| t.data().clone())
        })
        .expect("batched executor binds");
        (plan, exec)
    };

    let sizes: &[usize] = if quick { &[4] } else { &[1, 4, 8] };
    let mut rows = Vec::new();
    for &b in sizes {
        // Sanity: one epoch on the serial fold and one on the pool must
        // leave bitwise-identical parameters (the pinned reduction order
        // is window-indexed, never thread-indexed).
        let serial_params: Vec<Vec<f32>> = {
            let (_plan, mut exec) = build(b);
            with_threads(1, || replay_epoch(&mut exec, b));
            (0..exec.num_params())
                .map(|i| exec.param_data(i).to_vec())
                .collect()
        };
        let (plan, mut exec) = build(b);
        with_threads(threads, || replay_epoch(&mut exec, b));
        let pool_params: Vec<Vec<f32>> = (0..exec.num_params())
            .map(|i| exec.param_data(i).to_vec())
            .collect();
        assert_eq!(
            serial_params, pool_params,
            "batched epoch at B={b} diverged between serial and pooled replay"
        );

        let epoch_batched_ms = with_threads(threads, || {
            time_min_ms(epoch_iters, || replay_epoch(&mut exec, b))
        });
        rows.push(Json::obj(vec![
            ("name", Json::str(format!("batched_b{b}"))),
            ("micro_batch", Json::num(b as f64)),
            ("input_len", Json::num(input_len as f64)),
            ("horizon", Json::num(horizon as f64)),
            ("num_vars", Json::num(num_vars as f64)),
            ("windows", Json::num(windows.len() as f64)),
            ("iters", Json::num(f64::from(epoch_iters))),
            ("epoch_per_window_ms", Json::num(epoch_per_window_ms)),
            ("epoch_batched_ms", Json::num(epoch_batched_ms)),
            (
                "speedup_batched",
                Json::num(epoch_per_window_ms / epoch_batched_ms),
            ),
            ("reduce_steps", Json::num(plan.reduce_steps().len() as f64)),
            ("update_steps", Json::num(plan.update_steps().len() as f64)),
        ]));
    }
    rows
}

/// Accuracy gate for the int8 path: the mean squared forecast delta
/// (quantized vs f32, averaged over every element of the seeded eval set)
/// must stay below this bound or the bench exits non-zero. The bound is
/// deliberately loose against run-to-run noise — it only exists to catch
/// a broken quantizer (wrong scale, transposed codes), which lands orders
/// of magnitude above it.
const QUANT_MSE_DELTA_BOUND: f64 = 1e-2;

/// Quantized vs f32 compiled student: forecast-accuracy delta on a seeded
/// eval set (gated by [`QUANT_MSE_DELTA_BOUND`]), per-window latency, and
/// parameter-storage footprint. Both executors replay the same compiled
/// plan; the quantized one stores Linear weights as int8 codes + one f32
/// scale per output column and runs them through the `qmm` kernel.
fn bench_quantized_student(quick: bool) -> Json {
    let (input_len, horizon, num_vars) = (48usize, 24usize, 7usize);
    let config = TimeKdConfig::default();
    let mut rng = seeded_rng(0x1A7E);
    let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
    let mut planned = PlannedStudent::new(&student, &config).expect("student plan compiles");
    let mut quant = QuantizedStudent::new(&student, &config).expect("quantized plan compiles");

    let windows: Vec<Tensor> = (0..if quick { 8 } else { 32 })
        .map(|_| Tensor::randn([input_len, num_vars], 1.0, &mut rng))
        .collect();
    let iters = if quick { 5 } else { 40 };

    let mut out_f = vec![0.0f32; horizon * num_vars];
    let mut out_q = vec![0.0f32; horizon * num_vars];
    let mut sq_sum = 0.0f64;
    let mut count = 0usize;
    for w in &windows {
        planned.predict_into(w, &mut out_f);
        quant.predict_into(w, &mut out_q);
        for (f, q) in out_f.iter().zip(&out_q) {
            let d = f64::from(f - q);
            sq_sum += d * d;
            count += 1;
        }
    }
    let mse_delta = sq_sum / count as f64;

    let x = &windows[0];
    let predict_f32_ms = time_min_ms(iters, || {
        planned.predict_into(std::hint::black_box(x), &mut out_f);
        std::hint::black_box(&out_f);
    });
    let predict_int8_ms = time_min_ms(iters, || {
        quant.predict_into(std::hint::black_box(x), &mut out_q);
        std::hint::black_box(&out_q);
    });

    let (bytes_f32, bytes_int8) = (planned.param_bytes() as f64, quant.param_bytes() as f64);
    Json::obj(vec![
        ("input_len", Json::num(input_len as f64)),
        ("horizon", Json::num(horizon as f64)),
        ("num_vars", Json::num(num_vars as f64)),
        ("windows", Json::num(windows.len() as f64)),
        ("iters", Json::num(f64::from(iters))),
        ("mse_delta", Json::num(mse_delta)),
        ("mse_delta_bound", Json::num(QUANT_MSE_DELTA_BOUND)),
        ("predict_f32_ms", Json::num(predict_f32_ms)),
        ("predict_int8_ms", Json::num(predict_int8_ms)),
        (
            "speedup_int8_vs_f32",
            Json::num(predict_f32_ms / predict_int8_ms),
        ),
        ("param_bytes_f32", Json::num(bytes_f32)),
        ("param_bytes_int8", Json::num(bytes_int8)),
        ("param_compression", Json::num(bytes_f32 / bytes_int8)),
    ])
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench manifest has two ancestors")
        .to_path_buf()
}

fn run_validate(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate: cannot read {path}: {e}");
            return 1;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("validate: {path} is not valid JSON: {e}");
            return 1;
        }
    };
    match validate_kernel_bench(&doc) {
        Ok(()) => {
            println!("validate: {path} conforms to the kernel-bench schema");
            0
        }
        Err(problems) => {
            for p in &problems {
                eprintln!("validate: {path}: {p}");
            }
            1
        }
    }
}

fn run_validate_trace(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate-trace: cannot read {path}: {e}");
            return 1;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("validate-trace: {path} is not valid JSON: {e}");
            return 1;
        }
    };
    let mut problems = validate_trace_report(&doc).err().unwrap_or_default();
    if problems.is_empty() {
        problems = validate_trace_coverage(&doc).err().unwrap_or_default();
    }
    if problems.is_empty() {
        println!(
            "validate-trace: {path} conforms to {} with full pipeline coverage",
            timekd_bench::TRACE_SCHEMA
        );
        0
    } else {
        for p in &problems {
            eprintln!("validate-trace: {path}: {p}");
        }
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--validate") {
        let Some(path) = args.get(1) else {
            eprintln!("usage: kernels --validate <BENCH_*.json>");
            std::process::exit(2);
        };
        std::process::exit(run_validate(path));
    }
    if args.first().map(String::as_str) == Some("--validate-trace") {
        let Some(path) = args.get(1) else {
            eprintln!("usage: kernels --validate-trace <trace.json>");
            std::process::exit(2);
        };
        std::process::exit(run_validate_trace(path));
    }
    if !args.is_empty() {
        eprintln!("usage: kernels [--validate <BENCH_*.json> | --validate-trace <trace.json>]");
        std::process::exit(2);
    }

    let quick = Profile::from_env().quick;
    let threads = configured_threads();
    let available = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "kernel bench: {} profile, {threads} thread(s) configured ({available} available)",
        if quick { "QUICK" } else { "full" }
    );

    let mut kernels = Vec::new();
    for spec in shapes(quick) {
        let row = bench_shape(&spec, threads);
        let fmt = |key: &str| row.get(key).and_then(Json::as_num).unwrap_or(f64::NAN);
        println!(
            "  {:<22} serial {:>9.3} ms  parallel {:>9.3} ms  x{:<5.2}  {:>7.2} GFLOP/s  (naive {:>9.3} ms, x{:.2} vs naive)",
            spec.name,
            fmt("serial_ms"),
            fmt("parallel_ms"),
            fmt("speedup_parallel"),
            fmt("gflops_parallel"),
            fmt("naive_ms"),
            fmt("speedup_blocked_vs_naive"),
        );
        kernels.push(row);
    }

    let mut attention = Vec::new();
    for spec in attention_shapes(quick) {
        let row = bench_attention_shape(&spec);
        let fmt = |key: &str| row.get(key).and_then(Json::as_num).unwrap_or(f64::NAN);
        println!(
            "  {:<22} fused {:>9.3} ms  composed {:>9.3} ms  x{:<5.2}  (train: fused {:>9.3} ms, composed {:>9.3} ms, x{:.2})",
            spec.name,
            fmt("fused_ms"),
            fmt("composed_ms"),
            fmt("speedup_fused"),
            fmt("fused_train_ms"),
            fmt("composed_train_ms"),
            fmt("speedup_fused_train"),
        );
        attention.push(row);
    }

    println!("  planned vs dynamic student predict …");
    let planned_student = bench_planned_student(quick, threads);
    {
        let fmt = |key: &str| {
            planned_student
                .get(key)
                .and_then(Json::as_num)
                .unwrap_or(f64::NAN)
        };
        println!(
            "    predict: dynamic {:>9.3} ms  planned {:>9.3} ms  x{:<5.2}  (epoch: dynamic {:>9.3} ms, planned {:>9.3} ms, x{:.2})",
            fmt("predict_dynamic_ms"),
            fmt("predict_planned_ms"),
            fmt("speedup_planned_predict"),
            fmt("epoch_dynamic_ms"),
            fmt("epoch_planned_ms"),
            fmt("speedup_planned_epoch"),
        );
    }

    println!("  planned vs dynamic student training …");
    let planned_training = bench_planned_training(quick, threads);
    {
        let fmt = |key: &str| {
            planned_training
                .get(key)
                .and_then(Json::as_num)
                .unwrap_or(f64::NAN)
        };
        println!(
            "    train step: dynamic {:>9.3} ms  planned {:>9.3} ms  x{:<5.2}  (epoch: dynamic {:>9.3} ms, planned {:>9.3} ms, x{:.2})",
            fmt("train_step_dynamic_ms"),
            fmt("train_step_planned_ms"),
            fmt("speedup_planned_train_step"),
            fmt("train_epoch_dynamic_ms"),
            fmt("train_epoch_planned_ms"),
            fmt("speedup_planned_train_epoch"),
        );
    }

    println!("  batched vs per-window planned training …");
    let batched_training = bench_batched_training(quick, threads);
    for row in &batched_training {
        let fmt = |key: &str| row.get(key).and_then(Json::as_num).unwrap_or(f64::NAN);
        println!(
            "    B={:<2} per-window {:>9.3} ms  batched {:>9.3} ms  x{:<5.2}  ({} reduce steps)",
            fmt("micro_batch"),
            fmt("epoch_per_window_ms"),
            fmt("epoch_batched_ms"),
            fmt("speedup_batched"),
            fmt("reduce_steps"),
        );
    }

    println!("  quantized vs f32 compiled student …");
    let quantized_student = bench_quantized_student(quick);
    {
        let fmt = |key: &str| {
            quantized_student
                .get(key)
                .and_then(Json::as_num)
                .unwrap_or(f64::NAN)
        };
        println!(
            "    predict: f32 {:>9.3} ms  int8 {:>9.3} ms  x{:<5.2}  mse_delta {:.3e} (bound {:.0e})  params {:.0} -> {:.0} bytes (x{:.2})",
            fmt("predict_f32_ms"),
            fmt("predict_int8_ms"),
            fmt("speedup_int8_vs_f32"),
            fmt("mse_delta"),
            fmt("mse_delta_bound"),
            fmt("param_bytes_f32"),
            fmt("param_bytes_int8"),
            fmt("param_compression"),
        );
        let mse_delta = fmt("mse_delta");
        if !(mse_delta <= QUANT_MSE_DELTA_BOUND) {
            eprintln!(
                "quantized student failed the accuracy gate: mse_delta {mse_delta} exceeds bound {QUANT_MSE_DELTA_BOUND}"
            );
            std::process::exit(1);
        }
    }

    println!("  end-to-end teacher/student epochs …");
    let end_to_end = bench_end_to_end(quick, threads);
    for key in ["speedup_teacher", "speedup_student"] {
        println!(
            "    {key}: x{:.2}",
            end_to_end
                .get(key)
                .and_then(Json::as_num)
                .unwrap_or(f64::NAN)
        );
    }

    println!("  forecast serving load harness …");
    let serve_spec = if quick {
        timekd_bench::ServeLoadSpec::quick()
    } else {
        timekd_bench::ServeLoadSpec::full()
    };
    let serving = timekd_bench::run_serve_load(&serve_spec);
    {
        let fmt = |key: &str| serving.get(key).and_then(Json::as_num).unwrap_or(f64::NAN);
        println!(
            "    {:.0} req @ {:.0} req/s  p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  occupancy {:.2}/{:.0}  errors {:.0}",
            fmt("requests_total"),
            fmt("throughput_rps"),
            fmt("latency_p50_ms"),
            fmt("latency_p95_ms"),
            fmt("latency_p99_ms"),
            fmt("mean_batch_occupancy"),
            fmt("micro_batch"),
            fmt("errors"),
        );
        if fmt("errors") > 0.0 {
            eprintln!("serving load harness saw failed requests");
            std::process::exit(1);
        }
    }

    let created = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let doc = Json::obj(vec![
        ("schema", Json::str("timekd-kernel-bench/v7")),
        ("created_unix_s", Json::num(created as f64)),
        ("quick", Json::Bool(quick)),
        (
            "notes",
            Json::Arr(vec![
                Json::str(
                    "mm_rect_512x64x256 regression fix: parallel row-block granularity now scales \
                     with k*n (min_rows_per_block), so wide-short shapes no longer fan out into \
                     below-cutoff blocks (was parallel 18.8 vs serial 23.6 GFLOP/s in \
                     BENCH_1786107316.json)",
                ),
                Json::str(
                    "v6: batched_training rows compare the serial per-window planned epoch \
                     against the data-parallel batched replay (per-window gradient lanes, \
                     pinned window-order reduction, one fused optimizer step per batch)",
                ),
                Json::str(
                    "batched_training speedup is bounded by threads.available: lane shards \
                     are clamped to the physical parallelism, so with 1 available core only \
                     the per-window optimizer tail amortizes (ceiling ~(R+T)/R ≈ 1.4 for \
                     this geometry); the ≥1.5x regime needs ≥2 physical cores",
                ),
                Json::str(
                    "v7: the serving section reports the timekd-serve closed-loop load \
                     harness (real TCP clients against a registry-booted server); latency \
                     quantiles are read back from the server's own /metrics histograms, \
                     not measured client-side",
                ),
            ]),
        ),
        (
            "threads",
            Json::obj(vec![
                ("configured", Json::num(threads as f64)),
                ("available", Json::num(available as f64)),
            ]),
        ),
        ("kernels", Json::Arr(kernels)),
        ("attention", Json::Arr(attention)),
        ("planned_student", planned_student),
        ("planned_training", planned_training),
        ("quantized_student", quantized_student),
        ("batched_training", Json::Arr(batched_training)),
        ("end_to_end", end_to_end),
        ("serving", serving),
    ]);
    if let Err(problems) = validate_kernel_bench(&doc) {
        for p in &problems {
            eprintln!("internal schema violation: {p}");
        }
        std::process::exit(1);
    }

    let dir = std::env::var("TIMEKD_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| repo_root());
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join(format!("BENCH_{created}.json"));
    std::fs::write(&path, doc.render()).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    });
    println!("bench: wrote {}", path.display());
}
