//! Standalone serve-load runner.
//!
//! ```text
//! QUICK=1 cargo run -p timekd-bench --release --bin serve_load
//! ```
//!
//! Boots a real `timekd-serve` server on an ephemeral loopback port,
//! publishes a seeded student into a throwaway registry, drives it with
//! closed-loop client threads, and prints the `serving` section of the
//! `timekd-kernel-bench/v7` schema (the kernels runner embeds the same
//! section into `BENCH_*.json`). Exits non-zero if any request errored.

use timekd_bench::{run_serve_load, Json, Profile, ServeLoadSpec};

fn main() {
    let quick = Profile::from_env().quick;
    let spec = if quick {
        ServeLoadSpec::quick()
    } else {
        ServeLoadSpec::full()
    };
    println!(
        "serve_load: {} profile, {} clients x {} requests, micro_batch {}",
        if quick { "QUICK" } else { "full" },
        spec.clients,
        spec.requests_per_client,
        spec.micro_batch
    );
    let section = run_serve_load(&spec);
    let num = |key: &str| section.get(key).and_then(Json::as_num).unwrap_or(f64::NAN);
    println!(
        "  {:.0} requests in {:.1} ms -> {:.0} req/s; latency p50 {:.3} ms p95 {:.3} ms p99 {:.3} ms; occupancy {:.2}/{:.0}",
        num("requests_total"),
        num("duration_ms"),
        num("throughput_rps"),
        num("latency_p50_ms"),
        num("latency_p95_ms"),
        num("latency_p99_ms"),
        num("mean_batch_occupancy"),
        num("micro_batch"),
    );
    println!("{}", section.render());
    if num("errors") > 0.0 {
        eprintln!("serve_load: {} request(s) errored", num("errors"));
        std::process::exit(1);
    }
}
