//! The `serve_load` harness: boots a real [`timekd_serve::Server`] on an
//! ephemeral port, publishes a seeded student into a throwaway registry,
//! drives it with `K` closed-loop client threads over raw `TcpStream`s,
//! and reports throughput, tail latency and micro-batch occupancy as the
//! `serving` section of the `timekd-kernel-bench/v7` schema.
//!
//! The latency quantiles are *not* measured client-side: the harness
//! fetches `GET /metrics` over HTTP and reads the server's own
//! `timekd-obs` histograms, so the numbers in `BENCH_*.json` are sourced
//! from exactly the counters a production scrape would see.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use timekd::{Student, TimeKdConfig};
use timekd_serve::{publish, ServeConfig, Server};
use timekd_tensor::{seeded_rng, Precision};

use crate::json::Json;

/// Load-harness geometry: larger than the unit tests, still QUICK-friendly.
const INPUT_LEN: usize = 32;
const HORIZON: usize = 8;
const NUM_VARS: usize = 7;

/// Every Nth request per client is a `/healthz` probe instead of a
/// forecast, so the mix exercises more than one endpoint.
const HEALTH_EVERY: usize = 16;

/// Parameters of one serve-load run.
#[derive(Debug, Clone)]
pub struct ServeLoadSpec {
    /// Closed-loop client threads.
    pub clients: usize,
    /// Requests each client issues back-to-back.
    pub requests_per_client: usize,
    /// Server-side micro-batch width.
    pub micro_batch: usize,
    /// Seed for the published student and every client's window.
    pub seed: u64,
}

impl ServeLoadSpec {
    /// Smoke-sized run for CI (`QUICK=1`).
    pub fn quick() -> ServeLoadSpec {
        ServeLoadSpec {
            clients: 4,
            requests_per_client: 25,
            micro_batch: 4,
            seed: 2025,
        }
    }

    /// Full-sized run.
    pub fn full() -> ServeLoadSpec {
        ServeLoadSpec {
            clients: 8,
            requests_per_client: 200,
            micro_batch: 8,
            seed: 2025,
        }
    }
}

fn harness_config() -> TimeKdConfig {
    TimeKdConfig {
        dim: 32,
        num_layers: 1,
        num_heads: 4,
        ffn_hidden: 64,
        ..TimeKdConfig::default()
    }
}

fn temp_registry() -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "timekd-serve-load-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create load-harness registry");
    dir
}

fn window_body(seed: u64) -> String {
    let mut rng = seeded_rng(seed);
    let rows: Vec<Json> = (0..INPUT_LEN)
        .map(|_| {
            Json::Arr(
                (0..NUM_VARS)
                    .map(|_| Json::num(rng.gen_range(-1.0f32..1.0) as f64))
                    .collect(),
            )
        })
        .collect();
    Json::obj(vec![("x", Json::Arr(rows))]).render()
}

/// Minimal blocking HTTP/1.1 exchange on a persistent connection.
fn exchange(stream: &mut TcpStream, method: &str, path: &str, body: &str) -> (u16, String) {
    // One write per request: splitting head and body into separate
    // segments trips Nagle + delayed-ACK on loopback and serializes the
    // whole closed loop at ~40 ms per request.
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    stream.flush().expect("flush");

    let mut raw = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while !raw.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(0) => panic!("server closed mid-response"),
            Ok(_) => raw.push(byte[0]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("response head read error: {e}"),
        }
    }
    let head = String::from_utf8(raw).expect("utf8 response head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        match stream.read(&mut body[filled..]) {
            Ok(0) => panic!("server closed mid-body"),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("response body read error: {e}"),
        }
    }
    (status, String::from_utf8(body).expect("utf8 response body"))
}

fn client_loop(addr: SocketAddr, requests: usize, body: &str) -> (usize, usize) {
    let mut stream = TcpStream::connect(addr).expect("client connect");
    let mut forecasts = 0usize;
    let mut errors = 0usize;
    for i in 0..requests {
        let (status, _) = if i % HEALTH_EVERY == HEALTH_EVERY - 1 {
            exchange(&mut stream, "GET", "/healthz", "")
        } else {
            forecasts += 1;
            exchange(&mut stream, "POST", "/forecast", body)
        };
        if status != 200 {
            errors += 1;
        }
    }
    (forecasts, errors)
}

fn metrics_num(doc: &Json, group: &str, name: &str) -> f64 {
    doc.get(group)
        .and_then(|g| g.get(name))
        .and_then(Json::as_num)
        .unwrap_or(f64::NAN)
}

fn histogram_quantile(doc: &Json, name: &str, key: &str) -> f64 {
    doc.get("histograms")
        .and_then(Json::as_arr)
        .and_then(|hists| {
            hists
                .iter()
                .find(|h| h.get("name").and_then(Json::as_str) == Some(name))
        })
        .and_then(|h| h.get(key))
        .and_then(Json::as_num)
        .unwrap_or(f64::NAN)
}

/// Runs the closed-loop load harness and returns the `serving` section of
/// the kernel-bench schema (all thirteen numeric fields).
pub fn run_serve_load(spec: &ServeLoadSpec) -> Json {
    let root = temp_registry();
    let config = harness_config();
    let mut rng = seeded_rng(spec.seed);
    let student = Student::new(&config, INPUT_LEN, HORIZON, NUM_VARS, &mut rng);
    publish(&root, 1, &student, &config, Precision::F32).expect("publish load-harness model");

    timekd_obs::reset();
    let mut cfg = ServeConfig::new(&root);
    cfg.micro_batch = spec.micro_batch;
    let server = Server::start(cfg).expect("start load-harness server");
    let addr = server.addr();

    let started = Instant::now();
    let workers: Vec<_> = (0..spec.clients)
        .map(|c| {
            let requests = spec.requests_per_client;
            let body = window_body(spec.seed ^ (c as u64 + 1));
            std::thread::spawn(move || client_loop(addr, requests, &body))
        })
        .collect();
    let mut forecast_requests = 0usize;
    let mut errors = 0usize;
    for w in workers {
        let (f, e) = w.join().expect("client thread");
        forecast_requests += f;
        errors += e;
    }
    let duration_ms = started.elapsed().as_secs_f64() * 1e3;

    // Tail latency and batch shape come from the server's own /metrics —
    // the same counters and histograms a production scrape reads.
    let (status, metrics_body) = {
        let mut stream = TcpStream::connect(addr).expect("metrics connect");
        exchange(&mut stream, "GET", "/metrics", "")
    };
    assert_eq!(status, 200, "metrics fetch failed: {metrics_body}");
    let metrics = Json::parse(&metrics_body).expect("metrics JSON");
    let batches = metrics_num(&metrics, "counters", "serve.batches");
    let batched = metrics_num(&metrics, "counters", "serve.batched_requests");
    let mean_occupancy = if batches > 0.0 {
        batched / batches
    } else {
        0.0
    };
    let p50_ms = histogram_quantile(&metrics, "serve.forecast.latency_ns", "p50") / 1e6;
    let p95_ms = histogram_quantile(&metrics, "serve.forecast.latency_ns", "p95") / 1e6;
    let p99_ms = histogram_quantile(&metrics, "serve.forecast.latency_ns", "p99") / 1e6;

    server.shutdown();
    timekd_obs::set_enabled(false);
    let _ = std::fs::remove_dir_all(&root);

    let requests_total = spec.clients * spec.requests_per_client;
    let throughput_rps = requests_total as f64 / (duration_ms / 1e3).max(1e-9);
    Json::obj(vec![
        ("clients", Json::num(spec.clients as f64)),
        (
            "requests_per_client",
            Json::num(spec.requests_per_client as f64),
        ),
        ("requests_total", Json::num(requests_total as f64)),
        ("forecast_requests", Json::num(forecast_requests as f64)),
        ("errors", Json::num(errors as f64)),
        ("duration_ms", Json::num(duration_ms)),
        ("throughput_rps", Json::num(throughput_rps)),
        ("latency_p50_ms", Json::num(p50_ms)),
        ("latency_p95_ms", Json::num(p95_ms)),
        ("latency_p99_ms", Json::num(p99_ms)),
        ("micro_batch", Json::num(spec.micro_batch as f64)),
        ("batches", Json::num(batches)),
        ("mean_batch_occupancy", Json::num(mean_occupancy)),
    ])
}
