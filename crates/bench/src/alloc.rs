//! Counting global allocator for the memory column of Table IV.
//!
//! Wraps the system allocator with atomic live/peak byte counters. Bench
//! binaries install it with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: timekd_bench::PeakAlloc = timekd_bench::PeakAlloc::new();
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator with live/peak accounting.
pub struct PeakAlloc {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl PeakAlloc {
    /// A fresh counting allocator.
    pub const fn new() -> PeakAlloc {
        PeakAlloc {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Currently live heap bytes.
    pub fn live_bytes(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Peak live heap bytes since the last [`PeakAlloc::reset_peak`].
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current live size.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn on_alloc(&self, size: usize) {
        let live = self.live.fetch_add(size, Ordering::Relaxed) + size;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(&self, size: usize) {
        self.live.fetch_sub(size, Ordering::Relaxed);
    }
}

impl Default for PeakAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates all allocation to `System`; the bookkeeping uses only
// relaxed atomics and never allocates itself.
unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            self.on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            self.on_dealloc(layout.size());
            self.on_alloc(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as the global allocator in unit tests; exercise the
    // counters directly.
    #[test]
    fn counters_track_alloc_dealloc() {
        let a = PeakAlloc::new();
        a.on_alloc(100);
        a.on_alloc(50);
        assert_eq!(a.live_bytes(), 150);
        assert_eq!(a.peak_bytes(), 150);
        a.on_dealloc(100);
        assert_eq!(a.live_bytes(), 50);
        assert_eq!(a.peak_bytes(), 150, "peak survives frees");
        a.reset_peak();
        assert_eq!(a.peak_bytes(), 50);
    }

    #[test]
    fn peak_is_maximum_of_live() {
        let a = PeakAlloc::new();
        a.on_alloc(10);
        a.on_dealloc(10);
        a.on_alloc(5);
        assert_eq!(a.peak_bytes(), 10);
    }
}
