//! Aligned console tables, CSV export, and ASCII heatmaps for the
//! experiment outputs.

use std::path::PathBuf;

use timekd_tensor::Tensor;

/// A printable result table that also knows how to persist itself as CSV.
pub struct ResultTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> ResultTable {
        ResultTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n=== {} ===\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as `target/experiments/<name>.csv`.
    pub fn save_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let path = experiments_dir().join(format!("{name}.csv"));
        let headers: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        timekd_data::write_csv(&path, &headers, &self.rows)?;
        Ok(path)
    }
}

/// Directory where experiment CSVs are collected:
/// `<workspace>/target/experiments`.
///
/// Bench binaries run with the *crate* directory as cwd, so a relative
/// `target/` would scatter outputs; anchor at the workspace root via the
/// compile-time manifest path instead (CARGO_TARGET_DIR still wins when
/// set).
pub fn experiments_dir() -> PathBuf {
    let base = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("target")
        });
    base.join("experiments")
}

/// Formats a float with 3 decimals (the paper's table precision).
pub fn f3(x: f32) -> String {
    format!("{x:.3}")
}

/// Formats seconds with adaptive precision.
pub fn secs(x: f64) -> String {
    if x >= 1.0 {
        format!("{x:.2}s")
    } else {
        format!("{:.2}ms", x * 1e3)
    }
}

/// Renders a square matrix as an ASCII heatmap (`.:-=+*#%@` ramp),
/// normalised to its own min/max — the console stand-in for Figs. 8–9.
pub fn render_heatmap(m: &Tensor, title: &str) -> String {
    assert_eq!(m.shape().rank(), 2, "heatmap needs a matrix");
    let (rows, cols) = (m.dims()[0], m.dims()[1]);
    let data = m.data();
    let lo = data.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = data.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let ramp: &[u8] = b" .:-=+*#%@";
    let mut out = format!("{title} (min={lo:.3}, max={hi:.3})\n");
    for r in 0..rows {
        for c in 0..cols {
            let v = data[r * cols + c];
            let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
            let idx = ((t * (ramp.len() - 1) as f32).round() as usize).min(ramp.len() - 1);
            out.push(ramp[idx] as char);
            out.push(ramp[idx] as char); // double width ≈ square cells
        }
        out.push('\n');
    }
    out
}

/// Marks the best (lowest) value in each metric group: returns the row
/// index of the minimum of `values`.
pub fn argmin(values: &[f32]) -> usize {
    values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN in results"))
        .map(|(i, _)| i)
        .expect("empty values")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = ResultTable::new("Demo", &["model", "mse"]);
        t.push_row(vec!["TimeKD".into(), "0.123".into()]);
        t.push_row(vec!["iTransformer".into(), "0.456".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("TimeKD"));
        // Columns aligned: both value cells end at the same offset.
        let lines: Vec<&str> = s.lines().filter(|l| l.contains("0.")).collect();
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = ResultTable::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn heatmap_shape() {
        let m = Tensor::from_vec(vec![0.0, 1.0, 0.5, 0.25], [2, 2]);
        let s = render_heatmap(&m, "attn");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3); // title + 2 rows
        assert_eq!(lines[1].len(), 4); // 2 cols x 2 chars
        assert!(lines[0].contains("attn"));
    }

    #[test]
    fn heatmap_extremes_use_ramp_ends() {
        let m = Tensor::from_vec(vec![0.0, 1.0], [1, 2]);
        let s = render_heatmap(&m, "t");
        let row = s.lines().nth(1).unwrap();
        assert!(row.starts_with("  "), "min renders as spaces: {row:?}");
        assert!(row.ends_with("@@"), "max renders as @: {row:?}");
    }

    #[test]
    fn argmin_finds_best() {
        assert_eq!(argmin(&[0.3, 0.1, 0.2]), 1);
    }

    #[test]
    fn f3_and_secs_formatting() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(secs(1.5), "1.50s");
        assert_eq!(secs(0.0015), "1.50ms");
    }

    #[test]
    fn csv_saves_under_experiments_dir() {
        let mut t = ResultTable::new("x", &["a"]);
        t.push_row(vec!["1".into()]);
        let path = t.save_csv("test_table_save").unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).ok();
    }
}
