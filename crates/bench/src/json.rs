//! The `BENCH_*.json` schema validator. The JSON value type and parser
//! themselves live in `timekd_obs::json` (shared with the trace reports
//! and the serving layer's `/metrics` endpoint); this module re-exports
//! [`Json`] so existing `timekd_bench::json::Json` users keep working and
//! adds the kernel-bench schema check used by `--validate` and
//! `scripts/bench.sh`.

pub use timekd_obs::json::Json;

/// Checks a parsed document against the `timekd-kernel-bench/v7` schema
/// emitted by `cargo run -p timekd-bench --bin kernels`. Returns every
/// problem found (not just the first) so a broken baseline is diagnosable
/// in one pass.
pub fn validate_kernel_bench(doc: &Json) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    let mut need_num = |path: &str| match doc.get_path(path).map(Json::as_num) {
        Some(Some(v)) if v.is_finite() => {}
        Some(_) => problems.push(format!("`{path}` is not a finite number")),
        None => problems.push(format!("missing key `{path}`")),
    };
    need_num("created_unix_s");
    need_num("threads.configured");
    need_num("threads.available");
    for key in [
        "teacher_epoch_serial_ms",
        "teacher_epoch_parallel_ms",
        "speedup_teacher",
        "student_epoch_serial_ms",
        "student_epoch_parallel_ms",
        "speedup_student",
    ] {
        need_num(&format!("end_to_end.{key}"));
    }

    // v3: the planned-vs-dynamic student predict section. A missing
    // section reports one `missing key` problem per expected field.
    for key in [
        "input_len",
        "horizon",
        "num_vars",
        "windows",
        "iters",
        "predict_dynamic_ms",
        "predict_planned_ms",
        "speedup_planned_predict",
        "epoch_dynamic_ms",
        "epoch_planned_ms",
        "speedup_planned_epoch",
        "plan_steps",
        "plan_arena_f32",
    ] {
        need_num(&format!("planned_student.{key}"));
    }

    // v4: the planned-vs-dynamic student *training* section (full step:
    // forward + reverse schedule + fused optimizer update). A missing
    // section reports one `missing key` problem per expected field.
    for key in [
        "input_len",
        "horizon",
        "num_vars",
        "windows",
        "iters",
        "train_step_dynamic_ms",
        "train_step_planned_ms",
        "speedup_planned_train_step",
        "train_epoch_dynamic_ms",
        "train_epoch_planned_ms",
        "speedup_planned_train_epoch",
        "bwd_steps",
        "update_steps",
    ] {
        need_num(&format!("planned_training.{key}"));
    }

    // v5: the quantized-vs-f32 compiled-student section (int8 weight
    // storage, `qmm` kernels, accuracy gate). A missing section reports
    // one `missing key` problem per expected field.
    for key in [
        "input_len",
        "horizon",
        "num_vars",
        "windows",
        "iters",
        "mse_delta",
        "mse_delta_bound",
        "predict_f32_ms",
        "predict_int8_ms",
        "speedup_int8_vs_f32",
        "param_bytes_f32",
        "param_bytes_int8",
        "param_compression",
    ] {
        need_num(&format!("quantized_student.{key}"));
    }

    // v7: the serving section — closed-loop load over the HTTP forecast
    // endpoint with micro-batched planned inference. A missing section
    // reports one `missing key` problem per expected field; the latency
    // quantiles come from the same `timekd-obs` histograms `/metrics`
    // renders.
    for key in [
        "clients",
        "requests_per_client",
        "requests_total",
        "forecast_requests",
        "errors",
        "duration_ms",
        "throughput_rps",
        "latency_p50_ms",
        "latency_p95_ms",
        "latency_p99_ms",
        "micro_batch",
        "batches",
        "mean_batch_occupancy",
    ] {
        need_num(&format!("serving.{key}"));
    }

    // v6: the batched-training section — one row per micro-batch size
    // comparing the per-window planned epoch against the data-parallel
    // batched replay with pinned window-order gradient reduction.
    match doc.get("batched_training").map(Json::as_arr) {
        Some(Some(rows)) if !rows.is_empty() => {
            for (i, row) in rows.iter().enumerate() {
                if row.get("name").and_then(Json::as_str).is_none() {
                    problems.push(format!(
                        "`batched_training[{i}].name` missing or not a string"
                    ));
                }
                for key in [
                    "micro_batch",
                    "input_len",
                    "horizon",
                    "num_vars",
                    "windows",
                    "iters",
                    "epoch_per_window_ms",
                    "epoch_batched_ms",
                    "speedup_batched",
                    "reduce_steps",
                    "update_steps",
                ] {
                    match row.get(key).map(Json::as_num) {
                        Some(Some(v)) if v.is_finite() => {}
                        _ => problems.push(format!(
                            "`batched_training[{i}].{key}` missing or not finite"
                        )),
                    }
                }
            }
        }
        Some(Some(_)) => problems.push("`batched_training` must be a non-empty array".to_string()),
        _ => problems.push("missing key `batched_training`".to_string()),
    }

    match doc.get("schema").map(Json::as_str) {
        Some(Some("timekd-kernel-bench/v7")) => {}
        Some(other) => problems.push(format!(
            "`schema` must be \"timekd-kernel-bench/v7\", got {other:?}"
        )),
        None => problems.push("missing key `schema`".to_string()),
    }

    // v5: free-form provenance notes (e.g. the partition-granularity
    // regression fix) — a non-empty array of strings.
    match doc.get("notes").map(Json::as_arr) {
        Some(Some(items)) if !items.is_empty() => {
            for (i, item) in items.iter().enumerate() {
                if item.as_str().is_none() {
                    problems.push(format!("`notes[{i}]` must be a string"));
                }
            }
        }
        Some(Some(_)) => problems.push("`notes` must be a non-empty array".to_string()),
        _ => problems.push("missing key `notes`".to_string()),
    }
    if !matches!(doc.get("quick"), Some(Json::Bool(_))) {
        problems.push("`quick` must be a boolean".to_string());
    }

    match doc.get("kernels").map(Json::as_arr) {
        Some(Some(rows)) if !rows.is_empty() => {
            for (i, row) in rows.iter().enumerate() {
                if row.get("name").and_then(Json::as_str).is_none() {
                    problems.push(format!("`kernels[{i}].name` missing or not a string"));
                }
                for key in [
                    "m",
                    "k",
                    "n",
                    "batch",
                    "iters",
                    "serial_ms",
                    "serial_scalar_ms",
                    "speedup_simd_vs_scalar",
                    "parallel_ms",
                    "speedup_parallel",
                    "gflops_serial",
                    "gflops_parallel",
                    "naive_ms",
                    "speedup_blocked_vs_naive",
                    "grad_serial_ms",
                    "grad_parallel_ms",
                    "speedup_grad_parallel",
                ] {
                    match row.get(key).map(Json::as_num) {
                        Some(Some(v)) if v.is_finite() => {}
                        _ => problems.push(format!("`kernels[{i}].{key}` missing or not finite")),
                    }
                }
            }
        }
        Some(Some(_)) => problems.push("`kernels` must be a non-empty array".to_string()),
        _ => problems.push("missing key `kernels`".to_string()),
    }

    // v2: fused-vs-composed attention timings.
    match doc.get("attention").map(Json::as_arr) {
        Some(Some(rows)) if !rows.is_empty() => {
            for (i, row) in rows.iter().enumerate() {
                if row.get("name").and_then(Json::as_str).is_none() {
                    problems.push(format!("`attention[{i}].name` missing or not a string"));
                }
                if !matches!(row.get("causal"), Some(Json::Bool(_))) {
                    problems.push(format!("`attention[{i}].causal` must be a boolean"));
                }
                for key in [
                    "heads",
                    "tq",
                    "tk",
                    "dh",
                    "iters",
                    "fused_ms",
                    "composed_ms",
                    "speedup_fused",
                    "fused_train_ms",
                    "composed_train_ms",
                    "speedup_fused_train",
                ] {
                    match row.get(key).map(Json::as_num) {
                        Some(Some(v)) if v.is_finite() => {}
                        _ => problems.push(format!("`attention[{i}].{key}` missing or not finite")),
                    }
                }
            }
        }
        Some(Some(_)) => problems.push("`attention` must be a non-empty array".to_string()),
        _ => problems.push("missing key `attention`".to_string()),
    }

    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_valid_doc() -> Json {
        let kernel_keys = [
            "m",
            "k",
            "n",
            "batch",
            "iters",
            "serial_ms",
            "serial_scalar_ms",
            "speedup_simd_vs_scalar",
            "parallel_ms",
            "speedup_parallel",
            "gflops_serial",
            "gflops_parallel",
            "naive_ms",
            "speedup_blocked_vs_naive",
            "grad_serial_ms",
            "grad_parallel_ms",
            "speedup_grad_parallel",
        ];
        let mut row = vec![("name", Json::str("mm_64"))];
        row.extend(kernel_keys.iter().map(|k| (*k, Json::num(1.0))));
        let attn_keys = [
            "heads",
            "tq",
            "tk",
            "dh",
            "iters",
            "fused_ms",
            "composed_ms",
            "speedup_fused",
            "fused_train_ms",
            "composed_train_ms",
            "speedup_fused_train",
        ];
        let mut attn_row = vec![
            ("name", Json::str("attn_lm_base")),
            ("causal", Json::Bool(true)),
        ];
        attn_row.extend(attn_keys.iter().map(|k| (*k, Json::num(1.0))));
        let planned_keys = [
            "input_len",
            "horizon",
            "num_vars",
            "windows",
            "iters",
            "predict_dynamic_ms",
            "predict_planned_ms",
            "speedup_planned_predict",
            "epoch_dynamic_ms",
            "epoch_planned_ms",
            "speedup_planned_epoch",
            "plan_steps",
            "plan_arena_f32",
        ];
        let planned_row: Vec<(&str, Json)> =
            planned_keys.iter().map(|k| (*k, Json::num(1.0))).collect();
        let training_keys = [
            "input_len",
            "horizon",
            "num_vars",
            "windows",
            "iters",
            "train_step_dynamic_ms",
            "train_step_planned_ms",
            "speedup_planned_train_step",
            "train_epoch_dynamic_ms",
            "train_epoch_planned_ms",
            "speedup_planned_train_epoch",
            "bwd_steps",
            "update_steps",
        ];
        let training_row: Vec<(&str, Json)> =
            training_keys.iter().map(|k| (*k, Json::num(1.0))).collect();
        let quant_keys = [
            "input_len",
            "horizon",
            "num_vars",
            "windows",
            "iters",
            "mse_delta",
            "mse_delta_bound",
            "predict_f32_ms",
            "predict_int8_ms",
            "speedup_int8_vs_f32",
            "param_bytes_f32",
            "param_bytes_int8",
            "param_compression",
        ];
        let quant_row: Vec<(&str, Json)> =
            quant_keys.iter().map(|k| (*k, Json::num(1.0))).collect();
        let batched_keys = [
            "micro_batch",
            "input_len",
            "horizon",
            "num_vars",
            "windows",
            "iters",
            "epoch_per_window_ms",
            "epoch_batched_ms",
            "speedup_batched",
            "reduce_steps",
            "update_steps",
        ];
        let mut batched_row = vec![("name", Json::str("batched_b4"))];
        batched_row.extend(batched_keys.iter().map(|k| (*k, Json::num(1.0))));
        let serving_keys = [
            "clients",
            "requests_per_client",
            "requests_total",
            "forecast_requests",
            "errors",
            "duration_ms",
            "throughput_rps",
            "latency_p50_ms",
            "latency_p95_ms",
            "latency_p99_ms",
            "micro_batch",
            "batches",
            "mean_batch_occupancy",
        ];
        let serving_row: Vec<(&str, Json)> =
            serving_keys.iter().map(|k| (*k, Json::num(1.0))).collect();
        Json::obj(vec![
            ("schema", Json::str("timekd-kernel-bench/v7")),
            (
                "notes",
                Json::Arr(vec![Json::str("partition-granularity fix")]),
            ),
            ("created_unix_s", Json::num(1_722_000_000.0)),
            ("quick", Json::Bool(true)),
            (
                "threads",
                Json::obj(vec![
                    ("configured", Json::num(4.0)),
                    ("available", Json::num(8.0)),
                ]),
            ),
            ("kernels", Json::Arr(vec![Json::obj(row)])),
            ("attention", Json::Arr(vec![Json::obj(attn_row)])),
            ("planned_student", Json::obj(planned_row)),
            ("planned_training", Json::obj(training_row)),
            ("quantized_student", Json::obj(quant_row)),
            ("batched_training", Json::Arr(vec![Json::obj(batched_row)])),
            ("serving", Json::obj(serving_row)),
            (
                "end_to_end",
                Json::obj(vec![
                    ("teacher_epoch_serial_ms", Json::num(10.0)),
                    ("teacher_epoch_parallel_ms", Json::num(5.0)),
                    ("speedup_teacher", Json::num(2.0)),
                    ("student_epoch_serial_ms", Json::num(8.0)),
                    ("student_epoch_parallel_ms", Json::num(4.0)),
                    ("speedup_student", Json::num(2.0)),
                ]),
            ),
        ])
    }

    #[test]
    fn validator_accepts_complete_doc() {
        assert_eq!(validate_kernel_bench(&minimal_valid_doc()), Ok(()));
    }

    #[test]
    fn validator_reports_every_problem() {
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "schema" && k != "end_to_end" && k != "quick");
            pairs.push(("quick".to_string(), Json::str("yes")));
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert!(
            problems.iter().any(|p| p.contains("`schema`")),
            "{problems:?}"
        );
        assert!(problems.iter().any(|p| p.contains("quick")), "{problems:?}");
        assert!(
            problems
                .iter()
                .any(|p| p.contains("end_to_end.speedup_teacher")),
            "{problems:?}"
        );
    }

    #[test]
    fn validator_rejects_missing_schema_field_alone() {
        // A report that is complete except for `schema` must fail with
        // exactly that diagnostic — the schema key is load-bearing for
        // forward compatibility and must never be optional.
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "schema");
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems, vec!["missing key `schema`".to_string()]);
    }

    #[test]
    fn validator_rejects_incomplete_kernel_row() {
        let mut doc = minimal_valid_doc();
        if let Some(Json::Arr(rows)) = match &mut doc {
            Json::Obj(pairs) => pairs
                .iter_mut()
                .find(|(k, _)| k == "kernels")
                .map(|(_, v)| v),
            _ => None,
        } {
            if let Json::Obj(row) = &mut rows[0] {
                row.retain(|(k, _)| k != "speedup_parallel");
            }
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("kernels[0].speedup_parallel"));
    }

    #[test]
    fn validator_rejects_incomplete_attention_row() {
        let mut doc = minimal_valid_doc();
        if let Some(Json::Arr(rows)) = match &mut doc {
            Json::Obj(pairs) => pairs
                .iter_mut()
                .find(|(k, _)| k == "attention")
                .map(|(_, v)| v),
            _ => None,
        } {
            if let Json::Obj(row) = &mut rows[0] {
                row.retain(|(k, _)| k != "speedup_fused" && k != "causal");
            }
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("attention[0].causal")));
        assert!(
            problems
                .iter()
                .any(|p| p.contains("attention[0].speedup_fused")),
            "{problems:?}"
        );
    }

    #[test]
    fn validator_requires_planned_student_section() {
        // v3 gate: a v2-shaped doc (no planned_student) must fail with one
        // missing-key diagnostic per expected planned field.
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "planned_student");
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert!(
            problems
                .iter()
                .any(|p| p.contains("planned_student.speedup_planned_epoch")),
            "{problems:?}"
        );
    }

    #[test]
    fn validator_rejects_non_finite_planned_field() {
        let mut doc = minimal_valid_doc();
        if let Some(Json::Obj(row)) = match &mut doc {
            Json::Obj(pairs) => pairs
                .iter_mut()
                .find(|(k, _)| k == "planned_student")
                .map(|(_, v)| v),
            _ => None,
        } {
            if let Some((_, v)) = row.iter_mut().find(|(k, _)| k == "predict_planned_ms") {
                *v = Json::str("fast");
            }
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("planned_student.predict_planned_ms"));
    }

    #[test]
    fn validator_requires_planned_training_section() {
        // v4 gate: a v3-shaped doc (no planned_training) must fail with
        // one missing-key diagnostic per expected training field.
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "planned_training");
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 13, "{problems:?}");
        assert!(
            problems
                .iter()
                .any(|p| p.contains("planned_training.speedup_planned_train_epoch")),
            "{problems:?}"
        );
        assert!(
            problems
                .iter()
                .any(|p| p.contains("planned_training.bwd_steps")),
            "{problems:?}"
        );
    }

    #[test]
    fn validator_rejects_non_finite_training_field() {
        let mut doc = minimal_valid_doc();
        if let Some(Json::Obj(row)) = match &mut doc {
            Json::Obj(pairs) => pairs
                .iter_mut()
                .find(|(k, _)| k == "planned_training")
                .map(|(_, v)| v),
            _ => None,
        } {
            if let Some((_, v)) = row.iter_mut().find(|(k, _)| k == "train_step_planned_ms") {
                *v = Json::str("fast");
            }
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("planned_training.train_step_planned_ms"));
    }

    #[test]
    fn validator_rejects_stale_schema_strings() {
        // The schema bump is load-bearing: an old v3..v6 baseline must be
        // rejected by name even if it were otherwise field-complete.
        for stale in [
            "timekd-kernel-bench/v3",
            "timekd-kernel-bench/v4",
            "timekd-kernel-bench/v5",
            "timekd-kernel-bench/v6",
        ] {
            let mut doc = minimal_valid_doc();
            if let Json::Obj(pairs) = &mut doc {
                if let Some((_, v)) = pairs.iter_mut().find(|(k, _)| k == "schema") {
                    *v = Json::str(stale);
                }
            }
            let problems = validate_kernel_bench(&doc).expect_err("must fail");
            assert_eq!(problems.len(), 1, "{stale}: {problems:?}");
            assert!(problems[0].contains("timekd-kernel-bench/v7"), "{stale}");
        }
    }

    #[test]
    fn validator_requires_batched_training_section() {
        // v6 gate: a v5-shaped doc (no batched_training) must fail with a
        // missing-section diagnostic.
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "batched_training");
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(
            problems,
            vec!["missing key `batched_training`".to_string()],
            "{problems:?}"
        );

        // An empty array is just as stale as a missing one.
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            if let Some((_, v)) = pairs.iter_mut().find(|(k, _)| k == "batched_training") {
                *v = Json::Arr(vec![]);
            }
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(
            problems,
            vec!["`batched_training` must be a non-empty array".to_string()]
        );
    }

    #[test]
    fn validator_rejects_non_finite_batched_field() {
        let mut doc = minimal_valid_doc();
        if let Some(Json::Arr(rows)) = match &mut doc {
            Json::Obj(pairs) => pairs
                .iter_mut()
                .find(|(k, _)| k == "batched_training")
                .map(|(_, v)| v),
            _ => None,
        } {
            if let Json::Obj(row) = &mut rows[0] {
                if let Some((_, v)) = row.iter_mut().find(|(k, _)| k == "speedup_batched") {
                    *v = Json::str("fast");
                }
            }
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("batched_training[0].speedup_batched"));
    }

    #[test]
    fn validator_requires_quantized_student_section() {
        // v5 gate: a v4-shaped doc (no quantized_student) must fail with
        // one missing-key diagnostic per expected quantized field.
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "quantized_student");
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 13, "{problems:?}");
        assert!(
            problems
                .iter()
                .any(|p| p.contains("quantized_student.mse_delta")),
            "{problems:?}"
        );
        assert!(
            problems
                .iter()
                .any(|p| p.contains("quantized_student.param_bytes_int8")),
            "{problems:?}"
        );
    }

    #[test]
    fn validator_requires_serving_section() {
        // v7 gate: a v6-shaped doc (no serving section) must fail with one
        // missing-key diagnostic per expected serving field.
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "serving");
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 13, "{problems:?}");
        assert!(
            problems
                .iter()
                .any(|p| p.contains("serving.latency_p99_ms")),
            "{problems:?}"
        );
        assert!(
            problems
                .iter()
                .any(|p| p.contains("serving.mean_batch_occupancy")),
            "{problems:?}"
        );
    }

    #[test]
    fn validator_rejects_non_finite_serving_field() {
        let mut doc = minimal_valid_doc();
        if let Some(Json::Obj(row)) = match &mut doc {
            Json::Obj(pairs) => pairs
                .iter_mut()
                .find(|(k, _)| k == "serving")
                .map(|(_, v)| v),
            _ => None,
        } {
            if let Some((_, v)) = row.iter_mut().find(|(k, _)| k == "throughput_rps") {
                *v = Json::str("fast");
            }
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("serving.throughput_rps"));
    }

    #[test]
    fn validator_requires_non_empty_string_notes() {
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "notes");
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems, vec!["missing key `notes`".to_string()]);

        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            if let Some((_, v)) = pairs.iter_mut().find(|(k, _)| k == "notes") {
                *v = Json::Arr(vec![Json::num(7.0)]);
            }
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems, vec!["`notes[0]` must be a string".to_string()]);
    }

    #[test]
    fn validator_rejects_incomplete_simd_kernel_row() {
        // v5 gate on the per-shape rows: the simd-vs-scalar columns are
        // mandatory, so a v4-era row fails by key name.
        let mut doc = minimal_valid_doc();
        if let Some(Json::Arr(rows)) = match &mut doc {
            Json::Obj(pairs) => pairs
                .iter_mut()
                .find(|(k, _)| k == "kernels")
                .map(|(_, v)| v),
            _ => None,
        } {
            if let Json::Obj(row) = &mut rows[0] {
                row.retain(|(k, _)| k != "serial_scalar_ms" && k != "speedup_simd_vs_scalar");
            }
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("serial_scalar_ms")));
        assert!(
            problems
                .iter()
                .any(|p| p.contains("speedup_simd_vs_scalar")),
            "{problems:?}"
        );
    }

    #[test]
    fn validator_requires_attention_section() {
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "attention");
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert!(
            problems.iter().any(|p| p.contains("`attention`")),
            "{problems:?}"
        );
    }
}
