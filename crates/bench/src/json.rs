//! Minimal dependency-free JSON: an emitter for the machine-readable
//! `BENCH_*.json` perf baselines and a small recursive-descent parser used
//! by `--validate` (and `scripts/bench.sh`) to check an emitted file
//! against the expected schema.
//!
//! This is deliberately not a general JSON library: it supports exactly
//! the subset the bench files use (objects, arrays, strings without
//! exotic escapes, finite numbers, booleans, null) and keeps object keys
//! in insertion order so emitted files are stable and diffable.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (the emitter rejects NaN/infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: a finite number. Panics on NaN/infinite input — a
    /// perf baseline with unrepresentable numbers is a bug upstream.
    pub fn num(v: f64) -> Json {
        assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
        Json::Num(v)
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a `.`-separated path of object keys.
    pub fn get_path(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for key in path.split('.') {
            cur = cur.get(key)?;
        }
        Some(cur)
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                // Integers print without a fractional part; everything else
                // with enough digits to round-trip comparisons in tests.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad_in);
                    out.push_str(&format!("\"{k}\": "));
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses JSON text. Errors carry a byte offset and message.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {}, found {:?}",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {}",
            other.map(|&c| c as char),
            *pos
        )),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => {
                        return Err(format!("bad escape {:?} at byte {}", other, *pos));
                    }
                }
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8 passes through unchanged.
                let s = &bytes[*pos..];
                let ch_len = match s[0] {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = std::str::from_utf8(&s[..ch_len.min(s.len())])
                    .map_err(|e| format!("bad UTF-8 at byte {}: {e}", *pos))?;
                out.push_str(chunk);
                *pos += chunk.len();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => {
                return Err(format!(
                    "expected `,` or `]` at byte {}, found {:?}",
                    *pos,
                    other.map(|&c| c as char)
                ));
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            other => {
                return Err(format!(
                    "expected `,` or `}}` at byte {}, found {:?}",
                    *pos,
                    other.map(|&c| c as char)
                ));
            }
        }
    }
}

/// Checks a parsed document against the `timekd-kernel-bench/v6` schema
/// emitted by `cargo run -p timekd-bench --bin kernels`. Returns every
/// problem found (not just the first) so a broken baseline is diagnosable
/// in one pass.
pub fn validate_kernel_bench(doc: &Json) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    let mut need_num = |path: &str| match doc.get_path(path).map(Json::as_num) {
        Some(Some(v)) if v.is_finite() => {}
        Some(_) => problems.push(format!("`{path}` is not a finite number")),
        None => problems.push(format!("missing key `{path}`")),
    };
    need_num("created_unix_s");
    need_num("threads.configured");
    need_num("threads.available");
    for key in [
        "teacher_epoch_serial_ms",
        "teacher_epoch_parallel_ms",
        "speedup_teacher",
        "student_epoch_serial_ms",
        "student_epoch_parallel_ms",
        "speedup_student",
    ] {
        need_num(&format!("end_to_end.{key}"));
    }

    // v3: the planned-vs-dynamic student predict section. A missing
    // section reports one `missing key` problem per expected field.
    for key in [
        "input_len",
        "horizon",
        "num_vars",
        "windows",
        "iters",
        "predict_dynamic_ms",
        "predict_planned_ms",
        "speedup_planned_predict",
        "epoch_dynamic_ms",
        "epoch_planned_ms",
        "speedup_planned_epoch",
        "plan_steps",
        "plan_arena_f32",
    ] {
        need_num(&format!("planned_student.{key}"));
    }

    // v4: the planned-vs-dynamic student *training* section (full step:
    // forward + reverse schedule + fused optimizer update). A missing
    // section reports one `missing key` problem per expected field.
    for key in [
        "input_len",
        "horizon",
        "num_vars",
        "windows",
        "iters",
        "train_step_dynamic_ms",
        "train_step_planned_ms",
        "speedup_planned_train_step",
        "train_epoch_dynamic_ms",
        "train_epoch_planned_ms",
        "speedup_planned_train_epoch",
        "bwd_steps",
        "update_steps",
    ] {
        need_num(&format!("planned_training.{key}"));
    }

    // v5: the quantized-vs-f32 compiled-student section (int8 weight
    // storage, `qmm` kernels, accuracy gate). A missing section reports
    // one `missing key` problem per expected field.
    for key in [
        "input_len",
        "horizon",
        "num_vars",
        "windows",
        "iters",
        "mse_delta",
        "mse_delta_bound",
        "predict_f32_ms",
        "predict_int8_ms",
        "speedup_int8_vs_f32",
        "param_bytes_f32",
        "param_bytes_int8",
        "param_compression",
    ] {
        need_num(&format!("quantized_student.{key}"));
    }

    // v6: the batched-training section — one row per micro-batch size
    // comparing the per-window planned epoch against the data-parallel
    // batched replay with pinned window-order gradient reduction.
    match doc.get("batched_training").map(Json::as_arr) {
        Some(Some(rows)) if !rows.is_empty() => {
            for (i, row) in rows.iter().enumerate() {
                if row.get("name").and_then(Json::as_str).is_none() {
                    problems.push(format!(
                        "`batched_training[{i}].name` missing or not a string"
                    ));
                }
                for key in [
                    "micro_batch",
                    "input_len",
                    "horizon",
                    "num_vars",
                    "windows",
                    "iters",
                    "epoch_per_window_ms",
                    "epoch_batched_ms",
                    "speedup_batched",
                    "reduce_steps",
                    "update_steps",
                ] {
                    match row.get(key).map(Json::as_num) {
                        Some(Some(v)) if v.is_finite() => {}
                        _ => problems.push(format!(
                            "`batched_training[{i}].{key}` missing or not finite"
                        )),
                    }
                }
            }
        }
        Some(Some(_)) => problems.push("`batched_training` must be a non-empty array".to_string()),
        _ => problems.push("missing key `batched_training`".to_string()),
    }

    match doc.get("schema").map(Json::as_str) {
        Some(Some("timekd-kernel-bench/v6")) => {}
        Some(other) => problems.push(format!(
            "`schema` must be \"timekd-kernel-bench/v6\", got {other:?}"
        )),
        None => problems.push("missing key `schema`".to_string()),
    }

    // v5: free-form provenance notes (e.g. the partition-granularity
    // regression fix) — a non-empty array of strings.
    match doc.get("notes").map(Json::as_arr) {
        Some(Some(items)) if !items.is_empty() => {
            for (i, item) in items.iter().enumerate() {
                if item.as_str().is_none() {
                    problems.push(format!("`notes[{i}]` must be a string"));
                }
            }
        }
        Some(Some(_)) => problems.push("`notes` must be a non-empty array".to_string()),
        _ => problems.push("missing key `notes`".to_string()),
    }
    if !matches!(doc.get("quick"), Some(Json::Bool(_))) {
        problems.push("`quick` must be a boolean".to_string());
    }

    match doc.get("kernels").map(Json::as_arr) {
        Some(Some(rows)) if !rows.is_empty() => {
            for (i, row) in rows.iter().enumerate() {
                if row.get("name").and_then(Json::as_str).is_none() {
                    problems.push(format!("`kernels[{i}].name` missing or not a string"));
                }
                for key in [
                    "m",
                    "k",
                    "n",
                    "batch",
                    "iters",
                    "serial_ms",
                    "serial_scalar_ms",
                    "speedup_simd_vs_scalar",
                    "parallel_ms",
                    "speedup_parallel",
                    "gflops_serial",
                    "gflops_parallel",
                    "naive_ms",
                    "speedup_blocked_vs_naive",
                    "grad_serial_ms",
                    "grad_parallel_ms",
                    "speedup_grad_parallel",
                ] {
                    match row.get(key).map(Json::as_num) {
                        Some(Some(v)) if v.is_finite() => {}
                        _ => problems.push(format!("`kernels[{i}].{key}` missing or not finite")),
                    }
                }
            }
        }
        Some(Some(_)) => problems.push("`kernels` must be a non-empty array".to_string()),
        _ => problems.push("missing key `kernels`".to_string()),
    }

    // v2: fused-vs-composed attention timings.
    match doc.get("attention").map(Json::as_arr) {
        Some(Some(rows)) if !rows.is_empty() => {
            for (i, row) in rows.iter().enumerate() {
                if row.get("name").and_then(Json::as_str).is_none() {
                    problems.push(format!("`attention[{i}].name` missing or not a string"));
                }
                if !matches!(row.get("causal"), Some(Json::Bool(_))) {
                    problems.push(format!("`attention[{i}].causal` must be a boolean"));
                }
                for key in [
                    "heads",
                    "tq",
                    "tk",
                    "dh",
                    "iters",
                    "fused_ms",
                    "composed_ms",
                    "speedup_fused",
                    "fused_train_ms",
                    "composed_train_ms",
                    "speedup_fused_train",
                ] {
                    match row.get(key).map(Json::as_num) {
                        Some(Some(v)) if v.is_finite() => {}
                        _ => problems.push(format!("`attention[{i}].{key}` missing or not finite")),
                    }
                }
            }
        }
        Some(Some(_)) => problems.push("`attention` must be a non-empty array".to_string()),
        _ => problems.push("missing key `attention`".to_string()),
    }

    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bench_shape() {
        let doc = Json::obj(vec![
            ("schema", Json::str("timekd-kernel-bench/v6")),
            ("created_unix_s", Json::num(1_722_000_000.0)),
            ("quick", Json::Bool(true)),
            (
                "kernels",
                Json::Arr(vec![Json::obj(vec![
                    ("name", Json::str("mm_256x256x256")),
                    ("serial_ms", Json::num(12.5)),
                    ("speedup_parallel", Json::num(3.02)),
                ])]),
            ),
        ]);
        let text = doc.render();
        let parsed = Json::parse(&text).expect("parse");
        assert_eq!(parsed, doc);
        assert_eq!(
            parsed
                .get_path("kernels")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(
            parsed.get_path("schema").and_then(Json::as_str),
            Some("timekd-kernel-bench/v6")
        );
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::num(4.0).render(), "4\n");
        assert_eq!(Json::num(0.25).render(), "0.25\n");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let doc = Json::str("line\nquote\" back\\slash\ttab");
        let parsed = Json::parse(&doc.render()).expect("parse");
        assert_eq!(parsed, doc);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_is_rejected_at_build_time() {
        let _ = Json::num(f64::NAN);
    }

    fn minimal_valid_doc() -> Json {
        let kernel_keys = [
            "m",
            "k",
            "n",
            "batch",
            "iters",
            "serial_ms",
            "serial_scalar_ms",
            "speedup_simd_vs_scalar",
            "parallel_ms",
            "speedup_parallel",
            "gflops_serial",
            "gflops_parallel",
            "naive_ms",
            "speedup_blocked_vs_naive",
            "grad_serial_ms",
            "grad_parallel_ms",
            "speedup_grad_parallel",
        ];
        let mut row = vec![("name", Json::str("mm_64"))];
        row.extend(kernel_keys.iter().map(|k| (*k, Json::num(1.0))));
        let attn_keys = [
            "heads",
            "tq",
            "tk",
            "dh",
            "iters",
            "fused_ms",
            "composed_ms",
            "speedup_fused",
            "fused_train_ms",
            "composed_train_ms",
            "speedup_fused_train",
        ];
        let mut attn_row = vec![
            ("name", Json::str("attn_lm_base")),
            ("causal", Json::Bool(true)),
        ];
        attn_row.extend(attn_keys.iter().map(|k| (*k, Json::num(1.0))));
        let planned_keys = [
            "input_len",
            "horizon",
            "num_vars",
            "windows",
            "iters",
            "predict_dynamic_ms",
            "predict_planned_ms",
            "speedup_planned_predict",
            "epoch_dynamic_ms",
            "epoch_planned_ms",
            "speedup_planned_epoch",
            "plan_steps",
            "plan_arena_f32",
        ];
        let planned_row: Vec<(&str, Json)> =
            planned_keys.iter().map(|k| (*k, Json::num(1.0))).collect();
        let training_keys = [
            "input_len",
            "horizon",
            "num_vars",
            "windows",
            "iters",
            "train_step_dynamic_ms",
            "train_step_planned_ms",
            "speedup_planned_train_step",
            "train_epoch_dynamic_ms",
            "train_epoch_planned_ms",
            "speedup_planned_train_epoch",
            "bwd_steps",
            "update_steps",
        ];
        let training_row: Vec<(&str, Json)> =
            training_keys.iter().map(|k| (*k, Json::num(1.0))).collect();
        let quant_keys = [
            "input_len",
            "horizon",
            "num_vars",
            "windows",
            "iters",
            "mse_delta",
            "mse_delta_bound",
            "predict_f32_ms",
            "predict_int8_ms",
            "speedup_int8_vs_f32",
            "param_bytes_f32",
            "param_bytes_int8",
            "param_compression",
        ];
        let quant_row: Vec<(&str, Json)> =
            quant_keys.iter().map(|k| (*k, Json::num(1.0))).collect();
        let batched_keys = [
            "micro_batch",
            "input_len",
            "horizon",
            "num_vars",
            "windows",
            "iters",
            "epoch_per_window_ms",
            "epoch_batched_ms",
            "speedup_batched",
            "reduce_steps",
            "update_steps",
        ];
        let mut batched_row = vec![("name", Json::str("batched_b4"))];
        batched_row.extend(batched_keys.iter().map(|k| (*k, Json::num(1.0))));
        Json::obj(vec![
            ("schema", Json::str("timekd-kernel-bench/v6")),
            (
                "notes",
                Json::Arr(vec![Json::str("partition-granularity fix")]),
            ),
            ("created_unix_s", Json::num(1_722_000_000.0)),
            ("quick", Json::Bool(true)),
            (
                "threads",
                Json::obj(vec![
                    ("configured", Json::num(4.0)),
                    ("available", Json::num(8.0)),
                ]),
            ),
            ("kernels", Json::Arr(vec![Json::obj(row)])),
            ("attention", Json::Arr(vec![Json::obj(attn_row)])),
            ("planned_student", Json::obj(planned_row)),
            ("planned_training", Json::obj(training_row)),
            ("quantized_student", Json::obj(quant_row)),
            ("batched_training", Json::Arr(vec![Json::obj(batched_row)])),
            (
                "end_to_end",
                Json::obj(vec![
                    ("teacher_epoch_serial_ms", Json::num(10.0)),
                    ("teacher_epoch_parallel_ms", Json::num(5.0)),
                    ("speedup_teacher", Json::num(2.0)),
                    ("student_epoch_serial_ms", Json::num(8.0)),
                    ("student_epoch_parallel_ms", Json::num(4.0)),
                    ("speedup_student", Json::num(2.0)),
                ]),
            ),
        ])
    }

    #[test]
    fn validator_accepts_complete_doc() {
        assert_eq!(validate_kernel_bench(&minimal_valid_doc()), Ok(()));
    }

    #[test]
    fn validator_reports_every_problem() {
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "schema" && k != "end_to_end" && k != "quick");
            pairs.push(("quick".to_string(), Json::str("yes")));
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert!(
            problems.iter().any(|p| p.contains("`schema`")),
            "{problems:?}"
        );
        assert!(problems.iter().any(|p| p.contains("quick")), "{problems:?}");
        assert!(
            problems
                .iter()
                .any(|p| p.contains("end_to_end.speedup_teacher")),
            "{problems:?}"
        );
    }

    #[test]
    fn validator_rejects_missing_schema_field_alone() {
        // A report that is complete except for `schema` must fail with
        // exactly that diagnostic — the schema key is load-bearing for
        // forward compatibility and must never be optional.
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "schema");
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems, vec!["missing key `schema`".to_string()]);
    }

    #[test]
    fn validator_rejects_incomplete_kernel_row() {
        let mut doc = minimal_valid_doc();
        if let Some(Json::Arr(rows)) = match &mut doc {
            Json::Obj(pairs) => pairs
                .iter_mut()
                .find(|(k, _)| k == "kernels")
                .map(|(_, v)| v),
            _ => None,
        } {
            if let Json::Obj(row) = &mut rows[0] {
                row.retain(|(k, _)| k != "speedup_parallel");
            }
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("kernels[0].speedup_parallel"));
    }

    #[test]
    fn validator_rejects_incomplete_attention_row() {
        let mut doc = minimal_valid_doc();
        if let Some(Json::Arr(rows)) = match &mut doc {
            Json::Obj(pairs) => pairs
                .iter_mut()
                .find(|(k, _)| k == "attention")
                .map(|(_, v)| v),
            _ => None,
        } {
            if let Json::Obj(row) = &mut rows[0] {
                row.retain(|(k, _)| k != "speedup_fused" && k != "causal");
            }
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("attention[0].causal")));
        assert!(
            problems
                .iter()
                .any(|p| p.contains("attention[0].speedup_fused")),
            "{problems:?}"
        );
    }

    #[test]
    fn validator_requires_planned_student_section() {
        // v3 gate: a v2-shaped doc (no planned_student) must fail with one
        // missing-key diagnostic per expected planned field.
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "planned_student");
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert!(
            problems
                .iter()
                .any(|p| p.contains("planned_student.speedup_planned_epoch")),
            "{problems:?}"
        );
    }

    #[test]
    fn validator_rejects_non_finite_planned_field() {
        let mut doc = minimal_valid_doc();
        if let Some(Json::Obj(row)) = match &mut doc {
            Json::Obj(pairs) => pairs
                .iter_mut()
                .find(|(k, _)| k == "planned_student")
                .map(|(_, v)| v),
            _ => None,
        } {
            if let Some((_, v)) = row.iter_mut().find(|(k, _)| k == "predict_planned_ms") {
                *v = Json::str("fast");
            }
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("planned_student.predict_planned_ms"));
    }

    #[test]
    fn validator_requires_planned_training_section() {
        // v4 gate: a v3-shaped doc (no planned_training) must fail with
        // one missing-key diagnostic per expected training field.
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "planned_training");
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 13, "{problems:?}");
        assert!(
            problems
                .iter()
                .any(|p| p.contains("planned_training.speedup_planned_train_epoch")),
            "{problems:?}"
        );
        assert!(
            problems
                .iter()
                .any(|p| p.contains("planned_training.bwd_steps")),
            "{problems:?}"
        );
    }

    #[test]
    fn validator_rejects_non_finite_training_field() {
        let mut doc = minimal_valid_doc();
        if let Some(Json::Obj(row)) = match &mut doc {
            Json::Obj(pairs) => pairs
                .iter_mut()
                .find(|(k, _)| k == "planned_training")
                .map(|(_, v)| v),
            _ => None,
        } {
            if let Some((_, v)) = row.iter_mut().find(|(k, _)| k == "train_step_planned_ms") {
                *v = Json::str("fast");
            }
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("planned_training.train_step_planned_ms"));
    }

    #[test]
    fn validator_rejects_stale_schema_strings() {
        // The schema bump is load-bearing: an old v3, v4, or v5 baseline
        // must be rejected by name even if it were otherwise
        // field-complete.
        for stale in [
            "timekd-kernel-bench/v3",
            "timekd-kernel-bench/v4",
            "timekd-kernel-bench/v5",
        ] {
            let mut doc = minimal_valid_doc();
            if let Json::Obj(pairs) = &mut doc {
                if let Some((_, v)) = pairs.iter_mut().find(|(k, _)| k == "schema") {
                    *v = Json::str(stale);
                }
            }
            let problems = validate_kernel_bench(&doc).expect_err("must fail");
            assert_eq!(problems.len(), 1, "{stale}: {problems:?}");
            assert!(problems[0].contains("timekd-kernel-bench/v6"), "{stale}");
        }
    }

    #[test]
    fn validator_requires_batched_training_section() {
        // v6 gate: a v5-shaped doc (no batched_training) must fail with a
        // missing-section diagnostic.
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "batched_training");
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(
            problems,
            vec!["missing key `batched_training`".to_string()],
            "{problems:?}"
        );

        // An empty array is just as stale as a missing one.
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            if let Some((_, v)) = pairs.iter_mut().find(|(k, _)| k == "batched_training") {
                *v = Json::Arr(vec![]);
            }
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(
            problems,
            vec!["`batched_training` must be a non-empty array".to_string()]
        );
    }

    #[test]
    fn validator_rejects_non_finite_batched_field() {
        let mut doc = minimal_valid_doc();
        if let Some(Json::Arr(rows)) = match &mut doc {
            Json::Obj(pairs) => pairs
                .iter_mut()
                .find(|(k, _)| k == "batched_training")
                .map(|(_, v)| v),
            _ => None,
        } {
            if let Json::Obj(row) = &mut rows[0] {
                if let Some((_, v)) = row.iter_mut().find(|(k, _)| k == "speedup_batched") {
                    *v = Json::str("fast");
                }
            }
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("batched_training[0].speedup_batched"));
    }

    #[test]
    fn validator_requires_quantized_student_section() {
        // v5 gate: a v4-shaped doc (no quantized_student) must fail with
        // one missing-key diagnostic per expected quantized field.
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "quantized_student");
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 13, "{problems:?}");
        assert!(
            problems
                .iter()
                .any(|p| p.contains("quantized_student.mse_delta")),
            "{problems:?}"
        );
        assert!(
            problems
                .iter()
                .any(|p| p.contains("quantized_student.param_bytes_int8")),
            "{problems:?}"
        );
    }

    #[test]
    fn validator_requires_non_empty_string_notes() {
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "notes");
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems, vec!["missing key `notes`".to_string()]);

        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            if let Some((_, v)) = pairs.iter_mut().find(|(k, _)| k == "notes") {
                *v = Json::Arr(vec![Json::num(7.0)]);
            }
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems, vec!["`notes[0]` must be a string".to_string()]);
    }

    #[test]
    fn validator_rejects_incomplete_simd_kernel_row() {
        // v5 gate on the per-shape rows: the simd-vs-scalar columns are
        // mandatory, so a v4-era row fails by key name.
        let mut doc = minimal_valid_doc();
        if let Some(Json::Arr(rows)) = match &mut doc {
            Json::Obj(pairs) => pairs
                .iter_mut()
                .find(|(k, _)| k == "kernels")
                .map(|(_, v)| v),
            _ => None,
        } {
            if let Json::Obj(row) = &mut rows[0] {
                row.retain(|(k, _)| k != "serial_scalar_ms" && k != "speedup_simd_vs_scalar");
            }
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("serial_scalar_ms")));
        assert!(
            problems
                .iter()
                .any(|p| p.contains("speedup_simd_vs_scalar")),
            "{problems:?}"
        );
    }

    #[test]
    fn validator_requires_attention_section() {
        let mut doc = minimal_valid_doc();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "attention");
        }
        let problems = validate_kernel_bench(&doc).expect_err("must fail");
        assert!(
            problems.iter().any(|p| p.contains("`attention`")),
            "{problems:?}"
        );
    }
}
