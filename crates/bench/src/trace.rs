//! Trace/metrics reports: `timekd-obs` snapshots rendered as
//! schema-validated JSON (`timekd-trace/v1`) through the same machinery
//! that emits the `BENCH_*.json` perf baselines.
//!
//! Two validators are exported:
//! - [`validate_trace_report`] checks the *shape* of a document (every key
//!   present and well-typed, spans recursively well-formed);
//! - [`validate_trace_coverage`] checks the *content* of a training-run
//!   trace: the span tree must cover the whole TimeKD pipeline (teacher,
//!   SCA, student, both PKD losses, backward, optimizer) and the counter
//!   section must show pool and LM-cache activity. This is what the e2e
//!   acceptance gate runs against `examples/quickstart.rs` output.

use timekd_obs::{Snapshot, SpanNode};

use crate::json::Json;

/// Schema identifier emitted and required by the validators.
pub const TRACE_SCHEMA: &str = "timekd-trace/v1";

fn span_to_json(node: &SpanNode) -> Json {
    Json::obj(vec![
        ("name", Json::str(node.name.clone())),
        ("count", Json::num(node.count as f64)),
        ("total_ms", Json::num(node.total_ns as f64 / 1e6)),
        (
            "children",
            Json::Arr(node.children.iter().map(span_to_json).collect()),
        ),
    ])
}

/// Renders an observability [`Snapshot`] as a `timekd-trace/v1` document.
///
/// `label` names the run (e.g. `"quickstart"`); the caller supplies
/// `created_unix_s` so report creation stays clock-free and deterministic
/// under test.
pub fn trace_report(snapshot: &Snapshot, label: &str, created_unix_s: u64) -> Json {
    Json::obj(vec![
        ("schema", Json::str(TRACE_SCHEMA)),
        ("label", Json::str(label)),
        ("created_unix_s", Json::num(created_unix_s as f64)),
        (
            "spans",
            Json::Arr(snapshot.spans.iter().map(span_to_json).collect()),
        ),
        (
            "ops",
            Json::Arr(
                snapshot
                    .ops
                    .iter()
                    .map(|o| {
                        Json::obj(vec![
                            ("name", Json::str(o.name.clone())),
                            ("count", Json::num(o.count as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "counters",
            Json::Obj(
                snapshot
                    .counters
                    .iter()
                    .map(|c| (c.name.clone(), Json::num(c.value as f64)))
                    .collect(),
            ),
        ),
        (
            "workers",
            Json::Arr(
                snapshot
                    .workers
                    .iter()
                    .map(|w| {
                        Json::obj(vec![
                            ("worker", Json::num(w.worker as f64)),
                            ("busy_ms", Json::num(w.busy_ns as f64 / 1e6)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn check_span(span: &Json, path: &str, problems: &mut Vec<String>) {
    if span.get("name").and_then(Json::as_str).is_none() {
        problems.push(format!("`{path}.name` missing or not a string"));
    }
    for key in ["count", "total_ms"] {
        match span.get(key).map(Json::as_num) {
            Some(Some(v)) if v.is_finite() && v >= 0.0 => {}
            _ => problems.push(format!(
                "`{path}.{key}` missing or not a finite number >= 0"
            )),
        }
    }
    match span.get("children").map(Json::as_arr) {
        Some(Some(children)) => {
            for (i, c) in children.iter().enumerate() {
                check_span(c, &format!("{path}.children[{i}]"), problems);
            }
        }
        _ => problems.push(format!("`{path}.children` missing or not an array")),
    }
}

/// Names of the global counters every trace report must carry (the
/// registry in `timekd-obs`).
pub const REQUIRED_COUNTERS: [&str; 7] = [
    "pool.jobs",
    "pool.tasks",
    "pool.serial_fallback",
    "pool.slot_waits",
    "lm_cache.hits",
    "lm_cache.misses",
    "lm_cache.collisions",
];

/// Checks a parsed document against the `timekd-trace/v1` schema shape.
/// Returns every problem found, not just the first.
pub fn validate_trace_report(doc: &Json) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    match doc.get("schema").map(Json::as_str) {
        Some(Some(TRACE_SCHEMA)) => {}
        Some(other) => problems.push(format!(
            "`schema` must be \"{TRACE_SCHEMA}\", got {other:?}"
        )),
        None => problems.push("missing key `schema`".to_string()),
    }
    if doc.get("label").and_then(Json::as_str).is_none() {
        problems.push("`label` missing or not a string".to_string());
    }
    match doc.get("created_unix_s").map(Json::as_num) {
        Some(Some(v)) if v.is_finite() => {}
        _ => problems.push("`created_unix_s` missing or not finite".to_string()),
    }
    match doc.get("spans").map(Json::as_arr) {
        Some(Some(spans)) => {
            for (i, s) in spans.iter().enumerate() {
                check_span(s, &format!("spans[{i}]"), &mut problems);
            }
        }
        _ => problems.push("missing key `spans` (array)".to_string()),
    }
    match doc.get("ops").map(Json::as_arr) {
        Some(Some(rows)) => {
            for (i, row) in rows.iter().enumerate() {
                if row.get("name").and_then(Json::as_str).is_none() {
                    problems.push(format!("`ops[{i}].name` missing or not a string"));
                }
                match row.get("count").map(Json::as_num) {
                    Some(Some(v)) if v.is_finite() && v >= 0.0 => {}
                    _ => problems.push(format!("`ops[{i}].count` missing or not finite")),
                }
            }
        }
        _ => problems.push("missing key `ops` (array)".to_string()),
    }
    match doc.get("counters") {
        Some(Json::Obj(_)) => {
            for name in REQUIRED_COUNTERS {
                match doc
                    .get("counters")
                    .and_then(|c| c.get(name))
                    .map(Json::as_num)
                {
                    Some(Some(v)) if v.is_finite() && v >= 0.0 => {}
                    _ => problems.push(format!("`counters.{name}` missing or not finite")),
                }
            }
        }
        _ => problems.push("missing key `counters` (object)".to_string()),
    }
    match doc.get("workers").map(Json::as_arr) {
        Some(Some(rows)) => {
            for (i, row) in rows.iter().enumerate() {
                for key in ["worker", "busy_ms"] {
                    match row.get(key).map(Json::as_num) {
                        Some(Some(v)) if v.is_finite() && v >= 0.0 => {}
                        _ => problems.push(format!("`workers[{i}].{key}` missing or not finite")),
                    }
                }
            }
        }
        _ => problems.push("missing key `workers` (array)".to_string()),
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

/// Span names a full teacher+student training trace must contain somewhere
/// in its tree for the pipeline to count as covered. The student epoch runs
/// through the compiled batched plan, so its distillation terms surface as
/// the privileged-target staging span (`pkd.stage`) and the batch replay
/// span (`plan.student_batch`) rather than per-op dynamic spans.
pub const REQUIRED_PIPELINE_SPANS: [&str; 11] = [
    "epoch.teacher",
    "epoch.student",
    "teacher.forward",
    "teacher.sca",
    "student.forward",
    "student.predict",
    "pkd.stage",
    "plan.student_batch",
    "lm.embed",
    "tensor.backward",
    "optim.step",
];

fn span_name_present(spans: &[Json], name: &str) -> bool {
    spans.iter().any(|s| {
        s.get("name").and_then(Json::as_str) == Some(name)
            || s.get("children")
                .and_then(Json::as_arr)
                .is_some_and(|c| span_name_present(c, name))
    })
}

/// Checks that a shape-valid trace of a training run + predict covers the
/// whole TimeKD pipeline: every required span present, LM cache exercised,
/// and some pool activity (parallel jobs or — on small boxes — serial
/// fallbacks). Run [`validate_trace_report`] first.
pub fn validate_trace_coverage(doc: &Json) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    let spans = doc.get("spans").and_then(Json::as_arr).unwrap_or(&[]);
    for name in REQUIRED_PIPELINE_SPANS {
        if !span_name_present(spans, name) {
            problems.push(format!("span `{name}` missing from trace"));
        }
    }
    let counter = |name: &str| {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_num)
            .unwrap_or(0.0)
    };
    if counter("lm_cache.hits") + counter("lm_cache.misses") == 0.0 {
        problems.push("LM cache never exercised (hits + misses == 0)".to_string());
    }
    if counter("pool.jobs") + counter("pool.serial_fallback") == 0.0 {
        problems.push("worker pool never exercised (jobs + serial_fallback == 0)".to_string());
    }
    if doc
        .get("ops")
        .and_then(Json::as_arr)
        .is_none_or(<[Json]>::is_empty)
    {
        problems.push("no tensor ops dispatched".to_string());
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The obs gate and counters are process-global; serialize tests that
    /// record so they cannot observe each other's activity.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn recorded_snapshot() -> Snapshot {
        timekd_obs::set_enabled(true);
        timekd_obs::reset();
        {
            let _e = timekd_obs::span("epoch.teacher");
            let _t = timekd_obs::span("teacher.forward");
            timekd_obs::count_op("matmul");
        }
        timekd_obs::LM_CACHE_MISSES.add(1);
        let snap = timekd_obs::snapshot();
        timekd_obs::set_enabled(false);
        timekd_obs::reset();
        snap
    }

    #[test]
    fn report_from_snapshot_passes_shape_validation() {
        let _g = locked();
        let snap = recorded_snapshot();
        let doc = trace_report(&snap, "unit", 1_722_000_000);
        assert_eq!(validate_trace_report(&doc), Ok(()));
        // Round-trips through the emitter + parser unchanged.
        let parsed = Json::parse(&doc.render()).expect("parse");
        assert_eq!(parsed, doc);
        assert_eq!(
            parsed.get_path("schema").and_then(Json::as_str),
            Some(TRACE_SCHEMA)
        );
        assert!(span_name_present(
            parsed.get("spans").and_then(Json::as_arr).unwrap(),
            "teacher.forward"
        ));
    }

    #[test]
    fn validator_rejects_missing_schema_field() {
        let _g = locked();
        let snap = recorded_snapshot();
        let mut doc = trace_report(&snap, "unit", 1_722_000_000);
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "schema");
        }
        let problems = validate_trace_report(&doc).expect_err("must fail");
        assert!(
            problems.iter().any(|p| p.contains("missing key `schema`")),
            "{problems:?}"
        );
    }

    #[test]
    fn validator_rejects_wrong_schema_and_bad_span() {
        let doc = Json::obj(vec![
            ("schema", Json::str("timekd-trace/v0")),
            ("label", Json::str("x")),
            ("created_unix_s", Json::num(1.0)),
            (
                "spans",
                Json::Arr(vec![Json::obj(vec![("name", Json::str("a"))])]),
            ),
            ("ops", Json::Arr(vec![])),
            ("counters", Json::obj(vec![])),
            ("workers", Json::Arr(vec![])),
        ]);
        let problems = validate_trace_report(&doc).expect_err("must fail");
        assert!(problems.iter().any(|p| p.contains("`schema` must be")));
        assert!(problems.iter().any(|p| p.contains("spans[0].count")));
        assert!(problems.iter().any(|p| p.contains("spans[0].children")));
        assert!(
            problems.iter().any(|p| p.contains("counters.pool.jobs")),
            "{problems:?}"
        );
    }

    #[test]
    fn coverage_flags_missing_pipeline_spans() {
        let _g = locked();
        let snap = recorded_snapshot();
        let doc = trace_report(&snap, "unit", 1_722_000_000);
        // Shape is fine but the pipeline is not covered: only two spans
        // were recorded and the pool counters are zero.
        let problems = validate_trace_coverage(&doc).expect_err("must fail");
        assert!(problems.iter().any(|p| p.contains("`epoch.student`")));
        assert!(problems.iter().any(|p| p.contains("pool never exercised")));
        // The spans that *were* recorded are not flagged.
        assert!(!problems.iter().any(|p| p.contains("`teacher.forward`")));
    }

    #[test]
    fn coverage_accepts_full_pipeline() {
        let _g = locked();
        timekd_obs::set_enabled(true);
        timekd_obs::reset();
        {
            let _e = timekd_obs::span("epoch.teacher");
            {
                let _t = timekd_obs::span("teacher.forward");
                let _c = timekd_obs::span("teacher.sca");
            }
            let _b = timekd_obs::span("tensor.backward");
        }
        {
            let _e = timekd_obs::span("epoch.student");
            let _s = timekd_obs::span("student.forward");
        }
        for name in [
            "student.predict",
            "pkd.stage",
            "plan.student_batch",
            "lm.embed",
            "optim.step",
        ] {
            // Flat spans are fine: coverage only requires presence.
            let guard = match name {
                "student.predict" => timekd_obs::span("student.predict"),
                "pkd.stage" => timekd_obs::span("pkd.stage"),
                "plan.student_batch" => timekd_obs::span("plan.student_batch"),
                "lm.embed" => timekd_obs::span("lm.embed"),
                _ => timekd_obs::span("optim.step"),
            };
            drop(guard);
        }
        timekd_obs::count_op("matmul");
        timekd_obs::LM_CACHE_MISSES.add(2);
        timekd_obs::POOL_SERIAL_FALLBACK.add(1);
        let snap = timekd_obs::snapshot();
        timekd_obs::set_enabled(false);
        timekd_obs::reset();
        let doc = trace_report(&snap, "unit", 1_722_000_000);
        assert_eq!(validate_trace_report(&doc), Ok(()));
        assert_eq!(validate_trace_coverage(&doc), Ok(()));
    }
}
