//! # timekd-bench
//!
//! Experiment harness regenerating every table and figure of the TimeKD
//! paper's evaluation (§V). Each bench target under `benches/` is a
//! standalone binary (`harness = false`) that builds the synthetic
//! datasets, trains the relevant models, prints the paper's table, and
//! saves a CSV under `target/experiments/`.
//!
//! | target | reproduces |
//! |---|---|
//! | `table1_longterm`   | Table I — long-term forecasting |
//! | `table2_shortterm`  | Table II — PEMS short-term forecasting |
//! | `table3_llm_ablation` | Table III — LM backbone tiers |
//! | `table4_efficiency` | Table IV — params/time/memory/speed |
//! | `table5_fewshot`    | Table V — 10% few-shot |
//! | `table6_zeroshot`   | Table VI — cross-dataset zero-shot |
//! | `fig6_ablation`     | Fig. 6 — component ablations |
//! | `fig7_scalability`  | Fig. 7 — training-fraction sweep |
//! | `fig8_attention_maps` | Fig. 8 — teacher vs student attention |
//! | `fig9_feature_maps` | Fig. 9 — self-relation feature matrices |
//! | `fig10_gt_vs_pred`  | Fig. 10 — forecast vs ground-truth curves |
//! | `kernels` (dependency-free, `harness = false`) | microbenchmarks of the hot kernels |
//!
//! `QUICK=0` switches every target to the larger profile.
//!
//! Besides the bench targets there is one binary, `--bin kernels`
//! (`cargo run -p timekd-bench --release --bin kernels`): the perf
//! baseline runner. It times the matmul kernels serial vs parallel
//! (see `TIMEKD_THREADS`), compares them against the naive triple-loop
//! reference, measures the compiled student plan against the dynamic
//! graph engine and teacher/student epoch wall time, and writes a
//! machine-readable `BENCH_<unix-seconds>.json` validated against the
//! schema in [`json::validate_kernel_bench`]. `scripts/bench.sh` wraps
//! a QUICK smoke run plus schema validation for CI.
//!
//! A second binary, `--bin serve_load`, runs the closed-loop forecast
//! serving harness (see [`serving`]) standalone: it boots a real
//! `timekd-serve` server, drives it with seeded client threads, and
//! prints the `serving` section the kernels runner embeds in
//! `BENCH_*.json`.

mod alloc;
pub mod json;
mod profile;
mod runner;
pub mod serving;
mod tables;
pub mod trace;

pub use alloc::PeakAlloc;
pub use json::{validate_kernel_bench, Json};
pub use profile::Profile;
pub use runner::{
    build_model, build_model_seeded, prompt_config, run_experiment, run_experiment_seeds,
    run_model, run_windows, run_zero_shot, timekd_config, ModelKind, RunResult, RunWindows,
    SharedLm,
};
pub use serving::{run_serve_load, ServeLoadSpec};
pub use tables::{argmin, experiments_dir, f3, render_heatmap, secs, ResultTable};
pub use trace::{trace_report, validate_trace_coverage, validate_trace_report, TRACE_SCHEMA};
