//! Experiment sizing profiles.
//!
//! The paper trains on A100s; this reproduction runs on a laptop CPU. The
//! default **quick** profile is sized so the full bench suite finishes in
//! minutes while preserving every experimental contrast; `QUICK=0` switches
//! to the **full** profile with longer series, more windows, and more
//! epochs.

/// Sizing knobs shared by all experiments.
#[derive(Clone, Copy, Debug)]
pub struct Profile {
    /// Generated series length for a dataset whose largest window is
    /// `input_len + horizon` (added on top of this base).
    pub base_steps: usize,
    /// Training epochs per run.
    pub epochs: usize,
    /// Maximum training windows per epoch (subsampled by stride).
    pub max_train_windows: usize,
    /// Maximum evaluation windows.
    pub max_eval_windows: usize,
    /// History length `H` (the paper fixes 96).
    pub input_len: usize,
    /// Long-term horizons swept in Table I.
    pub long_horizons: &'static [usize],
    /// Whether this is the quick profile.
    pub quick: bool,
}

impl Profile {
    /// The laptop-scale default.
    pub fn quick() -> Profile {
        Profile {
            base_steps: 900,
            epochs: 4,
            max_train_windows: 24,
            max_eval_windows: 24,
            input_len: 96,
            long_horizons: &[24, 36, 48, 96, 192],
            quick: true,
        }
    }

    /// The larger profile selected by `QUICK=0`.
    pub fn full() -> Profile {
        Profile {
            base_steps: 3000,
            epochs: 8,
            max_train_windows: 128,
            max_eval_windows: 96,
            input_len: 96,
            long_horizons: &[24, 36, 48, 96, 192],
            quick: false,
        }
    }

    /// Reads `QUICK` from the environment (`0`/`false` → full profile).
    pub fn from_env() -> Profile {
        match std::env::var("QUICK").as_deref() {
            Ok("0") | Ok("false") | Ok("no") => Profile::full(),
            _ => Profile::quick(),
        }
    }

    /// Series length to generate for a given horizon.
    pub fn num_steps(&self, horizon: usize) -> usize {
        self.base_steps + 4 * (self.input_len + horizon)
    }

    /// Stride that brings `available` windows down to at most `cap`.
    pub fn stride_for(&self, available: usize, cap: usize) -> usize {
        (available / cap.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_smaller_than_full() {
        let q = Profile::quick();
        let f = Profile::full();
        assert!(q.base_steps < f.base_steps);
        assert!(q.epochs < f.epochs);
        assert!(q.max_train_windows < f.max_train_windows);
    }

    #[test]
    fn num_steps_scales_with_horizon() {
        let p = Profile::quick();
        assert!(p.num_steps(192) > p.num_steps(24));
        // Always enough for the 4x window requirement of SplitDataset.
        assert!(p.num_steps(192) >= 4 * (96 + 192));
    }

    #[test]
    fn stride_caps_windows() {
        let p = Profile::quick();
        assert_eq!(p.stride_for(100, 25), 4);
        assert_eq!(p.stride_for(10, 25), 1);
        assert_eq!(p.stride_for(0, 25), 1);
    }
}
