//! Proves the compiled-plan student predict *and training* paths are
//! allocation-free.
//!
//! Installs [`PeakAlloc`] as this binary's global allocator and measures
//! the heap around a batch of [`PlannedStudent::predict_into`] calls and
//! then a batch of [`PlannedTrainer::planned_train_step`] calls: after
//! the warm-up call, live bytes must not move and the peak must not
//! rise — i.e. both hot loops (forward replay, reverse schedule, fused
//! optimizer update) perform **zero** allocations, as the
//! `*-in-plan-loop` lint rules promise statically.
//!
//! Built with `harness = false`: the libtest harness runs a second thread
//! whose own bookkeeping allocates sporadically, which would show up in
//! the global counters. A plain single-threaded `main` makes the
//! measurement window deterministic.

use std::collections::HashMap;

use timekd::{
    compile_student_training_plan_batched, trace_student_loss, PlannedStudent, PlannedTrainer,
    Student, TimeKdConfig,
};
use timekd_bench::PeakAlloc;
use timekd_nn::Module;
use timekd_tensor::{
    parallel::with_threads, seeded_rng, BatchTrainExecutor, PlanOptimizer, Tensor,
};

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc::new();

fn main() {
    let config = TimeKdConfig::default();
    let (input_len, horizon, num_vars) = (48, 24, 7);
    let mut rng = seeded_rng(0xA110C);
    let student = Student::new(&config, input_len, horizon, num_vars, &mut rng);
    let mut planned = PlannedStudent::new(&student, &config).expect("student plan compiles");

    let x = Tensor::randn([input_len, num_vars], 1.0, &mut rng);
    let mut out = vec![0.0f32; horizon * num_vars];

    // Warm-up: any lazy one-time setup happens outside the window.
    planned.predict_into(&x, &mut out);

    let live_before = ALLOC.live_bytes();
    ALLOC.reset_peak();
    for _ in 0..64 {
        planned.predict_into(&x, &mut out);
    }
    let live_after = ALLOC.live_bytes();
    let peak_after = ALLOC.peak_bytes();

    assert_eq!(
        live_after, live_before,
        "planned predict must not leak or allocate"
    );
    assert_eq!(
        peak_after, live_before,
        "planned predict must not allocate even transiently"
    );
    assert!(out.iter().all(|v| v.is_finite()), "forecast must be finite");
    println!("planned_alloc: 64 predict_into calls, zero heap movement ({live_before} live bytes)");

    // Same proof for the full training step: forward replay + reverse
    // schedule + fused AdamW update, all from the one pre-sized arena.
    let mut trainer = PlannedTrainer::new(
        &student,
        &config,
        PlanOptimizer::AdamW {
            lr: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
        },
    )
    .expect("training plan compiles");
    let y = Tensor::randn([horizon, num_vars], 0.5, &mut rng);

    // Warm-up: binding already happened in `new`; this catches any lazy
    // first-step setup.
    trainer.planned_train_step(&x, &y);

    let live_before = ALLOC.live_bytes();
    ALLOC.reset_peak();
    let mut last = 0.0f32;
    for _ in 0..64 {
        last = trainer.planned_train_step(&x, &y);
    }
    let live_after = ALLOC.live_bytes();
    let peak_after = ALLOC.peak_bytes();

    assert_eq!(
        live_after, live_before,
        "planned training step must not leak or allocate"
    );
    assert_eq!(
        peak_after, live_before,
        "planned training step must not allocate even transiently"
    );
    assert!(last.is_finite(), "training loss must be finite");
    println!(
        "planned_alloc: 64 planned_train_step calls, zero heap movement ({live_before} live bytes)"
    );

    // Same proof for the *batched* training path: staging every lane plus
    // the data-parallel replay, pinned window-order reduction, and fused
    // update must all run from pre-sized per-lane arenas. Forced onto the
    // serial fold (`with_threads(1)`) so pool job bookkeeping — which is
    // outside the plan's zero-alloc promise — stays out of the window.
    let batch = 4;
    let plan = compile_student_training_plan_batched(
        &config,
        input_len,
        horizon,
        num_vars,
        PlanOptimizer::AdamW {
            lr: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
        },
        batch,
    )
    .expect("batched training plan compiles");
    let (ctx, _) =
        trace_student_loss(&config, input_len, horizon, num_vars).expect("student loss traces");
    let by_label: HashMap<String, Tensor> = ctx
        .params()
        .iter()
        .zip(student.params())
        .map(|(sym, real)| (sym.label().to_string(), real.clone()))
        .collect();
    let mut exec = BatchTrainExecutor::new(&plan, |label, dims| {
        by_label
            .get(label)
            .filter(|t| t.dims() == dims)
            .map(|t| t.data().clone())
    })
    .expect("batched executor binds");
    let ys: Vec<Tensor> = (0..batch)
        .map(|_| Tensor::randn([horizon, num_vars], 0.5, &mut rng))
        .collect();

    with_threads(1, || {
        // Warm-up batch outside the window.
        for (lane, y) in ys.iter().enumerate() {
            exec.stage_window(lane, &x.data(), &y.data());
        }
        exec.run_batch(batch);

        let live_before = ALLOC.live_bytes();
        ALLOC.reset_peak();
        for _ in 0..64 {
            for (lane, y) in ys.iter().enumerate() {
                exec.stage_window(lane, &x.data(), &y.data());
            }
            exec.run_batch(batch);
        }
        let live_after = ALLOC.live_bytes();
        let peak_after = ALLOC.peak_bytes();

        assert_eq!(
            live_after, live_before,
            "batched training step must not leak or allocate"
        );
        assert_eq!(
            peak_after, live_before,
            "batched training step must not allocate even transiently"
        );
        assert!(
            (0..batch).all(|w| exec.lane_loss(w).is_finite()),
            "batched lane losses must be finite"
        );
        println!(
            "planned_alloc: 64 batched run_batch calls (B={batch}), zero heap movement \
             ({live_before} live bytes)"
        );
    });
}
