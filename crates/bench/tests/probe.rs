//! Manual tuning probe (run with `cargo test -p timekd-bench --release
//! --test probe -- --ignored --nocapture`). Not part of the regular suite.

use timekd::{Forecaster, TimeKd};
use timekd_bench::{Profile, SharedLm};
use timekd_data::{DatasetKind, SplitDataset};
use timekd_lm::LmSize;

#[test]
#[ignore = "manual tuning probe"]
fn pkd_weight_sweep() {
    let profile = Profile::quick();
    let shared = SharedLm::pretrain(LmSize::Base, &profile);
    let ds = SplitDataset::new(DatasetKind::EttM1, profile.num_steps(96), 42, 96, 96);
    for lambda_pkd in [0.0f32, 0.1, 0.3, 1.0] {
        let mut cfg = timekd_bench::timekd_config(&profile, &shared, 15);
        cfg.lambda_pkd = lambda_pkd;
        let mut model = TimeKd::with_frozen_lm(
            shared.frozen.clone(),
            shared.tokenizer.clone(),
            cfg,
            96,
            96,
            ds.num_vars(),
        );
        let windows = timekd_bench::run_windows(&ds, &profile, 1.0);
        let mut recon = 0.0;
        for _ in 0..profile.epochs {
            let s = model.train_epoch_detailed(&windows.train);
            recon = s.reconstruction;
        }
        let (mse, mae) = model.evaluate(&windows.test);
        println!("lambda_pkd={lambda_pkd}: MSE {mse:.4} MAE {mae:.4} (teacher recon {recon:.4})");
    }
}

#[test]
#[ignore = "manual tuning probe"]
fn teacher_recon_diagnosis() {
    use timekd::AblationConfig;
    let profile = Profile::quick();
    // Check pretraining value-regression quality first.
    let tok = timekd_lm::PromptTokenizer::new();
    let (_, report) = timekd_lm::pretrain_lm(
        &tok,
        timekd_lm::LmConfig::for_size(LmSize::Base),
        timekd_lm::PretrainConfig {
            steps: 80,
            ..Default::default()
        },
    );
    println!(
        "pretrain: lm {:.3}->{:.3}, value mse {:.3}->{:.3}",
        report.initial_loss, report.final_loss, report.initial_value_mse, report.final_value_mse
    );
    let shared = SharedLm::pretrain(LmSize::Base, &profile);
    let ds = SplitDataset::new(DatasetKind::EttM1, profile.num_steps(96), 42, 96, 96);
    for (label, ablation) in [
        ("full(CLM)", AblationConfig::full()),
        ("w/o_CLM(direct values)", AblationConfig::without_clm()),
    ] {
        let cfg = {
            let mut c = timekd_bench::timekd_config(&profile, &shared, 15);
            c.ablation = ablation;
            c
        };
        let mut model = TimeKd::with_frozen_lm(
            shared.frozen.clone(),
            shared.tokenizer.clone(),
            cfg,
            96,
            96,
            ds.num_vars(),
        );
        let windows = timekd_bench::run_windows(&ds, &profile, 1.0);
        for e in 0..8 {
            let recon = model.train_teacher_epoch(&windows.train);
            if e % 2 == 1 {
                println!("{label}: epoch {e} teacher recon {recon:.4}");
            }
        }
    }
}

#[test]
#[ignore = "manual tuning probe"]
fn pretrain_value_regression_sweep() {
    let tok = timekd_lm::PromptTokenizer::new();
    for (steps, weight, lr) in [
        (200usize, 1.0f32, 3e-3f32),
        (400, 1.0, 3e-3),
        (400, 3.0, 3e-3),
        (800, 3.0, 3e-3),
        (400, 3.0, 1e-2),
    ] {
        let (_, r) = timekd_lm::pretrain_lm(
            &tok,
            timekd_lm::LmConfig::for_size(LmSize::Base),
            timekd_lm::PretrainConfig {
                steps,
                lr,
                value_regression_weight: weight,
                ..Default::default()
            },
        );
        println!(
            "steps={steps} w={weight} lr={lr}: lm {:.3} value_mse {:.3}",
            r.final_loss, r.final_value_mse
        );
    }
}

#[test]
#[ignore = "manual tuning probe"]
fn pkd_few_shot_sweep() {
    let profile = Profile::quick();
    let shared = SharedLm::pretrain(LmSize::Base, &profile);
    let ds = SplitDataset::new(DatasetKind::EttM1, profile.num_steps(96), 42, 96, 96);
    for fraction in [0.1f32, 1.0] {
        for lambda_pkd in [0.0f32, 0.1, 0.3, 1.0] {
            let mut cfg = timekd_bench::timekd_config(&profile, &shared, 15);
            cfg.lambda_pkd = lambda_pkd;
            let mut model = TimeKd::with_frozen_lm(
                shared.frozen.clone(),
                shared.tokenizer.clone(),
                cfg,
                96,
                96,
                ds.num_vars(),
            );
            let windows = timekd_bench::run_windows(&ds, &profile, fraction);
            for _ in 0..profile.epochs {
                model.train_epoch(&windows.train);
            }
            let (mse, mae) = model.evaluate(&windows.test);
            println!(
                "fraction={fraction} lambda_pkd={lambda_pkd}: {} windows, MSE {mse:.4} MAE {mae:.4}",
                windows.train.len()
            );
        }
    }
}
