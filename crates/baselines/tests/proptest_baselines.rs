//! Randomised property tests for the baseline substrate: patching coverage
//! and instance-normalisation invariants over random inputs.

use timekd_baselines::{
    instance_denormalize, instance_normalize, moving_average, num_patches, patchify,
};
use timekd_tensor::{seeded_rng, Tensor};

const CASES: u64 = 48;

#[test]
fn patchify_always_covers_both_ends() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let patch_len = rng.gen_range(2usize..8);
        let len = rng.gen_range(patch_len.max(8)..64);
        let stride = rng.gen_range(1usize..6);
        let series: Vec<f32> = (0..len).map(|x| x as f32).collect();
        let p = patchify(&series, patch_len, stride);
        let v = p.to_vec();
        assert_eq!(v[0], 0.0, "seed {seed}: first element covered");
        assert_eq!(
            v[v.len() - 1],
            (len - 1) as f32,
            "seed {seed}: last element covered"
        );
        assert_eq!(
            p.dims()[0],
            num_patches(len, patch_len, stride),
            "seed {seed}"
        );
        assert_eq!(p.dims()[1], patch_len, "seed {seed}");
    }
}

#[test]
fn patchify_rows_are_contiguous_slices() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let patch_len = rng.gen_range(2usize..6);
        let len = rng.gen_range(patch_len.max(8)..40);
        let stride = rng.gen_range(1usize..5);
        let series: Vec<f32> = (0..len).map(|x| x as f32 * 0.5).collect();
        let p = patchify(&series, patch_len, stride);
        let v = p.to_vec();
        for r in 0..p.dims()[0] {
            let row = &v[r * patch_len..(r + 1) * patch_len];
            // Consecutive entries differ by exactly one source step.
            for w in row.windows(2) {
                assert!((w[1] - w[0] - 0.5).abs() < 1e-6, "seed {seed}");
            }
        }
    }
}

#[test]
fn instance_norm_round_trip() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let t = rng.gen_range(4usize..20);
        let scale = rng.gen_range(0.5f32..30.0);
        let x = Tensor::randn([t, 3], scale, &mut rng).add_scalar(scale);
        let (normed, stats) = instance_normalize(&x);
        let back = instance_denormalize(&normed, &stats);
        for (a, b) in back.to_vec().iter().zip(x.to_vec()) {
            let tol = b.abs().max(1.0) * 1e-3;
            assert!((a - b).abs() < tol, "seed {seed}: {a} vs {b}");
        }
    }
}

#[test]
fn instance_norm_output_standardised() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let t = rng.gen_range(8usize..30);
        let x = Tensor::randn([t, 2], 5.0, &mut rng).add_scalar(-7.0);
        let (normed, _) = instance_normalize(&x);
        let v = normed.to_vec();
        for j in 0..2 {
            let col: Vec<f32> = (0..t).map(|i| v[i * 2 + j]).collect();
            let mean: f32 = col.iter().sum::<f32>() / t as f32;
            assert!(mean.abs() < 1e-3, "seed {seed} channel {j} mean {mean}");
        }
    }
}

#[test]
fn instance_norm_shift_invariant() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let shift = rng.gen_range(-50.0f32..50.0);
        let x = Tensor::randn([12, 2], 1.0, &mut rng);
        let (a, _) = instance_normalize(&x);
        let (b, _) = instance_normalize(&x.add_scalar(shift));
        for (p, q) in a.to_vec().iter().zip(b.to_vec()) {
            assert!((p - q).abs() < 1e-3, "seed {seed}");
        }
    }
}

#[test]
fn moving_average_preserves_mean() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let window = rng.gen_range(1usize..9);
        let x = Tensor::randn([30, 2], 1.0, &mut rng);
        let ma = moving_average(&x, window);
        let mean = |t: &Tensor| t.to_vec().iter().sum::<f32>() / t.num_elements() as f32;
        // Edge effects allow small deviation only.
        assert!((mean(&x) - mean(&ma)).abs() < 0.2, "seed {seed}");
    }
}
