//! Shared helpers for the baseline forecasters.

use timekd_tensor::Tensor;

/// Splits a univariate series of length `len` into overlapping patches.
///
/// Returns `[num_patches, patch_len]`; the last patch is right-aligned so
/// the series end is always covered.
pub fn patchify(series: &[f32], patch_len: usize, stride: usize) -> Tensor {
    assert!(patch_len > 0 && stride > 0, "bad patch parameters");
    assert!(
        series.len() >= patch_len,
        "series of {} too short for patches of {patch_len}",
        series.len()
    );
    let mut starts: Vec<usize> = (0..=(series.len() - patch_len)).step_by(stride).collect();
    let last_start = series.len() - patch_len;
    if *starts.last().unwrap() != last_start {
        starts.push(last_start);
    }
    let mut data = Vec::with_capacity(starts.len() * patch_len);
    for &s in &starts {
        data.extend_from_slice(&series[s..s + patch_len]);
    }
    Tensor::from_vec(data, [starts.len(), patch_len])
}

/// Number of patches produced by [`patchify`] for the given geometry.
pub fn num_patches(len: usize, patch_len: usize, stride: usize) -> usize {
    let base = (len - patch_len) / stride + 1;
    if (base - 1) * stride != len - patch_len {
        base + 1
    } else {
        base
    }
}

/// Per-window instance statistics captured by [`instance_normalize`].
pub struct InstanceStats {
    mean: Vec<f32>,
    std: Vec<f32>,
}

/// Stateless per-channel instance normalisation of a `[T, N]` window (the
/// non-stationary normalisation used by the official iTransformer,
/// PatchTST, OFA, Time-LLM, UniTime and TimeCMA implementations — without
/// it, models with global train-split scaling collapse on drifting series
/// like Exchange).
pub fn instance_normalize(x: &Tensor) -> (Tensor, InstanceStats) {
    assert_eq!(x.shape().rank(), 2, "instance_normalize expects [T, N]");
    let (t, n) = (x.dims()[0], x.dims()[1]);
    let data = x.data();
    let mut mean = vec![0.0f32; n];
    let mut std = vec![0.0f32; n];
    for j in 0..n {
        let mut s = 0.0f32;
        for i in 0..t {
            s += data[i * n + j];
        }
        let mu = s / t as f32;
        let mut v = 0.0f32;
        for i in 0..t {
            let d = data[i * n + j] - mu;
            v += d * d;
        }
        mean[j] = mu;
        std[j] = (v / t as f32 + 1e-5).sqrt();
    }
    drop(data);
    let mu_t = Tensor::from_vec(mean.clone(), [1, n]);
    let std_t = Tensor::from_vec(std.clone(), [1, n]);
    (x.sub(&mu_t).div(&std_t), InstanceStats { mean, std })
}

/// Inverts [`instance_normalize`] on a `[M, N]` model output.
pub fn instance_denormalize(y: &Tensor, stats: &InstanceStats) -> Tensor {
    assert_eq!(y.shape().rank(), 2, "instance_denormalize expects [M, N]");
    let n = y.dims()[1];
    assert_eq!(stats.mean.len(), n, "channel count mismatch");
    let mu_t = Tensor::from_vec(stats.mean.clone(), [1, n]);
    let std_t = Tensor::from_vec(stats.std.clone(), [1, n]);
    y.mul(&std_t).add(&mu_t)
}

/// A centred moving average over a `[T, N]` tensor along time — the trend
/// extractor of DLinear's series decomposition.
pub fn moving_average(x: &Tensor, window: usize) -> Tensor {
    assert!(window >= 1, "window must be positive");
    let (t, n) = (x.dims()[0], x.dims()[1]);
    let data = x.data();
    let half = window / 2;
    let mut out = vec![0.0f32; t * n];
    for i in 0..t {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(t);
        let count = (hi - lo) as f32;
        for j in 0..n {
            let mut s = 0.0;
            for k in lo..hi {
                s += data[k * n + j];
            }
            out[i * n + j] = s / count;
        }
    }
    Tensor::from_vec(out, [t, n])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patchify_counts_and_contents() {
        let s: Vec<f32> = (0..10).map(|x| x as f32).collect();
        let p = patchify(&s, 4, 2);
        assert_eq!(p.dims(), &[4, 4]);
        assert_eq!(p.to_vec()[..4], [0.0, 1.0, 2.0, 3.0]);
        assert_eq!(p.to_vec()[12..], [6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn patchify_right_aligns_tail() {
        let s: Vec<f32> = (0..9).map(|x| x as f32).collect();
        let p = patchify(&s, 4, 3);
        // starts: 0, 3, then forced 5 to cover the end.
        assert_eq!(p.dims()[0], 3);
        assert_eq!(&p.to_vec()[8..], &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(num_patches(9, 4, 3), 3);
    }

    #[test]
    fn num_patches_matches_patchify() {
        for (len, pl, st) in [(96, 16, 8), (24, 6, 6), (10, 10, 1)] {
            let s = vec![0.0f32; len];
            assert_eq!(patchify(&s, pl, st).dims()[0], num_patches(len, pl, st));
        }
    }

    #[test]
    fn moving_average_smooths_constant() {
        let x = Tensor::from_vec(vec![2.0; 12], [6, 2]);
        let ma = moving_average(&x, 3);
        assert_eq!(ma.to_vec(), vec![2.0; 12]);
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), [4, 2]);
        assert_eq!(moving_average(&x, 1).to_vec(), x.to_vec());
    }

    #[test]
    fn moving_average_reduces_variance() {
        let x = Tensor::from_vec(
            (0..20)
                .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect(),
            [20, 1],
        );
        let ma = moving_average(&x, 5);
        let var = |v: &[f32]| {
            let m = v.iter().sum::<f32>() / v.len() as f32;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / v.len() as f32
        };
        assert!(var(&ma.to_vec()) < var(&x.to_vec()) * 0.5);
    }
}
