//! PatchTST (Nie et al., ICLR 2023): channel-independent patching — every
//! variable's history is split into overlapping patches, embedded, encoded
//! by a Transformer shared across channels, flattened, and projected to the
//! horizon.

use timekd_data::{column, ForecastWindow};
use timekd_nn::{
    clip_grad_norm, mse_loss, Activation, AdamW, AdamWConfig, Linear, Module, TransformerEncoder,
};
use timekd_tensor::SeededRng;
use timekd_tensor::{seeded_rng, Tensor};

use timekd::Forecaster;

use crate::common::{instance_denormalize, instance_normalize, num_patches, patchify};

/// PatchTST hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct PatchTstConfig {
    /// Patch length.
    pub patch_len: usize,
    /// Patch stride.
    pub stride: usize,
    /// Hidden width.
    pub dim: usize,
    /// Encoder depth.
    pub num_layers: usize,
    /// Attention heads.
    pub num_heads: usize,
    /// FFN width.
    pub ffn_hidden: usize,
    /// Learning rate.
    pub lr: f32,
    /// Init seed.
    pub seed: u64,
}

impl Default for PatchTstConfig {
    fn default() -> Self {
        PatchTstConfig {
            patch_len: 8,
            stride: 4,
            dim: 16,
            num_layers: 2,
            num_heads: 2,
            ffn_hidden: 32,
            lr: 3e-3,
            seed: 12,
        }
    }
}

/// The PatchTST forecaster.
pub struct PatchTst {
    patch_embed: Linear,
    encoder: TransformerEncoder,
    head: Linear,
    config: PatchTstConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
    n_patches: usize,
    optimizer: AdamW,
}

impl PatchTst {
    /// Builds PatchTST for the given window geometry.
    pub fn new(
        config: PatchTstConfig,
        input_len: usize,
        horizon: usize,
        num_vars: usize,
    ) -> PatchTst {
        assert!(input_len >= config.patch_len, "input shorter than a patch");
        let n_patches = num_patches(input_len, config.patch_len, config.stride);
        let mut rng: SeededRng = seeded_rng(config.seed);
        PatchTst {
            patch_embed: Linear::new(config.patch_len, config.dim, &mut rng),
            encoder: TransformerEncoder::new(
                config.dim,
                config.num_layers,
                config.num_heads,
                config.ffn_hidden,
                Activation::Gelu,
                &mut rng,
            ),
            head: Linear::new(n_patches * config.dim, horizon, &mut rng),
            config,
            input_len,
            horizon,
            num_vars,
            n_patches,
            optimizer: AdamW::new(
                config.lr,
                AdamWConfig {
                    weight_decay: 0.0,
                    ..Default::default()
                },
            ),
        }
    }

    /// Channel-independent forward: each variable is processed through the
    /// same (shared-weight) pipeline.
    fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.dims(), &[self.input_len, self.num_vars]);
        debug_assert_eq!(self.head.out_features(), self.horizon);
        let (xn, stats) = instance_normalize(x);
        let mut channels = Vec::with_capacity(self.num_vars);
        for v in 0..self.num_vars {
            let series = column(&xn, v);
            let patches = patchify(&series, self.config.patch_len, self.config.stride);
            let tokens = self.patch_embed.forward(&patches); // [P, D]
            let enc = self.encoder.forward(&tokens, None);
            let flat = enc.output.reshape([1, self.n_patches * self.config.dim]);
            channels.push(self.head.forward(&flat)); // [1, M]
        }
        let out = Tensor::concat(&channels, 0).transpose_last(); // [M, N]
        instance_denormalize(&out, &stats)
    }

    fn params(&self) -> Vec<Tensor> {
        let mut v = self.patch_embed.params();
        v.extend(self.encoder.params());
        v.extend(self.head.params());
        v
    }
}

impl Forecaster for PatchTst {
    fn name(&self) -> String {
        "PatchTST".into()
    }

    fn train_epoch(&mut self, windows: &[ForecastWindow]) -> f32 {
        let params = self.params();
        let mut total = 0.0;
        for w in windows {
            for p in &params {
                p.zero_grad();
            }
            let loss = mse_loss(&self.forward(&w.x), &w.y);
            total += loss.item();
            loss.backward();
            clip_grad_norm(&params, 1.0);
            self.optimizer.step(&params);
        }
        total / windows.len().max(1) as f32
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        timekd_tensor::no_grad(|| self.forward(x))
    }

    fn num_trainable_params(&self) -> usize {
        self.params().iter().map(Tensor::num_elements).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_data::{DatasetKind, Split, SplitDataset};

    #[test]
    fn shapes() {
        let m = PatchTst::new(PatchTstConfig::default(), 24, 12, 3);
        let x = Tensor::zeros([24, 3]);
        assert_eq!(m.predict(&x).dims(), &[12, 3]);
    }

    #[test]
    fn channel_independence_shared_weights() {
        // Permuting channels permutes the forecast identically: no
        // cross-channel interaction exists.
        let m = PatchTst::new(PatchTstConfig::default(), 16, 4, 2);
        let mut rng = seeded_rng(0);
        let a = Tensor::randn([16, 1], 1.0, &mut rng);
        let b = Tensor::randn([16, 1], 1.0, &mut rng);
        let ab = Tensor::concat(&[a.clone(), b.clone()], 1);
        let ba = Tensor::concat(&[b, a], 1);
        let y_ab = m.predict(&ab).to_vec();
        let y_ba = m.predict(&ba).to_vec();
        for t in 0..4 {
            assert_eq!(y_ab[t * 2], y_ba[t * 2 + 1]);
            assert_eq!(y_ab[t * 2 + 1], y_ba[t * 2]);
        }
    }

    #[test]
    fn learns_on_synthetic_data() {
        let ds = SplitDataset::new(DatasetKind::EttM1, 600, 3, 24, 8);
        let mut m = PatchTst::new(PatchTstConfig::default(), 24, 8, ds.num_vars());
        let train = ds.windows(Split::Train, 16);
        let val = ds.windows(Split::Val, 16);
        let (before, _) = m.evaluate(&val);
        for _ in 0..2 {
            m.train_epoch(&train);
        }
        let (after, _) = m.evaluate(&val);
        assert!(after < before, "{before} -> {after}");
    }
}
