//! OFA / GPT4TS (Zhou et al., NeurIPS 2023): "One Fits All" — time-series
//! patches are linearly embedded and passed through the body of a frozen
//! language model; only the input embedding and output head are trained.
//!
//! Gradients flow *through* the frozen blocks (they are in the graph), but
//! the block parameters are excluded from the optimizer — exactly the
//! paper's freeze-attention-and-FFN recipe, and the reason OFA's training
//! cost sits between the pure-Transformer models and the full LLM methods
//! (Table IV).

use std::rc::Rc;

use timekd_data::{column, ForecastWindow};
use timekd_lm::FrozenLm;
use timekd_nn::{clip_grad_norm, mse_loss, AdamW, AdamWConfig, Linear, Module};
use timekd_tensor::SeededRng;
use timekd_tensor::{seeded_rng, Tensor};

use timekd::Forecaster;

use crate::common::{instance_denormalize, instance_normalize, num_patches, patchify};

/// OFA hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct OfaConfig {
    /// Patch length.
    pub patch_len: usize,
    /// Patch stride.
    pub stride: usize,
    /// Learning rate.
    pub lr: f32,
    /// Init seed.
    pub seed: u64,
}

impl Default for OfaConfig {
    fn default() -> Self {
        OfaConfig {
            patch_len: 8,
            stride: 4,
            lr: 2e-3,
            seed: 14,
        }
    }
}

/// The OFA forecaster.
pub struct Ofa {
    lm: Rc<FrozenLm>,
    patch_embed: Linear,
    head: Linear,
    config: OfaConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
    n_patches: usize,
    optimizer: AdamW,
}

impl Ofa {
    /// Builds OFA around a shared frozen LM.
    pub fn new(
        lm: Rc<FrozenLm>,
        config: OfaConfig,
        input_len: usize,
        horizon: usize,
        num_vars: usize,
    ) -> Ofa {
        let lm_dim = lm.model().config().dim;
        let n_patches = num_patches(input_len, config.patch_len, config.stride);
        let mut rng: SeededRng = seeded_rng(config.seed);
        Ofa {
            lm,
            patch_embed: Linear::new(config.patch_len, lm_dim, &mut rng),
            head: Linear::new(n_patches * lm_dim, horizon, &mut rng),
            config,
            input_len,
            horizon,
            num_vars,
            n_patches,
            optimizer: AdamW::new(
                config.lr,
                AdamWConfig {
                    weight_decay: 0.0,
                    ..Default::default()
                },
            ),
        }
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.dims(), &[self.input_len, self.num_vars]);
        debug_assert_eq!(self.head.out_features(), self.horizon);
        let lm_dim = self.lm.model().config().dim;
        let (xn, stats) = instance_normalize(x);
        let mut channels = Vec::with_capacity(self.num_vars);
        for v in 0..self.num_vars {
            let series = column(&xn, v);
            let patches = patchify(&series, self.config.patch_len, self.config.stride);
            let embedded = self.patch_embed.forward(&patches); // [P, lm_dim]
            let hidden = self.lm.model().encode_embeddings(&embedded); // frozen body
            let flat = hidden.reshape([1, self.n_patches * lm_dim]);
            channels.push(self.head.forward(&flat)); // [1, M]
        }
        let out = Tensor::concat(&channels, 0).transpose_last();
        instance_denormalize(&out, &stats)
    }

    /// Only the embedding and head are fine-tuned; the LM body is frozen.
    fn params(&self) -> Vec<Tensor> {
        let mut v = self.patch_embed.params();
        v.extend(self.head.params());
        v
    }
}

impl Forecaster for Ofa {
    fn name(&self) -> String {
        "OFA".into()
    }

    fn train_epoch(&mut self, windows: &[ForecastWindow]) -> f32 {
        let params = self.params();
        let lm_params = self.lm.model().params();
        let mut total = 0.0;
        for w in windows {
            for p in params.iter().chain(&lm_params) {
                p.zero_grad();
            }
            let loss = mse_loss(&self.forward(&w.x), &w.y);
            total += loss.item();
            loss.backward();
            clip_grad_norm(&params, 1.0);
            // Step ONLY the trainable subset — LM grads are discarded.
            self.optimizer.step(&params);
        }
        total / windows.len().max(1) as f32
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        timekd_tensor::no_grad(|| self.forward(x))
    }

    fn num_trainable_params(&self) -> usize {
        self.params().iter().map(Tensor::num_elements).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_data::{DatasetKind, Split, SplitDataset};
    use timekd_lm::{pretrain_lm, LmConfig, LmSize, PretrainConfig, PromptTokenizer};

    fn frozen_lm() -> Rc<FrozenLm> {
        let tok = PromptTokenizer::new();
        let (lm, _) = pretrain_lm(
            &tok,
            LmConfig::for_size(LmSize::Small),
            PretrainConfig {
                steps: 2,
                ..Default::default()
            },
        );
        Rc::new(FrozenLm::new(lm))
    }

    #[test]
    fn shapes() {
        let m = Ofa::new(frozen_lm(), OfaConfig::default(), 24, 8, 3);
        assert_eq!(m.predict(&Tensor::zeros([24, 3])).dims(), &[8, 3]);
    }

    #[test]
    fn lm_body_not_updated_by_training() {
        let lm = frozen_lm();
        let before: Vec<Vec<f32>> = lm.model().params().iter().map(|p| p.to_vec()).collect();
        let ds = SplitDataset::new(DatasetKind::EttH1, 500, 3, 24, 8);
        let mut m = Ofa::new(lm.clone(), OfaConfig::default(), 24, 8, ds.num_vars());
        let train = ds.windows(Split::Train, 64);
        m.train_epoch(&train[..2.min(train.len())]);
        let after: Vec<Vec<f32>> = lm.model().params().iter().map(|p| p.to_vec()).collect();
        assert_eq!(before, after, "frozen LM weights moved");
    }

    #[test]
    fn trainable_params_much_smaller_than_lm() {
        let lm = frozen_lm();
        let lm_size = lm.model().num_params();
        let m = Ofa::new(lm, OfaConfig::default(), 24, 8, 3);
        assert!(m.num_trainable_params() < lm_size * 3);
        assert!(m.num_trainable_params() > 0);
    }

    #[test]
    fn learns_on_synthetic_data() {
        let ds = SplitDataset::new(DatasetKind::EttH1, 500, 5, 24, 8);
        let mut m = Ofa::new(frozen_lm(), OfaConfig::default(), 24, 8, ds.num_vars());
        let train = ds.windows(Split::Train, 16);
        let val = ds.windows(Split::Val, 16);
        let (before, _) = m.evaluate(&val);
        for _ in 0..2 {
            m.train_epoch(&train);
        }
        let (after, _) = m.evaluate(&val);
        assert!(after < before, "{before} -> {after}");
    }
}
