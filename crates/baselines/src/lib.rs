//! # timekd-baselines
//!
//! Faithful, matched-scale re-implementations of every baseline the TimeKD
//! paper compares against, all speaking the shared [`timekd::Forecaster`]
//! interface:
//!
//! - Transformer-based: [`ITransformer`] (channel-dependent, inverted
//!   embedding), [`PatchTst`] (channel-independent patching), plus
//!   [`Dlinear`] as a linear sanity baseline;
//! - LLM-based: [`Ofa`] (frozen LM body, fine-tuned embed/head),
//!   [`TimeLlm`] (prototype reprogramming, channel-independent),
//!   [`UniTime`] (instruction-conditioned, channel-independent), and
//!   [`TimeCma`] (cross-modality alignment, channel-dependent — the
//!   strongest baseline).
//!
//! The LLM-based models share one pretrained [`timekd_lm::FrozenLm`], like
//! the shared GPT-2 checkpoint in the paper's setup.

mod common;
mod dlinear;
mod itransformer;
mod ofa;
mod patchtst;
mod timecma;
mod timellm;
mod unitime;

pub use common::{
    instance_denormalize, instance_normalize, moving_average, num_patches, patchify, InstanceStats,
};
pub use dlinear::{Dlinear, DlinearConfig};
pub use itransformer::{ITransformer, ITransformerConfig};
pub use ofa::{Ofa, OfaConfig};
pub use patchtst::{PatchTst, PatchTstConfig};
pub use timecma::{TimeCma, TimeCmaConfig};
pub use timellm::{TimeLlm, TimeLlmConfig};
pub use unitime::{UniTime, UniTimeConfig};
