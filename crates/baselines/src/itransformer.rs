//! iTransformer (Liu et al., ICLR 2024): inverted embedding — each variable
//! becomes one token carrying its whole history — followed by a vanilla
//! Transformer encoder across variables and a linear readout.
//!
//! The paper positions iTransformer as the fastest baseline with the
//! simplest structure (no language model, no decomposition), which is also
//! why it trails on the small-N ETT datasets (Table I discussion).

use timekd_data::ForecastWindow;
use timekd_nn::{
    clip_grad_norm, mse_loss, Activation, AdamW, AdamWConfig, Linear, Module, TransformerEncoder,
};
use timekd_tensor::SeededRng;
use timekd_tensor::{seeded_rng, Tensor};

use timekd::Forecaster;

use crate::common::{instance_denormalize, instance_normalize};

/// iTransformer hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct ITransformerConfig {
    /// Hidden width.
    pub dim: usize,
    /// Encoder depth.
    pub num_layers: usize,
    /// Attention heads.
    pub num_heads: usize,
    /// FFN width.
    pub ffn_hidden: usize,
    /// Learning rate.
    pub lr: f32,
    /// Init seed.
    pub seed: u64,
}

impl Default for ITransformerConfig {
    fn default() -> Self {
        ITransformerConfig {
            dim: 16,
            num_layers: 2,
            num_heads: 2,
            ffn_hidden: 32,
            lr: 3e-3,
            seed: 11,
        }
    }
}

/// The iTransformer forecaster.
pub struct ITransformer {
    embedding: Linear,
    encoder: TransformerEncoder,
    head: Linear,
    optimizer: AdamW,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
}

impl ITransformer {
    /// Builds iTransformer for the given window geometry.
    pub fn new(
        config: ITransformerConfig,
        input_len: usize,
        horizon: usize,
        num_vars: usize,
    ) -> ITransformer {
        let mut rng: SeededRng = seeded_rng(config.seed);
        ITransformer {
            embedding: Linear::new(input_len, config.dim, &mut rng),
            encoder: TransformerEncoder::new(
                config.dim,
                config.num_layers,
                config.num_heads,
                config.ffn_hidden,
                Activation::Relu,
                &mut rng,
            ),
            head: Linear::new(config.dim, horizon, &mut rng),
            optimizer: AdamW::new(
                config.lr,
                AdamWConfig {
                    weight_decay: 0.0,
                    ..Default::default()
                },
            ),
            input_len,
            horizon,
            num_vars,
        }
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.dims(), &[self.input_len, self.num_vars]);
        debug_assert_eq!(self.head.out_features(), self.horizon);
        let (xn, stats) = instance_normalize(x);
        let tokens = self.embedding.forward(&xn.transpose_last()); // [N, D]
        let enc = self.encoder.forward(&tokens, None);
        let out = self.head.forward(&enc.output).transpose_last(); // [M, N]
        instance_denormalize(&out, &stats)
    }

    fn params(&self) -> Vec<Tensor> {
        let mut v = self.embedding.params();
        v.extend(self.encoder.params());
        v.extend(self.head.params());
        v
    }
}

impl Forecaster for ITransformer {
    fn name(&self) -> String {
        "iTransformer".into()
    }

    fn train_epoch(&mut self, windows: &[ForecastWindow]) -> f32 {
        let params = self.params();
        let mut total = 0.0;
        for w in windows {
            for p in &params {
                p.zero_grad();
            }
            let loss = mse_loss(&self.forward(&w.x), &w.y);
            total += loss.item();
            loss.backward();
            clip_grad_norm(&params, 1.0);
            self.optimizer.step(&params);
        }
        total / windows.len().max(1) as f32
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        timekd_tensor::no_grad(|| self.forward(x))
    }

    fn num_trainable_params(&self) -> usize {
        self.params().iter().map(Tensor::num_elements).sum()
    }

    fn evaluate(&self, windows: &[ForecastWindow]) -> (f32, f32) {
        let mut acc = timekd_data::MetricAccumulator::new();
        for w in windows {
            acc.update(&self.predict(&w.x), &w.y);
        }
        (acc.mse(), acc.mae())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_data::{DatasetKind, Split, SplitDataset};

    #[test]
    fn shapes_and_param_count() {
        let m = ITransformer::new(ITransformerConfig::default(), 24, 12, 5);
        let x = Tensor::zeros([24, 5]);
        assert_eq!(m.predict(&x).dims(), &[12, 5]);
        assert!(m.num_trainable_params() > 0);
    }

    #[test]
    fn learns_on_synthetic_data() {
        let ds = SplitDataset::new(DatasetKind::EttH1, 600, 3, 24, 8);
        let mut m = ITransformer::new(ITransformerConfig::default(), 24, 8, ds.num_vars());
        let train = ds.windows(Split::Train, 8);
        let val = ds.windows(Split::Val, 8);
        let (before, _) = m.evaluate(&val);
        for _ in 0..3 {
            m.train_epoch(&train);
        }
        let (after, _) = m.evaluate(&val);
        assert!(after < before, "{before} -> {after}");
    }
}
