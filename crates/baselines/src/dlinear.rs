//! DLinear (Zeng et al., AAAI 2023): series decomposition into trend
//! (moving average) and seasonal (residual) components, each forecast by a
//! single linear map shared across channels. Included as the "are
//! Transformers even needed?" sanity baseline.

use timekd_data::ForecastWindow;
use timekd_nn::{mse_loss, AdamW, AdamWConfig, Linear, Module};
use timekd_tensor::SeededRng;
use timekd_tensor::{seeded_rng, Tensor};

use timekd::Forecaster;

use crate::common::moving_average;

/// DLinear hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct DlinearConfig {
    /// Moving-average window of the trend extractor.
    pub ma_window: usize,
    /// Learning rate.
    pub lr: f32,
    /// Init seed.
    pub seed: u64,
}

impl Default for DlinearConfig {
    fn default() -> Self {
        DlinearConfig {
            ma_window: 25,
            lr: 3e-3,
            seed: 13,
        }
    }
}

/// The DLinear forecaster.
pub struct Dlinear {
    trend: Linear,
    seasonal: Linear,
    config: DlinearConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
    optimizer: AdamW,
}

impl Dlinear {
    /// Builds DLinear for the given window geometry.
    pub fn new(
        config: DlinearConfig,
        input_len: usize,
        horizon: usize,
        num_vars: usize,
    ) -> Dlinear {
        let mut rng: SeededRng = seeded_rng(config.seed);
        Dlinear {
            trend: Linear::new(input_len, horizon, &mut rng),
            seasonal: Linear::new(input_len, horizon, &mut rng),
            config,
            input_len,
            horizon,
            num_vars,
            optimizer: AdamW::new(
                config.lr,
                AdamWConfig {
                    weight_decay: 0.0,
                    ..Default::default()
                },
            ),
        }
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.dims(), &[self.input_len, self.num_vars]);
        debug_assert_eq!(self.trend.out_features(), self.horizon);
        let trend_part = moving_average(x, self.config.ma_window);
        let seasonal_part = x.sub(&trend_part);
        // Linear maps operate on [N, H] rows.
        let t = self.trend.forward(&trend_part.transpose_last()); // [N, M]
        let s = self.seasonal.forward(&seasonal_part.transpose_last());
        t.add(&s).transpose_last() // [M, N]
    }

    fn params(&self) -> Vec<Tensor> {
        let mut v = self.trend.params();
        v.extend(self.seasonal.params());
        v
    }
}

impl Forecaster for Dlinear {
    fn name(&self) -> String {
        "DLinear".into()
    }

    fn train_epoch(&mut self, windows: &[ForecastWindow]) -> f32 {
        let params = self.params();
        let mut total = 0.0;
        for w in windows {
            for p in &params {
                p.zero_grad();
            }
            let loss = mse_loss(&self.forward(&w.x), &w.y);
            total += loss.item();
            loss.backward();
            self.optimizer.step(&params);
        }
        total / windows.len().max(1) as f32
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        timekd_tensor::no_grad(|| self.forward(x))
    }

    fn num_trainable_params(&self) -> usize {
        self.params().iter().map(Tensor::num_elements).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_data::{DatasetKind, Split, SplitDataset};

    #[test]
    fn shapes() {
        let m = Dlinear::new(DlinearConfig::default(), 36, 12, 4);
        assert_eq!(m.predict(&Tensor::zeros([36, 4])).dims(), &[12, 4]);
    }

    #[test]
    fn tiny_param_count() {
        let m = Dlinear::new(DlinearConfig::default(), 96, 24, 7);
        // Two linear layers of 96→24 regardless of channel count.
        assert_eq!(m.num_trainable_params(), 2 * (96 * 24 + 24));
    }

    #[test]
    fn learns_fast_on_linear_trend() {
        let ds = SplitDataset::new(DatasetKind::Exchange, 600, 3, 24, 8);
        let mut m = Dlinear::new(DlinearConfig::default(), 24, 8, ds.num_vars());
        let train = ds.windows(Split::Train, 4);
        let val = ds.windows(Split::Val, 4);
        let (before, _) = m.evaluate(&val);
        for _ in 0..3 {
            m.train_epoch(&train);
        }
        let (after, _) = m.evaluate(&val);
        assert!(after < before, "{before} -> {after}");
    }
}
