//! Time-LLM (Jin et al., ICLR 2024): reprograms a frozen LLM for
//! forecasting. Per channel, history patches are embedded and then
//! *reprogrammed* — cross-attended onto a bank of text prototypes drawn
//! from the LM's token-embedding space — before passing through the frozen
//! LM body and a flatten-projection head.
//!
//! Channel independence plus a full LM pass per channel is what makes
//! Time-LLM the slowest method in the paper's Table IV; the structure here
//! reproduces that cost profile.

use std::rc::Rc;

use timekd_data::{column, ForecastWindow};
use timekd_lm::FrozenLm;
use timekd_nn::{clip_grad_norm, mse_loss, AdamW, AdamWConfig, Linear, Module, MultiHeadAttention};
use timekd_tensor::SeededRng;
use timekd_tensor::{seeded_rng, Tensor};

use timekd::Forecaster;

use crate::common::{instance_denormalize, instance_normalize, num_patches, patchify};

/// Time-LLM hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TimeLlmConfig {
    /// Patch length.
    pub patch_len: usize,
    /// Patch stride.
    pub stride: usize,
    /// Number of text prototypes in the reprogramming bank.
    pub num_prototypes: usize,
    /// Reprogramming attention heads.
    pub num_heads: usize,
    /// Learning rate.
    pub lr: f32,
    /// Init seed.
    pub seed: u64,
}

impl Default for TimeLlmConfig {
    fn default() -> Self {
        TimeLlmConfig {
            patch_len: 8,
            stride: 4,
            num_prototypes: 16,
            num_heads: 2,
            lr: 2e-3,
            seed: 15,
        }
    }
}

/// The Time-LLM forecaster.
pub struct TimeLlm {
    lm: Rc<FrozenLm>,
    patch_embed: Linear,
    prototypes: Tensor,
    reprogram: MultiHeadAttention,
    head: Linear,
    config: TimeLlmConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
    n_patches: usize,
    optimizer: AdamW,
}

impl TimeLlm {
    /// Builds Time-LLM around a shared frozen LM. The prototype bank is
    /// initialised from rows of the LM's token-embedding table (the "text
    /// prototype" trick of the paper) and then fine-tuned.
    pub fn new(
        lm: Rc<FrozenLm>,
        config: TimeLlmConfig,
        input_len: usize,
        horizon: usize,
        num_vars: usize,
    ) -> TimeLlm {
        let lm_dim = lm.model().config().dim;
        let n_patches = num_patches(input_len, config.patch_len, config.stride);
        let mut rng: SeededRng = seeded_rng(config.seed);
        // Prototypes: a trainable copy of the first rows of the token table.
        let table = lm.model().token_embedding_table();
        let rows = config.num_prototypes.min(table.dims()[0]);
        let proto_init = table.slice(0, 0, rows).to_vec();
        let prototypes = Tensor::param(proto_init, [rows, lm_dim]);
        TimeLlm {
            reprogram: MultiHeadAttention::new(lm_dim, config.num_heads, &mut rng),
            patch_embed: Linear::new(config.patch_len, lm_dim, &mut rng),
            head: Linear::new(n_patches * lm_dim, horizon, &mut rng),
            prototypes,
            lm,
            config,
            input_len,
            horizon,
            num_vars,
            n_patches,
            optimizer: AdamW::new(
                config.lr,
                AdamWConfig {
                    weight_decay: 0.0,
                    ..Default::default()
                },
            ),
        }
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.dims(), &[self.input_len, self.num_vars]);
        debug_assert_eq!(self.head.out_features(), self.horizon);
        let lm_dim = self.lm.model().config().dim;
        let (xn, stats) = instance_normalize(x);
        let mut channels = Vec::with_capacity(self.num_vars);
        for v in 0..self.num_vars {
            let series = column(&xn, v);
            let patches = patchify(&series, self.config.patch_len, self.config.stride);
            let embedded = self.patch_embed.forward(&patches); // [P, lm_dim]
                                                               // Reprogramming: patches query the text prototype bank.
            let reprogrammed = self
                .reprogram
                .attend(&embedded, &self.prototypes, None)
                .output
                .add(&embedded);
            let hidden = self.lm.model().encode_embeddings(&reprogrammed);
            let flat = hidden.reshape([1, self.n_patches * lm_dim]);
            channels.push(self.head.forward(&flat));
        }
        let out = Tensor::concat(&channels, 0).transpose_last();
        instance_denormalize(&out, &stats)
    }

    fn params(&self) -> Vec<Tensor> {
        let mut v = self.patch_embed.params();
        v.push(self.prototypes.clone());
        v.extend(self.reprogram.params());
        v.extend(self.head.params());
        v
    }
}

impl Forecaster for TimeLlm {
    fn name(&self) -> String {
        "Time-LLM".into()
    }

    fn train_epoch(&mut self, windows: &[ForecastWindow]) -> f32 {
        let params = self.params();
        let lm_params = self.lm.model().params();
        let mut total = 0.0;
        for w in windows {
            for p in params.iter().chain(&lm_params) {
                p.zero_grad();
            }
            let loss = mse_loss(&self.forward(&w.x), &w.y);
            total += loss.item();
            loss.backward();
            clip_grad_norm(&params, 1.0);
            self.optimizer.step(&params);
        }
        total / windows.len().max(1) as f32
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        timekd_tensor::no_grad(|| self.forward(x))
    }

    fn num_trainable_params(&self) -> usize {
        self.params().iter().map(Tensor::num_elements).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_data::{DatasetKind, Split, SplitDataset};
    use timekd_lm::{pretrain_lm, LmConfig, LmSize, PretrainConfig, PromptTokenizer};

    fn frozen_lm() -> Rc<FrozenLm> {
        let tok = PromptTokenizer::new();
        let (lm, _) = pretrain_lm(
            &tok,
            LmConfig::for_size(LmSize::Small),
            PretrainConfig {
                steps: 2,
                ..Default::default()
            },
        );
        Rc::new(FrozenLm::new(lm))
    }

    #[test]
    fn shapes() {
        let m = TimeLlm::new(frozen_lm(), TimeLlmConfig::default(), 24, 8, 3);
        assert_eq!(m.predict(&Tensor::zeros([24, 3])).dims(), &[8, 3]);
    }

    #[test]
    fn prototypes_initialised_from_token_table() {
        let lm = frozen_lm();
        let m = TimeLlm::new(lm.clone(), TimeLlmConfig::default(), 24, 8, 3);
        let table = lm.model().token_embedding_table();
        let rows = TimeLlmConfig::default().num_prototypes.min(table.dims()[0]);
        assert_eq!(m.prototypes.to_vec(), table.slice(0, 0, rows).to_vec());
        assert!(m.prototypes.requires_grad(), "prototypes must be trainable");
    }

    #[test]
    fn prototypes_move_during_training() {
        let ds = SplitDataset::new(DatasetKind::EttH1, 500, 3, 24, 8);
        let mut m = TimeLlm::new(frozen_lm(), TimeLlmConfig::default(), 24, 8, ds.num_vars());
        let before = m.prototypes.to_vec();
        let train = ds.windows(Split::Train, 64);
        m.train_epoch(&train[..2.min(train.len())]);
        assert_ne!(m.prototypes.to_vec(), before);
    }

    #[test]
    fn learns_on_synthetic_data() {
        // With instance normalisation the initial validation error is
        // already near the noise floor at this tiny scale, so assert on
        // the training-loss trajectory instead.
        let ds = SplitDataset::new(DatasetKind::EttM1, 500, 5, 24, 8);
        let mut m = TimeLlm::new(frozen_lm(), TimeLlmConfig::default(), 24, 8, ds.num_vars());
        let train = ds.windows(Split::Train, 24);
        let first = m.train_epoch(&train);
        let mut last = first;
        for _ in 0..3 {
            last = m.train_epoch(&train);
        }
        assert!(last < first, "training loss must fall: {first} -> {last}");
    }
}
