//! UniTime (Liu et al., WWW 2024): language-instruction-conditioned
//! forecasting. A fixed natural-language instruction is embedded with the
//! LM's token table and prepended to per-channel patch embeddings; the
//! joint sequence runs through the frozen LM body ("Language-TS
//! Transformer") and the time-series positions are projected to the
//! horizon. Channel-independent.

use std::rc::Rc;

use timekd_data::{column, ForecastWindow};
use timekd_lm::{FrozenLm, PromptPiece, PromptTokenizer};
use timekd_nn::{clip_grad_norm, mse_loss, AdamW, AdamWConfig, Linear, Module};
use timekd_tensor::SeededRng;
use timekd_tensor::{seeded_rng, Tensor};

use timekd::Forecaster;

use crate::common::{instance_denormalize, instance_normalize, num_patches, patchify};

/// UniTime hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct UniTimeConfig {
    /// Patch length.
    pub patch_len: usize,
    /// Patch stride.
    pub stride: usize,
    /// Learning rate.
    pub lr: f32,
    /// Init seed.
    pub seed: u64,
}

impl Default for UniTimeConfig {
    fn default() -> Self {
        UniTimeConfig {
            patch_len: 8,
            stride: 4,
            lr: 2e-3,
            seed: 16,
        }
    }
}

/// The UniTime forecaster.
pub struct UniTime {
    lm: Rc<FrozenLm>,
    instruction_ids: Vec<usize>,
    patch_embed: Linear,
    head: Linear,
    config: UniTimeConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
    n_patches: usize,
    optimizer: AdamW,
}

impl UniTime {
    /// Builds UniTime around a shared frozen LM and the instruction
    /// "forecast the next steps of the time series".
    pub fn new(
        lm: Rc<FrozenLm>,
        config: UniTimeConfig,
        input_len: usize,
        horizon: usize,
        num_vars: usize,
    ) -> UniTime {
        let tokenizer = PromptTokenizer::new();
        let instruction = tokenizer.encode(&[
            PromptPiece::Word("forecast"),
            PromptPiece::Word("the"),
            PromptPiece::Word("next"),
            PromptPiece::Word("steps"),
            PromptPiece::Word("of"),
            PromptPiece::Word("the"),
            PromptPiece::Word("time"),
            PromptPiece::Word("series"),
        ]);
        let instruction_ids: Vec<usize> = instruction.iter().map(|t| t.id).collect();
        let lm_dim = lm.model().config().dim;
        let n_patches = num_patches(input_len, config.patch_len, config.stride);
        let mut rng: SeededRng = seeded_rng(config.seed);
        UniTime {
            patch_embed: Linear::new(config.patch_len, lm_dim, &mut rng),
            head: Linear::new(n_patches * lm_dim, horizon, &mut rng),
            lm,
            instruction_ids,
            config,
            input_len,
            horizon,
            num_vars,
            n_patches,
            optimizer: AdamW::new(
                config.lr,
                AdamWConfig {
                    weight_decay: 0.0,
                    ..Default::default()
                },
            ),
        }
    }

    fn instruction_embeddings(&self) -> Tensor {
        // Constant instruction embeddings (text tokens are not trained).
        timekd_tensor::no_grad(|| {
            self.lm
                .model()
                .token_embedding_table()
                .index_select_rows(&self.instruction_ids)
        })
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.dims(), &[self.input_len, self.num_vars]);
        debug_assert_eq!(self.head.out_features(), self.horizon);
        let lm_dim = self.lm.model().config().dim;
        let instr = self.instruction_embeddings(); // [L, lm_dim]
        let l = instr.dims()[0];
        let (xn, stats) = instance_normalize(x);
        let mut channels = Vec::with_capacity(self.num_vars);
        for v in 0..self.num_vars {
            let series = column(&xn, v);
            let patches = patchify(&series, self.config.patch_len, self.config.stride);
            let embedded = self.patch_embed.forward(&patches); // [P, lm_dim]
            let joint = Tensor::concat(&[instr.clone(), embedded], 0); // [L+P, lm_dim]
            let hidden = self.lm.model().encode_embeddings(&joint);
            // Only the time-series positions feed the head.
            let ts_hidden = hidden.slice(0, l, self.n_patches);
            let flat = ts_hidden.reshape([1, self.n_patches * lm_dim]);
            channels.push(self.head.forward(&flat));
        }
        let out = Tensor::concat(&channels, 0).transpose_last();
        instance_denormalize(&out, &stats)
    }

    fn params(&self) -> Vec<Tensor> {
        let mut v = self.patch_embed.params();
        v.extend(self.head.params());
        v
    }
}

impl Forecaster for UniTime {
    fn name(&self) -> String {
        "UniTime".into()
    }

    fn train_epoch(&mut self, windows: &[ForecastWindow]) -> f32 {
        let params = self.params();
        let lm_params = self.lm.model().params();
        let mut total = 0.0;
        for w in windows {
            for p in params.iter().chain(&lm_params) {
                p.zero_grad();
            }
            let loss = mse_loss(&self.forward(&w.x), &w.y);
            total += loss.item();
            loss.backward();
            clip_grad_norm(&params, 1.0);
            self.optimizer.step(&params);
        }
        total / windows.len().max(1) as f32
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        timekd_tensor::no_grad(|| self.forward(x))
    }

    fn num_trainable_params(&self) -> usize {
        self.params().iter().map(Tensor::num_elements).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_data::{DatasetKind, Split, SplitDataset};
    use timekd_lm::{pretrain_lm, LmConfig, LmSize, PretrainConfig};

    fn frozen_lm() -> Rc<FrozenLm> {
        let tok = PromptTokenizer::new();
        let (lm, _) = pretrain_lm(
            &tok,
            LmConfig::for_size(LmSize::Small),
            PretrainConfig {
                steps: 2,
                ..Default::default()
            },
        );
        Rc::new(FrozenLm::new(lm))
    }

    #[test]
    fn shapes() {
        let m = UniTime::new(frozen_lm(), UniTimeConfig::default(), 24, 8, 3);
        assert_eq!(m.predict(&Tensor::zeros([24, 3])).dims(), &[8, 3]);
    }

    #[test]
    fn instruction_constant_and_nonempty() {
        let m = UniTime::new(frozen_lm(), UniTimeConfig::default(), 24, 8, 3);
        let e = m.instruction_embeddings();
        assert!(e.dims()[0] >= 8);
        assert!(!e.requires_grad());
    }

    #[test]
    fn instruction_changes_output() {
        // The same patches with vs without instruction differ: conditioning
        // is real (compare against an OFA-like pass of just patches).
        let lm = frozen_lm();
        let m = UniTime::new(lm.clone(), UniTimeConfig::default(), 24, 8, 1);
        let mut rng = seeded_rng(9);
        let x = Tensor::randn([24, 1], 1.0, &mut rng);
        let with_instr = m.predict(&x);
        // Strip the instruction by predicting through a model whose
        // instruction is only <bos> (approximating "no conditioning").
        let mut m2 = UniTime::new(lm, UniTimeConfig::default(), 24, 8, 1);
        m2.instruction_ids.truncate(1);
        let without = m2.predict(&x);
        assert_ne!(with_instr.to_vec(), without.to_vec());
    }

    #[test]
    fn learns_on_synthetic_data() {
        let ds = SplitDataset::new(DatasetKind::EttH1, 500, 5, 24, 8);
        let mut m = UniTime::new(frozen_lm(), UniTimeConfig::default(), 24, 8, ds.num_vars());
        let train = ds.windows(Split::Train, 24);
        let val = ds.windows(Split::Val, 24);
        let (before, _) = m.evaluate(&val);
        for _ in 0..2 {
            m.train_epoch(&train);
        }
        let (after, _) = m.evaluate(&val);
        assert!(after < before, "{before} -> {after}");
    }
}
