//! TimeCMA (Liu et al., 2025): LLM-empowered forecasting via cross-modality
//! alignment — the strongest existing baseline in the paper.
//!
//! Dual branch: a time-series branch (inverted embedding + Transformer over
//! variables) and a prompt branch (frozen LM last-token embeddings of the
//! *historical* prompts, one per variable). Cross attention aligns the
//! time-series tokens with the prompt tokens; an encoder and a projection
//! head produce the forecast. Unlike TimeKD, the LM runs at inference time
//! too — which is exactly the efficiency gap Table IV quantifies.

use std::rc::Rc;

use timekd_data::{column, ForecastWindow, PromptConfig};
use timekd_lm::{FrozenLm, PromptTokenizer};
use timekd_nn::{
    clip_grad_norm, mse_loss, Activation, AdamW, AdamWConfig, Linear, Module, MultiHeadAttention,
    TransformerEncoder,
};
use timekd_tensor::SeededRng;
use timekd_tensor::{seeded_rng, Tensor};

use timekd::Forecaster;

use crate::common::{instance_denormalize, instance_normalize};

/// TimeCMA hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TimeCmaConfig {
    /// Hidden width of the time-series branch.
    pub dim: usize,
    /// Encoder depth.
    pub num_layers: usize,
    /// Attention heads.
    pub num_heads: usize,
    /// FFN width.
    pub ffn_hidden: usize,
    /// Prompt rendering (shared with TimeKD's defaults).
    pub prompt: PromptConfig,
    /// Learning rate.
    pub lr: f32,
    /// Init seed.
    pub seed: u64,
}

impl Default for TimeCmaConfig {
    fn default() -> Self {
        TimeCmaConfig {
            dim: 16,
            num_layers: 2,
            num_heads: 2,
            ffn_hidden: 32,
            prompt: PromptConfig::default(),
            lr: 3e-3,
            seed: 17,
        }
    }
}

/// The TimeCMA forecaster.
pub struct TimeCma {
    lm: Rc<FrozenLm>,
    tokenizer: PromptTokenizer,
    ts_embed: Linear,
    ts_encoder: TransformerEncoder,
    prompt_proj: Linear,
    alignment: MultiHeadAttention,
    fusion_encoder: TransformerEncoder,
    head: Linear,
    config: TimeCmaConfig,
    input_len: usize,
    horizon: usize,
    num_vars: usize,
    optimizer: AdamW,
}

impl TimeCma {
    /// Builds TimeCMA around a shared frozen LM.
    pub fn new(
        lm: Rc<FrozenLm>,
        config: TimeCmaConfig,
        input_len: usize,
        horizon: usize,
        num_vars: usize,
    ) -> TimeCma {
        let lm_dim = lm.model().config().dim;
        let mut rng: SeededRng = seeded_rng(config.seed);
        TimeCma {
            tokenizer: PromptTokenizer::new(),
            ts_embed: Linear::new(input_len, config.dim, &mut rng),
            ts_encoder: TransformerEncoder::new(
                config.dim,
                config.num_layers,
                config.num_heads,
                config.ffn_hidden,
                Activation::Relu,
                &mut rng,
            ),
            prompt_proj: Linear::new(lm_dim, config.dim, &mut rng),
            alignment: MultiHeadAttention::new(config.dim, config.num_heads, &mut rng),
            fusion_encoder: TransformerEncoder::new(
                config.dim,
                1,
                config.num_heads,
                config.ffn_hidden,
                Activation::Relu,
                &mut rng,
            ),
            head: Linear::new(config.dim, horizon, &mut rng),
            lm,
            config,
            input_len,
            horizon,
            num_vars,
            optimizer: AdamW::new(
                config.lr,
                AdamWConfig {
                    weight_decay: 0.0,
                    ..Default::default()
                },
            ),
        }
    }

    /// Per-variable last-token prompt embeddings `[N, D]` (historical
    /// prompts only — TimeCMA has no privileged information).
    fn prompt_tokens(&self, x: &Tensor) -> Tensor {
        let lm_dim = self.lm.model().config().dim;
        let rows: Vec<Tensor> = (0..self.num_vars)
            .map(|v| {
                let series = column(x, v);
                let prompt = timekd_data::historical_prompt(
                    &self.tokenizer,
                    &series,
                    self.horizon,
                    &self.config.prompt,
                );
                self.lm.embed(&prompt, false).reshape([1, lm_dim])
            })
            .collect();
        self.prompt_proj.forward(&Tensor::concat(&rows, 0))
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.dims(), &[self.input_len, self.num_vars]);
        debug_assert_eq!(self.head.out_features(), self.horizon);
        let (xn, stats) = instance_normalize(x);
        let ts_tokens = self.ts_embed.forward(&xn.transpose_last()); // [N, D]
        let ts_enc = self.ts_encoder.forward(&ts_tokens, None).output;
        let prompt_tokens = self.prompt_tokens(&xn); // [N, D]
                                                     // Cross-modality alignment: TS queries retrieve from the prompt
                                                     // modality; residual keeps the TS pathway primary.
        let aligned = self
            .alignment
            .attend(&ts_enc, &prompt_tokens, None)
            .output
            .add(&ts_enc);
        let fused = self.fusion_encoder.forward(&aligned, None).output;
        let out = self.head.forward(&fused).transpose_last();
        instance_denormalize(&out, &stats)
    }

    fn params(&self) -> Vec<Tensor> {
        let mut v = self.ts_embed.params();
        v.extend(self.ts_encoder.params());
        v.extend(self.prompt_proj.params());
        v.extend(self.alignment.params());
        v.extend(self.fusion_encoder.params());
        v.extend(self.head.params());
        v
    }
}

impl Forecaster for TimeCma {
    fn name(&self) -> String {
        "TimeCMA".into()
    }

    fn train_epoch(&mut self, windows: &[ForecastWindow]) -> f32 {
        let params = self.params();
        let mut total = 0.0;
        for w in windows {
            for p in &params {
                p.zero_grad();
            }
            let loss = mse_loss(&self.forward(&w.x), &w.y);
            total += loss.item();
            loss.backward();
            clip_grad_norm(&params, 1.0);
            self.optimizer.step(&params);
        }
        total / windows.len().max(1) as f32
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        timekd_tensor::no_grad(|| self.forward(x))
    }

    fn num_trainable_params(&self) -> usize {
        self.params().iter().map(Tensor::num_elements).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_data::{DatasetKind, Split, SplitDataset};
    use timekd_lm::{pretrain_lm, LmConfig, LmSize, PretrainConfig};

    fn frozen_lm() -> Rc<FrozenLm> {
        let tok = PromptTokenizer::new();
        let (lm, _) = pretrain_lm(
            &tok,
            LmConfig::for_size(LmSize::Small),
            PretrainConfig {
                steps: 2,
                ..Default::default()
            },
        );
        Rc::new(FrozenLm::new(lm))
    }

    fn small_config() -> TimeCmaConfig {
        TimeCmaConfig {
            prompt: PromptConfig {
                max_history: 4,
                max_future: 4,
                freq_minutes: 60,
            },
            ..Default::default()
        }
    }

    #[test]
    fn shapes() {
        let m = TimeCma::new(frozen_lm(), small_config(), 24, 8, 3);
        let mut rng = seeded_rng(0);
        let x = Tensor::randn([24, 3], 1.0, &mut rng);
        assert_eq!(m.predict(&x).dims(), &[8, 3]);
    }

    #[test]
    fn uses_lm_at_inference() {
        // Unlike TimeKD's student, TimeCMA queries the LM per prediction —
        // visible as cache misses on fresh inputs.
        let lm = frozen_lm();
        let m = TimeCma::new(lm.clone(), small_config(), 24, 8, 2);
        let mut rng = seeded_rng(1);
        let (_, m0) = lm.cache_stats();
        let _ = m.predict(&Tensor::randn([24, 2], 1.0, &mut rng));
        let (_, m1) = lm.cache_stats();
        assert!(m1 > m0, "TimeCMA must call the LM at inference");
    }

    #[test]
    fn channel_dependent() {
        // Changing channel 1's history must change channel 0's forecast:
        // cross-variable attention exists (unlike PatchTST).
        let m = TimeCma::new(frozen_lm(), small_config(), 16, 4, 2);
        let mut rng = seeded_rng(2);
        let a = Tensor::randn([16, 2], 1.0, &mut rng);
        let mut perturbed = a.to_vec();
        for t in 0..16 {
            perturbed[t * 2 + 1] += 3.0;
        }
        let b = Tensor::from_vec(perturbed, [16, 2]);
        let ya = m.predict(&a).to_vec();
        let yb = m.predict(&b).to_vec();
        let ch0_a: Vec<f32> = (0..4).map(|t| ya[t * 2]).collect();
        let ch0_b: Vec<f32> = (0..4).map(|t| yb[t * 2]).collect();
        assert_ne!(ch0_a, ch0_b);
    }

    #[test]
    fn learns_on_synthetic_data() {
        let ds = SplitDataset::new(DatasetKind::EttH1, 500, 5, 24, 8);
        let mut m = TimeCma::new(frozen_lm(), small_config(), 24, 8, ds.num_vars());
        let train = ds.windows(Split::Train, 24);
        let val = ds.windows(Split::Val, 24);
        let (before, _) = m.evaluate(&val);
        for _ in 0..2 {
            m.train_epoch(&train);
        }
        let (after, _) = m.evaluate(&val);
        assert!(after < before, "{before} -> {after}");
    }
}
