//! Randomised property tests for the NN layer invariants over random
//! inputs and shapes, driven by the in-tree seeded RNG.

use timekd_nn::{
    causal_mask, Activation, LayerNorm, Linear, Module, MultiHeadAttention, RevIn,
    TransformerEncoder,
};
use timekd_tensor::{seeded_rng, Tensor};

const CASES: u64 = 32;

#[test]
fn layernorm_output_always_standardised() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let rows = rng.gen_range(1usize..6);
        let scale = rng.gen_range(0.1f32..20.0);
        let ln = LayerNorm::new(8);
        let x = Tensor::randn([rows, 8], scale, &mut rng).add_scalar(scale);
        let y = ln.forward(&x).to_vec();
        for r in 0..rows {
            let row = &y[r * 8..(r + 1) * 8];
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-3, "seed {seed} row {r} mean {mean}");
        }
    }
}

#[test]
fn linear_is_affine() {
    // f(a*x) - f(0) == a*(f(x) - f(0)) for a linear layer with bias.
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let l = Linear::new(4, 3, &mut rng);
        let x = Tensor::randn([2, 4], 1.0, &mut rng);
        let zero = Tensor::zeros([2, 4]);
        let f0 = l.forward(&zero);
        let fx = l.forward(&x).sub(&f0).to_vec();
        let f2x = l.forward(&x.mul_scalar(2.0)).sub(&f0).to_vec();
        for (a, b) in fx.iter().zip(&f2x) {
            assert!((2.0 * a - b).abs() < 1e-4, "seed {seed}: {a} {b}");
        }
    }
}

#[test]
fn attention_rows_are_distributions() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let t = rng.gen_range(2usize..8);
        let mha = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Tensor::randn([t, 8], 1.0, &mut rng);
        let out = mha.forward(&x, None);
        let a = out.attention.to_vec();
        for r in 0..t {
            let row_sum: f32 = a[r * t..(r + 1) * t].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-4, "seed {seed}");
            assert!(
                a[r * t..(r + 1) * t].iter().all(|&p| p >= 0.0),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn causal_mask_never_leaks_future() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let t = rng.gen_range(2usize..7);
        let mha = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Tensor::randn([t, 8], 1.0, &mut rng);
        let out = mha.forward(&x, Some(&causal_mask(t)));
        let a = out.attention.to_vec();
        for i in 0..t {
            for j in (i + 1)..t {
                assert!(
                    a[i * t + j] < 1e-5,
                    "seed {seed}: a[{i},{j}] = {}",
                    a[i * t + j]
                );
            }
        }
    }
}

#[test]
fn revin_round_trip_any_window() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let t = rng.gen_range(4usize..20);
        let scale = rng.gen_range(0.5f32..50.0);
        let revin = RevIn::new(3);
        let x = Tensor::randn([t, 3], scale, &mut rng).add_scalar(scale * 0.5);
        let (normed, stats) = revin.normalize(&x);
        let back = revin.denormalize(&normed, &stats);
        for (a, b) in back.to_vec().iter().zip(x.to_vec()) {
            let tol = b.abs().max(1.0) * 1e-3;
            assert!((a - b).abs() < tol, "seed {seed}: {a} vs {b}");
        }
    }
}

#[test]
fn revin_shift_invariance() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let shift = rng.gen_range(-100.0f32..100.0);
        let revin = RevIn::new(2);
        let x = Tensor::randn([10, 2], 1.0, &mut rng);
        let (na, _) = revin.normalize(&x);
        let (nb, _) = revin.normalize(&x.add_scalar(shift));
        for (a, b) in na.to_vec().iter().zip(nb.to_vec()) {
            assert!((a - b).abs() < 1e-3, "seed {seed}");
        }
    }
}

#[test]
fn encoder_output_finite_for_any_scale() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let scale = rng.gen_range(0.01f32..30.0);
        let enc = TransformerEncoder::new(8, 2, 2, 16, Activation::Relu, &mut rng);
        let x = Tensor::randn([5, 8], scale, &mut rng);
        let out = enc.forward(&x, None);
        assert!(
            out.output.to_vec().iter().all(|v| v.is_finite()),
            "seed {seed}"
        );
        assert!(
            out.last_attention.to_vec().iter().all(|v| v.is_finite()),
            "seed {seed}"
        );
    }
}

#[test]
fn param_blob_round_trip() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let a = Linear::new(3, 2, &mut rng);
        let b = Linear::new(3, 2, &mut rng);
        let mut blob = a.save_params();
        b.load_params(&mut blob).expect("load after save");
        assert_eq!(
            a.params()[0].to_vec(),
            b.params()[0].to_vec(),
            "seed {seed}"
        );
        assert_eq!(
            a.params()[1].to_vec(),
            b.params()[1].to_vec(),
            "seed {seed}"
        );
    }
}
