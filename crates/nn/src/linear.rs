//! Affine layers: [`Linear`] and [`Embedding`].

use timekd_tensor::SeededRng;
use timekd_tensor::Tensor;

use crate::module::Module;

/// Fully connected layer `y = x W + b` over the last axis.
///
/// The weight is stored `[in_features, out_features]` so the forward pass is
/// a plain matmul with no transpose.
pub struct Linear {
    weight: Tensor,
    bias: Option<Tensor>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Xavier-initialised linear layer with bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut SeededRng) -> Linear {
        Linear {
            weight: Tensor::xavier_uniform([in_features, out_features], rng),
            bias: Some(Tensor::zeros_param([out_features])),
            in_features,
            out_features,
        }
    }

    /// Linear layer without a bias term (used for attention projections).
    pub fn new_no_bias(in_features: usize, out_features: usize, rng: &mut SeededRng) -> Linear {
        Linear {
            weight: Tensor::xavier_uniform([in_features, out_features], rng),
            bias: None,
            in_features,
            out_features,
        }
    }

    /// Applies the layer to a tensor whose last axis is `in_features`
    /// (rank 2 or 3).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let rank = x.shape().rank();
        assert!(
            rank == 2 || rank == 3,
            "Linear expects rank 2 or 3 input, got {}",
            x.shape()
        );
        assert_eq!(
            x.dims()[rank - 1],
            self.in_features,
            "Linear: input last dim {} != in_features {}",
            x.dims()[rank - 1],
            self.in_features
        );
        let y = x.matmul(&self.weight);
        match &self.bias {
            Some(b) => y.add(b),
            None => y,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight tensor (for tying or inspection).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }
}

impl Module for Linear {
    fn params(&self) -> Vec<Tensor> {
        let mut v = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            v.push(b.clone());
        }
        v
    }
}

/// Token embedding table.
pub struct Embedding {
    weight: Tensor,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Normal(0, 0.02) initialised embedding, the GPT-2 convention.
    pub fn new(vocab: usize, dim: usize, rng: &mut SeededRng) -> Embedding {
        Embedding {
            weight: Tensor::randn_param([vocab, dim], 0.02, rng),
            vocab,
            dim,
        }
    }

    /// Looks up `ids`, producing `[ids.len(), dim]`.
    pub fn forward(&self, ids: &[usize]) -> Tensor {
        self.weight.index_select_rows(ids)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The full table (for weight tying with an output head).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }
}

impl Module for Embedding {
    fn params(&self) -> Vec<Tensor> {
        vec![self.weight.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_tensor::seeded_rng;

    #[test]
    fn linear_shapes() {
        let mut rng = seeded_rng(0);
        let l = Linear::new(4, 3, &mut rng);
        let x = Tensor::randn([5, 4], 1.0, &mut rng);
        assert_eq!(l.forward(&x).dims(), &[5, 3]);
        let x3 = Tensor::randn([2, 5, 4], 1.0, &mut rng);
        assert_eq!(l.forward(&x3).dims(), &[2, 5, 3]);
    }

    #[test]
    fn linear_param_count() {
        let mut rng = seeded_rng(0);
        assert_eq!(Linear::new(4, 3, &mut rng).num_params(), 15);
        assert_eq!(Linear::new_no_bias(4, 3, &mut rng).num_params(), 12);
    }

    #[test]
    fn linear_zero_weight_outputs_bias() {
        let mut rng = seeded_rng(0);
        let l = Linear::new(2, 2, &mut rng);
        l.weight().copy_from_slice(&[0.0; 4]);
        l.params()[1].copy_from_slice(&[1.5, -2.0]);
        let x = Tensor::randn([3, 2], 1.0, &mut rng);
        let y = l.forward(&x).to_vec();
        for r in 0..3 {
            assert_eq!(y[r * 2], 1.5);
            assert_eq!(y[r * 2 + 1], -2.0);
        }
    }

    #[test]
    fn linear_grad_check() {
        let mut rng = seeded_rng(1);
        let l = Linear::new(3, 2, &mut rng);
        let x = Tensor::randn([4, 3], 1.0, &mut rng);
        let w = l.params()[0].clone();
        timekd_tensor::assert_gradients_close(&w, || l.forward(&x).square().mean(), 1e-2);
        let b = l.params()[1].clone();
        timekd_tensor::assert_gradients_close(&b, || l.forward(&x).square().mean(), 1e-2);
    }

    #[test]
    #[should_panic(expected = "in_features")]
    fn linear_wrong_width_panics() {
        let mut rng = seeded_rng(0);
        let l = Linear::new(4, 3, &mut rng);
        let x = Tensor::zeros([5, 5]);
        let _ = l.forward(&x);
    }

    #[test]
    fn embedding_lookup_rows() {
        let mut rng = seeded_rng(2);
        let e = Embedding::new(10, 4, &mut rng);
        let out = e.forward(&[3, 3, 7]);
        assert_eq!(out.dims(), &[3, 4]);
        let v = out.to_vec();
        assert_eq!(&v[0..4], &v[4..8], "same id gives same row");
    }

    #[test]
    fn embedding_grad_accumulates_per_row() {
        let mut rng = seeded_rng(3);
        let e = Embedding::new(5, 2, &mut rng);
        e.forward(&[1, 1, 4]).sum().backward();
        let g = e.weight().grad().unwrap();
        assert_eq!(&g[2..4], &[2.0, 2.0]); // row 1 used twice
        assert_eq!(&g[8..10], &[1.0, 1.0]); // row 4 once
        assert_eq!(&g[0..2], &[0.0, 0.0]);
    }
}
