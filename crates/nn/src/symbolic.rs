//! Symbolic mirrors of the nn building blocks.
//!
//! Each `Sym*` type reproduces the exact op sequence of its real
//! counterpart's `forward` on [`SymbolicTensor`]s — same ops, same order,
//! same node counts — so a symbolic trace type-checks shapes and gradient
//! flow for any configuration, and its graph statistics can be compared
//! one-to-one against a dynamic [`GraphAudit`](timekd_tensor::GraphAudit)
//! of the executed model.
//!
//! Constructors register parameters on the [`SymCtx`] under the same
//! component paths the real modules use in `Module::params` order, which is
//! what lets the verifier's gradient-flow pass name parameters like
//! `student.encoder.layer0.attn.wq.weight` in findings.

use timekd_tensor::{ShapeError, SymCtx, SymDim, SymbolicTensor};

use crate::encoder::Activation;

type SymResult = Result<SymbolicTensor, ShapeError>;

/// Symbolic [`Linear`](crate::Linear): `y = x W (+ b)` over the last axis.
#[derive(Debug)]
pub struct SymLinear {
    ctx: SymCtx,
    label: String,
    weight: SymbolicTensor,
    bias: Option<SymbolicTensor>,
    in_features: usize,
}

impl SymLinear {
    /// Linear layer with bias, registered under `name`.
    pub fn new(ctx: &SymCtx, name: &str, in_features: usize, out_features: usize) -> SymLinear {
        let label = ctx.label_for(name);
        ctx.scoped(name, || SymLinear {
            ctx: ctx.clone(),
            label: label.clone(),
            weight: ctx.param(
                "weight",
                vec![
                    SymDim::new("in", in_features),
                    SymDim::new("out", out_features),
                ],
            ),
            bias: Some(ctx.param("bias", vec![SymDim::new("out", out_features)])),
            in_features,
        })
    }

    /// Bias-free linear layer (attention projections).
    pub fn new_no_bias(
        ctx: &SymCtx,
        name: &str,
        in_features: usize,
        out_features: usize,
    ) -> SymLinear {
        let label = ctx.label_for(name);
        ctx.scoped(name, || SymLinear {
            ctx: ctx.clone(),
            label: label.clone(),
            weight: ctx.param(
                "weight",
                vec![
                    SymDim::new("in", in_features),
                    SymDim::new("out", out_features),
                ],
            ),
            bias: None,
            in_features,
        })
    }

    /// Mirrors `Linear::forward` (rank 2 or 3, last dim = `in_features`).
    pub fn forward(&self, x: &SymbolicTensor) -> SymResult {
        self.ctx.with_label(&self.label, || self.forward_inner(x))
    }

    fn forward_inner(&self, x: &SymbolicTensor) -> SymResult {
        let rank = x.dims().len();
        if !(rank == 2 || rank == 3) || x.dims()[rank - 1].size != self.in_features {
            // The real layer asserts; symbolically this is a shape error
            // with provenance.
            return Err(shape_err(
                x,
                "linear",
                format!(
                    "Linear expects rank-2/3 input with last dim {}, got {}",
                    self.in_features,
                    timekd_tensor::render_dims(x.dims())
                ),
            ));
        }
        let y = x.matmul(&self.weight)?;
        match &self.bias {
            Some(b) => y.add(b),
            None => Ok(y),
        }
    }
}

fn shape_err(x: &SymbolicTensor, op: &str, message: String) -> ShapeError {
    // Route through an impossible broadcast to reuse ShapeError plumbing is
    // uglier than constructing directly:
    ShapeError {
        op: op.to_string(),
        label: x.label().to_string(),
        message,
        provenance: x.provenance_lines(8),
    }
}

/// Symbolic [`LayerNorm`](crate::LayerNorm): 11 nodes per forward.
#[derive(Debug)]
pub struct SymLayerNorm {
    ctx: SymCtx,
    label: String,
    gamma: SymbolicTensor,
    beta: SymbolicTensor,
    dim: usize,
}

impl SymLayerNorm {
    /// Layer norm over a last axis of width `dim`, registered under `name`.
    pub fn new(ctx: &SymCtx, name: &str, dim: usize) -> SymLayerNorm {
        let label = ctx.label_for(name);
        ctx.scoped(name, || SymLayerNorm {
            ctx: ctx.clone(),
            label: label.clone(),
            gamma: ctx.param("gamma", vec![SymDim::new("d", dim)]),
            beta: ctx.param("beta", vec![SymDim::new("d", dim)]),
            dim,
        })
    }

    /// Mirrors `LayerNorm::forward`: mean_axis, sub, square, mean_axis,
    /// add_scalar, rsqrt, mul, mul, add.
    pub fn forward(&self, x: &SymbolicTensor) -> SymResult {
        self.ctx.with_label(&self.label, || self.forward_inner(x))
    }

    fn forward_inner(&self, x: &SymbolicTensor) -> SymResult {
        let rank = x.dims().len();
        if x.dims()[rank - 1].size != self.dim {
            return Err(shape_err(
                x,
                "layer_norm",
                format!(
                    "LayerNorm({}) applied to {}",
                    self.dim,
                    timekd_tensor::render_dims(x.dims())
                ),
            ));
        }
        let mu = x.mean_axis(rank - 1, true)?;
        let centered = x.sub(&mu)?;
        let var = centered.square().mean_axis(rank - 1, true)?;
        // Same epsilon as `LayerNorm::new`, so a compiled plan replays the
        // real kernel bitwise.
        let inv_std = var.add_scalar(1e-5).rsqrt();
        centered.mul(&inv_std)?.mul(&self.gamma)?.add(&self.beta)
    }
}

/// Symbolic [`FeedForward`](crate::FeedForward).
#[derive(Debug)]
pub struct SymFeedForward {
    fc1: SymLinear,
    fc2: SymLinear,
    activation: Activation,
}

impl SymFeedForward {
    /// FFN expanding `dim` to `hidden` and back, registered under `name`.
    pub fn new(
        ctx: &SymCtx,
        name: &str,
        dim: usize,
        hidden: usize,
        activation: Activation,
    ) -> SymFeedForward {
        ctx.scoped(name, || SymFeedForward {
            fc1: SymLinear::new(ctx, "fc1", dim, hidden),
            fc2: SymLinear::new(ctx, "fc2", hidden, dim),
            activation,
        })
    }

    /// Mirrors `FeedForward::forward`.
    pub fn forward(&self, x: &SymbolicTensor) -> SymResult {
        let h = self.fc1.forward(x)?;
        let h = match self.activation {
            Activation::Relu => h.relu(),
            Activation::Gelu => h.gelu(),
        };
        self.fc2.forward(&h)
    }
}

/// Symbolic [`MultiHeadAttention`](crate::MultiHeadAttention).
#[derive(Debug)]
pub struct SymMultiHeadAttention {
    ctx: SymCtx,
    label: String,
    wq: SymLinear,
    wk: SymLinear,
    wv: SymLinear,
    wo: SymLinear,
    num_heads: usize,
    head_dim: usize,
}

/// Output of a symbolic attention call.
#[derive(Debug)]
pub struct SymAttentionOutput {
    /// Attended values `[T_q, D]`.
    pub output: SymbolicTensor,
    /// Head-averaged attention `[T_q, T_k]`.
    pub attention: SymbolicTensor,
}

impl SymMultiHeadAttention {
    /// Attention block over width `dim` with `num_heads` heads.
    pub fn new(ctx: &SymCtx, name: &str, dim: usize, num_heads: usize) -> SymMultiHeadAttention {
        Self::with_head_dim(ctx, name, dim, num_heads, dim / num_heads)
    }

    /// As [`SymMultiHeadAttention::new`] but with an explicit head dim —
    /// the hook the verifier's fault injection uses to model an
    /// off-by-one head dimension (the real constructor asserts
    /// divisibility; the symbolic reshape catches it as a shape error).
    pub fn with_head_dim(
        ctx: &SymCtx,
        name: &str,
        dim: usize,
        num_heads: usize,
        head_dim: usize,
    ) -> SymMultiHeadAttention {
        let label = ctx.label_for(name);
        ctx.scoped(name, || SymMultiHeadAttention {
            ctx: ctx.clone(),
            label: label.clone(),
            wq: SymLinear::new_no_bias(ctx, "wq", dim, dim),
            wk: SymLinear::new_no_bias(ctx, "wk", dim, dim),
            wv: SymLinear::new_no_bias(ctx, "wv", dim, dim),
            wo: SymLinear::new_no_bias(ctx, "wo", dim, dim),
            num_heads,
            head_dim,
        })
    }

    fn split_heads(&self, x: &SymbolicTensor) -> SymResult {
        let t = x.dims()[0].clone();
        x.reshape(vec![
            t,
            SymDim::new("H", self.num_heads),
            SymDim::new("dh", self.head_dim),
        ])?
        .permute(&[1, 0, 2])
    }

    /// Mirrors `MultiHeadAttention::attend` node-for-node.
    pub fn attend(
        &self,
        q_in: &SymbolicTensor,
        kv_in: &SymbolicTensor,
        mask: Option<&SymbolicTensor>,
    ) -> Result<SymAttentionOutput, ShapeError> {
        self.ctx
            .with_label(&self.label, || self.attend_inner(q_in, kv_in, mask))
    }

    fn attend_inner(
        &self,
        q_in: &SymbolicTensor,
        kv_in: &SymbolicTensor,
        mask: Option<&SymbolicTensor>,
    ) -> Result<SymAttentionOutput, ShapeError> {
        let tq = q_in.dims()[0].clone();
        let tk = kv_in.dims()[0].clone();
        if let Some(m) = mask {
            if m.sizes() != vec![tq.size, tk.size] {
                return Err(shape_err(
                    m,
                    "attention_mask",
                    format!(
                        "mask {} does not match scores [{tq}, {tk}]",
                        timekd_tensor::render_dims(m.dims())
                    ),
                ));
            }
        }
        let q = self.split_heads(&self.wq.forward(q_in)?)?;
        let k = self.split_heads(&self.wk.forward(kv_in)?)?;
        let v = self.split_heads(&self.wv.forward(kv_in)?)?;
        let (ctx_t, attention) = SymbolicTensor::fused_attention(&q, &k, &v, mask)?;
        let output = self.wo.forward(&ctx_t)?;
        Ok(SymAttentionOutput { output, attention })
    }

    /// Self-attention shorthand.
    pub fn forward(
        &self,
        x: &SymbolicTensor,
        mask: Option<&SymbolicTensor>,
    ) -> Result<SymAttentionOutput, ShapeError> {
        self.attend(x, x, mask)
    }
}

/// Symbolic [`EncoderLayer`](crate::EncoderLayer) (Pre-LN).
#[derive(Debug)]
pub struct SymEncoderLayer {
    ctx: SymCtx,
    label: String,
    ln1: SymLayerNorm,
    attn: SymMultiHeadAttention,
    ln2: SymLayerNorm,
    ffn: SymFeedForward,
}

impl SymEncoderLayer {
    /// One Pre-LN layer registered under `name`.
    pub fn new(
        ctx: &SymCtx,
        name: &str,
        dim: usize,
        num_heads: usize,
        head_dim: usize,
        ffn_hidden: usize,
        activation: Activation,
    ) -> SymEncoderLayer {
        let label = ctx.label_for(name);
        ctx.scoped(name, || SymEncoderLayer {
            ctx: ctx.clone(),
            label: label.clone(),
            ln1: SymLayerNorm::new(ctx, "ln1", dim),
            attn: SymMultiHeadAttention::with_head_dim(ctx, "attn", dim, num_heads, head_dim),
            ln2: SymLayerNorm::new(ctx, "ln2", dim),
            ffn: SymFeedForward::new(ctx, "ffn", dim, ffn_hidden, activation),
        })
    }

    /// Mirrors `EncoderLayer::forward`.
    pub fn forward(
        &self,
        x: &SymbolicTensor,
        mask: Option<&SymbolicTensor>,
    ) -> Result<(SymbolicTensor, SymbolicTensor), ShapeError> {
        let attended = self.attn.forward(&self.ln1.forward(x)?, mask)?;
        self.ctx.with_label(&self.label, || {
            let y = attended.output.add(x)?;
            let z = self.ffn.forward(&self.ln2.forward(&y)?)?.add(&y)?;
            Ok((z, attended.attention))
        })
    }
}

/// Symbolic [`TransformerEncoder`](crate::TransformerEncoder).
#[derive(Debug)]
pub struct SymTransformerEncoder {
    layers: Vec<SymEncoderLayer>,
    final_ln: SymLayerNorm,
}

/// Output of a symbolic encoder forward pass.
#[derive(Debug)]
pub struct SymEncoderOutput {
    /// Encoded sequence `[T, D]`.
    pub output: SymbolicTensor,
    /// Last layer's head-averaged attention `[T, T]`.
    pub last_attention: SymbolicTensor,
}

impl SymTransformerEncoder {
    /// Encoder stack registered under `name` (layers named `layer{i}`).
    pub fn new(
        ctx: &SymCtx,
        name: &str,
        dim: usize,
        num_layers: usize,
        num_heads: usize,
        ffn_hidden: usize,
        activation: Activation,
    ) -> SymTransformerEncoder {
        Self::with_head_dim(
            ctx,
            name,
            dim,
            num_layers,
            num_heads,
            dim / num_heads.max(1),
            ffn_hidden,
            activation,
        )
    }

    /// As [`SymTransformerEncoder::new`] but with an explicit per-head dim
    /// (fault-injection hook).
    #[allow(clippy::too_many_arguments)]
    pub fn with_head_dim(
        ctx: &SymCtx,
        name: &str,
        dim: usize,
        num_layers: usize,
        num_heads: usize,
        head_dim: usize,
        ffn_hidden: usize,
        activation: Activation,
    ) -> SymTransformerEncoder {
        ctx.scoped(name, || SymTransformerEncoder {
            layers: (0..num_layers)
                .map(|i| {
                    SymEncoderLayer::new(
                        ctx,
                        &format!("layer{i}"),
                        dim,
                        num_heads,
                        head_dim,
                        ffn_hidden,
                        activation,
                    )
                })
                .collect(),
            final_ln: SymLayerNorm::new(ctx, "final_ln", dim),
        })
    }

    /// Mirrors `TransformerEncoder::forward`.
    pub fn forward(
        &self,
        x: &SymbolicTensor,
        mask: Option<&SymbolicTensor>,
    ) -> Result<SymEncoderOutput, ShapeError> {
        let mut h = x.clone();
        let mut last_attention = None;
        for layer in &self.layers {
            let (out, attn) = layer.forward(&h, mask)?;
            h = out;
            last_attention = Some(attn);
        }
        Ok(SymEncoderOutput {
            output: self.final_ln.forward(&h)?,
            last_attention: last_attention.expect("at least one layer"),
        })
    }
}

/// Symbolic [`RevIn`](crate::RevIn).
#[derive(Debug)]
pub struct SymRevIn {
    label: String,
    gamma: SymbolicTensor,
    beta: SymbolicTensor,
    num_vars: usize,
}

impl SymRevIn {
    /// RevIN over `num_vars` channels registered under `name`.
    pub fn new(ctx: &SymCtx, name: &str, num_vars: usize) -> SymRevIn {
        let label = ctx.label_for(name);
        ctx.scoped(name, || SymRevIn {
            label: label.clone(),
            gamma: ctx.param("gamma", vec![SymDim::new("N", num_vars)]),
            beta: ctx.param("beta", vec![SymDim::new("N", num_vars)]),
            num_vars,
        })
    }

    fn stats(&self, ctx: &SymCtx) -> (SymbolicTensor, SymbolicTensor) {
        // Instance statistics are computed outside autograd in the real
        // layer and enter the graph as constant [1, N] leaves.
        let dims = vec![SymDim::anon(1), SymDim::new("N", self.num_vars)];
        (ctx.constant("mu", dims.clone()), ctx.constant("std", dims))
    }

    /// Mirrors `RevIn::normalize` (4 ops + 2 constant stat leaves).
    pub fn normalize(&self, ctx: &SymCtx, x: &SymbolicTensor) -> SymResult {
        ctx.with_label(&self.label, || self.normalize_inner(ctx, x))
    }

    fn normalize_inner(&self, ctx: &SymCtx, x: &SymbolicTensor) -> SymResult {
        if x.dims().len() != 2 || x.dims()[1].size != self.num_vars {
            return Err(shape_err(
                x,
                "revin_normalize",
                format!(
                    "RevIn({}) expects [T, N], got {}",
                    self.num_vars,
                    timekd_tensor::render_dims(x.dims())
                ),
            ));
        }
        let (mu, std) = self.stats(ctx);
        x.sub(&mu)?.div(&std)?.mul(&self.gamma)?.add(&self.beta)
    }

    /// Mirrors `RevIn::denormalize`.
    pub fn denormalize(&self, ctx: &SymCtx, y: &SymbolicTensor) -> SymResult {
        ctx.with_label(&self.label, || self.denormalize_inner(ctx, y))
    }

    fn denormalize_inner(&self, ctx: &SymCtx, y: &SymbolicTensor) -> SymResult {
        if y.dims().len() != 2 || y.dims()[1].size != self.num_vars {
            return Err(shape_err(
                y,
                "revin_denormalize",
                format!(
                    "RevIn({}) expects [M, N], got {}",
                    self.num_vars,
                    timekd_tensor::render_dims(y.dims())
                ),
            ));
        }
        let (mu, std) = self.stats(ctx);
        y.sub(&self.beta)?.div(&self.gamma)?.mul(&std)?.add(&mu)
    }
}

/// Mirrors [`smooth_l1_loss`](crate::smooth_l1_loss): `smooth_l1` + `mean`
/// (3 nodes).
pub fn sym_smooth_l1_loss(pred: &SymbolicTensor, target: &SymbolicTensor) -> SymResult {
    Ok(pred.smooth_l1(target)?.mean())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{smooth_l1_loss, LayerNorm, Module, MultiHeadAttention, TransformerEncoder};
    use timekd_tensor::{graph_stats, seeded_rng, GraphAudit, SymCtx, SymDim, Tensor};

    fn d(name: &str, size: usize) -> SymDim {
        SymDim::new(name, size)
    }

    #[test]
    fn layernorm_node_count_matches_dynamic() {
        let ctx = SymCtx::new();
        let ln = SymLayerNorm::new(&ctx, "ln", 8);
        let x = ctx.param("x", vec![d("t", 4), d("d", 8)]);
        let y = ln.forward(&x).unwrap().sum();

        let mut rng = seeded_rng(0);
        let real_ln = LayerNorm::new(8);
        let real_x = Tensor::randn_param([4, 8], 1.0, &mut rng);
        let real_y = real_ln.forward(&real_x).sum();

        let sym = graph_stats(&y);
        let dynamic = GraphAudit::run(&real_y).stats;
        assert_eq!(sym.nodes, dynamic.nodes);
        assert_eq!(sym.edges, dynamic.edges);
        assert_eq!(sym.leaves, dynamic.leaves);
        assert_eq!(sym.params, dynamic.params);
        assert_eq!(sym.max_depth, dynamic.max_depth);
    }

    #[test]
    fn attention_graph_matches_dynamic() {
        let ctx = SymCtx::new();
        let mha = SymMultiHeadAttention::new(&ctx, "attn", 8, 2);
        let x = ctx.param("x", vec![d("t", 5), d("d", 8)]);
        let out = mha.forward(&x, None).unwrap();
        let loss = sym_smooth_l1_loss(
            &out.output,
            &ctx.constant("tgt", vec![d("t", 5), d("d", 8)]),
        )
        .unwrap();

        let mut rng = seeded_rng(0);
        let real = MultiHeadAttention::new(8, 2, &mut rng);
        let real_x = Tensor::randn_param([5, 8], 1.0, &mut rng);
        let real_out = real.forward(&real_x, None);
        let real_loss = smooth_l1_loss(&real_out.output, &Tensor::zeros([5, 8]));

        let sym = graph_stats(&loss);
        let dynamic = GraphAudit::run(&real_loss).stats;
        assert_eq!(sym.nodes, dynamic.nodes);
        assert_eq!(sym.edges, dynamic.edges);
        assert_eq!(sym.params, dynamic.params);
        assert_eq!(sym.max_depth, dynamic.max_depth);
    }

    #[test]
    fn encoder_stack_matches_dynamic() {
        let ctx = SymCtx::new();
        let enc = SymTransformerEncoder::new(&ctx, "enc", 8, 2, 2, 16, Activation::Relu);
        let x = ctx.constant("x", vec![d("t", 6), d("d", 8)]);
        let out = enc.forward(&x, None).unwrap();
        let loss = out.output.sum();

        let mut rng = seeded_rng(1);
        let real = TransformerEncoder::new(8, 2, 2, 16, Activation::Relu, &mut rng);
        let real_x = Tensor::randn([6, 8], 1.0, &mut rng);
        let real_loss = real.forward(&real_x, None).output.sum();

        let sym = graph_stats(&loss);
        let dynamic = GraphAudit::run(&real_loss).stats;
        assert_eq!(sym.nodes, dynamic.nodes);
        assert_eq!(sym.edges, dynamic.edges);
        assert_eq!(sym.leaves, dynamic.leaves);
        assert_eq!(sym.params, dynamic.params);
        assert_eq!(sym.max_depth, dynamic.max_depth);
        // Param registry mirrors Module::params.
        assert_eq!(ctx.params().len(), real.params().len());
    }

    #[test]
    fn bad_head_dim_caught_at_reshape() {
        let ctx = SymCtx::new();
        // 8 not divisible by 3: real constructor panics; symbolically the
        // split-heads reshape reports the element-count mismatch.
        let mha = SymMultiHeadAttention::with_head_dim(&ctx, "attn", 8, 3, 3);
        let x = ctx.constant("x", vec![d("t", 5), d("d", 8)]);
        let err = mha.forward(&x, None).unwrap_err();
        assert_eq!(err.op, "reshape");
        assert!(err.label.contains("attn"), "{}", err.label);
    }

    #[test]
    fn linear_width_mismatch_is_error() {
        let ctx = SymCtx::new();
        let lin = SymLinear::new(&ctx, "proj", 4, 3);
        let x = ctx.constant("x", vec![d("t", 5), d("d", 5)]);
        assert!(lin.forward(&x).is_err());
    }

    #[test]
    fn revin_roundtrip_shapes() {
        let ctx = SymCtx::new();
        let revin = SymRevIn::new(&ctx, "revin", 7);
        let x = ctx.constant("x", vec![d("L", 96), d("N", 7)]);
        let normed = revin.normalize(&ctx, &x).unwrap();
        assert_eq!(normed.sizes(), vec![96, 7]);
        let y = ctx.constant("y", vec![d("M", 24), d("N", 7)]);
        assert_eq!(revin.denormalize(&ctx, &y).unwrap().sizes(), vec![24, 7]);
        assert!(revin.normalize(&ctx, &y.transpose_last().unwrap()).is_err());
    }
}
