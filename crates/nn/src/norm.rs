//! Normalisation layers: [`LayerNorm`] (paper Eq. 6) and [`RevIn`]
//! (reversible instance normalisation, Kim et al. 2022, used by the TimeKD
//! student).

use timekd_tensor::Tensor;

use crate::module::Module;

/// Layer normalisation over the last axis with learnable gain/offset,
/// matching Eq. (6): `LN(x) = γ ⊙ (x − μ)/σ + β`.
pub struct LayerNorm {
    gamma: Tensor,
    beta: Tensor,
    eps: f32,
    dim: usize,
}

impl LayerNorm {
    /// Creates a layer norm over a last axis of width `dim`.
    pub fn new(dim: usize) -> LayerNorm {
        LayerNorm {
            gamma: Tensor::ones_param([dim]),
            beta: Tensor::zeros_param([dim]),
            eps: 1e-5,
            dim,
        }
    }

    /// Normalises the last axis of `x` (rank ≥ 1, last dim = `dim`).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let rank = x.shape().rank();
        assert_eq!(
            x.dims()[rank - 1],
            self.dim,
            "LayerNorm: last dim {} != {}",
            x.dims()[rank - 1],
            self.dim
        );
        let mu = x.mean_axis(rank - 1, true);
        let centered = x.sub(&mu);
        let var = centered.square().mean_axis(rank - 1, true);
        let inv_std = var.add_scalar(self.eps).rsqrt();
        centered.mul(&inv_std).mul(&self.gamma).add(&self.beta)
    }
}

impl Module for LayerNorm {
    fn params(&self) -> Vec<Tensor> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

/// Statistics captured by [`RevIn::normalize`], needed to invert the
/// transform after forecasting.
#[derive(Clone)]
pub struct RevInStats {
    mean: Vec<f32>,
    std: Vec<f32>,
}

/// Reversible instance normalisation.
///
/// Normalises each variable of one window `[T, N]` by its own mean/std over
/// time, applies a learnable per-variable affine, and can exactly invert the
/// transform on the model output — the mechanism the student model uses to
/// be robust to distribution shift.
pub struct RevIn {
    gamma: Tensor,
    beta: Tensor,
    eps: f32,
    num_vars: usize,
}

impl RevIn {
    /// RevIN over `num_vars` channels.
    pub fn new(num_vars: usize) -> RevIn {
        RevIn {
            gamma: Tensor::ones_param([num_vars]),
            beta: Tensor::zeros_param([num_vars]),
            eps: 1e-5,
            num_vars,
        }
    }

    /// Normalises a `[T, N]` window per channel; returns the transformed
    /// window and the statistics for [`RevIn::denormalize`].
    pub fn normalize(&self, x: &Tensor) -> (Tensor, RevInStats) {
        assert_eq!(x.shape().rank(), 2, "RevIn expects [T, N]");
        assert_eq!(x.dims()[1], self.num_vars, "RevIn: wrong channel count");
        let t = x.dims()[0];
        // Instance statistics are data, not graph: compute outside autograd.
        let data = x.data();
        let n = self.num_vars;
        let mut mean = vec![0.0f32; n];
        let mut std = vec![0.0f32; n];
        for j in 0..n {
            let mut s = 0.0f32;
            for i in 0..t {
                s += data[i * n + j];
            }
            let mu = s / t as f32;
            let mut v = 0.0f32;
            for i in 0..t {
                let d = data[i * n + j] - mu;
                v += d * d;
            }
            mean[j] = mu;
            std[j] = (v / t as f32 + self.eps).sqrt();
        }
        drop(data);
        let mu_t = Tensor::from_vec(mean.clone(), [1, n]);
        let std_t = Tensor::from_vec(std.clone(), [1, n]);
        let normed = x.sub(&mu_t).div(&std_t).mul(&self.gamma).add(&self.beta);
        (normed, RevInStats { mean, std })
    }

    /// Inverts [`RevIn::normalize`] on a `[M, N]` forecast.
    pub fn denormalize(&self, y: &Tensor, stats: &RevInStats) -> Tensor {
        assert_eq!(y.shape().rank(), 2, "RevIn expects [M, N]");
        let n = self.num_vars;
        assert_eq!(y.dims()[1], n, "RevIn: wrong channel count");
        let mu_t = Tensor::from_vec(stats.mean.clone(), [1, n]);
        let std_t = Tensor::from_vec(stats.std.clone(), [1, n]);
        y.sub(&self.beta).div(&self.gamma).mul(&std_t).add(&mu_t)
    }
}

impl Module for RevIn {
    fn params(&self) -> Vec<Tensor> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_tensor::seeded_rng;

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let mut rng = seeded_rng(0);
        let ln = LayerNorm::new(16);
        let x = Tensor::randn([4, 16], 3.0, &mut rng).add_scalar(5.0);
        let y = ln.forward(&x);
        let v = y.to_vec();
        for r in 0..4 {
            let row = &v[r * 16..(r + 1) * 16];
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn layernorm_respects_affine() {
        let ln = LayerNorm::new(2);
        ln.params()[0].copy_from_slice(&[2.0, 2.0]);
        ln.params()[1].copy_from_slice(&[1.0, 1.0]);
        let x = Tensor::from_vec(vec![-1.0, 1.0], [1, 2]);
        let y = ln.forward(&x).to_vec();
        // normalized x is [-1, 1] (population std), so y = 2*(-1,1)+1.
        assert!((y[0] + 1.0).abs() < 1e-3);
        assert!((y[1] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn layernorm_grad_check() {
        let mut rng = seeded_rng(1);
        let ln = LayerNorm::new(4);
        let x = Tensor::randn_param([3, 4], 1.0, &mut rng);
        timekd_tensor::assert_gradients_close(&x, || ln.forward(&x).square().mean(), 1e-2);
        let g = ln.params()[0].clone();
        timekd_tensor::assert_gradients_close(&g, || ln.forward(&x).square().mean(), 1e-2);
    }

    #[test]
    fn revin_round_trip_identity() {
        let mut rng = seeded_rng(2);
        let revin = RevIn::new(3);
        let x = Tensor::randn([10, 3], 2.0, &mut rng).add_scalar(7.0);
        let (normed, stats) = revin.normalize(&x);
        let back = revin.denormalize(&normed, &stats);
        for (a, b) in back.to_vec().iter().zip(x.to_vec()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn revin_normalized_channels_standard() {
        let mut rng = seeded_rng(3);
        let revin = RevIn::new(2);
        let x = Tensor::randn([50, 2], 5.0, &mut rng).add_scalar(-3.0);
        let (normed, _) = revin.normalize(&x);
        let v = normed.to_vec();
        for j in 0..2 {
            let col: Vec<f32> = (0..50).map(|i| v[i * 2 + j]).collect();
            let mean: f32 = col.iter().sum::<f32>() / 50.0;
            let var: f32 = col.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 50.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn revin_shifts_do_not_leak() {
        // Two windows with very different offsets should normalise to the
        // same values — the distribution-shift robustness RevIN provides.
        let revin = RevIn::new(1);
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3, 1]);
        let b = Tensor::from_vec(vec![101.0, 102.0, 103.0], [3, 1]);
        let (na, _) = revin.normalize(&a);
        let (nb, _) = revin.normalize(&b);
        for (x, y) in na.to_vec().iter().zip(nb.to_vec()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn revin_grads_flow_through_affine() {
        let revin = RevIn::new(2);
        let x = Tensor::from_vec(vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0], [3, 2]);
        let (normed, _) = revin.normalize(&x);
        normed.square().mean().backward();
        assert!(revin.params()[0].grad().is_some());
        assert!(revin.params()[1].grad().is_some());
    }
}
