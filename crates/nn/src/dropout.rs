//! Inverted dropout with an owned, seedable RNG.

use std::cell::RefCell;

use timekd_tensor::SeededRng;
use timekd_tensor::{seeded_rng, Tensor};

/// Inverted dropout: at train time zeroes each element with probability `p`
/// and scales survivors by `1/(1−p)`; at eval time it is the identity.
pub struct Dropout {
    p: f32,
    rng: RefCell<SeededRng>,
    training: std::cell::Cell<bool>,
}

impl Dropout {
    /// Creates dropout with rate `p ∈ [0, 1)` and a dedicated RNG seed.
    pub fn new(p: f32, seed: u64) -> Dropout {
        assert!((0.0..1.0).contains(&p), "dropout rate must be in [0, 1)");
        Dropout {
            p,
            rng: RefCell::new(seeded_rng(seed)),
            training: std::cell::Cell::new(true),
        }
    }

    /// Switches between train (mask active) and eval (identity) modes.
    pub fn set_training(&self, training: bool) {
        self.training.set(training);
    }

    /// Applies dropout.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        if !self.training.get() || self.p == 0.0 {
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut rng = self.rng.borrow_mut();
        let mask: Vec<f32> = (0..x.num_elements())
            .map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let mask = Tensor::from_vec(mask, x.shape().clone());
        x.mul(&mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5, 0);
        d.set_training(false);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        assert_eq!(d.forward(&x).to_vec(), x.to_vec());
    }

    #[test]
    fn zero_rate_is_identity_even_in_training() {
        let d = Dropout::new(0.0, 0);
        let x = Tensor::from_vec(vec![1.0, 2.0], [2]);
        assert_eq!(d.forward(&x).to_vec(), x.to_vec());
    }

    #[test]
    fn training_mode_zeroes_and_scales() {
        let d = Dropout::new(0.5, 42);
        let x = Tensor::ones([10_000]);
        let y = d.forward(&x).to_vec();
        let zeros = y.iter().filter(|&&v| v == 0.0).count();
        let kept: Vec<f32> = y.iter().copied().filter(|&v| v != 0.0).collect();
        // Survivors are scaled to 2.0; roughly half are dropped.
        assert!(kept.iter().all(|&v| (v - 2.0).abs() < 1e-6));
        assert!((zeros as f32 / 10_000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn expectation_approximately_preserved() {
        let d = Dropout::new(0.3, 7);
        let x = Tensor::ones([20_000]);
        let y = d.forward(&x).to_vec();
        let mean: f32 = y.iter().sum::<f32>() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gradient_masked_like_forward() {
        let d = Dropout::new(0.5, 3);
        let p = Tensor::param(vec![1.0; 8], [8]);
        let y = d.forward(&p);
        let y_vals = y.to_vec();
        y.sum().backward();
        let g = p.grad().unwrap();
        for (gi, yi) in g.iter().zip(&y_vals) {
            if *yi == 0.0 {
                assert_eq!(*gi, 0.0);
            } else {
                assert!((gi - 2.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn invalid_rate_panics() {
        let _ = Dropout::new(1.0, 0);
    }
}
