//! Optimisers and gradient utilities. The paper trains with AdamW.

use std::collections::HashMap;

use timekd_tensor::Tensor;

/// AdamW hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct AdamWConfig {
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
}

impl Default for AdamWConfig {
    fn default() -> Self {
        AdamWConfig {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
        }
    }
}

struct MomentState {
    m: Vec<f32>,
    v: Vec<f32>,
}

/// Decoupled-weight-decay Adam (Loshchilov & Hutter).
///
/// State is keyed by tensor node id, so one optimizer instance can drive an
/// arbitrary, stable set of parameters.
pub struct AdamW {
    lr: f32,
    config: AdamWConfig,
    step_count: u64,
    state: HashMap<u64, MomentState>,
}

impl AdamW {
    /// Creates an optimizer with learning rate `lr`.
    pub fn new(lr: f32, config: AdamWConfig) -> AdamW {
        AdamW {
            lr,
            config,
            step_count: 0,
            state: HashMap::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// Records one optimizer step that was applied *outside* this
    /// optimizer — e.g. by a compiled training plan's fused update — so
    /// the bias-correction clock stays in sync when dynamic and planned
    /// steps are interleaved on the same schedule.
    pub fn note_external_step(&mut self) {
        self.step_count += 1;
    }

    /// True if this optimizer has ever stepped the parameter with node id
    /// `id`. Lets invariant checks prove frozen parameters were never
    /// touched (moment state is created on first step).
    pub fn has_stepped(&self, id: u64) -> bool {
        self.state.contains_key(&id)
    }

    /// Applies one AdamW update to every parameter that has a gradient,
    /// then leaves gradients untouched (call `zero_grad` before the next
    /// backward).
    pub fn step(&mut self, params: &[Tensor]) {
        let _span = timekd_obs::span("optim.step");
        self.step_count += 1;
        let t = self.step_count as f32;
        let c = self.config;
        let bias1 = 1.0 - c.beta1.powf(t);
        let bias2 = 1.0 - c.beta2.powf(t);
        for p in params {
            let Some(grad) = p.grad() else { continue };
            let n = p.num_elements();
            let state = self.state.entry(p.id()).or_insert_with(|| MomentState {
                m: vec![0.0; n],
                v: vec![0.0; n],
            });
            debug_assert_eq!(state.m.len(), n);
            let lr = self.lr;
            p.update_data(|data| {
                for i in 0..n {
                    let g = grad[i];
                    state.m[i] = c.beta1 * state.m[i] + (1.0 - c.beta1) * g;
                    state.v[i] = c.beta2 * state.v[i] + (1.0 - c.beta2) * g * g;
                    let m_hat = state.m[i] / bias1;
                    let v_hat = state.v[i] / bias2;
                    data[i] -= lr * (m_hat / (v_hat.sqrt() + c.eps) + c.weight_decay * data[i]);
                }
            });
        }
    }
}

/// Plain stochastic gradient descent: `p -= lr · g` for every parameter
/// with a gradient. The minimal dynamic reference point for the planned
/// fused update (`PlanOptimizer::Sgd`).
#[derive(Clone, Copy, Debug)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates an optimizer with learning rate `lr`.
    pub fn new(lr: f32) -> Sgd {
        Sgd { lr }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one descent step to every parameter that has a gradient,
    /// leaving gradients untouched (call `zero_grad` before the next
    /// backward).
    pub fn step(&self, params: &[Tensor]) {
        let _span = timekd_obs::span("optim.step");
        for p in params {
            let Some(grad) = p.grad() else { continue };
            let lr = self.lr;
            p.update_data(|data| {
                for (d, g) in data.iter_mut().zip(&grad) {
                    *d -= lr * g;
                }
            });
        }
    }
}

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(params: &[Tensor], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params {
        if let Some(g) = p.grad() {
            total += g.iter().map(|x| x * x).sum::<f32>();
        }
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            if let Some(mut g) = p.grad() {
                for x in &mut g {
                    *x *= scale;
                }
                p.zero_grad();
                p.accumulate_grad(&g);
            }
        }
    }
    norm
}

/// Simple learning-rate schedules.
#[derive(Clone, Copy, Debug)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Linear warmup for `warmup` steps then cosine decay to `min_factor *
    /// base_lr` over `total` steps.
    WarmupCosine {
        /// Warmup step count.
        warmup: u64,
        /// Total step count of the schedule.
        total: u64,
        /// Final LR as a fraction of the base LR.
        min_factor: f32,
    },
}

impl LrSchedule {
    /// Learning-rate multiplier at `step`.
    pub fn factor(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::WarmupCosine {
                warmup,
                total,
                min_factor,
            } => {
                if warmup > 0 && step < warmup {
                    (step + 1) as f32 / warmup as f32
                } else if step >= total {
                    min_factor
                } else {
                    let progress = (step - warmup) as f32 / (total - warmup).max(1) as f32;
                    let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                    min_factor + (1.0 - min_factor) * cos
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_tensor::seeded_rng;

    #[test]
    fn adamw_minimises_quadratic() {
        let p = Tensor::param(vec![5.0, -3.0], [2]);
        let mut opt = AdamW::new(
            0.1,
            AdamWConfig {
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        for _ in 0..200 {
            p.zero_grad();
            let loss = p.square().sum();
            loss.backward();
            opt.step(std::slice::from_ref(&p));
        }
        assert!(
            p.to_vec().iter().all(|x| x.abs() < 1e-2),
            "{:?}",
            p.to_vec()
        );
    }

    #[test]
    fn sgd_matches_manual_update() {
        let p = Tensor::param(vec![1.0, -2.0], [2]);
        p.accumulate_grad(&[0.5, -0.25]);
        Sgd::new(0.1).step(std::slice::from_ref(&p));
        assert_eq!(p.to_vec(), vec![1.0 - 0.1 * 0.5, -2.0 - 0.1 * (-0.25)]);
    }

    #[test]
    fn sgd_skips_params_without_grad() {
        let p = Tensor::param(vec![3.0], [1]);
        Sgd::new(0.1).step(std::slice::from_ref(&p));
        assert_eq!(p.to_vec(), vec![3.0], "untouched without grad");
    }

    #[test]
    fn adamw_skips_params_without_grad() {
        let p = Tensor::param(vec![1.0], [1]);
        let q = Tensor::param(vec![2.0], [1]);
        let mut opt = AdamW::new(0.1, Default::default());
        p.zero_grad();
        p.square().sum().backward();
        opt.step(&[p.clone(), q.clone()]);
        assert_eq!(q.to_vec(), vec![2.0], "untouched without grad");
        assert_ne!(p.to_vec(), vec![1.0]);
    }

    #[test]
    fn weight_decay_shrinks_idle_direction() {
        // With pure decay (zero gradient on the loss), weights decay.
        let p = Tensor::param(vec![1.0], [1]);
        let mut opt = AdamW::new(
            0.1,
            AdamWConfig {
                weight_decay: 0.5,
                ..Default::default()
            },
        );
        p.accumulate_grad(&[0.0]);
        opt.step(std::slice::from_ref(&p));
        assert!(p.item() < 1.0);
    }

    #[test]
    fn clip_grad_norm_caps_norm() {
        let p = Tensor::param(vec![0.0; 4], [4]);
        p.accumulate_grad(&[3.0, 4.0, 0.0, 0.0]); // norm 5
        let pre = clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        let g = p.grad().unwrap();
        let post: f32 = g.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_noop_below_threshold() {
        let p = Tensor::param(vec![0.0; 2], [2]);
        p.accumulate_grad(&[0.3, 0.4]);
        clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert_eq!(p.grad().unwrap(), vec![0.3, 0.4]);
    }

    #[test]
    fn warmup_cosine_shape() {
        let s = LrSchedule::WarmupCosine {
            warmup: 10,
            total: 110,
            min_factor: 0.1,
        };
        assert!(s.factor(0) < s.factor(5));
        assert!((s.factor(9) - 1.0).abs() < 1e-6);
        assert!(s.factor(50) < 1.0 && s.factor(50) > 0.1);
        assert!((s.factor(1000) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn adamw_trains_linear_regression() {
        let mut rng = seeded_rng(0);
        let true_w = Tensor::from_vec(vec![2.0, -1.0, 0.5], [3, 1]);
        let x = Tensor::randn([32, 3], 1.0, &mut rng);
        let y = x.matmul(&true_w);
        let w = Tensor::zeros_param([3, 1]);
        let mut opt = AdamW::new(
            0.05,
            AdamWConfig {
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        for _ in 0..300 {
            w.zero_grad();
            x.matmul(&w).sub(&y).square().mean().backward();
            opt.step(std::slice::from_ref(&w));
        }
        let learned = w.to_vec();
        for (a, b) in learned.iter().zip([2.0, -1.0, 0.5]) {
            assert!((a - b).abs() < 0.05, "{learned:?}");
        }
    }
}
