//! # timekd-nn
//!
//! Neural-network building blocks on top of [`timekd_tensor`]: linear and
//! embedding layers, layer/reversible-instance normalisation, multi-head
//! attention with differentiable attention-map export, Pre-LN Transformer
//! encoders, dropout, AdamW with LR schedules and the Smooth-L1 / MSE / MAE
//! losses the TimeKD paper uses.
//!
//! ## Example
//!
//! ```
//! use timekd_nn::{Activation, Module, TransformerEncoder};
//! use timekd_tensor::{seeded_rng, Tensor};
//!
//! let mut rng = seeded_rng(0);
//! let enc = TransformerEncoder::new(16, 2, 4, 64, Activation::Relu, &mut rng);
//! let x = Tensor::randn([7, 16], 1.0, &mut rng);
//! let out = enc.forward(&x, None);
//! assert_eq!(out.output.dims(), &[7, 16]);
//! assert_eq!(out.last_attention.dims(), &[7, 7]);
//! ```

mod attention;
mod dropout;
mod encoder;
mod linear;
mod losses;
mod module;
mod norm;
mod optim;
pub mod symbolic;

pub use attention::{causal_mask, AttentionOutput, MultiHeadAttention};
pub use dropout::Dropout;
pub use encoder::{Activation, EncoderLayer, EncoderOutput, FeedForward, TransformerEncoder};
pub use linear::{Embedding, Linear};
pub use losses::{mae_loss, mse_loss, smooth_l1_loss};
pub use module::{collect_params, Module, ParamList};
pub use norm::{LayerNorm, RevIn, RevInStats};
pub use optim::{clip_grad_norm, AdamW, AdamWConfig, LrSchedule, Sgd};
pub use symbolic::{
    sym_smooth_l1_loss, SymAttentionOutput, SymEncoderLayer, SymEncoderOutput, SymFeedForward,
    SymLayerNorm, SymLinear, SymMultiHeadAttention, SymRevIn, SymTransformerEncoder,
};
