//! Multi-head scaled dot-product attention with arbitrary additive masks
//! and differentiable attention-map export.
//!
//! The export matters for TimeKD: correlation distillation (paper Eq. 24)
//! aligns the head-averaged attention matrices of the teacher's privileged
//! Transformer with the student's time-series Transformer, so the student's
//! map must stay in the autograd graph.

use timekd_tensor::SeededRng;
use timekd_tensor::Tensor;

use crate::linear::Linear;
use crate::module::Module;

/// Output of an attention call.
pub struct AttentionOutput {
    /// Attended values, `[T_q, D]`.
    pub output: Tensor,
    /// Head-averaged attention weights, `[T_q, T_k]`, differentiable.
    pub attention: Tensor,
}

/// Multi-head attention (self- or cross-) over rank-2 `[T, D]` inputs.
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    num_heads: usize,
    head_dim: usize,
    dim: usize,
}

impl MultiHeadAttention {
    /// Creates an attention block with `num_heads` heads over width `dim`.
    ///
    /// Panics unless `dim % num_heads == 0`.
    pub fn new(dim: usize, num_heads: usize, rng: &mut SeededRng) -> MultiHeadAttention {
        assert!(
            num_heads > 0 && dim.is_multiple_of(num_heads),
            "dim {dim} not divisible by heads {num_heads}"
        );
        MultiHeadAttention {
            wq: Linear::new_no_bias(dim, dim, rng),
            wk: Linear::new_no_bias(dim, dim, rng),
            wv: Linear::new_no_bias(dim, dim, rng),
            wo: Linear::new_no_bias(dim, dim, rng),
            num_heads,
            head_dim: dim / num_heads,
            dim,
        }
    }

    /// Splits `[T, D]` into `[H, T, dh]`.
    fn split_heads(&self, x: &Tensor) -> Tensor {
        let t = x.dims()[0];
        x.reshape([t, self.num_heads, self.head_dim])
            .permute(&[1, 0, 2])
    }

    /// Merges `[H, T, dh]` back to `[T, D]`.
    fn merge_heads(&self, x: &Tensor) -> Tensor {
        let t = x.dims()[1];
        x.permute(&[1, 0, 2]).reshape([t, self.dim])
    }

    /// Attention with query from `q_in` `[T_q, D]` and key/value from
    /// `kv_in` `[T_k, D]`. `mask` is an optional additive bias `[T_q, T_k]`
    /// applied to the pre-softmax scores (use large negatives to forbid
    /// positions, per the paper's Eq. 4–5).
    ///
    /// The attention core is the fused kernel (`Tensor::fused_attention`):
    /// one graph node for `softmax(QK^T/√dh + mask)V` with head-merge
    /// folded in, plus one node for the differentiable head-averaged map.
    /// [`attend_composed`](Self::attend_composed) keeps the original
    /// op-by-op chain as a reference.
    pub fn attend(&self, q_in: &Tensor, kv_in: &Tensor, mask: Option<&Tensor>) -> AttentionOutput {
        let _span = timekd_obs::span("nn.attention");
        assert_eq!(q_in.shape().rank(), 2, "attention expects [T, D] inputs");
        assert_eq!(kv_in.shape().rank(), 2, "attention expects [T, D] inputs");
        let tq = q_in.dims()[0];
        let tk = kv_in.dims()[0];
        if let Some(m) = mask {
            assert_eq!(m.dims(), &[tq, tk], "mask shape mismatch");
        }
        let q = self.split_heads(&self.wq.forward(q_in)); // [H, Tq, dh]
        let k = self.split_heads(&self.wk.forward(kv_in)); // [H, Tk, dh]
        let v = self.split_heads(&self.wv.forward(kv_in)); // [H, Tk, dh]
        let (ctx, attention) = Tensor::fused_attention(&q, &k, &v, mask);
        let output = self.wo.forward(&ctx);
        AttentionOutput { output, attention }
    }

    /// The pre-fusion reference implementation: the same attention built
    /// from composed autograd ops (matmul / scale / softmax / matmul /
    /// merge). Kept public so equivalence tests and benchmarks can compare
    /// the fused kernel against it; production paths use
    /// [`attend`](Self::attend).
    pub fn attend_composed(
        &self,
        q_in: &Tensor,
        kv_in: &Tensor,
        mask: Option<&Tensor>,
    ) -> AttentionOutput {
        assert_eq!(q_in.shape().rank(), 2, "attention expects [T, D] inputs");
        assert_eq!(kv_in.shape().rank(), 2, "attention expects [T, D] inputs");
        let tq = q_in.dims()[0];
        let tk = kv_in.dims()[0];
        if let Some(m) = mask {
            assert_eq!(m.dims(), &[tq, tk], "mask shape mismatch");
        }
        let q = self.split_heads(&self.wq.forward(q_in)); // [H, Tq, dh]
        let k = self.split_heads(&self.wk.forward(kv_in)); // [H, Tk, dh]
        let v = self.split_heads(&self.wv.forward(kv_in)); // [H, Tk, dh]
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut scores = q.matmul(&k.transpose_last()).mul_scalar(scale); // [H, Tq, Tk]
        if let Some(m) = mask {
            scores = scores.add(m);
        }
        let attn = scores.softmax_last(); // [H, Tq, Tk]
        let ctx = attn.matmul(&v); // [H, Tq, dh]
        let output = self.wo.forward(&self.merge_heads(&ctx));
        let attention = attn.mean_axis(0, false); // [Tq, Tk]
        AttentionOutput { output, attention }
    }

    /// Self-attention shorthand.
    pub fn forward(&self, x: &Tensor, mask: Option<&Tensor>) -> AttentionOutput {
        self.attend(x, x, mask)
    }

    /// Number of heads.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Model width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Module for MultiHeadAttention {
    fn params(&self) -> Vec<Tensor> {
        let mut v = self.wq.params();
        v.extend(self.wk.params());
        v.extend(self.wv.params());
        v.extend(self.wo.params());
        v
    }
}

/// Builds a causal (lower-triangular) additive mask of size `[t, t]` with
/// `-1e9` above the diagonal.
pub fn causal_mask(t: usize) -> Tensor {
    let mut data = vec![0.0f32; t * t];
    for i in 0..t {
        for j in (i + 1)..t {
            data[i * t + j] = -1e9;
        }
    }
    Tensor::from_vec(data, [t, t])
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_tensor::seeded_rng;

    #[test]
    fn output_shapes() {
        let mut rng = seeded_rng(0);
        let mha = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Tensor::randn([5, 8], 1.0, &mut rng);
        let out = mha.forward(&x, None);
        assert_eq!(out.output.dims(), &[5, 8]);
        assert_eq!(out.attention.dims(), &[5, 5]);
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let mut rng = seeded_rng(1);
        let mha = MultiHeadAttention::new(8, 4, &mut rng);
        let x = Tensor::randn([6, 8], 1.0, &mut rng);
        let out = mha.forward(&x, None);
        let a = out.attention.to_vec();
        for r in 0..6 {
            let s: f32 = a[r * 6..(r + 1) * 6].iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn causal_mask_blocks_future() {
        let mut rng = seeded_rng(2);
        let mha = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Tensor::randn([4, 8], 1.0, &mut rng);
        let mask = causal_mask(4);
        let out = mha.forward(&x, Some(&mask));
        let a = out.attention.to_vec();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(
                    a[i * 4 + j] < 1e-6,
                    "future position attended: {}",
                    a[i * 4 + j]
                );
            }
        }
    }

    #[test]
    fn causal_first_token_unaffected_by_later_tokens() {
        let mut rng = seeded_rng(3);
        let mha = MultiHeadAttention::new(8, 2, &mut rng);
        let x1 = Tensor::randn([4, 8], 1.0, &mut rng);
        // Perturb only the last token.
        let mut data = x1.to_vec();
        for v in data[24..32].iter_mut() {
            *v += 5.0;
        }
        let x2 = Tensor::from_vec(data, [4, 8]);
        let m = causal_mask(4);
        let y1 = mha.forward(&x1, Some(&m)).output.to_vec();
        let y2 = mha.forward(&x2, Some(&m)).output.to_vec();
        // Tokens 0..3 outputs identical; token 3 differs.
        assert_eq!(&y1[0..24], &y2[0..24]);
        assert_ne!(&y1[24..32], &y2[24..32]);
    }

    #[test]
    fn cross_attention_shapes() {
        let mut rng = seeded_rng(4);
        let mha = MultiHeadAttention::new(8, 2, &mut rng);
        let q = Tensor::randn([3, 8], 1.0, &mut rng);
        let kv = Tensor::randn([7, 8], 1.0, &mut rng);
        let out = mha.attend(&q, &kv, None);
        assert_eq!(out.output.dims(), &[3, 8]);
        assert_eq!(out.attention.dims(), &[3, 7]);
    }

    #[test]
    fn attention_map_is_differentiable() {
        let mut rng = seeded_rng(5);
        let mha = MultiHeadAttention::new(4, 1, &mut rng);
        let x = Tensor::randn([3, 4], 1.0, &mut rng);
        let out = mha.forward(&x, None);
        // A loss on the attention map must reach the projections — this is
        // exactly what correlation distillation does.
        out.attention.square().mean().backward();
        assert!(mha.params()[0].grad().is_some(), "wq got no gradient");
        assert!(mha.params()[1].grad().is_some(), "wk got no gradient");
    }

    #[test]
    fn grad_check_through_attention() {
        let mut rng = seeded_rng(6);
        let mha = MultiHeadAttention::new(4, 2, &mut rng);
        let x = Tensor::randn([3, 4], 1.0, &mut rng);
        let wq = mha.params()[0].clone();
        timekd_tensor::assert_gradients_close(
            &wq,
            || mha.forward(&x, None).output.square().mean(),
            2e-2,
        );
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_heads_panic() {
        let mut rng = seeded_rng(0);
        let _ = MultiHeadAttention::new(6, 4, &mut rng);
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol,
                "{what}: index {i}: {x} vs {y} (tol {tol})"
            );
        }
    }

    /// Forward and backward equivalence of the fused `attend` against the
    /// composed reference, per satellite spec: multiple head counts,
    /// rectangular `T_q != T_k`, and causal / dense additive masks.
    #[test]
    fn fused_matches_composed_across_configs() {
        for (seed, heads, tq, tk, masked) in [
            (10u64, 1usize, 4usize, 4usize, false),
            (11, 2, 3, 7, false),
            (12, 4, 6, 6, true), // causal (square only)
            (13, 2, 5, 3, false),
        ] {
            let mut rng = seeded_rng(seed);
            let mha = MultiHeadAttention::new(8, heads, &mut rng);
            let q_in = Tensor::randn([tq, 8], 1.0, &mut rng);
            let kv_in = Tensor::randn([tk, 8], 1.0, &mut rng);
            let mask = if masked { Some(causal_mask(tq)) } else { None };

            let run = |fused: bool| {
                for p in mha.params() {
                    p.zero_grad();
                }
                let out = if fused {
                    mha.attend(&q_in, &kv_in, mask.as_ref())
                } else {
                    mha.attend_composed(&q_in, &kv_in, mask.as_ref())
                };
                out.output
                    .square()
                    .sum()
                    .add(&out.attention.square().sum())
                    .backward();
                let grads: Vec<Vec<f32>> = mha
                    .params()
                    .iter()
                    .map(|p| p.grad().expect("param missing grad"))
                    .collect();
                (out.output.to_vec(), out.attention.to_vec(), grads)
            };
            let (fo, fm, fg) = run(true);
            let (co, cm, cg) = run(false);
            let tag = format!("heads={heads} tq={tq} tk={tk} masked={masked}");
            assert_close(&fo, &co, 1e-4, &format!("{tag} output"));
            assert_close(&fm, &cm, 1e-4, &format!("{tag} map"));
            for (gi, (f, c)) in fg.iter().zip(&cg).enumerate() {
                assert_close(f, c, 1e-3, &format!("{tag} grad[{gi}]"));
            }
        }
    }

    /// Dense random additive mask (not just causal) through both paths.
    #[test]
    fn fused_matches_composed_with_additive_mask() {
        let mut rng = seeded_rng(14);
        let mha = MultiHeadAttention::new(8, 2, &mut rng);
        let q_in = Tensor::randn([4, 8], 1.0, &mut rng);
        let kv_in = Tensor::randn([6, 8], 1.0, &mut rng);
        let mask = Tensor::randn([4, 6], 1.0, &mut rng);
        let f = mha.attend(&q_in, &kv_in, Some(&mask));
        let c = mha.attend_composed(&q_in, &kv_in, Some(&mask));
        assert_close(&f.output.to_vec(), &c.output.to_vec(), 1e-4, "output");
        assert_close(&f.attention.to_vec(), &c.attention.to_vec(), 1e-4, "map");
    }

    /// Grad-checks every projection (wq/wk/wv/wo) through the fused path,
    /// with a loss that mixes the output and the attention map.
    #[test]
    fn grad_check_all_projections_through_fused() {
        let mut rng = seeded_rng(15);
        let mha = MultiHeadAttention::new(4, 2, &mut rng);
        let x = Tensor::randn([3, 4], 1.0, &mut rng);
        for (i, p) in mha.params().iter().enumerate() {
            timekd_tensor::assert_gradients_close(
                p,
                || {
                    let out = mha.forward(&x, None);
                    out.output
                        .square()
                        .mean()
                        .add(&out.attention.square().mean())
                },
                2e-2,
            );
            let _ = i;
        }
    }
}
