//! Parameter registry and checkpointing shared by every layer.

use timekd_tensor::bytes::{Bytes, BytesMut};
use timekd_tensor::io::{decode_tensor, encode_tensor, DecodeError};
use timekd_tensor::Tensor;

/// Anything that owns trainable parameters.
pub trait Module {
    /// All trainable parameters, in a stable order (used by the optimizer
    /// and by checkpointing).
    fn params(&self) -> Vec<Tensor>;

    /// Total number of trainable scalar parameters.
    fn num_params(&self) -> usize {
        self.params().iter().map(Tensor::num_elements).sum()
    }

    /// Clears gradients of all parameters.
    fn zero_grad(&self) {
        for p in self.params() {
            p.zero_grad();
        }
    }

    /// Serialises all parameter tensors into one blob.
    fn save_params(&self) -> Bytes {
        let mut buf = BytesMut::new();
        for p in self.params() {
            buf.extend_from_slice(&encode_tensor(&p));
        }
        buf.freeze()
    }

    /// Restores parameter values from a blob produced by
    /// [`Module::save_params`] on an identically shaped module.
    fn load_params(&self, blob: &mut Bytes) -> Result<(), DecodeError> {
        for p in self.params() {
            let loaded = decode_tensor(blob)?;
            if loaded.dims() != p.dims() {
                return Err(DecodeError::BadShape);
            }
            p.copy_from_slice(&loaded.data());
        }
        Ok(())
    }
}

/// A plain bag of parameters (for ad-hoc composites).
pub struct ParamList(pub Vec<Tensor>);

impl Module for ParamList {
    fn params(&self) -> Vec<Tensor> {
        self.0.clone()
    }
}

/// Concatenates the parameters of several modules.
pub fn collect_params(modules: &[&dyn Module]) -> Vec<Tensor> {
    let mut out = Vec::new();
    for m in modules {
        out.extend(m.params());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_params_counts_scalars() {
        let list = ParamList(vec![Tensor::zeros_param([2, 3]), Tensor::zeros_param([4])]);
        assert_eq!(list.num_params(), 10);
    }

    #[test]
    fn zero_grad_clears() {
        let p = Tensor::zeros_param([2]);
        p.accumulate_grad(&[1.0, 1.0]);
        let list = ParamList(vec![p.clone()]);
        list.zero_grad();
        assert!(p.grad().is_none());
    }

    #[test]
    fn save_load_round_trip() {
        let a = Tensor::param(vec![1.0, 2.0, 3.0], [3]);
        let list = ParamList(vec![a.clone()]);
        let mut blob = list.save_params();

        let b = Tensor::zeros_param([3]);
        let list2 = ParamList(vec![b.clone()]);
        list2.load_params(&mut blob).unwrap();
        assert_eq!(b.to_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn load_shape_mismatch_rejected() {
        let a = Tensor::param(vec![1.0; 4], [4]);
        let mut blob = ParamList(vec![a]).save_params();
        let b = Tensor::zeros_param([2, 2]);
        let err = ParamList(vec![b]).load_params(&mut blob).unwrap_err();
        assert_eq!(err, DecodeError::BadShape);
    }
}
