//! Position-wise feed-forward networks and the Pre-LN Transformer encoder
//! (Xiong et al. 2020) used by both `PTEncoder` and `TSTEncoder` in the
//! paper (Eq. 10–14 and 19–21).

use timekd_tensor::SeededRng;
use timekd_tensor::Tensor;

use crate::attention::MultiHeadAttention;
use crate::linear::Linear;
use crate::module::Module;
use crate::norm::LayerNorm;

/// Activation used inside feed-forward blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// `max(0, x)` — the paper's FFN (Eq. 7).
    Relu,
    /// GELU — the GPT backbone convention.
    Gelu,
}

/// Two-layer position-wise FFN: `act(x W₁ + b₁) W₂ + b₂`.
pub struct FeedForward {
    fc1: Linear,
    fc2: Linear,
    activation: Activation,
}

impl FeedForward {
    /// FFN expanding `dim` to `hidden` and back.
    pub fn new(
        dim: usize,
        hidden: usize,
        activation: Activation,
        rng: &mut SeededRng,
    ) -> FeedForward {
        FeedForward {
            fc1: Linear::new(dim, hidden, rng),
            fc2: Linear::new(hidden, dim, rng),
            activation,
        }
    }

    /// Applies the FFN to the last axis.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let h = self.fc1.forward(x);
        let h = match self.activation {
            Activation::Relu => h.relu(),
            Activation::Gelu => h.gelu(),
        };
        self.fc2.forward(&h)
    }
}

impl Module for FeedForward {
    fn params(&self) -> Vec<Tensor> {
        let mut v = self.fc1.params();
        v.extend(self.fc2.params());
        v
    }
}

/// One Pre-LN encoder layer:
/// `y = x + Att(LN(x))`, `z = y + FFN(LN(y))`.
pub struct EncoderLayer {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    ffn: FeedForward,
}

/// Output of an encoder forward pass.
pub struct EncoderOutput {
    /// Encoded sequence `[T, D]`.
    pub output: Tensor,
    /// Head-averaged attention of the **last** layer, `[T, T]`,
    /// differentiable (consumed by correlation distillation).
    pub last_attention: Tensor,
}

impl EncoderLayer {
    /// Creates one layer with `num_heads` heads and an FFN hidden width of
    /// `ffn_hidden`.
    pub fn new(
        dim: usize,
        num_heads: usize,
        ffn_hidden: usize,
        activation: Activation,
        rng: &mut SeededRng,
    ) -> EncoderLayer {
        EncoderLayer {
            ln1: LayerNorm::new(dim),
            attn: MultiHeadAttention::new(dim, num_heads, rng),
            ln2: LayerNorm::new(dim),
            ffn: FeedForward::new(dim, ffn_hidden, activation, rng),
        }
    }

    /// Applies the layer; returns the output and this layer's attention map.
    pub fn forward(&self, x: &Tensor, mask: Option<&Tensor>) -> (Tensor, Tensor) {
        let attended = self.attn.forward(&self.ln1.forward(x), mask);
        let y = attended.output.add(x);
        let z = self.ffn.forward(&self.ln2.forward(&y)).add(&y);
        (z, attended.attention)
    }
}

impl Module for EncoderLayer {
    fn params(&self) -> Vec<Tensor> {
        let mut v = self.ln1.params();
        v.extend(self.attn.params());
        v.extend(self.ln2.params());
        v.extend(self.ffn.params());
        v
    }
}

/// Stack of Pre-LN encoder layers with a final layer norm.
///
/// This is the shared architecture of the paper's `PTEncoder` (teacher) and
/// `TSTEncoder` (student); both are "lightweight Pre-LN Transformer
/// encoders" with identical structure (§IV-A).
pub struct TransformerEncoder {
    layers: Vec<EncoderLayer>,
    final_ln: LayerNorm,
    dim: usize,
}

impl TransformerEncoder {
    /// Creates a stack of `num_layers` encoder layers of width `dim`.
    pub fn new(
        dim: usize,
        num_layers: usize,
        num_heads: usize,
        ffn_hidden: usize,
        activation: Activation,
        rng: &mut SeededRng,
    ) -> TransformerEncoder {
        assert!(num_layers > 0, "encoder needs at least one layer");
        TransformerEncoder {
            layers: (0..num_layers)
                .map(|_| EncoderLayer::new(dim, num_heads, ffn_hidden, activation, rng))
                .collect(),
            final_ln: LayerNorm::new(dim),
            dim,
        }
    }

    /// Encodes `x` `[T, D]`; exports the last layer's attention map.
    pub fn forward(&self, x: &Tensor, mask: Option<&Tensor>) -> EncoderOutput {
        let _span = timekd_obs::span("nn.encoder");
        let mut h = x.clone();
        let mut last_attention = None;
        for layer in &self.layers {
            let (out, attn) = layer.forward(&h, mask);
            h = out;
            last_attention = Some(attn);
        }
        EncoderOutput {
            output: self.final_ln.forward(&h),
            last_attention: last_attention.expect("at least one layer"),
        }
    }

    /// Model width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

impl Module for TransformerEncoder {
    fn params(&self) -> Vec<Tensor> {
        let mut v = Vec::new();
        for l in &self.layers {
            v.extend(l.params());
        }
        v.extend(self.final_ln.params());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_tensor::seeded_rng;

    #[test]
    fn ffn_shapes_and_relu_kink() {
        let mut rng = seeded_rng(0);
        let ffn = FeedForward::new(4, 16, Activation::Relu, &mut rng);
        let x = Tensor::randn([5, 4], 1.0, &mut rng);
        assert_eq!(ffn.forward(&x).dims(), &[5, 4]);
    }

    #[test]
    fn encoder_preserves_shape() {
        let mut rng = seeded_rng(1);
        let enc = TransformerEncoder::new(8, 2, 2, 32, Activation::Relu, &mut rng);
        let x = Tensor::randn([6, 8], 1.0, &mut rng);
        let out = enc.forward(&x, None);
        assert_eq!(out.output.dims(), &[6, 8]);
        assert_eq!(out.last_attention.dims(), &[6, 6]);
    }

    #[test]
    fn encoder_param_count_scales_with_layers() {
        let mut rng = seeded_rng(2);
        let e1 = TransformerEncoder::new(8, 1, 2, 32, Activation::Relu, &mut rng);
        let e2 = TransformerEncoder::new(8, 2, 2, 32, Activation::Relu, &mut rng);
        let per_layer = e1.num_params() - 16; // minus final LN (2*8)
        assert_eq!(e2.num_params(), 2 * per_layer + 16);
    }

    #[test]
    fn residual_path_dominates_at_init() {
        // With Pre-LN and small init, output should stay correlated with
        // input (the residual stream), not explode.
        let mut rng = seeded_rng(3);
        let enc = TransformerEncoder::new(8, 2, 2, 16, Activation::Gelu, &mut rng);
        let x = Tensor::randn([4, 8], 1.0, &mut rng);
        let y = enc.forward(&x, None).output;
        assert!(y.max_value().is_finite());
        assert!(y.to_vec().iter().all(|v| v.abs() < 50.0));
    }

    #[test]
    fn training_reduces_loss_on_toy_regression() {
        // Sanity: one encoder + readout can fit a fixed random mapping.
        let mut rng = seeded_rng(4);
        let enc = TransformerEncoder::new(8, 1, 2, 16, Activation::Relu, &mut rng);
        let head = crate::linear::Linear::new(8, 1, &mut rng);
        let x = Tensor::randn([6, 8], 1.0, &mut rng);
        let target = Tensor::randn([6, 1], 1.0, &mut rng);
        let mut params = enc.params();
        params.extend(head.params());
        let mut opt = crate::optim::AdamW::new(0.01, Default::default());
        let loss0 = {
            let out = enc.forward(&x, None);
            head.forward(&out.output)
                .sub(&target)
                .square()
                .mean()
                .item()
        };
        for _ in 0..60 {
            let out = enc.forward(&x, None);
            let loss = head.forward(&out.output).sub(&target).square().mean();
            for p in &params {
                p.zero_grad();
            }
            loss.backward();
            opt.step(&params);
        }
        let loss1 = {
            let out = enc.forward(&x, None);
            head.forward(&out.output)
                .sub(&target)
                .square()
                .mean()
                .item()
        };
        assert!(loss1 < loss0 * 0.5, "loss {loss0} -> {loss1}");
    }

    #[test]
    fn attention_export_differentiable_through_stack() {
        let mut rng = seeded_rng(5);
        let enc = TransformerEncoder::new(8, 2, 2, 16, Activation::Relu, &mut rng);
        let x = Tensor::randn([4, 8], 1.0, &mut rng);
        let out = enc.forward(&x, None);
        out.last_attention.square().mean().backward();
        // Gradients must reach at least the first layer's parameters.
        assert!(enc.params().iter().any(|p| p.grad().is_some()));
    }
}
