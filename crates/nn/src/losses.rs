//! Loss functions used across the TimeKD pipeline.
//!
//! Every TimeKD objective — reconstruction (Eq. 16), correlation
//! distillation (Eq. 24), feature distillation (Eq. 25) and forecasting
//! (Eq. 29) — is a mean Smooth-L1; MSE/MAE are the paper's evaluation
//! metrics (Eq. 31–32).

use timekd_tensor::Tensor;

/// Mean Smooth-L1 (Huber, δ=1) between `pred` and `target` (Eq. 16/17).
pub fn smooth_l1_loss(pred: &Tensor, target: &Tensor) -> Tensor {
    assert_eq!(
        pred.dims(),
        target.dims(),
        "smooth_l1_loss: shape mismatch {} vs {}",
        pred.shape(),
        target.shape()
    );
    pred.smooth_l1(target).mean()
}

/// Mean squared error (Eq. 31).
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> Tensor {
    assert_eq!(pred.dims(), target.dims(), "mse_loss: shape mismatch");
    pred.sub(target).square().mean()
}

/// Mean absolute error (Eq. 32).
pub fn mae_loss(pred: &Tensor, target: &Tensor) -> Tensor {
    assert_eq!(pred.dims(), target.dims(), "mae_loss: shape mismatch");
    pred.sub(target).abs().mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_l1_below_mse_for_outliers() {
        let pred = Tensor::from_vec(vec![10.0], [1]);
        let target = Tensor::zeros([1]);
        let huber = smooth_l1_loss(&pred, &target).item();
        let mse = mse_loss(&pred, &target).item();
        assert!(huber < mse);
        assert!((huber - 9.5).abs() < 1e-6);
    }

    #[test]
    fn smooth_l1_equals_half_mse_in_small_regime() {
        let pred = Tensor::from_vec(vec![0.2, -0.4], [2]);
        let target = Tensor::zeros([2]);
        let huber = smooth_l1_loss(&pred, &target).item();
        let mse = mse_loss(&pred, &target).item();
        assert!((huber - 0.5 * mse).abs() < 1e-6);
    }

    #[test]
    fn zero_at_perfect_prediction() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], [3]);
        assert_eq!(smooth_l1_loss(&t, &t).item(), 0.0);
        assert_eq!(mse_loss(&t, &t).item(), 0.0);
        assert_eq!(mae_loss(&t, &t).item(), 0.0);
    }

    #[test]
    fn mae_is_l1() {
        let pred = Tensor::from_vec(vec![1.0, -1.0, 2.0, 0.0], [4]);
        let target = Tensor::zeros([4]);
        assert_eq!(mae_loss(&pred, &target).item(), 1.0);
    }

    #[test]
    fn gradients_flow_from_all_losses() {
        let p = Tensor::param(vec![0.5, 2.0], [2]);
        let t = Tensor::zeros([2]);
        for loss in [smooth_l1_loss(&p, &t), mse_loss(&p, &t), mae_loss(&p, &t)] {
            p.zero_grad();
            loss.backward();
            assert!(p.grad().is_some());
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        let _ = smooth_l1_loss(&a, &b);
    }
}
