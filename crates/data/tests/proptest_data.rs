//! Randomised property tests for the data substrate: scalers, windows,
//! metrics and prompt invariants over random inputs.

use timekd_data::{
    ground_truth_prompt, historical_prompt, mae, mse, DatasetKind, MetricAccumulator, PromptConfig,
    Split, SplitDataset, StandardScaler,
};
use timekd_lm::{Modality, PromptTokenizer};
use timekd_tensor::{seeded_rng, SeededRng, Tensor};

const CASES: u64 = 32;

fn finite_series(rng: &mut SeededRng, min_len: usize) -> Vec<f32> {
    let len = rng.gen_range(min_len..min_len + 40);
    (0..len).map(|_| rng.gen_range(-1e3f32..1e3)).collect()
}

#[test]
fn scaler_round_trip() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let data = finite_series(&mut rng, 8);
        let n = 2;
        let trimmed = &data[..data.len() - data.len() % n];
        let scaler = StandardScaler::fit(trimmed, n);
        let mut d = trimmed.to_vec();
        scaler.transform(&mut d);
        scaler.inverse_transform(&mut d);
        for (a, b) in d.iter().zip(trimmed) {
            let scale = b.abs().max(1.0);
            assert!((a - b).abs() / scale < 1e-3, "seed {seed}: {a} vs {b}");
        }
    }
}

#[test]
fn scaler_never_produces_nan() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let data = finite_series(&mut rng, 4);
        let scaler = StandardScaler::fit(&data, 1);
        let mut d = data.clone();
        scaler.transform(&mut d);
        assert!(d.iter().all(|v| v.is_finite()), "seed {seed}");
    }
}

#[test]
fn mse_mae_relationship() {
    // RMSE >= MAE always (Cauchy–Schwarz).
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let a = finite_series(&mut rng, 4);
        let n = a.len();
        let pred = Tensor::from_vec(a, [n]);
        let target = Tensor::zeros([n]);
        let rmse = mse(&pred, &target).sqrt();
        let l1 = mae(&pred, &target);
        assert!(rmse + 1e-4 >= l1, "seed {seed}: rmse {rmse} < mae {l1}");
    }
}

#[test]
fn accumulator_order_independent() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let a = finite_series(&mut rng, 6);
        let n = a.len();
        let pred = Tensor::from_vec(a.clone(), [n]);
        let target = Tensor::zeros([n]);
        let mut fwd = MetricAccumulator::new();
        fwd.update(&pred, &target);
        let mut rev = MetricAccumulator::new();
        let rev_pred = Tensor::from_vec(a.iter().rev().copied().collect::<Vec<_>>(), [n]);
        rev.update(&rev_pred, &target);
        assert!((fwd.mse() - rev.mse()).abs() < 1e-5, "seed {seed}");
        assert!((fwd.mae() - rev.mae()).abs() < 1e-5, "seed {seed}");
    }
}

#[test]
fn windows_have_exact_geometry() {
    for seed in 0..12 {
        let mut rng = seeded_rng(seed);
        let input_len = rng.gen_range(8usize..24);
        let horizon = rng.gen_range(4usize..12);
        let ds = SplitDataset::new(DatasetKind::EttH1, 400, seed, input_len, horizon);
        for split in [Split::Train, Split::Val, Split::Test] {
            for w in ds.windows(split, 7) {
                assert_eq!(w.x.dims(), &[input_len, 7], "seed {seed}");
                assert_eq!(w.y.dims(), &[horizon, 7], "seed {seed}");
            }
        }
    }
}

#[test]
fn window_fraction_monotone() {
    for seed in 0..12 {
        let mut rng = seeded_rng(seed);
        let frac = rng.gen_range(0.1f32..1.0);
        let ds = SplitDataset::new(DatasetKind::Exchange, 400, seed, 16, 8);
        let some = ds.windows_with(Split::Train, 1, frac).len();
        let all = ds.windows(Split::Train, 1).len();
        assert!(some <= all, "seed {seed}");
        assert!(some >= 1, "seed {seed}");
    }
}

#[test]
fn prompts_always_in_vocabulary() {
    let tok = PromptTokenizer::new();
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let values = finite_series(&mut rng, 4);
        let horizon = rng.gen_range(1usize..64);
        let cfg = PromptConfig {
            max_history: 8,
            max_future: 8,
            freq_minutes: 15,
        };
        let hp = historical_prompt(&tok, &values, horizon, &cfg);
        let gp = ground_truth_prompt(&tok, &values, &values, &cfg);
        assert!(hp.iter().all(|t| t.id < tok.vocab_size()), "seed {seed}");
        assert!(gp.iter().all(|t| t.id < tok.vocab_size()), "seed {seed}");
        // Both prompts carry numeric content.
        assert!(
            hp.iter().any(|t| t.modality == Modality::Numeric),
            "seed {seed}"
        );
        assert!(
            gp.iter().any(|t| t.modality == Modality::Numeric),
            "seed {seed}"
        );
    }
}

#[test]
fn prompt_length_bounded_by_config() {
    // Token count must be bounded regardless of the raw series length:
    // that bound is what makes CLM costs independent of H.
    let tok = PromptTokenizer::new();
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let values = finite_series(&mut rng, 4);
        let cfg = PromptConfig {
            max_history: 6,
            max_future: 6,
            freq_minutes: 60,
        };
        let hp = historical_prompt(&tok, &values, 96, &cfg);
        // Each value ≤ ~12 tokens (sign + 7 digits + dp + frac + comma),
        // plus a fixed template overhead.
        assert!(
            hp.len() < 6 * 14 + 40,
            "seed {seed}: prompt too long: {}",
            hp.len()
        );
    }
}

#[test]
fn generated_data_always_finite() {
    for seed in 0..16 {
        let mut rng = seeded_rng(seed);
        let steps = rng.gen_range(50usize..300);
        for kind in [
            DatasetKind::EttM2,
            DatasetKind::Weather,
            DatasetKind::Pems04,
        ] {
            let raw = timekd_data::generate(kind, steps, seed);
            assert!(
                raw.values.iter().all(|v| v.is_finite()),
                "seed {seed} {kind:?}"
            );
        }
    }
}
