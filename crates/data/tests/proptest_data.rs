//! Property-based tests for the data substrate: scalers, windows, metrics
//! and prompt invariants over random inputs.

use proptest::prelude::*;
use timekd_data::{
    ground_truth_prompt, historical_prompt, mae, mse, DatasetKind, MetricAccumulator,
    PromptConfig, Split, SplitDataset, StandardScaler,
};
use timekd_lm::{Modality, PromptTokenizer};
use timekd_tensor::Tensor;

fn finite_series(min_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1e3f32..1e3, min_len..min_len + 40)
}

proptest! {
    #[test]
    fn scaler_round_trip(data in finite_series(8)) {
        let n = 2;
        let trimmed = &data[..data.len() - data.len() % n];
        let scaler = StandardScaler::fit(trimmed, n);
        let mut d = trimmed.to_vec();
        scaler.transform(&mut d);
        scaler.inverse_transform(&mut d);
        for (a, b) in d.iter().zip(trimmed) {
            let scale = b.abs().max(1.0);
            prop_assert!((a - b).abs() / scale < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn scaler_never_produces_nan(data in finite_series(4)) {
        let scaler = StandardScaler::fit(&data, 1);
        let mut d = data.clone();
        scaler.transform(&mut d);
        prop_assert!(d.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn mse_mae_relationship(a in finite_series(4)) {
        // RMSE >= MAE always (Cauchy–Schwarz).
        let n = a.len();
        let pred = Tensor::from_vec(a.clone(), [n]);
        let target = Tensor::zeros([n]);
        let rmse = mse(&pred, &target).sqrt();
        let l1 = mae(&pred, &target);
        prop_assert!(rmse + 1e-4 >= l1, "rmse {rmse} < mae {l1}");
    }

    #[test]
    fn accumulator_order_independent(a in finite_series(6)) {
        let n = a.len();
        let pred = Tensor::from_vec(a.clone(), [n]);
        let target = Tensor::zeros([n]);
        let mut fwd = MetricAccumulator::new();
        fwd.update(&pred, &target);
        let mut rev = MetricAccumulator::new();
        let rev_pred = Tensor::from_vec(a.iter().rev().copied().collect::<Vec<_>>(), [n]);
        rev.update(&rev_pred, &target);
        prop_assert!((fwd.mse() - rev.mse()).abs() < 1e-5);
        prop_assert!((fwd.mae() - rev.mae()).abs() < 1e-5);
    }

    #[test]
    fn windows_have_exact_geometry(
        seed in 0u64..100,
        input_len in 8usize..24,
        horizon in 4usize..12,
    ) {
        let ds = SplitDataset::new(DatasetKind::EttH1, 400, seed, input_len, horizon);
        for split in [Split::Train, Split::Val, Split::Test] {
            for w in ds.windows(split, 7) {
                prop_assert_eq!(w.x.dims(), &[input_len, 7]);
                prop_assert_eq!(w.y.dims(), &[horizon, 7]);
            }
        }
    }

    #[test]
    fn window_fraction_monotone(seed in 0u64..50, frac in 0.1f32..1.0) {
        let ds = SplitDataset::new(DatasetKind::Exchange, 400, seed, 16, 8);
        let some = ds.windows_with(Split::Train, 1, frac).len();
        let all = ds.windows(Split::Train, 1).len();
        prop_assert!(some <= all);
        prop_assert!(some >= 1);
    }

    #[test]
    fn prompts_always_in_vocabulary(values in finite_series(4), horizon in 1usize..64) {
        let tok = PromptTokenizer::new();
        let cfg = PromptConfig { max_history: 8, max_future: 8, freq_minutes: 15 };
        let hp = historical_prompt(&tok, &values, horizon, &cfg);
        let gp = ground_truth_prompt(&tok, &values, &values, &cfg);
        prop_assert!(hp.iter().all(|t| t.id < tok.vocab_size()));
        prop_assert!(gp.iter().all(|t| t.id < tok.vocab_size()));
        // Both prompts carry numeric content.
        prop_assert!(hp.iter().any(|t| t.modality == Modality::Numeric));
        prop_assert!(gp.iter().any(|t| t.modality == Modality::Numeric));
    }

    #[test]
    fn prompt_length_bounded_by_config(values in finite_series(4)) {
        // Token count must be bounded regardless of the raw series length:
        // that bound is what makes CLM costs independent of H.
        let tok = PromptTokenizer::new();
        let cfg = PromptConfig { max_history: 6, max_future: 6, freq_minutes: 60 };
        let hp = historical_prompt(&tok, &values, 96, &cfg);
        // Each value ≤ ~12 tokens (sign + 7 digits + dp + frac + comma),
        // plus a fixed template overhead.
        prop_assert!(hp.len() < 6 * 14 + 40, "prompt too long: {}", hp.len());
    }

    #[test]
    fn generated_data_always_finite(seed in 0u64..200, steps in 50usize..300) {
        for kind in [DatasetKind::EttM2, DatasetKind::Weather, DatasetKind::Pems04] {
            let raw = timekd_data::generate(kind, steps, seed);
            prop_assert!(raw.values.iter().all(|v| v.is_finite()), "{kind:?}");
        }
    }
}
