//! Prompt templating (paper Fig. 2 and Definition 2).
//!
//! Each variable of a window is rendered into:
//! - a **historical prompt** — "From ⟨t−H+1⟩ to ⟨t⟩, values were ⟨h…⟩ every
//!   ⟨f⟩ minutes. Forecast the next ⟨M⟩ minutes" (Fig. 2b), and
//! - a **ground-truth prompt** — the same prefix followed by "Next ⟨M⟩
//!   minutes: ⟨g…⟩" (Fig. 2a), which exists only at training time and is
//!   the privileged information of the LUPI teacher.

use timekd_lm::{PromptPiece, PromptTokenizer, Token};
use timekd_tensor::Tensor;

/// Controls prompt rendering.
#[derive(Clone, Copy, Debug)]
pub struct PromptConfig {
    /// Maximum number of history values embedded per prompt. Real prompts
    /// carry all `H` values; at CPU scale the most recent `max_history`
    /// values preserve the prompt structure at tractable token counts.
    pub max_history: usize,
    /// Maximum number of future values in a ground-truth prompt.
    pub max_future: usize,
    /// Sampling period in minutes (the ⟨f⟩ slot).
    pub freq_minutes: usize,
}

impl Default for PromptConfig {
    fn default() -> Self {
        PromptConfig {
            max_history: 16,
            max_future: 16,
            freq_minutes: 60,
        }
    }
}

/// At most `cap` values, evenly spaced across the whole slice and always
/// including the first and last elements.
///
/// Evenly-spaced subsampling preserves the *global* shape of the series —
/// trend and the position within the daily cycle — which is what the
/// teacher needs to reconstruct the full horizon; a contiguous head/tail
/// of the same budget would only describe one corner of the window.
fn subsample(values: &[f32], cap: usize) -> Vec<f32> {
    assert!(cap > 0, "subsample cap must be positive");
    if values.len() <= cap {
        return values.to_vec();
    }
    let n = values.len();
    (0..cap)
        .map(|i| {
            let idx = (i as f32 * (n - 1) as f32 / (cap - 1) as f32).round() as usize;
            values[idx.min(n - 1)]
        })
        .collect()
}

fn shared_prefix(history: &[f32], horizon: usize, config: &PromptConfig) -> Vec<PromptPiece> {
    let mut pieces = vec![
        PromptPiece::Word("from"),
        PromptPiece::Number(1.0),
        PromptPiece::Word("to"),
        PromptPiece::Number(history.len() as f32),
        PromptPiece::Word(","),
        PromptPiece::Word("values"),
        PromptPiece::Word("were"),
    ];
    for &v in &subsample(history, config.max_history) {
        pieces.push(PromptPiece::Number(v));
        pieces.push(PromptPiece::Word(","));
    }
    pieces.push(PromptPiece::Word("every"));
    pieces.push(PromptPiece::Number(config.freq_minutes as f32));
    pieces.push(PromptPiece::Word("minutes"));
    pieces.push(PromptPiece::Word("."));
    let _ = horizon;
    pieces
}

/// Historical prompt for one variable (Fig. 2b).
pub fn historical_prompt(
    tokenizer: &PromptTokenizer,
    history: &[f32],
    horizon: usize,
    config: &PromptConfig,
) -> Vec<Token> {
    let mut pieces = shared_prefix(history, horizon, config);
    pieces.push(PromptPiece::Word("forecast"));
    pieces.push(PromptPiece::Word("the"));
    pieces.push(PromptPiece::Word("next"));
    pieces.push(PromptPiece::Number(horizon as f32));
    pieces.push(PromptPiece::Word("steps"));
    tokenizer.encode(&pieces)
}

/// Ground-truth prompt for one variable (Fig. 2a) — privileged information,
/// only legal during training.
pub fn ground_truth_prompt(
    tokenizer: &PromptTokenizer,
    history: &[f32],
    future: &[f32],
    config: &PromptConfig,
) -> Vec<Token> {
    let mut pieces = shared_prefix(history, future.len(), config);
    pieces.push(PromptPiece::Word("next"));
    pieces.push(PromptPiece::Number(future.len() as f32));
    pieces.push(PromptPiece::Word("steps"));
    pieces.push(PromptPiece::Word(":"));
    let future_vals = subsample(future, config.max_future);
    for (i, &v) in future_vals.iter().enumerate() {
        pieces.push(PromptPiece::Number(v));
        if i + 1 < future_vals.len() {
            pieces.push(PromptPiece::Word(","));
        }
    }
    // The prompt deliberately ends on the last *value* token (paper
    // Fig. 2a): under calibrated attention the extracted last token must be
    // numeric-modality, otherwise the -Δ bias suppresses exactly the
    // value-routing the teacher depends on.
    tokenizer.encode(&pieces)
}

/// Extracts column `var` of a `[T, N]` tensor as a plain vector.
pub fn column(x: &Tensor, var: usize) -> Vec<f32> {
    assert_eq!(x.shape().rank(), 2, "column expects [T, N]");
    let (t, n) = (x.dims()[0], x.dims()[1]);
    assert!(var < n, "variable {var} out of range {n}");
    let data = x.data();
    (0..t).map(|i| data[i * n + var]).collect()
}

/// Per-variable prompt pair for a whole window.
pub struct WindowPrompts {
    /// Historical prompts, one per variable.
    pub historical: Vec<Vec<Token>>,
    /// Ground-truth prompts, one per variable.
    pub ground_truth: Vec<Vec<Token>>,
}

/// Renders historical and ground-truth prompts for every variable of a
/// window (`x: [H, N]`, `y: [M, N]`).
pub fn window_prompts(
    tokenizer: &PromptTokenizer,
    x: &Tensor,
    y: &Tensor,
    config: &PromptConfig,
) -> WindowPrompts {
    let n = x.dims()[1];
    assert_eq!(y.dims()[1], n, "x and y variable counts differ");
    let horizon = y.dims()[0];
    let mut historical = Vec::with_capacity(n);
    let mut ground_truth = Vec::with_capacity(n);
    for var in 0..n {
        let h = column(x, var);
        let g = column(y, var);
        historical.push(historical_prompt(tokenizer, &h, horizon, config));
        ground_truth.push(ground_truth_prompt(tokenizer, &h, &g, config));
    }
    WindowPrompts {
        historical,
        ground_truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekd_lm::Modality;

    fn cfg() -> PromptConfig {
        PromptConfig {
            max_history: 4,
            max_future: 4,
            freq_minutes: 15,
        }
    }

    #[test]
    fn historical_prompt_is_mixed_modality() {
        let tok = PromptTokenizer::new();
        let p = historical_prompt(&tok, &[1.0, 2.0, 3.0], 24, &cfg());
        assert!(p.iter().any(|t| t.modality == Modality::Text));
        assert!(p.iter().any(|t| t.modality == Modality::Numeric));
    }

    #[test]
    fn ground_truth_prompt_longer_than_historical() {
        // W_HD < W_GT, as stated in §IV-B1.
        let tok = PromptTokenizer::new();
        let h = vec![1.0; 8];
        let g = vec![2.0; 8];
        let hp = historical_prompt(&tok, &h, 8, &cfg());
        let gp = ground_truth_prompt(&tok, &h, &g, &cfg());
        assert!(gp.len() > hp.len(), "{} vs {}", hp.len(), gp.len());
    }

    #[test]
    fn ground_truth_prompt_contains_future_values() {
        let tok = PromptTokenizer::new();
        let gp = ground_truth_prompt(&tok, &[0.0], &[2.0], &cfg());
        let text = tok.decode(&gp);
        assert!(text.contains("2.0"), "{text}");
    }

    #[test]
    fn history_subsampled_covers_both_ends() {
        let tok = PromptTokenizer::new();
        // Linear ramp from -3 to 3 over 100 points.
        let h: Vec<f32> = (0..100).map(|x| -3.0 + 6.0 * x as f32 / 99.0).collect();
        let p = historical_prompt(&tok, &h, 4, &cfg());
        let text = tok.decode(&p);
        assert!(text.contains("-3.0"), "first value present: {text}");
        assert!(text.contains("3.0"), "last value present: {text}");
        assert!(text.contains("-1.0"), "interior sample present: {text}");
    }

    #[test]
    fn subsample_short_series_verbatim() {
        assert_eq!(subsample(&[1.0, 2.0], 8), vec![1.0, 2.0]);
        assert_eq!(subsample(&[1.0, 2.0, 3.0], 3), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn subsample_monotone_indices() {
        let v: Vec<f32> = (0..50).map(|x| x as f32).collect();
        let s = subsample(&v, 7);
        assert_eq!(s.len(), 7);
        assert_eq!(s[0], 0.0);
        assert_eq!(*s.last().unwrap(), 49.0);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn window_prompts_per_variable() {
        let tok = PromptTokenizer::new();
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), [4, 3]);
        let y = Tensor::from_vec((0..6).map(|v| v as f32).collect(), [2, 3]);
        let wp = window_prompts(&tok, &x, &y, &cfg());
        assert_eq!(wp.historical.len(), 3);
        assert_eq!(wp.ground_truth.len(), 3);
        // Different variables produce different prompts.
        assert_ne!(wp.historical[0], wp.historical[1]);
    }

    #[test]
    fn column_extracts_strided_values() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [3, 2]);
        assert_eq!(column(&x, 0), vec![1.0, 3.0, 5.0]);
        assert_eq!(column(&x, 1), vec![2.0, 4.0, 6.0]);
    }
}
