//! Minimal CSV writer for experiment outputs (no external dependency).

use std::fs;
use std::io::Write;
use std::path::Path;

/// Escapes a CSV field (quotes fields containing separators or quotes).
fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Writes rows (header first) to `path`, creating parent directories.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut f = fs::File::create(path)?;
    writeln!(
        f,
        "{}",
        header
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for row in rows {
        writeln!(
            f,
            "{}",
            row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let dir = std::env::temp_dir().join("timekd_csv_test");
        let path = dir.join("out.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4,5".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,\"4,5\"\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn escapes_quotes() {
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape("plain"), "plain");
    }
}
